//! The cross-engine experiment surface: [`Engine`] selects the backend a
//! [`Run`](mmoc_core::Run) executes on.
//!
//! Every backend implements [`ExperimentEngine`], so `Run::engine` accepts
//! a bare `SimConfig` or `RealConfig` directly; [`Engine`] is the closed
//! enumeration for code that chooses the backend at runtime — the
//! simulation-vs-implementation validation loop of the paper's §6:
//!
//! ```
//! use mmo_checkpoint::prelude::*;
//!
//! let trace = SyntheticConfig::paper_default()
//!     .with_ticks(30)
//!     .with_updates_per_tick(500);
//! let engines = [
//!     Engine::Sim(SimConfig::default()),
//!     // Engine::Real(RealConfig::new("/scratch/mmoc")) — same call shape.
//! ];
//! for engine in engines {
//!     let report = Run::algorithm(Algorithm::CopyOnUpdate)
//!         .engine(engine)
//!         .trace(trace)
//!         .execute()
//!         .expect("experiment runs");
//!     assert!(report.world.checkpoints_completed > 0);
//! }
//! ```

use mmoc_core::run::{ExperimentEngine, RunError, RunReport, RunSpec, TraceSpec};
use mmoc_sim::SimConfig;
use mmoc_storage::RealConfig;

/// The backend executing an experiment: the cost-model simulator or the
/// real disk-backed engine.
///
/// Future backends (a ReStore-style replicated store, an NVM-style
/// arena) appear either as new variants here or as standalone
/// [`ExperimentEngine`] implementations — the builder accepts both.
/// Within the real engine, the flush-writer implementation is a further
/// axis: `.writer(WriterBackend::AsyncBatched)` on the builder (or
/// `RealConfig::with_writer_backend`) swaps the worker-thread pool for
/// the io_uring-style batched-submission engine, whose durability
/// scheduler coalesces a batch's data fsyncs per distinct target file
/// and whose adaptive batch window (`.batch_window(d)` /
/// `RealConfig::with_batch_window`) trades bounded ack latency for
/// deeper batches.
#[derive(Debug, Clone)]
pub enum Engine {
    /// The cost-model simulator (`mmoc-sim`): virtual time, Table 3
    /// hardware pricing, analytic recovery estimates.
    Sim(SimConfig),
    /// The real engine (`mmoc-storage`): actual memory copies, files,
    /// `fsync`, and measured crash recovery.
    Real(RealConfig),
}

impl ExperimentEngine for Engine {
    fn run_experiment<T: TraceSpec + ?Sized>(
        &self,
        spec: &RunSpec,
        trace: &T,
    ) -> Result<RunReport, RunError> {
        match self {
            Engine::Sim(config) => config.run_experiment(spec, trace),
            Engine::Real(config) => config.run_experiment(spec, trace),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmoc_core::{Algorithm, Run, StateGeometry};
    use mmoc_workload::SyntheticConfig;

    fn trace() -> SyntheticConfig {
        SyntheticConfig {
            geometry: StateGeometry::test_small(),
            ticks: 30,
            updates_per_tick: 200,
            skew: 0.7,
            seed: 7,
        }
    }

    #[test]
    fn both_variants_dispatch_to_their_backend() {
        let dir = tempfile::tempdir().unwrap();
        let sim = Run::algorithm(Algorithm::CopyOnUpdate)
            .engine(Engine::Sim(SimConfig::default()))
            .trace(trace())
            .execute()
            .expect("sim run");
        assert_eq!(sim.engine, "sim");

        let real = Run::algorithm(Algorithm::CopyOnUpdate)
            .engine(Engine::Real(RealConfig::new(dir.path()).with_query_ops(64)))
            .trace(trace())
            .execute()
            .expect("real run");
        assert_eq!(real.engine, "real");

        // The §6 validation invariant: same trace, same tick/update
        // totals, one report shape.
        assert_eq!(sim.ticks, real.ticks);
        assert_eq!(sim.updates, real.updates);
        assert_eq!(sim.n_shards, real.n_shards);
    }
}
