//! # mmo-checkpoint — checkpoint recovery for MMO game state
//!
//! A complete Rust implementation of *An Evaluation of Checkpoint Recovery
//! for Massively Multiplayer Online Games* (Vaz Salles, Cao, Sowell,
//! Demers, Gehrke, Koch, White — VLDB 2009): the six main-memory
//! checkpointing algorithms, the cost-model simulator, the synthetic and
//! game-server workloads, and the real disk-backed engine used to validate
//! the simulation.
//!
//! This crate is a facade; the pieces live in focused crates:
//!
//! * [`core`] — the checkpointing algorithmic framework, the six
//!   algorithms' bookkeeping, state tables, logical log, recovery replay.
//! * [`sim`] — the tick-level cost-model simulator (Table 3 hardware
//!   model; overhead / checkpoint-time / recovery-time metrics).
//! * [`workload`] — Zipfian trace generation (Table 4), trace files,
//!   trace statistics (Table 5).
//! * [`game`] — the Knights and Archers prototype MMO server.
//! * [`storage`] — the real engine: mutator + writer threads, double
//!   backup files, actual crash recovery.
//!
//! ## Quickstart
//!
//! Every experiment — any algorithm, either engine, any shard count — is
//! described by one builder and returns one report type:
//!
//! ```
//! use mmo_checkpoint::prelude::*;
//!
//! // Simulate Copy-on-Update (the paper's winner) on a synthetic workload.
//! let trace = SyntheticConfig::paper_default()
//!     .with_ticks(60)
//!     .with_updates_per_tick(1_000);
//! let report = Run::algorithm(Algorithm::CopyOnUpdate)
//!     .engine(Engine::Sim(SimConfig::default()))
//!     .trace(trace)
//!     .execute()
//!     .expect("simulation runs");
//! println!("{}", report.summary());
//! assert!(report.world.checkpoints_completed > 0);
//! ```
//!
//! Swapping `Engine::Sim(…)` for `Engine::Real(RealConfig::new(dir))`
//! reruns the identical experiment on the real disk-backed engine —
//! that's the paper's §6 validation loop — and `.shards(n)`,
//! `.batching(true)`, `.fidelity_check(true)` and `.pacing(hz)` apply to
//! both engines. See [`run`] and [`mmoc_core::run`] for the full API.

pub use mmoc_core as core;
pub use mmoc_game as game;
pub use mmoc_sim as sim;
pub use mmoc_storage as storage;
pub use mmoc_workload as workload;

pub mod run;

pub use run::Engine;

/// The most commonly used types, re-exported flat.
pub mod prelude {
    pub use crate::run::Engine;
    pub use mmoc_core::{
        recover, Algorithm, AlgorithmSpec, Bookkeeper, CellAddr, CellUpdate, CheckpointBackend,
        CheckpointImage, CheckpointPlan, DiskOrg, EngineDetail, ExperimentEngine, FidelitySummary,
        ObjectId, RecoveryReport, Run, RunError, RunMetrics, RunReport, RunSpec, RunSummary,
        ShardFilter, ShardMap, ShardReport, ShardedDriver, StateGeometry, StateTable, TickDriver,
        TraceFn, TraceSpec, WriterBackend,
    };
    pub use mmoc_game::{GameConfig, GameServer, World};
    // Engine-native report types (SimReport, ShardedRealReport, …) left
    // the prelude with the pre-builder entry points that returned them:
    // `RunReport` is the one result shape. They remain reachable under
    // `mmo_checkpoint::{sim, storage}` for code that inspects internals.
    pub use mmoc_sim::{HardwareParams, SimConfig};
    pub use mmoc_storage::RealConfig;
    pub use mmoc_workload::{RecordedTrace, SyntheticConfig, TraceSource, TraceStats, ZipfTrace};
}
