//! Dirty/flushed tracking helpers shared by the engines.
//!
//! Two structures live here:
//!
//! * [`EpochBits`] — a bitmap with the *interpretation inversion* trick of
//!   Pu (cited as \[24\] in the paper): instead of clearing every bit between
//!   checkpoints, the meaning of the bit is flipped, turning an O(n) clear
//!   into an O(1) operation. Dribble-and-Copy-on-Update can use this
//!   because its writer touches every object every checkpoint, so all bits
//!   are guaranteed to be at the current interpretation when the checkpoint
//!   finishes.
//! * [`DoubleDirty`] — the two-bits-per-object structure of Salem and
//!   Garcia-Molina's double-backup organization: one dirty bit per backup,
//!   where "dirty" means *the object's live value differs from (or is not
//!   yet confirmed identical to) the value stored in that backup*.

use crate::bitmap::BitVec;
use crate::geometry::ObjectId;

/// A bitmap whose "set" interpretation can be inverted in O(1).
#[derive(Debug, Clone)]
pub struct EpochBits {
    bits: BitVec,
    /// Bit value that currently means "marked".
    epoch: bool,
}

impl EpochBits {
    /// Create with all bits unmarked.
    pub fn new(len: u32) -> Self {
        EpochBits {
            bits: BitVec::new(len),
            epoch: true,
        }
    }

    /// Number of tracked objects.
    pub fn len(&self) -> u32 {
        self.bits.len()
    }

    /// True if no objects are tracked.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Is the object marked under the current interpretation?
    #[inline]
    pub fn is_marked(&self, obj: ObjectId) -> bool {
        self.bits.get(obj.0) == self.epoch
    }

    /// Mark the object. Returns whether it was already marked.
    #[inline]
    pub fn mark(&mut self, obj: ObjectId) -> bool {
        if self.epoch {
            self.bits.set(obj.0)
        } else {
            self.bits.clear(obj.0)
        }
    }

    /// Number of marked objects.
    pub fn count_marked(&self) -> u32 {
        if self.epoch {
            self.bits.count_ones()
        } else {
            self.bits.len() - self.bits.count_ones()
        }
    }

    /// Unmark everything by flipping the interpretation — O(1).
    ///
    /// Only valid when *all* objects are marked (the Dribble invariant at
    /// checckpoint completion: the writer flushed every object it did not
    /// find already copied). Checked with a debug assertion.
    pub fn flip_epoch(&mut self) {
        debug_assert_eq!(
            self.count_marked(),
            self.bits.len(),
            "epoch flip requires all objects marked"
        );
        self.epoch = !self.epoch;
    }

    /// Unmark everything explicitly — O(n/64). Valid in any state.
    pub fn clear_all(&mut self) {
        if self.epoch {
            self.bits.clear_all();
        } else {
            self.bits.set_all();
        }
    }
}

/// Two dirty bits per object, one per backup, as in the double-backup
/// disk organization.
#[derive(Debug, Clone)]
pub struct DoubleDirty {
    backups: [BitVec; 2],
}

impl DoubleDirty {
    /// Create with both backups clean.
    ///
    /// "Clean" here means the on-disk backups already reflect the current
    /// state — the engines pre-load both backups with the initial state, as
    /// a game server does when it boots a shard from disk.
    pub fn new(len: u32) -> Self {
        DoubleDirty {
            backups: [BitVec::new(len), BitVec::new(len)],
        }
    }

    /// Number of tracked objects.
    pub fn len(&self) -> u32 {
        self.backups[0].len()
    }

    /// True if no objects are tracked.
    pub fn is_empty(&self) -> bool {
        self.backups[0].is_empty()
    }

    /// Mark the object dirty with respect to both backups (every update
    /// makes the live value diverge from both on-disk images).
    #[inline]
    pub fn mark(&mut self, obj: ObjectId) {
        self.backups[0].set(obj.0);
        self.backups[1].set(obj.0);
    }

    /// Is the object dirty with respect to the given backup?
    #[inline]
    pub fn is_dirty(&self, backup: usize, obj: ObjectId) -> bool {
        self.backups[backup].get(obj.0)
    }

    /// Dirty count for one backup.
    pub fn count_dirty(&self, backup: usize) -> u32 {
        self.backups[backup].count_ones()
    }

    /// Borrow the dirty bitmap of one backup.
    pub fn bits(&self, backup: usize) -> &BitVec {
        &self.backups[backup]
    }

    /// Take the dirty set of one backup, clearing it.
    ///
    /// Clearing at checkpoint *start* gives snapshot semantics for free:
    /// any update arriving while the checkpoint is written re-marks the
    /// object, which is exactly right because the backup will hold the
    /// checkpoint-start value, not the updated one.
    pub fn begin_checkpoint(&mut self, backup: usize) -> BitVec {
        let snapshot = self.backups[backup].clone();
        self.backups[backup].clear_all();
        snapshot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_bits_mark_and_query() {
        let mut e = EpochBits::new(10);
        assert!(!e.is_marked(ObjectId(3)));
        assert!(!e.mark(ObjectId(3)));
        assert!(e.is_marked(ObjectId(3)));
        assert!(e.mark(ObjectId(3)));
        assert_eq!(e.count_marked(), 1);
    }

    #[test]
    fn epoch_flip_inverts_interpretation() {
        let mut e = EpochBits::new(8);
        for i in 0..8 {
            e.mark(ObjectId(i));
        }
        assert_eq!(e.count_marked(), 8);
        e.flip_epoch();
        assert_eq!(e.count_marked(), 0);
        for i in 0..8 {
            assert!(!e.is_marked(ObjectId(i)));
        }
        // Mark some under the new interpretation and flip back after
        // marking all.
        e.mark(ObjectId(1));
        assert!(e.is_marked(ObjectId(1)));
        assert_eq!(e.count_marked(), 1);
        for i in 0..8 {
            e.mark(ObjectId(i));
        }
        e.flip_epoch();
        assert_eq!(e.count_marked(), 0);
    }

    #[test]
    #[should_panic(expected = "epoch flip requires all objects marked")]
    #[cfg(debug_assertions)]
    fn epoch_flip_requires_all_marked() {
        let mut e = EpochBits::new(4);
        e.mark(ObjectId(0));
        e.flip_epoch();
    }

    #[test]
    fn epoch_clear_all_works_in_either_epoch() {
        let mut e = EpochBits::new(6);
        for i in 0..6 {
            e.mark(ObjectId(i));
        }
        e.flip_epoch(); // epoch now inverted, none marked
        e.mark(ObjectId(2));
        e.clear_all();
        assert_eq!(e.count_marked(), 0);
        e.mark(ObjectId(5));
        assert_eq!(e.count_marked(), 1);
    }

    #[test]
    fn double_dirty_tracks_per_backup() {
        let mut d = DoubleDirty::new(16);
        d.mark(ObjectId(4));
        d.mark(ObjectId(9));
        assert!(d.is_dirty(0, ObjectId(4)));
        assert!(d.is_dirty(1, ObjectId(4)));
        assert_eq!(d.count_dirty(0), 2);
        assert_eq!(d.count_dirty(1), 2);

        // Checkpoint backup 0: its dirty set is snapshotted and cleared,
        // backup 1 unaffected.
        let snap = d.begin_checkpoint(0);
        assert_eq!(snap.ones(), vec![4, 9]);
        assert_eq!(d.count_dirty(0), 0);
        assert_eq!(d.count_dirty(1), 2);

        // An update during the checkpoint re-dirties both.
        d.mark(ObjectId(4));
        assert!(d.is_dirty(0, ObjectId(4)));
        assert_eq!(d.count_dirty(0), 1);
    }

    #[test]
    fn alternating_checkpoints_cover_all_updates() {
        // Objects updated between two checkpoints of the same backup stay
        // dirty for that backup even if the other backup checkpointed them.
        let mut d = DoubleDirty::new(8);
        d.mark(ObjectId(1));
        let s0 = d.begin_checkpoint(0);
        assert_eq!(s0.ones(), vec![1]);
        // Backup 1 still considers object 1 dirty.
        let s1 = d.begin_checkpoint(1);
        assert_eq!(s1.ones(), vec![1]);
        // Now both clean.
        assert_eq!(d.count_dirty(0) + d.count_dirty(1), 0);
    }
}
