//! The logical action log.
//!
//! Physically logging every game update would exhaust disk bandwidth, so
//! the paper's recovery scheme logs *logical* actions — the per-tick update
//! stream — and replays ticks after restoring a checkpoint (§3.1). Because
//! the simulation is deterministic given that stream, replay reconstructs
//! the exact pre-crash state, "to the precise tick at which a failure
//! occurred".
//!
//! [`ActionLog`] holds the stream grouped by tick and supports truncation:
//! once a checkpoint consistent as of tick *T* is safely on disk, entries
//! for ticks ≤ *T* can be discarded.

use crate::error::CoreError;
use crate::geometry::CellUpdate;
use std::collections::VecDeque;

/// One tick's worth of logged actions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TickRecord {
    /// The tick these updates were applied in.
    pub tick: u64,
    /// The updates, in application order.
    pub updates: Vec<CellUpdate>,
}

/// An in-memory logical log of per-tick update batches.
///
/// Ticks must be recorded in strictly increasing, gap-free order (the
/// engine drives one `record_tick` per simulation tick).
#[derive(Debug, Clone, Default)]
pub struct ActionLog {
    records: VecDeque<TickRecord>,
}

impl ActionLog {
    /// Create an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append the updates of one tick. Panics if `tick` does not follow
    /// the previously recorded tick.
    pub fn record_tick(&mut self, tick: u64, updates: &[CellUpdate]) {
        if let Some(last) = self.records.back() {
            assert_eq!(
                tick,
                last.tick + 1,
                "ticks must be logged consecutively ({} then {})",
                last.tick,
                tick
            );
        }
        self.records.push_back(TickRecord {
            tick,
            updates: updates.to_vec(),
        });
    }

    /// Discard records for ticks strictly before `tick`.
    pub fn truncate_before(&mut self, tick: u64) {
        while self.records.front().is_some_and(|r| r.tick < tick) {
            self.records.pop_front();
        }
    }

    /// First tick held, if any.
    pub fn first_tick(&self) -> Option<u64> {
        self.records.front().map(|r| r.tick)
    }

    /// Last tick held, if any.
    pub fn last_tick(&self) -> Option<u64> {
        self.records.back().map(|r| r.tick)
    }

    /// Number of tick records held.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if no records are held.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total number of logged updates across all held ticks.
    pub fn total_updates(&self) -> u64 {
        self.records.iter().map(|r| r.updates.len() as u64).sum()
    }

    /// Approximate memory footprint of the held records in bytes, used to
    /// report log sizes in experiments.
    pub fn approx_bytes(&self) -> u64 {
        self.records
            .iter()
            .map(|r| 8 + r.updates.len() as u64 * std::mem::size_of::<CellUpdate>() as u64)
            .sum()
    }

    /// Iterate over records for ticks in `[from, to]` (inclusive).
    ///
    /// Returns an error if the log no longer holds tick `from` (it was
    /// truncated too aggressively) — unless the range is empty.
    pub fn replay_range(
        &self,
        from: u64,
        to: u64,
    ) -> Result<impl Iterator<Item = &TickRecord>, CoreError> {
        if from > to {
            // Empty range: nothing to replay.
            return Ok(self.records.range(0..0));
        }
        let first = self.first_tick().ok_or(CoreError::MissingLogTicks {
            from,
            have: u64::MAX,
        })?;
        if first > from {
            return Err(CoreError::MissingLogTicks { from, have: first });
        }
        let start = (from - first) as usize;
        let end = ((to - first) as usize + 1).min(self.records.len());
        Ok(self.records.range(start..end))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn upd(v: u32) -> CellUpdate {
        CellUpdate::new(v, 0, v)
    }

    #[test]
    fn record_and_replay_full_range() {
        let mut log = ActionLog::new();
        for t in 1..=5u64 {
            log.record_tick(t, &[upd(t as u32)]);
        }
        assert_eq!(log.first_tick(), Some(1));
        assert_eq!(log.last_tick(), Some(5));
        assert_eq!(log.total_updates(), 5);

        let ticks: Vec<u64> = log.replay_range(2, 4).unwrap().map(|r| r.tick).collect();
        assert_eq!(ticks, vec![2, 3, 4]);
    }

    #[test]
    fn replay_clamps_to_available_end() {
        let mut log = ActionLog::new();
        for t in 0..3u64 {
            log.record_tick(t, &[]);
        }
        let ticks: Vec<u64> = log.replay_range(1, 99).unwrap().map(|r| r.tick).collect();
        assert_eq!(ticks, vec![1, 2]);
    }

    #[test]
    fn truncation_drops_old_ticks_only() {
        let mut log = ActionLog::new();
        for t in 0..10u64 {
            log.record_tick(t, &[upd(t as u32)]);
        }
        log.truncate_before(6);
        assert_eq!(log.first_tick(), Some(6));
        assert_eq!(log.len(), 4);
        // Replaying a truncated range fails loudly.
        let Err(err) = log.replay_range(3, 8) else {
            panic!("expected MissingLogTicks")
        };
        assert_eq!(err, CoreError::MissingLogTicks { from: 3, have: 6 });
        // Replaying what remains succeeds.
        assert_eq!(log.replay_range(6, 9).unwrap().count(), 4);
    }

    #[test]
    fn empty_range_never_errors() {
        let log = ActionLog::new();
        assert_eq!(log.replay_range(5, 4).unwrap().count(), 0);
        let mut log = ActionLog::new();
        log.record_tick(7, &[]);
        assert_eq!(log.replay_range(9, 8).unwrap().count(), 0);
    }

    #[test]
    #[should_panic(expected = "ticks must be logged consecutively")]
    fn gap_in_ticks_panics() {
        let mut log = ActionLog::new();
        log.record_tick(1, &[]);
        log.record_tick(3, &[]);
    }

    #[test]
    fn replay_on_empty_log_errors() {
        let log = ActionLog::new();
        assert!(log.replay_range(0, 5).is_err());
    }

    #[test]
    fn bytes_accounting_grows_with_updates() {
        let mut log = ActionLog::new();
        log.record_tick(0, &[upd(1), upd(2)]);
        let b1 = log.approx_bytes();
        log.record_tick(1, &[upd(3)]);
        assert!(log.approx_bytes() > b1);
    }
}
