//! Recovery: restore a checkpoint image and replay the logical log.
//!
//! After a crash, "the game state can be reconstructed by reading the most
//! recent checkpoint and replaying the logical log" (§1). This module
//! implements that reconstruction over in-memory images; `mmoc-storage`
//! layers real files underneath, and `mmoc-sim` prices the same procedure
//! analytically.

use crate::error::CoreError;
use crate::geometry::StateGeometry;
use crate::log::ActionLog;
use crate::table::StateTable;

/// A full-state checkpoint image, consistent as of the end of a tick.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointImage {
    /// The image reflects all updates up to and including this tick.
    pub consistent_tick: u64,
    /// The raw state bytes (padded to whole atomic objects, exactly as
    /// [`StateTable::as_bytes`] lays them out).
    pub data: Vec<u8>,
}

impl CheckpointImage {
    /// Capture an image of the given table.
    pub fn capture(table: &StateTable, consistent_tick: u64) -> Self {
        CheckpointImage {
            consistent_tick,
            data: table.as_bytes().to_vec(),
        }
    }
}

/// The result of a successful recovery.
#[derive(Debug)]
pub struct RecoveryOutcome {
    /// The reconstructed state.
    pub table: StateTable,
    /// Ticks replayed from the logical log.
    pub ticks_replayed: u64,
    /// Individual cell updates replayed.
    pub updates_replayed: u64,
}

/// Reconstruct the state as of the end of `crash_tick` from a checkpoint
/// image and the logical log.
///
/// The log must contain every tick in `(image.consistent_tick, crash_tick]`.
pub fn recover(
    geometry: StateGeometry,
    image: &CheckpointImage,
    log: &ActionLog,
    crash_tick: u64,
) -> Result<RecoveryOutcome, CoreError> {
    if crash_tick < image.consistent_tick {
        return Err(CoreError::CheckpointMismatch(format!(
            "crash tick {} precedes checkpoint tick {}",
            crash_tick, image.consistent_tick
        )));
    }
    let mut table = StateTable::new(geometry)?;
    table.restore_all(&image.data)?;

    let mut ticks_replayed = 0u64;
    let mut updates_replayed = 0u64;
    for record in log.replay_range(image.consistent_tick + 1, crash_tick)? {
        ticks_replayed += 1;
        for &u in &record.updates {
            table.apply(u)?;
            updates_replayed += 1;
        }
    }
    Ok(RecoveryOutcome {
        table,
        ticks_replayed,
        updates_replayed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::CellUpdate;

    fn geometry() -> StateGeometry {
        StateGeometry::small(16, 4)
    }

    /// Run `ticks` ticks of a deterministic workload, checkpointing at
    /// `ckpt_tick`, and verify recovery at the end reproduces the live
    /// state exactly.
    fn run_and_recover(ticks: u64, ckpt_tick: u64) {
        let g = geometry();
        let mut live = StateTable::new(g).unwrap();
        let mut log = ActionLog::new();
        let mut image = CheckpointImage::capture(&live, 0);

        for tick in 1..=ticks {
            let updates: Vec<CellUpdate> = (0..8)
                .map(|i| {
                    let v = (tick as u32) * 100 + i;
                    CellUpdate::new((v * 7) % 16, (v * 3) % 4, v)
                })
                .collect();
            for &u in &updates {
                live.apply(u).unwrap();
            }
            log.record_tick(tick, &updates);
            if tick == ckpt_tick {
                image = CheckpointImage::capture(&live, tick);
            }
        }

        let outcome = recover(g, &image, &log, ticks).unwrap();
        assert_eq!(outcome.table.fingerprint(), live.fingerprint());
        assert_eq!(outcome.ticks_replayed, ticks - ckpt_tick);
        assert_eq!(outcome.updates_replayed, (ticks - ckpt_tick) * 8);
    }

    #[test]
    fn recovery_replays_to_crash_tick() {
        run_and_recover(20, 10);
    }

    #[test]
    fn recovery_with_checkpoint_at_crash_tick_replays_nothing() {
        run_and_recover(15, 15);
    }

    #[test]
    fn recovery_from_initial_image() {
        run_and_recover(5, 0);
    }

    #[test]
    fn crash_before_checkpoint_is_rejected() {
        let g = geometry();
        let table = StateTable::new(g).unwrap();
        let image = CheckpointImage::capture(&table, 10);
        let log = ActionLog::new();
        assert!(recover(g, &image, &log, 5).is_err());
    }

    #[test]
    fn missing_log_ticks_are_detected() {
        let g = geometry();
        let table = StateTable::new(g).unwrap();
        let image = CheckpointImage::capture(&table, 0);
        let mut log = ActionLog::new();
        log.record_tick(1, &[]);
        log.record_tick(2, &[]);
        log.truncate_before(2);
        let err = recover(g, &image, &log, 2).unwrap_err();
        assert_eq!(err, CoreError::MissingLogTicks { from: 1, have: 2 });
    }

    #[test]
    fn recovery_is_deterministic() {
        let g = geometry();
        let mut live = StateTable::new(g).unwrap();
        let mut log = ActionLog::new();
        let image = CheckpointImage::capture(&live, 0);
        for tick in 1..=10u64 {
            let updates = vec![CellUpdate::new((tick % 16) as u32, 0, tick as u32)];
            for &u in &updates {
                live.apply(u).unwrap();
            }
            log.record_tick(tick, &updates);
        }
        let a = recover(g, &image, &log, 10).unwrap();
        let b = recover(g, &image, &log, 10).unwrap();
        assert_eq!(a.table.fingerprint(), b.table.fingerprint());
        assert_eq!(a.table.fingerprint(), live.fingerprint());
    }
}
