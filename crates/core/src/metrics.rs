//! Metrics shared by the simulated and real engines.
//!
//! The paper reports three quantities per algorithm (§4.4): the *overhead
//! time* added to each tick, the *time to checkpoint*, and the *recovery
//! time*. [`RunMetrics`] collects the raw per-tick and per-checkpoint
//! series from which all three are derived.

use serde::{Deserialize, Serialize};

/// Overhead accounting for one simulation tick.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TickMetrics {
    /// Tick number (0-based).
    pub tick: u64,
    /// Total recovery-induced overhead added to this tick, in seconds.
    /// Includes the synchronous copy pause if a checkpoint started at the
    /// end of this tick.
    pub overhead_s: f64,
    /// The synchronous (eager copy) portion of the overhead, in seconds.
    pub sync_pause_s: f64,
    /// Dirty/flushed bit operations performed by updates in this tick.
    pub bit_ops: u64,
    /// Lock acquisitions performed by copy-on-update handling.
    pub locks: u64,
    /// Objects copied in memory by copy-on-update handling.
    pub copies: u64,
}

/// Summary of one completed (or in-flight at crash) checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CheckpointRecord {
    /// Sequence number.
    pub seq: u64,
    /// Tick at whose end the checkpoint started (the state is consistent
    /// as of this tick).
    pub start_tick: u64,
    /// Tick during which the asynchronous flush completed.
    pub end_tick: u64,
    /// Total checkpoint time in seconds: the synchronous pause (if any)
    /// plus the asynchronous write duration.
    pub duration_s: f64,
    /// The synchronous pause portion, in seconds.
    pub sync_pause_s: f64,
    /// Atomic objects written to stable storage.
    pub objects_written: u32,
    /// Bytes written to stable storage.
    pub bytes_written: u64,
    /// Whether this was a periodic full flush.
    pub full_flush: bool,
}

/// Raw per-run metrics: the per-tick overhead series plus one record per
/// completed checkpoint.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RunMetrics {
    /// One entry per simulated tick, in order.
    pub ticks: Vec<TickMetrics>,
    /// One entry per *completed* checkpoint, in order.
    pub checkpoints: Vec<CheckpointRecord>,
}

impl RunMetrics {
    /// Aggregate per-shard metric series into one world-level series.
    ///
    /// Shards tick in lockstep (every shard executes every global tick),
    /// so per-tick *latency* aggregates as the **max** across shards — the
    /// world's tick is stretched by its slowest shard — while per-tick
    /// *work* counters (`bit_ops`, `locks`, `copies`) aggregate as sums.
    /// Checkpoint records are the union of all shards' records, ordered by
    /// completion tick (shards checkpoint independently, so their
    /// sequence numbers overlap).
    pub fn merge_shards<'a>(shards: impl IntoIterator<Item = &'a RunMetrics>) -> RunMetrics {
        let mut out = RunMetrics::default();
        for m in shards {
            for (i, t) in m.ticks.iter().enumerate() {
                if i == out.ticks.len() {
                    out.ticks.push(*t);
                    continue;
                }
                let o = &mut out.ticks[i];
                debug_assert_eq!(o.tick, t.tick, "shards must tick in lockstep");
                o.overhead_s = o.overhead_s.max(t.overhead_s);
                o.sync_pause_s = o.sync_pause_s.max(t.sync_pause_s);
                o.bit_ops += t.bit_ops;
                o.locks += t.locks;
                o.copies += t.copies;
            }
            out.checkpoints.extend_from_slice(&m.checkpoints);
        }
        out.checkpoints
            .sort_by_key(|c| (c.end_tick, c.start_tick, c.seq));
        out
    }

    /// Average overhead per tick, in seconds (Figure 2(a)/4(a)/5(a)).
    pub fn avg_overhead_s(&self) -> f64 {
        mean(self.ticks.iter().map(|t| t.overhead_s))
    }

    /// Maximum overhead of any tick, in seconds (the latency peaks of
    /// Figure 3).
    pub fn max_overhead_s(&self) -> f64 {
        self.ticks.iter().map(|t| t.overhead_s).fold(0.0, f64::max)
    }

    /// Average time to checkpoint, in seconds, over completed checkpoints
    /// (Figure 2(b)/4(b)/5(b)).
    pub fn avg_checkpoint_s(&self) -> f64 {
        mean(self.checkpoints.iter().map(|c| c.duration_s))
    }

    /// Average objects written per *normal* (non-full-flush) checkpoint —
    /// the paper's `k` in the partial-redo restore model.
    pub fn avg_objects_per_normal_checkpoint(&self) -> f64 {
        mean(
            self.checkpoints
                .iter()
                .filter(|c| !c.full_flush)
                .map(|c| f64::from(c.objects_written)),
        )
    }

    /// Overhead of tick `t` in seconds, or 0 if out of range. Tick
    /// numbers are the driver's 1-based [`TickMetrics::tick`] values, so
    /// the result lines up with [`CheckpointRecord::start_tick`].
    pub fn overhead_at(&self, tick: u64) -> f64 {
        self.ticks
            .iter()
            .find(|t| t.tick == tick)
            .map_or(0.0, |t| t.overhead_s)
    }

    /// The `q`-quantile (0..=1) of per-tick overhead, in seconds.
    pub fn overhead_quantile(&self, q: f64) -> f64 {
        let mut v: Vec<f64> = self.ticks.iter().map(|t| t.overhead_s).collect();
        sample_quantile(&mut v, q)
    }

    /// Total bytes written to stable storage by completed checkpoints.
    pub fn total_bytes_written(&self) -> u64 {
        self.checkpoints.iter().map(|c| c.bytes_written).sum()
    }

    /// Number of ticks whose overhead exceeds the given bound, in seconds
    /// (the paper's half-a-tick "latency limit" analysis, Figure 3).
    pub fn ticks_over_budget(&self, bound_s: f64) -> usize {
        self.ticks.iter().filter(|t| t.overhead_s > bound_s).count()
    }

    /// Tick length (base tick period + overhead) series in seconds, as
    /// plotted by Figure 3.
    pub fn tick_lengths_s(&self, tick_period_s: f64) -> Vec<f64> {
        self.ticks
            .iter()
            .map(|t| tick_period_s + t.overhead_s)
            .collect()
    }
}

/// The `q`-quantile (0..=1, nearest rank) of a sample, sorting it in
/// place; 0.0 for an empty sample. The one quantile definition shared by
/// every consumer (per-tick overhead above, the bench harness's
/// ack-latency percentiles), so tie-breaking and clamping cannot drift
/// between copies.
///
/// NaN samples (a degenerate run can produce a 0/0 duration ratio) are
/// excluded from the rank: the quantile is taken over the finite values
/// only. A sample that is *entirely* NaN propagates NaN rather than
/// inventing a number.
pub fn sample_quantile(values: &mut [f64], q: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    // total_cmp is a total order (no panic on NaN) that sorts positive
    // NaN above every real value; flush negative-sign NaN to the
    // positive representation first so every NaN lands at the top.
    for v in values.iter_mut() {
        if v.is_nan() {
            *v = f64::NAN;
        }
    }
    values.sort_by(f64::total_cmp);
    let finite = values.partition_point(|v| !v.is_nan());
    if finite == 0 {
        return f64::NAN;
    }
    let idx = ((finite - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
    values[idx]
}

fn mean(iter: impl Iterator<Item = f64>) -> f64 {
    let (mut sum, mut n) = (0.0f64, 0u64);
    for v in iter {
        sum += v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tick(tick: u64, overhead_s: f64) -> TickMetrics {
        TickMetrics {
            tick,
            overhead_s,
            sync_pause_s: 0.0,
            bit_ops: 0,
            locks: 0,
            copies: 0,
        }
    }

    fn ckpt(seq: u64, duration_s: f64, objects: u32, full: bool) -> CheckpointRecord {
        CheckpointRecord {
            seq,
            start_tick: seq * 10,
            end_tick: seq * 10 + 9,
            duration_s,
            sync_pause_s: 0.0,
            objects_written: objects,
            bytes_written: u64::from(objects) * 512,
            full_flush: full,
        }
    }

    #[test]
    fn averages_over_empty_runs_are_zero() {
        let m = RunMetrics::default();
        assert_eq!(m.avg_overhead_s(), 0.0);
        assert_eq!(m.avg_checkpoint_s(), 0.0);
        assert_eq!(m.max_overhead_s(), 0.0);
        assert_eq!(m.overhead_quantile(0.5), 0.0);
    }

    #[test]
    fn summary_statistics() {
        let m = RunMetrics {
            ticks: vec![tick(0, 0.001), tick(1, 0.003), tick(2, 0.002)],
            checkpoints: vec![ckpt(0, 0.5, 100, false), ckpt(1, 0.7, 300, true)],
        };
        assert!((m.avg_overhead_s() - 0.002).abs() < 1e-12);
        assert_eq!(m.max_overhead_s(), 0.003);
        assert!((m.avg_checkpoint_s() - 0.6).abs() < 1e-12);
        // Only the normal checkpoint counts for k.
        assert_eq!(m.avg_objects_per_normal_checkpoint(), 100.0);
        assert_eq!(m.total_bytes_written(), 400 * 512);
        assert_eq!(m.ticks_over_budget(0.0015), 2);
        assert_eq!(m.overhead_at(1), 0.003);
        assert_eq!(m.overhead_at(99), 0.0);
    }

    /// NaN samples (a degenerate run's 0/0 latency ratio) must not abort
    /// the percentile computation: they are excluded from the rank, and
    /// an all-NaN sample propagates NaN instead of inventing a value.
    #[test]
    fn sample_quantile_survives_nan_samples() {
        let mut v = vec![3.0, f64::NAN, 1.0, 2.0, -f64::NAN];
        assert_eq!(sample_quantile(&mut v, 0.0), 1.0);
        assert_eq!(sample_quantile(&mut v, 0.5), 2.0);
        assert_eq!(sample_quantile(&mut v, 1.0), 3.0, "NaN never the max");
        let mut all_nan = vec![f64::NAN, f64::NAN];
        assert!(sample_quantile(&mut all_nan, 0.99).is_nan());
        let mut clean = vec![5.0, 4.0];
        assert_eq!(sample_quantile(&mut clean, 1.0), 5.0);
    }

    #[test]
    fn merge_shards_maxes_latency_and_sums_work() {
        let mut a = RunMetrics {
            ticks: vec![tick(1, 0.002), tick(2, 0.001)],
            checkpoints: vec![ckpt(0, 0.5, 10, false)],
        };
        a.ticks[0].bit_ops = 5;
        a.ticks[0].copies = 2;
        let mut b = RunMetrics {
            ticks: vec![tick(1, 0.001), tick(2, 0.004)],
            checkpoints: vec![ckpt(0, 0.2, 3, false)],
        };
        b.ticks[0].bit_ops = 7;
        b.ticks[0].locks = 1;
        // Shard b's checkpoint completes earlier in tick terms.
        b.checkpoints[0].start_tick = 1;
        b.checkpoints[0].end_tick = 2;

        let merged = RunMetrics::merge_shards([&a, &b]);
        assert_eq!(merged.ticks.len(), 2);
        assert_eq!(merged.ticks[0].overhead_s, 0.002, "max across shards");
        assert_eq!(merged.ticks[1].overhead_s, 0.004);
        assert_eq!(merged.ticks[0].bit_ops, 12, "sum across shards");
        assert_eq!(merged.ticks[0].locks, 1);
        assert_eq!(merged.ticks[0].copies, 2);
        assert_eq!(merged.checkpoints.len(), 2);
        assert_eq!(merged.checkpoints[0].end_tick, 2, "ordered by completion");
    }

    #[test]
    fn quantiles_are_order_statistics() {
        let m = RunMetrics {
            ticks: (0..101).map(|i| tick(i, i as f64)).collect(),
            checkpoints: vec![],
        };
        assert_eq!(m.overhead_quantile(0.0), 0.0);
        assert_eq!(m.overhead_quantile(0.5), 50.0);
        assert_eq!(m.overhead_quantile(1.0), 100.0);
    }
}
