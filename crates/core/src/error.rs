//! Error types shared by the checkpoint-recovery crates.

use std::fmt;

/// Errors produced by state-geometry validation, trace application and
/// recovery replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// The geometry is internally inconsistent (e.g. the atomic-object size
    /// is not a multiple of the cell size, or a dimension is zero).
    InvalidGeometry(String),
    /// A cell address lies outside the state table.
    CellOutOfBounds {
        /// Row of the offending address.
        row: u32,
        /// Column of the offending address.
        col: u32,
    },
    /// An object id lies outside the state table.
    ObjectOutOfBounds(u32),
    /// The logical log does not contain the ticks required for replay.
    MissingLogTicks {
        /// First tick required (inclusive).
        from: u64,
        /// First tick the log actually holds.
        have: u64,
    },
    /// Recovery was attempted with no completed checkpoint available.
    NoCheckpoint,
    /// A checkpoint image does not match the geometry it is restored into.
    CheckpointMismatch(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidGeometry(msg) => write!(f, "invalid state geometry: {msg}"),
            CoreError::CellOutOfBounds { row, col } => {
                write!(f, "cell ({row}, {col}) is out of bounds")
            }
            CoreError::ObjectOutOfBounds(id) => write!(f, "object {id} is out of bounds"),
            CoreError::MissingLogTicks { from, have } => write!(
                f,
                "logical log is missing ticks: replay needs tick {from} but log starts at {have}"
            ),
            CoreError::NoCheckpoint => write!(f, "no completed checkpoint is available"),
            CoreError::CheckpointMismatch(msg) => write!(f, "checkpoint mismatch: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_human_readable() {
        let err = CoreError::CellOutOfBounds { row: 3, col: 9 };
        assert_eq!(err.to_string(), "cell (3, 9) is out of bounds");
        let err = CoreError::MissingLogTicks { from: 10, have: 20 };
        assert!(err.to_string().contains("tick 10"));
        assert!(err.to_string().contains("starts at 20"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
