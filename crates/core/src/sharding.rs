//! The shard layer: N independent framework loops over disjoint slices of
//! one world.
//!
//! The paper checkpoints a single monolithic state table, but its
//! framework loop is per-object and partitions cleanly: split the table
//! into N disjoint row bands, give each band its own [`TickDriver`] +
//! [`Bookkeeper`](crate::Bookkeeper), and route each update to the band
//! that owns its row. Shards then checkpoint — and, crucially, *recover* —
//! independently and in parallel, which is the standard MMOG scaling move
//! (zone/shard partitioning) applied to the recovery machinery itself.
//!
//! Three pieces live here:
//!
//! * [`ShardMap`] — the partition: disjoint row bands whose boundaries are
//!   aligned to atomic-object boundaries, so every atomic object belongs
//!   to exactly one shard and per-shard object ids are a dense renumbering
//!   of a contiguous global range.
//! * [`ShardedDriver`] — the orchestration: one [`DriverStep`] per shard,
//!   advanced in lockstep over a single global trace. Each global tick is
//!   routed into per-shard update batches and every shard executes its
//!   full framework loop body for that tick.
//! * [`ShardFilter`] — a [`TraceSource`] adapter yielding one shard's
//!   slice of a global trace in shard-local coordinates; recovery replays
//!   a crashed shard through it without touching its neighbours.
//!
//! With one shard the map is the identity and [`ShardedDriver::run`]
//! performs exactly the same backend call sequence as
//! [`TickDriver::run`] — the sharded path at N = 1 *is* the single-driver
//! path.

use crate::driver::{CheckpointBackend, DriverRun, DriverStep, TickDriver};
use crate::error::CoreError;
use crate::geometry::{CellUpdate, ObjectId, StateGeometry};
use crate::metrics::RunMetrics;
use crate::trace::TraceSource;

/// A partition of a [`StateGeometry`] into N disjoint, object-aligned row
/// bands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    global: StateGeometry,
    /// Band boundaries in rows: `row_starts[s] .. row_starts[s + 1]` is
    /// shard `s`; length `n_shards + 1`, first 0, last `global.rows`.
    row_starts: Vec<u32>,
}

impl ShardMap {
    /// Partition `global` into `n_shards` row bands of near-equal size.
    ///
    /// Band boundaries are aligned so that each boundary row starts a new
    /// atomic object (boundaries fall on multiples of
    /// `lcm(cells_per_object, cols) / cols` rows); the alignment is what
    /// makes object ownership disjoint. Fails if the geometry is invalid,
    /// `n_shards` is zero, or the table has fewer aligned bands than
    /// requested shards.
    pub fn new(global: StateGeometry, n_shards: u32) -> Result<Self, CoreError> {
        global.validate()?;
        if n_shards == 0 {
            return Err(CoreError::InvalidGeometry(
                "shard count must be non-zero".into(),
            ));
        }
        let align_rows = Self::align_rows(&global);
        // Blocks of `align_rows` rows; the final block may be partial.
        let blocks = u64::from(global.rows).div_ceil(u64::from(align_rows));
        if u64::from(n_shards) > blocks {
            return Err(CoreError::InvalidGeometry(format!(
                "cannot split {} rows into {} shards: only {} object-aligned \
                 bands of {} rows exist",
                global.rows, n_shards, blocks, align_rows
            )));
        }
        let n = u64::from(n_shards);
        let per = blocks / n;
        let extra = blocks % n;
        let mut row_starts = Vec::with_capacity(n_shards as usize + 1);
        let mut block = 0u64;
        row_starts.push(0);
        for s in 0..n {
            block += per + u64::from(s < extra);
            let row = (block * u64::from(align_rows)).min(u64::from(global.rows)) as u32;
            row_starts.push(row);
        }
        debug_assert_eq!(*row_starts.last().expect("non-empty"), global.rows);
        Ok(ShardMap { global, row_starts })
    }

    /// Rows per object-aligned block: the smallest row count after which
    /// both a row boundary and an atomic-object boundary coincide.
    fn align_rows(g: &StateGeometry) -> u32 {
        fn gcd(a: u64, b: u64) -> u64 {
            if b == 0 {
                a
            } else {
                gcd(b, a % b)
            }
        }
        let per = u64::from(g.cells_per_object());
        let cols = u64::from(g.cols);
        let lcm_cells = per / gcd(per, cols) * cols;
        (lcm_cells / cols) as u32
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.row_starts.len() - 1
    }

    /// The unpartitioned world geometry.
    pub fn global_geometry(&self) -> StateGeometry {
        self.global
    }

    /// First row of shard `s`.
    pub fn row_start(&self, shard: usize) -> u32 {
        self.row_starts[shard]
    }

    /// Geometry of shard `s`'s slice of the world (same cell and object
    /// sizes, the band's rows).
    pub fn shard_geometry(&self, shard: usize) -> StateGeometry {
        StateGeometry {
            rows: self.row_starts[shard + 1] - self.row_starts[shard],
            cols: self.global.cols,
            cell_size: self.global.cell_size,
            object_size: self.global.object_size,
        }
    }

    /// First *global* object id owned by shard `s`. Shard-local object id
    /// `o` corresponds to global object id `object_start(s) + o`.
    pub fn object_start(&self, shard: usize) -> u32 {
        let cells = u64::from(self.row_starts[shard]) * u64::from(self.global.cols);
        (cells / u64::from(self.global.cells_per_object())) as u32
    }

    /// The shard owning a global row.
    #[inline]
    pub fn shard_of_row(&self, row: u32) -> usize {
        debug_assert!(row < self.global.rows);
        // partition_point over the inner boundaries: index of the first
        // boundary strictly above `row`.
        self.row_starts[1..].partition_point(|&start| start <= row)
    }

    /// The shard owning a global atomic object.
    pub fn shard_of_object(&self, obj: ObjectId) -> usize {
        let cell = u64::from(obj.0) * u64::from(self.global.cells_per_object());
        let row = (cell / u64::from(self.global.cols)) as u32;
        self.shard_of_row(row)
    }

    /// Route one global update: the owning shard plus the update rewritten
    /// into that shard's local row coordinates.
    #[inline]
    pub fn route(&self, u: CellUpdate) -> (usize, CellUpdate) {
        let shard = self.shard_of_row(u.addr.row);
        (shard, self.to_local(shard, u))
    }

    /// Rewrite a global update into shard-local coordinates. The caller
    /// must pass the owning shard.
    #[inline]
    pub fn to_local(&self, shard: usize, mut u: CellUpdate) -> CellUpdate {
        u.addr.row -= self.row_starts[shard];
        u
    }

    /// Rewrite a shard-local update back into global coordinates.
    #[inline]
    pub fn to_global(&self, shard: usize, mut u: CellUpdate) -> CellUpdate {
        u.addr.row += self.row_starts[shard];
        u
    }

    /// Route a tick's global updates into per-shard batches. `bufs` must
    /// have one buffer per shard; each is cleared first.
    pub fn route_into(&self, updates: &[CellUpdate], bufs: &mut [Vec<CellUpdate>]) {
        assert_eq!(bufs.len(), self.n_shards(), "one buffer per shard");
        for b in bufs.iter_mut() {
            b.clear();
        }
        for &u in updates {
            let (shard, local) = self.route(u);
            bufs[shard].push(local);
        }
    }
}

/// Result of one sharded run: per-shard [`DriverRun`]s plus the global
/// tick/update totals.
#[derive(Debug, Clone)]
pub struct ShardedRun {
    /// Global ticks executed (every shard executes every tick).
    pub ticks: u64,
    /// Total updates routed across all shards.
    pub updates: u64,
    /// One run result per shard, in shard order.
    pub shards: Vec<DriverRun>,
}

impl ShardedRun {
    /// World-level metrics: per-tick latency maxed and work summed across
    /// shards, checkpoints unioned (see [`RunMetrics::merge_shards`]).
    pub fn merged_metrics(&self) -> RunMetrics {
        RunMetrics::merge_shards(self.shards.iter().map(|r| &r.metrics))
    }
}

/// N framework loops in lockstep: one [`TickDriver`] + bookkeeper per
/// shard, fed by routing a single global trace through a [`ShardMap`].
#[derive(Debug, Clone)]
pub struct ShardedDriver {
    driver: TickDriver,
    map: ShardMap,
}

impl ShardedDriver {
    /// Create a sharded driver. The inner [`TickDriver`] carries the
    /// algorithm spec and the batching flag, applied per shard.
    pub fn new(driver: TickDriver, map: ShardMap) -> Self {
        ShardedDriver { driver, map }
    }

    /// The shard map in use.
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// Replay the global `trace`, routing each tick's updates to the
    /// per-shard backends. `backends[s]` serves shard `s` and must be
    /// built over [`ShardMap::shard_geometry`]`(s)`.
    ///
    /// Panics if the trace geometry differs from the map's global
    /// geometry or the backend count differs from the shard count.
    pub fn run<S, B>(&self, trace: &mut S, backends: &mut [B]) -> Result<ShardedRun, B::Error>
    where
        S: TraceSource,
        B: CheckpointBackend,
    {
        self.run_with(trace, backends, |_| {})
    }

    /// As [`ShardedDriver::run`], invoking `on_tick_end(tick)` once after
    /// every **global** tick — after all shards have executed their
    /// framework-loop body for that tick (1-based tick numbers).
    ///
    /// This is the hook for world-level per-tick concerns. The real
    /// engine's paced mode uses it to sleep out the remainder of the tick
    /// period exactly once per global tick; sleeping per shard (N sleeps
    /// per tick) would stretch the world's tick N-fold.
    pub fn run_with<S, B, F>(
        &self,
        trace: &mut S,
        backends: &mut [B],
        mut on_tick_end: F,
    ) -> Result<ShardedRun, B::Error>
    where
        S: TraceSource,
        B: CheckpointBackend,
        F: FnMut(u64),
    {
        assert_eq!(
            trace.geometry(),
            self.map.global_geometry(),
            "trace geometry must match the shard map"
        );
        let n = self.map.n_shards();
        assert_eq!(backends.len(), n, "one backend per shard");

        let mut steps: Vec<DriverStep> = (0..n)
            .map(|s| self.driver.begin(self.map.shard_geometry(s)))
            .collect();
        let mut global_buf = Vec::new();
        let mut shard_bufs: Vec<Vec<CellUpdate>> = vec![Vec::new(); n];
        let mut ticks = 0u64;
        let mut updates = 0u64;

        while trace.next_tick(&mut global_buf) {
            ticks += 1;
            updates += global_buf.len() as u64;
            self.map.route_into(&global_buf, &mut shard_bufs);
            for (s, step) in steps.iter_mut().enumerate() {
                step.tick(&shard_bufs[s], &mut backends[s])?;
            }
            on_tick_end(ticks);
        }

        let mut shards = Vec::with_capacity(n);
        for (s, step) in steps.into_iter().enumerate() {
            shards.push(step.finish(&mut backends[s])?);
        }
        Ok(ShardedRun {
            ticks,
            updates,
            shards,
        })
    }
}

/// A [`TraceSource`] adapter yielding one shard's slice of a global trace,
/// in shard-local coordinates.
///
/// Used by per-shard recovery replay: a crashed shard re-iterates the
/// deterministic global trace through its filter, seeing exactly the
/// updates it owns.
#[derive(Debug)]
pub struct ShardFilter<S> {
    inner: S,
    map: ShardMap,
    shard: usize,
    scratch: Vec<CellUpdate>,
}

impl<S: TraceSource> ShardFilter<S> {
    /// Filter `inner` down to `shard`'s updates. Panics if the trace
    /// geometry differs from the map's global geometry or the shard index
    /// is out of range.
    pub fn new(inner: S, map: ShardMap, shard: usize) -> Self {
        assert_eq!(
            inner.geometry(),
            map.global_geometry(),
            "trace geometry must match the shard map"
        );
        assert!(shard < map.n_shards(), "shard index out of range");
        ShardFilter {
            inner,
            map,
            shard,
            scratch: Vec::new(),
        }
    }
}

impl<S: TraceSource> TraceSource for ShardFilter<S> {
    fn geometry(&self) -> StateGeometry {
        self.map.shard_geometry(self.shard)
    }

    fn next_tick(&mut self, buf: &mut Vec<CellUpdate>) -> bool {
        buf.clear();
        if !self.inner.next_tick(&mut self.scratch) {
            return false;
        }
        for &u in &self.scratch {
            let (shard, local) = self.map.route(u);
            if shard == self.shard {
                buf.push(local);
            }
        }
        true
    }

    fn total_ticks(&self) -> Option<u64> {
        self.inner.total_ticks()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::Algorithm;
    use crate::geometry::CellAddr;

    #[test]
    fn single_shard_map_is_identity() {
        let g = StateGeometry::test_small();
        let map = ShardMap::new(g, 1).unwrap();
        assert_eq!(map.n_shards(), 1);
        assert_eq!(map.shard_geometry(0), g);
        assert_eq!(map.object_start(0), 0);
        let u = CellUpdate::new(17, 3, 42);
        assert_eq!(map.route(u), (0, u));
    }

    #[test]
    fn bands_are_disjoint_aligned_and_exhaustive() {
        // 16 cells/object, 8 cols -> boundaries every 2 rows.
        let g = StateGeometry::test_small();
        for n in [1u32, 2, 3, 4, 8] {
            let map = ShardMap::new(g, n).unwrap();
            assert_eq!(map.n_shards(), n as usize);
            let mut rows = 0u32;
            let mut objects = 0u32;
            for s in 0..map.n_shards() {
                let sg = map.shard_geometry(s);
                sg.validate().unwrap();
                assert_eq!(map.row_start(s), rows);
                assert_eq!(map.object_start(s), objects);
                rows += sg.rows;
                objects += sg.n_objects();
            }
            assert_eq!(rows, g.rows, "bands cover every row");
            assert_eq!(objects, g.n_objects(), "object ids are dense");
        }
    }

    #[test]
    fn unaligned_cols_still_split_on_object_boundaries() {
        // 128 cells/object over 10 cols: boundaries every 64 rows.
        let g = StateGeometry::paper_synthetic();
        let map = ShardMap::new(g, 8).unwrap();
        let mut objects = 0u32;
        for s in 0..8 {
            assert_eq!(map.row_start(s) % 64, 0, "shard {s} boundary unaligned");
            assert_eq!(map.object_start(s), objects);
            objects += map.shard_geometry(s).n_objects();
        }
        assert_eq!(objects, g.n_objects());
    }

    #[test]
    fn routing_matches_object_ownership() {
        let g = StateGeometry::paper_game(); // 13 cols, 128 cells/object
        let map = ShardMap::new(g, 4).unwrap();
        for row in (0..g.rows).step_by(997) {
            for col in [0, 7, 12] {
                let addr = CellAddr::new(row, col);
                let obj = g.object_of(addr).unwrap();
                let shard = map.shard_of_row(row);
                assert_eq!(map.shard_of_object(obj), shard);
                let (s, local) = map.route(CellUpdate::new(row, col, 1));
                assert_eq!(s, shard);
                // Local object id is the global id renumbered densely.
                let local_obj = map.shard_geometry(s).object_of(local.addr).unwrap();
                assert_eq!(local_obj.0 + map.object_start(s), obj.0);
                // And the round trip restores the global address.
                assert_eq!(
                    map.to_global(s, local),
                    CellUpdate::new(row, col, 1),
                    "row {row}"
                );
            }
        }
    }

    #[test]
    fn too_many_shards_is_rejected() {
        let g = StateGeometry::test_micro(); // 16 rows, 4 aligned bands
        assert!(ShardMap::new(g, 4).is_ok());
        assert!(matches!(
            ShardMap::new(g, 5),
            Err(CoreError::InvalidGeometry(_))
        ));
        assert!(matches!(
            ShardMap::new(g, 0),
            Err(CoreError::InvalidGeometry(_))
        ));
    }

    /// A deterministic trace over the global geometry.
    struct TestTrace {
        g: StateGeometry,
        ticks: u64,
        per_tick: u32,
        next: u64,
    }

    impl TraceSource for TestTrace {
        fn geometry(&self) -> StateGeometry {
            self.g
        }

        fn next_tick(&mut self, buf: &mut Vec<CellUpdate>) -> bool {
            buf.clear();
            if self.next >= self.ticks {
                return false;
            }
            for i in 0..self.per_tick {
                let row = ((self.next as u32).wrapping_mul(31) + i * 17) % self.g.rows;
                buf.push(CellUpdate::new(row, i % self.g.cols, i));
            }
            self.next += 1;
            true
        }
    }

    /// Minimal backend counting calls (mirrors the driver's mock).
    struct CountingBackend {
        latency_ticks: u64,
        ticks_since_start: u64,
        in_flight: Option<u32>,
        updates_applied: u64,
    }

    impl CountingBackend {
        fn new() -> Self {
            CountingBackend {
                latency_ticks: 2,
                ticks_since_start: 0,
                in_flight: None,
                updates_applied: 0,
            }
        }

        fn completion(&mut self) -> crate::driver::FlushCompletion {
            let objects = self.in_flight.take().expect("in flight");
            crate::driver::FlushCompletion {
                duration_s: 0.001,
                objects_written: objects,
                bytes_written: u64::from(objects) * 64,
            }
        }
    }

    impl CheckpointBackend for CountingBackend {
        type Error = std::convert::Infallible;

        fn begin_tick(&mut self, _tick: u64) -> Result<(), Self::Error> {
            Ok(())
        }

        fn cursor(&mut self) -> crate::FlushCursor {
            crate::FlushCursor::START
        }

        fn apply_update(
            &mut self,
            _update: CellUpdate,
            _obj: ObjectId,
            _ops: crate::UpdateOps,
        ) -> Result<(), Self::Error> {
            self.updates_applied += 1;
            Ok(())
        }

        fn end_updates(
            &mut self,
            _bk: &crate::Bookkeeper,
            ops: &crate::TickOps,
        ) -> Result<f64, Self::Error> {
            Ok(ops.bit_ops as f64 * 1e-9)
        }

        fn poll_completion(
            &mut self,
            _bk: &crate::Bookkeeper,
        ) -> Result<Option<crate::driver::FlushCompletion>, Self::Error> {
            self.ticks_since_start += 1;
            if self.ticks_since_start >= self.latency_ticks {
                Ok(Some(self.completion()))
            } else {
                Ok(None)
            }
        }

        fn start_checkpoint(
            &mut self,
            _bk: &crate::Bookkeeper,
            plan: &crate::CheckpointPlan,
            _tick: u64,
        ) -> Result<f64, Self::Error> {
            self.in_flight = Some(plan.flush.objects());
            self.ticks_since_start = 0;
            Ok(0.0)
        }

        fn end_tick(&mut self, _tick: u64) -> Result<(), Self::Error> {
            Ok(())
        }

        fn drain(
            &mut self,
            _bk: &crate::Bookkeeper,
        ) -> Result<Option<crate::driver::FlushCompletion>, Self::Error> {
            Ok(Some(self.completion()))
        }
    }

    #[test]
    fn sharded_run_covers_every_update_exactly_once() {
        let g = StateGeometry::test_small();
        for n in [1u32, 2, 4] {
            let map = ShardMap::new(g, n).unwrap();
            let driver =
                ShardedDriver::new(TickDriver::new(Algorithm::CopyOnUpdate.spec()), map.clone());
            let mut backends: Vec<CountingBackend> =
                (0..n).map(|_| CountingBackend::new()).collect();
            let mut trace = TestTrace {
                g,
                ticks: 20,
                per_tick: 50,
                next: 0,
            };
            let run = driver.run(&mut trace, &mut backends).expect("infallible");
            assert_eq!(run.ticks, 20);
            assert_eq!(run.updates, 20 * 50);
            let routed: u64 = backends.iter().map(|b| b.updates_applied).sum();
            assert_eq!(routed, run.updates, "n={n}: every update lands once");
            let per_shard: u64 = run.shards.iter().map(|r| r.updates).sum();
            assert_eq!(per_shard, run.updates);
            for r in &run.shards {
                assert_eq!(r.ticks, 20, "every shard ticks every global tick");
                assert!(!r.metrics.checkpoints.is_empty());
            }
        }
    }

    #[test]
    fn tick_hook_fires_once_per_global_tick_not_per_shard() {
        let g = StateGeometry::test_small();
        let map = ShardMap::new(g, 4).unwrap();
        let driver = ShardedDriver::new(TickDriver::new(Algorithm::CopyOnUpdate.spec()), map);
        let mut backends: Vec<CountingBackend> = (0..4).map(|_| CountingBackend::new()).collect();
        let mut trace = TestTrace {
            g,
            ticks: 15,
            per_tick: 30,
            next: 0,
        };
        let mut fired = Vec::new();
        let run = driver
            .run_with(&mut trace, &mut backends, |t| fired.push(t))
            .expect("infallible");
        assert_eq!(run.ticks, 15);
        // One call per *global* tick, in order — not one per shard.
        assert_eq!(fired, (1..=15).collect::<Vec<u64>>());
    }

    #[test]
    fn one_shard_equals_the_single_driver_path() {
        let g = StateGeometry::test_small();
        let make_trace = || TestTrace {
            g,
            ticks: 30,
            per_tick: 40,
            next: 0,
        };
        let driver = TickDriver::new(Algorithm::CopyOnUpdate.spec());

        let mut backend = CountingBackend::new();
        let single = driver.run(&mut make_trace(), &mut backend).unwrap();

        let map = ShardMap::new(g, 1).unwrap();
        let mut backends = vec![CountingBackend::new()];
        let sharded = ShardedDriver::new(driver, map)
            .run(&mut make_trace(), &mut backends)
            .unwrap();

        assert_eq!(sharded.shards.len(), 1);
        let shard = &sharded.shards[0];
        assert_eq!(shard.ticks, single.ticks);
        assert_eq!(shard.updates, single.updates);
        assert_eq!(shard.metrics.ticks, single.metrics.ticks);
        assert_eq!(shard.metrics.checkpoints, single.metrics.checkpoints);
    }

    #[test]
    fn shard_filter_partitions_the_trace() {
        let g = StateGeometry::test_small();
        let map = ShardMap::new(g, 4).unwrap();
        let make_trace = || TestTrace {
            g,
            ticks: 12,
            per_tick: 64,
            next: 0,
        };

        // Collect every filtered update back into global coordinates.
        let mut rebuilt: Vec<Vec<CellUpdate>> = vec![Vec::new(); 12];
        for s in 0..4 {
            let mut filter = ShardFilter::new(make_trace(), map.clone(), s);
            assert_eq!(filter.geometry(), map.shard_geometry(s));
            let mut buf = Vec::new();
            let mut t = 0;
            while filter.next_tick(&mut buf) {
                for &u in &buf {
                    rebuilt[t].push(map.to_global(s, u));
                }
                t += 1;
            }
            assert_eq!(t, 12, "filter preserves tick structure");
        }

        let mut direct = make_trace();
        let mut buf = Vec::new();
        let mut t = 0;
        while direct.next_tick(&mut buf) {
            let mut expect = buf.clone();
            expect.sort_by_key(|u| (u.addr.row, u.addr.col, u.value));
            rebuilt[t].sort_by_key(|u| (u.addr.row, u.addr.col, u.value));
            assert_eq!(rebuilt[t], expect, "tick {t}");
            t += 1;
        }
    }
}
