//! A compact bit vector used for dirty/flushed tracking.
//!
//! Dirty-bit maintenance sits in the inner loop of the game simulation
//! (§4.2: its overhead "can be quite significant and must be modeled"), so
//! the structure is a plain `Vec<u64>` with word-at-a-time bulk operations.
//! It also supports the run-counting query eager algorithms need to cost
//! their synchronous copies (one memory-latency charge per contiguous run).

/// A fixed-length bit vector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitVec {
    words: Vec<u64>,
    len: u32,
}

impl BitVec {
    /// Create a bit vector of `len` zero bits.
    pub fn new(len: u32) -> Self {
        let n_words = (len as usize).div_ceil(64);
        BitVec {
            words: vec![0; n_words],
            len,
        }
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> u32 {
        self.len
    }

    /// True if the vector has zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Read bit `i`.
    #[inline]
    pub fn get(&self, i: u32) -> bool {
        debug_assert!(i < self.len);
        let w = self.words[(i / 64) as usize];
        (w >> (i % 64)) & 1 == 1
    }

    /// Set bit `i` to 1. Returns the previous value (so callers can count
    /// first touches without a separate `get`).
    #[inline]
    pub fn set(&mut self, i: u32) -> bool {
        debug_assert!(i < self.len);
        let word = &mut self.words[(i / 64) as usize];
        let mask = 1u64 << (i % 64);
        let prev = *word & mask != 0;
        *word |= mask;
        prev
    }

    /// Clear bit `i`. Returns the previous value.
    #[inline]
    pub fn clear(&mut self, i: u32) -> bool {
        debug_assert!(i < self.len);
        let word = &mut self.words[(i / 64) as usize];
        let mask = 1u64 << (i % 64);
        let prev = *word & mask != 0;
        *word &= !mask;
        prev
    }

    /// Set all bits to zero.
    pub fn clear_all(&mut self) {
        self.words.fill(0);
    }

    /// Set all bits to one (bits past `len` in the last word stay zero so
    /// that popcounts remain exact).
    pub fn set_all(&mut self) {
        self.words.fill(u64::MAX);
        self.mask_tail();
    }

    fn mask_tail(&mut self) {
        let tail_bits = self.len % 64;
        if tail_bits != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail_bits) - 1;
            }
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Iterate over the indices of set bits in increasing order.
    pub fn iter_ones(&self) -> impl Iterator<Item = u32> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let base = wi as u32 * 64;
            BitIter { word: w, base }
        })
    }

    /// Collect the indices of set bits, in increasing order.
    pub fn ones(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.count_ones() as usize);
        out.extend(self.iter_ones());
        out
    }

    /// Count maximal runs of consecutive set bits.
    ///
    /// Eager algorithms copy dirty objects run-by-run; each run incurs one
    /// memory-latency startup charge (`Omem`) in the cost model.
    pub fn count_runs(&self) -> u32 {
        let mut runs = 0u32;
        let mut prev_msb = false; // bit 63 of the previous word
        for &w in &self.words {
            // Runs starting in this word: set bits whose predecessor is 0.
            let shifted = (w << 1) | u64::from(prev_msb);
            runs += (w & !shifted).count_ones();
            prev_msb = w >> 63 == 1;
        }
        runs
    }

    /// Bitwise OR with another vector of the same length.
    pub fn union_with(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len, "bitvec length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }
}

struct BitIter {
    word: u64,
    base: u32,
}

impl Iterator for BitIter {
    type Item = u32;

    #[inline]
    fn next(&mut self) -> Option<u32> {
        if self.word == 0 {
            return None;
        }
        let tz = self.word.trailing_zeros();
        self.word &= self.word - 1;
        Some(self.base + tz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear_roundtrip() {
        let mut bv = BitVec::new(130);
        assert!(!bv.get(0));
        assert!(!bv.set(0));
        assert!(bv.get(0));
        assert!(bv.set(0)); // second set reports previous = true
        assert!(!bv.set(129));
        assert!(bv.get(129));
        assert!(bv.clear(129));
        assert!(!bv.get(129));
        assert!(!bv.clear(129));
    }

    #[test]
    fn count_ones_and_clear_all() {
        let mut bv = BitVec::new(200);
        for i in (0..200).step_by(3) {
            bv.set(i);
        }
        assert_eq!(bv.count_ones(), 67);
        bv.clear_all();
        assert_eq!(bv.count_ones(), 0);
    }

    #[test]
    fn set_all_respects_length() {
        let mut bv = BitVec::new(70);
        bv.set_all();
        assert_eq!(bv.count_ones(), 70);
        assert!(bv.get(69));
    }

    #[test]
    fn ones_are_sorted_and_complete() {
        let mut bv = BitVec::new(300);
        let idx = [0u32, 1, 63, 64, 65, 127, 128, 200, 299];
        for &i in &idx {
            bv.set(i);
        }
        assert_eq!(bv.ones(), idx.to_vec());
    }

    #[test]
    fn run_counting_matches_naive() {
        fn naive_runs(bits: &[bool]) -> u32 {
            let mut runs = 0;
            let mut in_run = false;
            for &b in bits {
                if b && !in_run {
                    runs += 1;
                }
                in_run = b;
            }
            runs
        }
        // Patterns engineered around word boundaries.
        let patterns: Vec<Vec<u32>> = vec![
            vec![],
            vec![0],
            vec![63, 64], // run crossing a word boundary
            vec![0, 1, 2, 10, 11, 64, 65, 66],
            vec![62, 63, 64, 65, 128],
            (0..256).collect(),
            (0..256).step_by(2).collect(),
        ];
        for pat in patterns {
            let mut bv = BitVec::new(256);
            let mut bools = vec![false; 256];
            for &i in &pat {
                bv.set(i);
                bools[i as usize] = true;
            }
            assert_eq!(bv.count_runs(), naive_runs(&bools), "pattern {pat:?}");
        }
    }

    #[test]
    fn union_accumulates() {
        let mut a = BitVec::new(100);
        let mut b = BitVec::new(100);
        a.set(1);
        b.set(2);
        b.set(99);
        a.union_with(&b);
        assert_eq!(a.ones(), vec![1, 2, 99]);
    }

    #[test]
    fn empty_vec() {
        let bv = BitVec::new(0);
        assert!(bv.is_empty());
        assert_eq!(bv.count_ones(), 0);
        assert_eq!(bv.count_runs(), 0);
        assert!(bv.ones().is_empty());
    }
}
