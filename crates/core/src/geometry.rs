//! State geometry: how game-state *cells* map onto *atomic objects*.
//!
//! The paper models game state as a table of game objects: rows are game
//! entities and columns are their attributes ("cells"). Updates arrive at
//! cell granularity, but all checkpointing decisions (dirty tracking,
//! copies, disk writes) happen at the granularity of an *atomic object*,
//! which the paper sizes to one disk sector (512 bytes) after packing cells
//! into logical pages (§4.1).
//!
//! [`StateGeometry`] captures this mapping. For the paper's synthetic
//! experiments the table is 1,000,000 rows × 10 columns of 4-byte cells
//! packed 128-to-an-object (40.96 MB, 78,125 objects); for the Knights and
//! Archers trace it is 400,128 rows × 13 columns (≈20.81 MB, 40,638
//! objects).

use crate::error::CoreError;
use serde::{Deserialize, Serialize};

/// Identifier of an atomic object: its index in disk-offset order.
///
/// Atomic objects have "a well-defined location in the disk-resident
/// checkpoint" (§3.2); the id doubles as that location divided by the
/// object size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ObjectId(pub u32);

impl ObjectId {
    /// The object's index as a `usize`, for slice indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Address of a single cell (one attribute of one game object).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CellAddr {
    /// Row (game entity) index.
    pub row: u32,
    /// Column (attribute) index.
    pub col: u32,
}

impl CellAddr {
    /// Convenience constructor.
    #[inline]
    pub fn new(row: u32, col: u32) -> Self {
        CellAddr { row, col }
    }
}

/// One logical update: a new value for one cell.
///
/// Update traces — synthetic or recorded from the game server — are streams
/// of `CellUpdate`s grouped by tick. The value is carried so that recovery
/// replay is deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CellUpdate {
    /// The cell being written.
    pub addr: CellAddr,
    /// The new 4-byte cell value.
    pub value: u32,
}

impl CellUpdate {
    /// Convenience constructor.
    #[inline]
    pub fn new(row: u32, col: u32, value: u32) -> Self {
        CellUpdate {
            addr: CellAddr::new(row, col),
            value,
        }
    }
}

/// Shape of the game-state table and its packing into atomic objects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StateGeometry {
    /// Number of rows (game entities).
    pub rows: u32,
    /// Number of columns (attributes per entity).
    pub cols: u32,
    /// Size of one cell in bytes. The paper's experiments imply 4 bytes
    /// (see DESIGN.md, "calibrated geometry").
    pub cell_size: u32,
    /// Size of one atomic object in bytes; the paper uses one disk sector
    /// (512 bytes).
    pub object_size: u32,
}

impl StateGeometry {
    /// Geometry of the paper's synthetic (Zipfian) experiments:
    /// 1M rows × 10 columns of 4-byte cells, 512-byte atomic objects.
    pub fn paper_synthetic() -> Self {
        StateGeometry {
            rows: 1_000_000,
            cols: 10,
            cell_size: 4,
            object_size: 512,
        }
    }

    /// Geometry of the Knights and Archers trace: 400,128 units × 13
    /// attributes (Table 5).
    pub fn paper_game() -> Self {
        StateGeometry {
            rows: 400_128,
            cols: 13,
            cell_size: 4,
            object_size: 512,
        }
    }

    /// A small geometry convenient for tests: `rows × cols` 4-byte cells
    /// packed into 64-byte objects.
    pub fn small(rows: u32, cols: u32) -> Self {
        StateGeometry {
            rows,
            cols,
            cell_size: 4,
            object_size: 64,
        }
    }

    /// The workspace's standard small test geometry: 512 × 8 cells in
    /// 64-byte objects (16 KB of state, 256 atomic objects). Shared by
    /// engine and integration tests so trace configs stay comparable.
    pub fn test_small() -> Self {
        StateGeometry::small(512, 8)
    }

    /// The standard hot-contention test geometry: 64 × 8 cells in 64-byte
    /// objects (32 objects) — tiny enough that skewed workloads touch
    /// everything every tick.
    pub fn test_hot() -> Self {
        StateGeometry::small(64, 8)
    }

    /// The standard file-level test geometry: 16 × 4 cells in 64-byte
    /// objects (4 objects) — small enough to eyeball byte offsets.
    pub fn test_micro() -> Self {
        StateGeometry::small(16, 4)
    }

    /// Validate internal consistency.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.rows == 0 || self.cols == 0 {
            return Err(CoreError::InvalidGeometry(
                "rows and cols must be non-zero".into(),
            ));
        }
        if self.cell_size == 0 || self.object_size == 0 {
            return Err(CoreError::InvalidGeometry(
                "cell_size and object_size must be non-zero".into(),
            ));
        }
        if !self.object_size.is_multiple_of(self.cell_size) {
            return Err(CoreError::InvalidGeometry(format!(
                "object_size ({}) must be a multiple of cell_size ({})",
                self.object_size, self.cell_size
            )));
        }
        let cells = self.rows as u64 * self.cols as u64;
        let bytes = cells * self.cell_size as u64;
        if bytes > u64::from(u32::MAX) * u64::from(self.object_size) {
            return Err(CoreError::InvalidGeometry(
                "state too large: object ids must fit in u32".into(),
            ));
        }
        Ok(())
    }

    /// Total number of cells in the table.
    #[inline]
    pub fn n_cells(&self) -> u64 {
        self.rows as u64 * self.cols as u64
    }

    /// Total size of the state in bytes.
    #[inline]
    pub fn state_bytes(&self) -> u64 {
        self.n_cells() * self.cell_size as u64
    }

    /// Number of cells packed into one atomic object.
    #[inline]
    pub fn cells_per_object(&self) -> u32 {
        self.object_size / self.cell_size
    }

    /// Number of atomic objects (the paper's *n*). The final object may be
    /// partially filled.
    #[inline]
    pub fn n_objects(&self) -> u32 {
        let per = self.cells_per_object() as u64;
        self.n_cells().div_ceil(per) as u32
    }

    /// Linear index of a cell in row-major order.
    #[inline]
    pub fn cell_index(&self, addr: CellAddr) -> Result<u64, CoreError> {
        if addr.row >= self.rows || addr.col >= self.cols {
            return Err(CoreError::CellOutOfBounds {
                row: addr.row,
                col: addr.col,
            });
        }
        Ok(addr.row as u64 * self.cols as u64 + addr.col as u64)
    }

    /// Atomic object containing a cell.
    #[inline]
    pub fn object_of(&self, addr: CellAddr) -> Result<ObjectId, CoreError> {
        let idx = self.cell_index(addr)?;
        Ok(ObjectId((idx / self.cells_per_object() as u64) as u32))
    }

    /// Atomic object containing a cell, without bounds checking.
    ///
    /// The caller must guarantee the address is in range; the simulator's
    /// inner loop uses this after the trace generator has been validated.
    #[inline]
    pub fn object_of_unchecked(&self, addr: CellAddr) -> ObjectId {
        let idx = addr.row as u64 * self.cols as u64 + addr.col as u64;
        ObjectId((idx / self.cells_per_object() as u64) as u32)
    }

    /// Byte offset of an object in the checkpoint file (its "well-defined
    /// location").
    #[inline]
    pub fn object_offset(&self, obj: ObjectId) -> u64 {
        obj.0 as u64 * self.object_size as u64
    }

    /// Byte range `[start, end)` a cell occupies within the whole state.
    #[inline]
    pub fn cell_byte_range(&self, addr: CellAddr) -> Result<(u64, u64), CoreError> {
        let idx = self.cell_index(addr)?;
        let start = idx * self.cell_size as u64;
        Ok((start, start + self.cell_size as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_synthetic_matches_calibration() {
        let g = StateGeometry::paper_synthetic();
        g.validate().unwrap();
        assert_eq!(g.n_cells(), 10_000_000);
        assert_eq!(g.state_bytes(), 40_000_000); // 40 MB
        assert_eq!(g.cells_per_object(), 128);
        assert_eq!(g.n_objects(), 78_125);
    }

    #[test]
    fn paper_game_matches_table5() {
        let g = StateGeometry::paper_game();
        g.validate().unwrap();
        assert_eq!(g.n_cells(), 400_128 * 13);
        assert_eq!(g.n_objects(), 40_638);
        // ≈ 20.81 MB of state.
        assert_eq!(g.state_bytes(), 20_806_656);
    }

    #[test]
    fn cell_to_object_mapping_is_row_major() {
        let g = StateGeometry::small(10, 4); // 16 cells per object
        assert_eq!(g.cells_per_object(), 16);
        // Cells 0..16 -> object 0; cell (4,0) has index 16 -> object 1.
        assert_eq!(g.object_of(CellAddr::new(0, 0)).unwrap(), ObjectId(0));
        assert_eq!(g.object_of(CellAddr::new(3, 3)).unwrap(), ObjectId(0));
        assert_eq!(g.object_of(CellAddr::new(4, 0)).unwrap(), ObjectId(1));
        assert_eq!(g.object_of(CellAddr::new(9, 3)).unwrap(), ObjectId(2));
        assert_eq!(g.n_objects(), 3); // 40 cells / 16 = 2.5 -> 3
    }

    #[test]
    fn out_of_bounds_is_rejected() {
        let g = StateGeometry::small(10, 4);
        assert!(matches!(
            g.object_of(CellAddr::new(10, 0)),
            Err(CoreError::CellOutOfBounds { row: 10, col: 0 })
        ));
        assert!(matches!(
            g.object_of(CellAddr::new(0, 4)),
            Err(CoreError::CellOutOfBounds { .. })
        ));
    }

    #[test]
    fn validation_rejects_bad_shapes() {
        let mut g = StateGeometry::small(10, 4);
        g.object_size = 62; // not a multiple of 4
        assert!(g.validate().is_err());
        let mut g = StateGeometry::small(10, 4);
        g.rows = 0;
        assert!(g.validate().is_err());
        let mut g = StateGeometry::small(10, 4);
        g.cell_size = 0;
        assert!(g.validate().is_err());
    }

    #[test]
    fn object_offsets_are_contiguous() {
        let g = StateGeometry::paper_synthetic();
        assert_eq!(g.object_offset(ObjectId(0)), 0);
        assert_eq!(g.object_offset(ObjectId(1)), 512);
        assert_eq!(
            g.object_offset(ObjectId(g.n_objects() - 1)),
            (g.n_objects() as u64 - 1) * 512
        );
    }

    #[test]
    fn cell_byte_ranges_do_not_overlap() {
        let g = StateGeometry::small(4, 4);
        let (s0, e0) = g.cell_byte_range(CellAddr::new(0, 0)).unwrap();
        let (s1, e1) = g.cell_byte_range(CellAddr::new(0, 1)).unwrap();
        assert_eq!(e0, s1);
        assert_eq!(e1 - s1, 4);
        assert_eq!(s0, 0);
    }

    #[test]
    fn unchecked_matches_checked_in_bounds() {
        let g = StateGeometry::small(7, 5);
        for row in 0..7 {
            for col in 0..5 {
                let a = CellAddr::new(row, col);
                assert_eq!(g.object_of(a).unwrap(), g.object_of_unchecked(a));
            }
        }
    }
}
