//! Checkpoint plans: what a freshly started checkpoint must do.
//!
//! [`crate::Bookkeeper::begin_checkpoint`] returns a [`CheckpointPlan`]
//! describing (a) the synchronous in-memory copy the framework performs at
//! the tick boundary (eager algorithms only) and (b) the asynchronous flush
//! job the writer must complete. The engines translate the plan into cost
//! (simulator) or real work (storage engine).

use crate::algorithms::DiskOrg;
use serde::{Deserialize, Serialize};

/// The synchronous in-memory copy performed by `Copy-To-Memory`.
///
/// Its cost in the paper's model is `runs * Omem + objects * Sobj / Bmem`:
/// one memory-latency startup charge per contiguous run of objects plus the
/// bandwidth cost of the bytes themselves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SyncCopy {
    /// Number of atomic objects copied.
    pub objects: u32,
    /// Number of maximal contiguous runs those objects form.
    pub runs: u32,
}

/// How the engine should interpret the asynchronous writer's progress when
/// deciding whether a given object has already been flushed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CursorKind {
    /// The writer sweeps the checkpoint file in object-index order (double
    /// backups, and log flushes of *all* objects): an object is flushed iff
    /// its index is below the frontier.
    ByIndex,
    /// The writer walks a sorted list of dirty objects (log flushes of
    /// dirty objects): an object is flushed iff its list position is below
    /// the frontier.
    ByPosition,
}

/// The asynchronous flush job of one checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FlushJob {
    /// Nothing to write (an eager checkpoint with an empty dirty set).
    None,
    /// Write objects that were synchronously copied at the tick boundary
    /// (`Write-Copies-To-Stable-Storage`). Reads only the private snapshot
    /// buffer, so no coordination with updates is needed.
    Snapshot {
        /// Number of objects to write.
        objects: u32,
        /// Disk organization written to.
        org: DiskOrg,
    },
    /// Sweep live state asynchronously (`Write-Objects-To-Stable-Storage`)
    /// while updates perform copy-on-update for not-yet-flushed objects.
    Sweep {
        /// Number of objects to write (`n` for all-object sweeps, the dirty
        /// count for dirty sweeps).
        objects: u32,
        /// Disk organization written to.
        org: DiskOrg,
        /// How writer progress maps to per-object flushed status.
        cursor: CursorKind,
    },
}

impl FlushJob {
    /// Number of objects this job writes.
    pub fn objects(&self) -> u32 {
        match *self {
            FlushJob::None => 0,
            FlushJob::Snapshot { objects, .. } | FlushJob::Sweep { objects, .. } => objects,
        }
    }

    /// Disk organization used, if any data is written.
    pub fn org(&self) -> Option<DiskOrg> {
        match *self {
            FlushJob::None => None,
            FlushJob::Snapshot { org, .. } | FlushJob::Sweep { org, .. } => Some(org),
        }
    }

    /// True if updates must coordinate with this job (copy-on-update).
    pub fn is_sweep(&self) -> bool {
        matches!(self, FlushJob::Sweep { .. })
    }
}

/// Everything the engine needs to know about a newly started checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CheckpointPlan {
    /// Sequence number of this checkpoint (0-based).
    pub seq: u64,
    /// True if this is a periodic full flush (partial-redo algorithms run
    /// one Dribble-style full checkpoint every `full_flush_period`
    /// checkpoints to bound recovery log reads).
    pub full_flush: bool,
    /// The synchronous tick-boundary copy, if the algorithm performs one.
    pub sync_copy: Option<SyncCopy>,
    /// The asynchronous flush job.
    pub flush: FlushJob,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flush_job_accessors() {
        assert_eq!(FlushJob::None.objects(), 0);
        assert_eq!(FlushJob::None.org(), None);
        assert!(!FlushJob::None.is_sweep());

        let snap = FlushJob::Snapshot {
            objects: 10,
            org: DiskOrg::Log,
        };
        assert_eq!(snap.objects(), 10);
        assert_eq!(snap.org(), Some(DiskOrg::Log));
        assert!(!snap.is_sweep());

        let sweep = FlushJob::Sweep {
            objects: 5,
            org: DiskOrg::DoubleBackup,
            cursor: CursorKind::ByIndex,
        };
        assert_eq!(sweep.objects(), 5);
        assert!(sweep.is_sweep());
    }
}
