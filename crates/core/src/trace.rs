//! The streaming trace abstraction consumed by the tick driver.
//!
//! Both engines are driven by an *update trace*: for each tick, the set of
//! cells written (§4.4 of the paper). Traces can be enormous (256,000
//! updates × 1,000 ticks is a quarter of a billion updates), so the
//! engines consume them through this streaming interface — one tick's
//! batch at a time into a reused buffer — rather than materializing whole
//! traces.
//!
//! The trait lives in `mmoc-core` (it only speaks core types) so that the
//! unified [`crate::driver::TickDriver`] can consume it; `mmoc-workload`
//! re-exports it next to its generators.

use crate::geometry::{CellUpdate, StateGeometry};

/// A source of per-tick update batches.
pub trait TraceSource {
    /// Geometry of the state table this trace targets.
    fn geometry(&self) -> StateGeometry;

    /// Clear `buf` and fill it with the next tick's updates.
    ///
    /// Returns `false` (leaving `buf` empty) when the trace is exhausted.
    /// A tick with zero updates returns `true` with an empty buffer.
    fn next_tick(&mut self, buf: &mut Vec<CellUpdate>) -> bool;

    /// Total number of ticks, if known in advance.
    fn total_ticks(&self) -> Option<u64> {
        None
    }
}
