//! The in-memory game-state table.
//!
//! Game state is "a table containing game objects" (§2.1) kept entirely in
//! main memory. [`StateTable`] stores it as one contiguous byte buffer laid
//! out exactly as the disk-resident checkpoint, so that atomic objects can
//! be copied out with plain `memcpy` and written to their "well-defined
//! location" (§3.2) without any reshuffling.

use crate::error::CoreError;
use crate::geometry::{CellAddr, CellUpdate, ObjectId, StateGeometry};

/// A main-memory game-state table backed by a single byte buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateTable {
    geometry: StateGeometry,
    /// `n_objects * object_size` bytes; the cell area is a prefix, the tail
    /// of the last object is zero padding.
    bytes: Vec<u8>,
}

impl StateTable {
    /// Create a zero-initialized table for the given geometry.
    pub fn new(geometry: StateGeometry) -> Result<Self, CoreError> {
        geometry.validate()?;
        let len = geometry.n_objects() as u64 * geometry.object_size as u64;
        Ok(StateTable {
            geometry,
            bytes: vec![0u8; len as usize],
        })
    }

    /// Adopt an owned checkpoint image as the table's backing buffer —
    /// the recovery fast path. Both restore tiers produce a full image
    /// in table layout (a backup read, a log reconstruct, or a replica
    /// mirror fetch); adopting it avoids `new` + `restore_all`'s
    /// zero-fill-then-overwrite double pass over the state.
    pub fn from_image(geometry: StateGeometry, bytes: Vec<u8>) -> Result<Self, CoreError> {
        geometry.validate()?;
        let len = geometry.n_objects() as u64 * geometry.object_size as u64;
        if bytes.len() as u64 != len {
            return Err(CoreError::CheckpointMismatch(format!(
                "image is {} bytes, expected {len}",
                bytes.len()
            )));
        }
        Ok(StateTable { geometry, bytes })
    }

    /// The table's geometry.
    #[inline]
    pub fn geometry(&self) -> &StateGeometry {
        &self.geometry
    }

    /// The full backing buffer, padded to a whole number of objects.
    #[inline]
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Apply a single cell update.
    pub fn apply(&mut self, update: CellUpdate) -> Result<ObjectId, CoreError> {
        let (start, _end) = self.geometry.cell_byte_range(update.addr)?;
        let obj = self.geometry.object_of_unchecked(update.addr);
        self.write_cell_bytes(start as usize, update.value);
        Ok(obj)
    }

    /// Apply a cell update without bounds checking.
    ///
    /// Used by the real engine's inner loop after trace validation; callers
    /// must guarantee the address is in range.
    #[inline]
    pub fn apply_unchecked(&mut self, update: CellUpdate) -> ObjectId {
        let idx = update.addr.row as u64 * self.geometry.cols as u64 + update.addr.col as u64;
        let start = (idx * self.geometry.cell_size as u64) as usize;
        self.write_cell_bytes(start, update.value);
        ObjectId((idx / self.geometry.cells_per_object() as u64) as u32)
    }

    #[inline]
    fn write_cell_bytes(&mut self, start: usize, value: u32) {
        let cell = self.geometry.cell_size as usize;
        let le = value.to_le_bytes();
        if cell >= 4 {
            self.bytes[start..start + 4].copy_from_slice(&le);
            // Cells wider than 4 bytes repeat the value pattern so every
            // byte of the cell is deterministic.
            for i in 4..cell {
                self.bytes[start + i] = le[i % 4];
            }
        } else {
            self.bytes[start..start + cell].copy_from_slice(&le[..cell]);
        }
    }

    /// Read back a cell value (the first up-to-4 bytes of the cell).
    pub fn read(&self, addr: CellAddr) -> Result<u32, CoreError> {
        let (start, _) = self.geometry.cell_byte_range(addr)?;
        let start = start as usize;
        let cell = self.geometry.cell_size as usize;
        let mut le = [0u8; 4];
        let n = cell.min(4);
        le[..n].copy_from_slice(&self.bytes[start..start + n]);
        Ok(u32::from_le_bytes(le))
    }

    /// Borrow the bytes of one atomic object.
    pub fn object_bytes(&self, obj: ObjectId) -> Result<&[u8], CoreError> {
        if obj.0 >= self.geometry.n_objects() {
            return Err(CoreError::ObjectOutOfBounds(obj.0));
        }
        let start = self.geometry.object_offset(obj) as usize;
        Ok(&self.bytes[start..start + self.geometry.object_size as usize])
    }

    /// Copy the bytes of one atomic object into `buf` (which must be
    /// `object_size` long). This is the real engine's copy-on-update path.
    pub fn copy_object_into(&self, obj: ObjectId, buf: &mut [u8]) -> Result<(), CoreError> {
        let src = self.object_bytes(obj)?;
        buf.copy_from_slice(src);
        Ok(())
    }

    /// Overwrite one atomic object from a checkpoint image (recovery path).
    pub fn restore_object(&mut self, obj: ObjectId, data: &[u8]) -> Result<(), CoreError> {
        if obj.0 >= self.geometry.n_objects() {
            return Err(CoreError::ObjectOutOfBounds(obj.0));
        }
        if data.len() != self.geometry.object_size as usize {
            return Err(CoreError::CheckpointMismatch(format!(
                "object image is {} bytes, expected {}",
                data.len(),
                self.geometry.object_size
            )));
        }
        let start = self.geometry.object_offset(obj) as usize;
        self.bytes[start..start + data.len()].copy_from_slice(data);
        Ok(())
    }

    /// Overwrite the whole state from a full checkpoint image.
    pub fn restore_all(&mut self, image: &[u8]) -> Result<(), CoreError> {
        if image.len() != self.bytes.len() {
            return Err(CoreError::CheckpointMismatch(format!(
                "image is {} bytes, expected {}",
                image.len(),
                self.bytes.len()
            )));
        }
        self.bytes.copy_from_slice(image);
        Ok(())
    }

    /// A stable 64-bit fingerprint of the entire state (FNV-1a), used by
    /// tests and recovery verification to compare states cheaply.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        // Hash 8 bytes at a time; the buffer length is not necessarily a
        // multiple of 8, so fold the tail byte-wise.
        let mut chunks = self.bytes.chunks_exact(8);
        for c in &mut chunks {
            let v = u64::from_le_bytes(c.try_into().unwrap());
            h ^= v;
            h = h.wrapping_mul(PRIME);
        }
        for &b in chunks.remainder() {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> StateTable {
        StateTable::new(StateGeometry::small(8, 4)).unwrap()
    }

    #[test]
    fn new_table_is_zeroed() {
        let t = small();
        assert!(t.as_bytes().iter().all(|&b| b == 0));
        assert_eq!(t.read(CellAddr::new(3, 2)).unwrap(), 0);
    }

    #[test]
    fn apply_then_read_roundtrips() {
        let mut t = small();
        let obj = t.apply(CellUpdate::new(2, 1, 0xdead_beef)).unwrap();
        assert_eq!(t.read(CellAddr::new(2, 1)).unwrap(), 0xdead_beef);
        assert_eq!(obj, t.geometry().object_of(CellAddr::new(2, 1)).unwrap());
        // Neighbouring cells untouched.
        assert_eq!(t.read(CellAddr::new(2, 0)).unwrap(), 0);
        assert_eq!(t.read(CellAddr::new(2, 2)).unwrap(), 0);
    }

    #[test]
    fn apply_unchecked_matches_apply() {
        let mut a = small();
        let mut b = small();
        for i in 0..32u32 {
            let u = CellUpdate::new(i % 8, i % 4, i.wrapping_mul(0x9e37_79b9));
            let oa = a.apply(u).unwrap();
            let ob = b.apply_unchecked(u);
            assert_eq!(oa, ob);
        }
        assert_eq!(a.as_bytes(), b.as_bytes());
    }

    #[test]
    fn out_of_bounds_update_is_rejected() {
        let mut t = small();
        assert!(t.apply(CellUpdate::new(8, 0, 1)).is_err());
        assert!(t.apply(CellUpdate::new(0, 4, 1)).is_err());
    }

    #[test]
    fn object_bytes_reflect_updates() {
        let mut t = small();
        // 64-byte objects, 16 cells per object: cell (0,0) is object 0.
        t.apply(CellUpdate::new(0, 0, 0x0102_0304)).unwrap();
        let obj = t.object_bytes(ObjectId(0)).unwrap();
        assert_eq!(&obj[0..4], &0x0102_0304u32.to_le_bytes());
        assert!(t.object_bytes(ObjectId(99)).is_err());
    }

    #[test]
    fn restore_object_roundtrips() {
        let mut t = small();
        t.apply(CellUpdate::new(0, 0, 42)).unwrap();
        let saved: Vec<u8> = t.object_bytes(ObjectId(0)).unwrap().to_vec();
        t.apply(CellUpdate::new(0, 0, 43)).unwrap();
        assert_eq!(t.read(CellAddr::new(0, 0)).unwrap(), 43);
        t.restore_object(ObjectId(0), &saved).unwrap();
        assert_eq!(t.read(CellAddr::new(0, 0)).unwrap(), 42);
    }

    #[test]
    fn restore_rejects_wrong_sizes() {
        let mut t = small();
        assert!(t.restore_object(ObjectId(0), &[0u8; 10]).is_err());
        assert!(t.restore_all(&[0u8; 10]).is_err());
    }

    #[test]
    fn fingerprint_changes_with_state() {
        let mut t = small();
        let f0 = t.fingerprint();
        t.apply(CellUpdate::new(1, 1, 7)).unwrap();
        let f1 = t.fingerprint();
        assert_ne!(f0, f1);
        t.apply(CellUpdate::new(1, 1, 0)).unwrap();
        assert_eq!(t.fingerprint(), f0);
    }

    #[test]
    fn wide_cells_are_deterministic() {
        let g = StateGeometry {
            rows: 4,
            cols: 2,
            cell_size: 8,
            object_size: 64,
        };
        let mut t = StateTable::new(g).unwrap();
        t.apply(CellUpdate::new(0, 0, 0xaabb_ccdd)).unwrap();
        assert_eq!(t.read(CellAddr::new(0, 0)).unwrap(), 0xaabb_ccdd);
        // The second half of the 8-byte cell repeats the pattern.
        let obj = t.object_bytes(ObjectId(0)).unwrap();
        assert_eq!(&obj[4..8], &0xaabb_ccddu32.to_le_bytes());
    }
}
