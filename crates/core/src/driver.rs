//! The unified tick driver: one orchestration loop for all six algorithms.
//!
//! The paper's *Checkpointing Algorithmic Framework* (§3.3) is a single
//! loop — at every tick apply updates through `Handle-Update`, and at the
//! tick boundary start a new checkpoint if the previous one finished.
//! Historically this repository implemented that loop once per engine *per
//! algorithm* (the cost-model simulator plus four hand-rolled real
//! engines); [`TickDriver`] extracts it so it exists exactly once.
//!
//! The split of responsibilities mirrors the paper's framework table:
//!
//! * The **driver** owns the [`Bookkeeper`] — the algorithm-generic state
//!   machine deciding *what* must be copied, flushed and tracked — and the
//!   per-tick/per-checkpoint metric series.
//! * A [`CheckpointBackend`] performs the work and attaches its notion of
//!   time: the simulator prices operations in virtual seconds
//!   (`mmoc-sim`), the real engine runs memcpys, mutator/writer threads
//!   and `fsync`s and measures wall-clock seconds (`mmoc-storage`).
//!
//! Adding a new algorithm means extending the [`Bookkeeper`]'s plan; both
//! engines pick it up for free. Adding a new engine (an async-I/O backend,
//! a replicated store) means implementing this one trait.
//!
//! ## Loop shape
//!
//! ```text
//! for each tick t in the trace:
//!     backend.begin_tick(t)                    // query phase / time base
//!     cursor = backend.cursor()                // writer progress at tick start
//!     for each update u:
//!         ops = bookkeeper.on_update(obj(u), cursor)   // Handle-Update
//!         backend.apply_update(u, obj(u), ops)          // do + price it
//!     backend.end_updates(...)                 // stretch the tick
//!     while checkpoints are in flight and backend.poll_completion():
//!         record the oldest; bookkeeper.finish_checkpoint()
//!     if fewer than pipeline_depth in flight (and overlap is sound):
//!         plan = bookkeeper.begin_checkpoint() // Copy-To-Memory decision
//!         backend.start_checkpoint(plan)       // sync copy + async flush
//!     backend.end_tick(t)                      // pacing / sleep phase
//! drain the remaining in-flight checkpoints, oldest first
//! ```
//!
//! At the default `pipeline_depth = 1` this is exactly the paper's loop:
//! at most one checkpoint in flight, a new one started only when the
//! previous completed. Depths above one let the driver run ahead of a
//! slow writer for checkpoints the [`Bookkeeper`] certifies as safe to
//! overlap (log-organized, no sweep); everything else still serializes.

use crate::algorithms::bookkeeper::{Bookkeeper, FlushCursor, UpdateOps};
use crate::algorithms::AlgorithmSpec;
use crate::geometry::{CellUpdate, ObjectId, StateGeometry};
use crate::metrics::{CheckpointRecord, RunMetrics, TickMetrics};
use crate::plan::CheckpointPlan;
use crate::trace::TraceSource;

/// Completion report for one asynchronous flush, produced by the backend.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlushCompletion {
    /// Duration of the asynchronous flush, in (virtual or wall) seconds.
    pub duration_s: f64,
    /// Atomic objects actually written to stable storage.
    pub objects_written: u32,
    /// Bytes actually written to stable storage.
    pub bytes_written: u64,
}

/// Aggregated `Handle-Update` work of one tick, as charged by the
/// bookkeeper.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TickOps {
    /// Dirty/flushed bit tests and sets.
    pub bit_ops: u64,
    /// Writer-lock acquisitions.
    pub locks: u64,
    /// Copy-on-update object copies.
    pub copies: u64,
}

impl TickOps {
    /// Accumulate one update's ops.
    #[inline]
    pub fn add(&mut self, ops: UpdateOps) {
        self.bit_ops += u64::from(ops.bit_ops);
        self.locks += u64::from(ops.lock);
        self.copies += u64::from(ops.copy);
    }
}

/// An engine executing (and timing) the work the driver sequences.
///
/// Implementations: the cost-model simulator (`mmoc-sim`) and the real
/// disk-backed engine (`mmoc-storage`). All methods are called from the
/// driver's single mutator thread; a backend may own worker threads
/// internally (the real engine's asynchronous writer).
pub trait CheckpointBackend {
    /// Error type surfaced by backend operations (`io::Error` for the real
    /// engine, [`std::convert::Infallible`] for the simulator).
    type Error;

    /// A tick is starting: run the query phase (real engine) or establish
    /// the tick's time base (simulator). `tick` is 1-based.
    fn begin_tick(&mut self, tick: u64) -> Result<(), Self::Error>;

    /// The asynchronous writer's progress at the start of this tick, in
    /// the in-flight sweep's slot units. Updates within the tick observe
    /// this frontier (the conservative discretization: an object the
    /// writer reaches mid-tick may be copied once more than strictly
    /// needed, never less).
    fn cursor(&mut self) -> FlushCursor;

    /// Apply one update to live state, performing (real engine) or
    /// pricing (simulator) the copy-on-update work the bookkeeper charged
    /// in `ops`.
    fn apply_update(
        &mut self,
        update: CellUpdate,
        obj: ObjectId,
        ops: UpdateOps,
    ) -> Result<(), Self::Error>;

    /// The tick's updates are all applied. Returns the update-phase
    /// overhead in seconds (the amount this tick was stretched, excluding
    /// any synchronous checkpoint pause). The simulator advances its
    /// virtual clock here.
    fn end_updates(&mut self, bk: &Bookkeeper, ops: &TickOps) -> Result<f64, Self::Error>;

    /// Did the in-flight asynchronous flush complete? Called once per tick
    /// while a checkpoint is in flight; must not block (the real engine
    /// polls its writer's completion channel).
    fn poll_completion(&mut self, bk: &Bookkeeper) -> Result<Option<FlushCompletion>, Self::Error>;

    /// A checkpoint is starting at this tick boundary: perform the plan's
    /// synchronous copy (if any) and launch the asynchronous flush.
    /// Returns the synchronous pause in seconds. The bookkeeper is already
    /// in-flight; `bk.flush_set()` / `bk.sweep_slots()` describe the write
    /// set.
    fn start_checkpoint(
        &mut self,
        bk: &Bookkeeper,
        plan: &CheckpointPlan,
        tick: u64,
    ) -> Result<f64, Self::Error>;

    /// The tick is over (metrics recorded): sleep out the tick period
    /// (paced real engine) or do nothing.
    fn end_tick(&mut self, tick: u64) -> Result<(), Self::Error>;

    /// The trace is exhausted with a checkpoint still in flight: wait for
    /// it to complete (blocking) and report it, or `None` if the backend
    /// abandoned it.
    fn drain(&mut self, bk: &Bookkeeper) -> Result<Option<FlushCompletion>, Self::Error>;
}

/// Result of one driver run, engine-agnostic. Engines wrap this into
/// their report types (`SimReport`, `RealReport`).
#[derive(Debug, Clone)]
pub struct DriverRun {
    /// Ticks executed (1-based count).
    pub ticks: u64,
    /// Updates applied.
    pub updates: u64,
    /// Per-tick and per-checkpoint series.
    pub metrics: RunMetrics,
}

/// A checkpoint handed to the backend and not yet completed.
#[derive(Debug, Clone, Copy)]
struct Pending {
    seq: u64,
    start_tick: u64,
    sync_pause_s: f64,
    full_flush: bool,
}

/// The unified orchestration loop (see module docs).
#[derive(Debug, Clone, Copy)]
pub struct TickDriver {
    spec: AlgorithmSpec,
    batching: bool,
    pipeline_depth: u32,
}

impl TickDriver {
    /// Create a driver for one algorithm.
    pub fn new(spec: AlgorithmSpec) -> Self {
        TickDriver {
            spec,
            batching: false,
            pipeline_depth: 1,
        }
    }

    /// Enable (or disable) driver-level update batching: repeated updates
    /// to the same object within one tick hit [`Bookkeeper::on_update`]
    /// only on the first touch.
    ///
    /// Coalescing is safe because `on_update` is idempotent within a tick
    /// — the writer frontier is sampled once at tick start and dirty bits
    /// are only cleared at tick boundaries — so the write set, the copies
    /// and the recovered state are bit-identical. What changes is the
    /// *accounting*: the skipped calls would each have charged a dirty-bit
    /// operation, so batched runs report fewer `bit_ops` (and thus lower
    /// bookkeeping overhead at high update rates). Off by default to keep
    /// historical metrics reproducible.
    pub fn with_batching(mut self, on: bool) -> Self {
        self.batching = on;
        self
    }

    /// The algorithm specification being driven.
    pub fn spec(&self) -> &AlgorithmSpec {
        &self.spec
    }

    /// Whether driver-level update batching is enabled.
    pub fn batching(&self) -> bool {
        self.batching
    }

    /// Set the checkpoint pipeline depth: the maximum number of
    /// checkpoints in flight per shard. The default of 1 reproduces the
    /// historical one-at-a-time loop exactly. Depths above 1 only take
    /// effect where overlap is sound ([`Bookkeeper::can_pipeline_next`]):
    /// log-organized no-sweep checkpoints; sweeps and double-backup
    /// checkpoints remain serialized regardless of the setting. Panics on
    /// a depth of 0.
    pub fn with_pipeline_depth(mut self, depth: u32) -> Self {
        assert!(depth >= 1, "pipeline depth must be at least 1");
        self.pipeline_depth = depth;
        self
    }

    /// The configured checkpoint pipeline depth.
    pub fn pipeline_depth(&self) -> u32 {
        self.pipeline_depth
    }

    /// Start a resumable run over a state of the given geometry. The
    /// sharded driver uses this to interleave N per-shard loops over one
    /// global trace; [`TickDriver::run`] is the single-shard convenience
    /// wrapper. Panics if the geometry is invalid.
    pub fn begin(&self, geometry: StateGeometry) -> DriverStep {
        geometry.validate().expect("driver geometry must be valid");
        DriverStep {
            geometry,
            bk: Bookkeeper::new(self.spec, geometry.n_objects()),
            metrics: RunMetrics::default(),
            pending: std::collections::VecDeque::new(),
            pipeline_depth: self.pipeline_depth,
            tick: 0,
            total_updates: 0,
            seen_at_tick: if self.batching {
                vec![0u64; geometry.n_objects() as usize]
            } else {
                Vec::new()
            },
        }
    }

    /// Replay `trace` through `backend`, one checkpoint after another.
    ///
    /// Panics if the trace's geometry is invalid (engines validate before
    /// constructing their backends).
    pub fn run<S, B>(&self, trace: &mut S, backend: &mut B) -> Result<DriverRun, B::Error>
    where
        S: TraceSource,
        B: CheckpointBackend,
    {
        let mut step = self.begin(trace.geometry());
        let mut buf = Vec::new();
        while trace.next_tick(&mut buf) {
            step.tick(&buf, backend)?;
        }
        step.finish(backend)
    }
}

/// One algorithm's in-progress run: the [`Bookkeeper`], the metric series
/// and the in-flight checkpoint, advanced one tick at a time.
///
/// Created by [`TickDriver::begin`]; each [`DriverStep::tick`] executes
/// the full framework loop body for one tick (update phase, completion
/// poll, checkpoint start, tick end) against the supplied backend, and
/// [`DriverStep::finish`] drains the final in-flight checkpoint.
#[derive(Debug)]
pub struct DriverStep {
    geometry: StateGeometry,
    bk: Bookkeeper,
    metrics: RunMetrics,
    /// Checkpoints handed to the backend and not yet completed, oldest
    /// first (mirrors the bookkeeper's in-flight queue).
    pending: std::collections::VecDeque<Pending>,
    pipeline_depth: u32,
    tick: u64,
    total_updates: u64,
    /// Batching state: per object, the last (1-based) tick that touched
    /// it. Empty when batching is off.
    seen_at_tick: Vec<u64>,
}

impl DriverStep {
    /// The geometry this run is over.
    pub fn geometry(&self) -> StateGeometry {
        self.geometry
    }

    /// Ticks executed so far.
    pub fn ticks(&self) -> u64 {
        self.tick
    }

    /// Execute one tick of the framework loop over `updates`.
    pub fn tick<B: CheckpointBackend>(
        &mut self,
        updates: &[CellUpdate],
        backend: &mut B,
    ) -> Result<(), B::Error> {
        self.tick += 1;
        let tick = self.tick;
        backend.begin_tick(tick)?;

        // --- Update phase: route every update through Handle-Update.
        let cursor = backend.cursor();
        let mut ops_total = TickOps::default();
        let batching = !self.seen_at_tick.is_empty();
        for &u in updates {
            let obj = self.geometry.object_of_unchecked(u.addr);
            let ops = if batching {
                let seen = &mut self.seen_at_tick[obj.index()];
                if *seen == tick {
                    // Coalesced: the first touch already did the
                    // bookkeeping; the value write still happens below.
                    UpdateOps::default()
                } else {
                    *seen = tick;
                    self.bk.on_update(obj, cursor)
                }
            } else {
                self.bk.on_update(obj, cursor)
            };
            ops_total.add(ops);
            backend.apply_update(u, obj, ops)?;
        }
        self.total_updates += updates.len() as u64;
        let update_overhead_s = backend.end_updates(&self.bk, &ops_total)?;

        // --- Tick boundary: harvest completed checkpoints, oldest first.
        // Completions arrive in begin order (the backend preserves
        // per-shard FIFO), so each poll settles the queue front.
        while !self.pending.is_empty() {
            let Some(done) = backend.poll_completion(&self.bk)? else {
                break;
            };
            let p = self.pending.pop_front().expect("pending checkpoint");
            self.metrics.checkpoints.push(record(p, done, tick));
            self.bk.finish_checkpoint();
        }

        // ...and start the next one if there is pipeline room: always
        // when the writer is idle, and otherwise only up to the
        // configured depth for checkpoints the bookkeeper certifies as
        // safe to overlap (log-organized, no sweep).
        let mut sync_pause_s = 0.0f64;
        let may_start = self.pending.is_empty()
            || (self.pending.len() < self.pipeline_depth as usize && self.bk.can_pipeline_next());
        if may_start {
            let plan = self.bk.begin_checkpoint();
            sync_pause_s = backend.start_checkpoint(&self.bk, &plan, tick)?;
            self.pending.push_back(Pending {
                seq: plan.seq,
                start_tick: tick,
                sync_pause_s,
                full_flush: plan.full_flush,
            });
        }

        self.metrics.ticks.push(TickMetrics {
            tick,
            overhead_s: update_overhead_s + sync_pause_s,
            sync_pause_s,
            bit_ops: ops_total.bit_ops,
            locks: ops_total.locks,
            copies: ops_total.copies,
        });
        backend.end_tick(tick)
    }

    /// The trace is exhausted: drain every in-flight checkpoint (oldest
    /// first) so recovery sees committed images, and assemble the run
    /// result.
    pub fn finish<B: CheckpointBackend>(mut self, backend: &mut B) -> Result<DriverRun, B::Error> {
        while let Some(p) = self.pending.pop_front() {
            if let Some(done) = backend.drain(&self.bk)? {
                self.metrics.checkpoints.push(record(p, done, self.tick));
                self.bk.finish_checkpoint();
            }
        }
        Ok(DriverRun {
            ticks: self.tick,
            updates: self.total_updates,
            metrics: self.metrics,
        })
    }
}

fn record(p: Pending, done: FlushCompletion, end_tick: u64) -> CheckpointRecord {
    CheckpointRecord {
        seq: p.seq,
        start_tick: p.start_tick,
        end_tick,
        duration_s: p.sync_pause_s + done.duration_s,
        sync_pause_s: p.sync_pause_s,
        objects_written: done.objects_written,
        bytes_written: done.bytes_written,
        full_flush: p.full_flush,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::Algorithm;
    use crate::geometry::StateGeometry;
    use std::convert::Infallible;

    /// A trace over `g` yielding `per_tick` updates for `ticks` ticks.
    struct FakeTrace {
        g: StateGeometry,
        ticks: u64,
        per_tick: u32,
        next: u64,
    }

    impl TraceSource for FakeTrace {
        fn geometry(&self) -> StateGeometry {
            self.g
        }

        fn next_tick(&mut self, buf: &mut Vec<CellUpdate>) -> bool {
            buf.clear();
            if self.next >= self.ticks {
                return false;
            }
            for i in 0..self.per_tick {
                let row = ((self.next as u32).wrapping_mul(7) + i * 13) % self.g.rows;
                buf.push(CellUpdate::new(row, i % self.g.cols, i));
            }
            self.next += 1;
            true
        }
    }

    /// A backend that completes every flush after `latency_ticks` ticks
    /// and logs the driver's calls.
    struct MockBackend {
        latency_ticks: u64,
        ticks_since_start: u64,
        in_flight_objects: Option<u32>,
        started: Vec<u64>,
        drained: bool,
    }

    impl MockBackend {
        fn new(latency_ticks: u64) -> Self {
            MockBackend {
                latency_ticks,
                ticks_since_start: 0,
                in_flight_objects: None,
                started: Vec::new(),
                drained: false,
            }
        }

        fn completion(&mut self) -> FlushCompletion {
            let objects = self.in_flight_objects.take().expect("flush in flight");
            FlushCompletion {
                duration_s: 0.001 * self.latency_ticks as f64,
                objects_written: objects,
                bytes_written: u64::from(objects) * 64,
            }
        }
    }

    impl CheckpointBackend for MockBackend {
        type Error = Infallible;

        fn begin_tick(&mut self, _tick: u64) -> Result<(), Infallible> {
            Ok(())
        }

        fn cursor(&mut self) -> FlushCursor {
            FlushCursor::START
        }

        fn apply_update(
            &mut self,
            _update: CellUpdate,
            _obj: ObjectId,
            _ops: UpdateOps,
        ) -> Result<(), Infallible> {
            Ok(())
        }

        fn end_updates(&mut self, _bk: &Bookkeeper, ops: &TickOps) -> Result<f64, Infallible> {
            Ok(ops.bit_ops as f64 * 1e-9)
        }

        fn poll_completion(
            &mut self,
            _bk: &Bookkeeper,
        ) -> Result<Option<FlushCompletion>, Infallible> {
            self.ticks_since_start += 1;
            if self.ticks_since_start >= self.latency_ticks {
                Ok(Some(self.completion()))
            } else {
                Ok(None)
            }
        }

        fn start_checkpoint(
            &mut self,
            _bk: &Bookkeeper,
            plan: &CheckpointPlan,
            tick: u64,
        ) -> Result<f64, Infallible> {
            self.in_flight_objects = Some(plan.flush.objects());
            self.ticks_since_start = 0;
            self.started.push(tick);
            Ok(plan.sync_copy.map_or(0.0, |c| f64::from(c.objects) * 1e-6))
        }

        fn end_tick(&mut self, _tick: u64) -> Result<(), Infallible> {
            Ok(())
        }

        fn drain(&mut self, _bk: &Bookkeeper) -> Result<Option<FlushCompletion>, Infallible> {
            self.drained = true;
            Ok(Some(self.completion()))
        }
    }

    fn run(alg: Algorithm, latency: u64, ticks: u64) -> (DriverRun, MockBackend) {
        let g = StateGeometry::small(64, 4);
        let mut trace = FakeTrace {
            g,
            ticks,
            per_tick: 8,
            next: 0,
        };
        let mut backend = MockBackend::new(latency);
        let driver = TickDriver::new(alg.spec());
        let run = driver.run(&mut trace, &mut backend).expect("infallible");
        (run, backend)
    }

    #[test]
    fn checkpoints_run_back_to_back_for_all_algorithms() {
        for alg in Algorithm::ALL {
            let (run, backend) = run(alg, 3, 30);
            assert_eq!(run.ticks, 30, "{alg}");
            assert_eq!(run.updates, 30 * 8, "{alg}");
            assert!(run.metrics.checkpoints.len() >= 2, "{alg}");
            for w in run.metrics.checkpoints.windows(2) {
                assert_eq!(w[1].seq, w[0].seq + 1, "{alg}: seq gap");
                assert_eq!(
                    w[1].start_tick, w[0].end_tick,
                    "{alg}: checkpoints must be back to back"
                );
            }
            assert!(backend.drained, "{alg}: final checkpoint must drain");
        }
    }

    #[test]
    fn eager_algorithms_pay_sync_pauses_through_the_driver() {
        let (naive, _) = run(Algorithm::NaiveSnapshot, 2, 20);
        assert!(naive.metrics.ticks.iter().any(|t| t.sync_pause_s > 0.0));
        // Naive tracks no dirty bits: zero bit ops through the bookkeeper.
        assert!(naive.metrics.ticks.iter().all(|t| t.bit_ops == 0));

        let (cou, _) = run(Algorithm::CopyOnUpdate, 2, 20);
        assert!(cou.metrics.ticks.iter().all(|t| t.sync_pause_s == 0.0));
        assert_eq!(
            cou.metrics.ticks.iter().map(|t| t.bit_ops).sum::<u64>(),
            cou.updates,
            "one bit op per update for dirty-tracking algorithms"
        );
    }

    #[test]
    fn driver_counts_copies_from_the_bookkeeper() {
        // Cursor pinned at START: every first touch of a flush-set member
        // must copy under copy-on-update.
        let (cou, _) = run(Algorithm::CopyOnUpdate, 4, 40);
        let copies: u64 = cou.metrics.ticks.iter().map(|t| t.copies).sum();
        assert!(copies > 0, "first touches must copy");
        let locks: u64 = cou.metrics.ticks.iter().map(|t| t.locks).sum();
        assert_eq!(copies, locks, "every copy holds the lock");
    }

    #[test]
    fn full_flush_cadence_flows_through_records() {
        let (pr, _) = run(Algorithm::PartialRedo, 1, 40);
        let fulls: Vec<u64> = pr
            .metrics
            .checkpoints
            .iter()
            .filter(|c| c.full_flush)
            .map(|c| c.seq)
            .collect();
        assert!(!fulls.is_empty(), "40 completed checkpoints include fulls");
        for seq in fulls {
            assert_eq!(
                (seq + 1) % u64::from(crate::algorithms::DEFAULT_FULL_FLUSH_PERIOD),
                0
            );
        }
    }

    /// A trace hammering the same few rows every tick (heavy same-object
    /// duplication, the batching win case).
    struct HotTrace {
        g: StateGeometry,
        ticks: u64,
        per_tick: u32,
        next: u64,
    }

    impl TraceSource for HotTrace {
        fn geometry(&self) -> StateGeometry {
            self.g
        }

        fn next_tick(&mut self, buf: &mut Vec<CellUpdate>) -> bool {
            buf.clear();
            if self.next >= self.ticks {
                return false;
            }
            for i in 0..self.per_tick {
                // Only 4 distinct rows: most updates coalesce.
                buf.push(CellUpdate::new(
                    i % 4,
                    i % self.g.cols,
                    self.next as u32 + i,
                ));
            }
            self.next += 1;
            true
        }
    }

    #[test]
    fn batching_preserves_write_sets_and_cuts_bit_ops() {
        for alg in Algorithm::ALL {
            let g = StateGeometry::small(64, 4);
            let run_with = |batching: bool| {
                let mut trace = HotTrace {
                    g,
                    ticks: 30,
                    per_tick: 64,
                    next: 0,
                };
                let mut backend = MockBackend::new(3);
                TickDriver::new(alg.spec())
                    .with_batching(batching)
                    .run(&mut trace, &mut backend)
                    .expect("infallible")
            };
            let plain = run_with(false);
            let batched = run_with(true);

            // Identical checkpoint behaviour: same sequence, same write
            // sets, same copies (coalescing only skips redundant calls).
            assert_eq!(plain.updates, batched.updates, "{alg}");
            assert_eq!(
                plain.metrics.checkpoints.len(),
                batched.metrics.checkpoints.len(),
                "{alg}"
            );
            for (p, b) in plain
                .metrics
                .checkpoints
                .iter()
                .zip(&batched.metrics.checkpoints)
            {
                assert_eq!(p.objects_written, b.objects_written, "{alg}");
                assert_eq!(p.start_tick, b.start_tick, "{alg}");
            }
            let copies = |r: &DriverRun| r.metrics.ticks.iter().map(|t| t.copies).sum::<u64>();
            assert_eq!(copies(&plain), copies(&batched), "{alg}");

            // Reduced bookkeeping: dirty-tracking algorithms pay one bit
            // op per *distinct* object per tick instead of one per update.
            let bit_ops = |r: &DriverRun| r.metrics.ticks.iter().map(|t| t.bit_ops).sum::<u64>();
            if alg != Algorithm::NaiveSnapshot {
                assert!(
                    bit_ops(&batched) < bit_ops(&plain),
                    "{alg}: batched {} !< plain {}",
                    bit_ops(&batched),
                    bit_ops(&plain)
                );
            }
        }
    }

    #[test]
    fn stepped_run_equals_whole_trace_run() {
        let g = StateGeometry::small(64, 4);
        let driver = TickDriver::new(Algorithm::CopyOnUpdate.spec());

        let mut trace = FakeTrace {
            g,
            ticks: 25,
            per_tick: 8,
            next: 0,
        };
        let mut backend = MockBackend::new(2);
        let whole = driver.run(&mut trace, &mut backend).expect("infallible");

        let mut trace = FakeTrace {
            g,
            ticks: 25,
            per_tick: 8,
            next: 0,
        };
        let mut backend = MockBackend::new(2);
        let mut step = driver.begin(g);
        let mut buf = Vec::new();
        while trace.next_tick(&mut buf) {
            step.tick(&buf, &mut backend).expect("infallible");
        }
        let stepped = step.finish(&mut backend).expect("infallible");

        assert_eq!(whole.ticks, stepped.ticks);
        assert_eq!(whole.updates, stepped.updates);
        assert_eq!(whole.metrics.ticks, stepped.metrics.ticks);
        assert_eq!(whole.metrics.checkpoints, stepped.metrics.checkpoints);
    }

    /// A backend whose writer never completes during the run: completions
    /// only surface at drain time, so the pending queue grows to whatever
    /// the driver allows.
    #[derive(Default)]
    struct StallBackend {
        in_flight: std::collections::VecDeque<u32>,
        started: Vec<u64>,
    }

    impl CheckpointBackend for StallBackend {
        type Error = Infallible;

        fn begin_tick(&mut self, _tick: u64) -> Result<(), Infallible> {
            Ok(())
        }

        fn cursor(&mut self) -> FlushCursor {
            FlushCursor::START
        }

        fn apply_update(
            &mut self,
            _update: CellUpdate,
            _obj: ObjectId,
            _ops: UpdateOps,
        ) -> Result<(), Infallible> {
            Ok(())
        }

        fn end_updates(&mut self, _bk: &Bookkeeper, _ops: &TickOps) -> Result<f64, Infallible> {
            Ok(0.0)
        }

        fn poll_completion(
            &mut self,
            _bk: &Bookkeeper,
        ) -> Result<Option<FlushCompletion>, Infallible> {
            Ok(None)
        }

        fn start_checkpoint(
            &mut self,
            _bk: &Bookkeeper,
            plan: &CheckpointPlan,
            tick: u64,
        ) -> Result<f64, Infallible> {
            self.in_flight.push_back(plan.flush.objects());
            self.started.push(tick);
            Ok(0.0)
        }

        fn end_tick(&mut self, _tick: u64) -> Result<(), Infallible> {
            Ok(())
        }

        fn drain(&mut self, _bk: &Bookkeeper) -> Result<Option<FlushCompletion>, Infallible> {
            let objects = self.in_flight.pop_front().expect("flush in flight");
            Ok(Some(FlushCompletion {
                duration_s: 0.001,
                objects_written: objects,
                bytes_written: u64::from(objects) * 64,
            }))
        }
    }

    #[test]
    fn pipeline_depth_caps_in_flight_checkpoints_for_log_algorithms() {
        // Partial-redo (log-organized, eager): with depth 3 and a stalled
        // writer the driver runs three checkpoints ahead, then waits.
        let g = StateGeometry::small(64, 4);
        let mut trace = FakeTrace {
            g,
            ticks: 10,
            per_tick: 8,
            next: 0,
        };
        let mut backend = StallBackend::default();
        let run = TickDriver::new(Algorithm::PartialRedo.spec_with_flush_period(100))
            .with_pipeline_depth(3)
            .run(&mut trace, &mut backend)
            .expect("infallible");
        assert_eq!(backend.started, vec![1, 2, 3], "three in flight, then full");
        let seqs: Vec<u64> = run.metrics.checkpoints.iter().map(|c| c.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2], "drained oldest first");
    }

    #[test]
    fn double_backup_algorithms_serialize_regardless_of_depth() {
        let g = StateGeometry::small(64, 4);
        let mut trace = FakeTrace {
            g,
            ticks: 10,
            per_tick: 8,
            next: 0,
        };
        let mut backend = StallBackend::default();
        let run = TickDriver::new(Algorithm::NaiveSnapshot.spec())
            .with_pipeline_depth(3)
            .run(&mut trace, &mut backend)
            .expect("infallible");
        assert_eq!(backend.started, vec![1], "copy-org never overlaps");
        assert_eq!(run.metrics.checkpoints.len(), 1);
    }

    #[test]
    fn depth_one_pipelined_driver_matches_the_historical_loop() {
        for alg in Algorithm::ALL {
            let (baseline, _) = run(alg, 3, 30);
            let g = StateGeometry::small(64, 4);
            let mut trace = FakeTrace {
                g,
                ticks: 30,
                per_tick: 8,
                next: 0,
            };
            let mut backend = MockBackend::new(3);
            let explicit = TickDriver::new(alg.spec())
                .with_pipeline_depth(1)
                .run(&mut trace, &mut backend)
                .expect("infallible");
            assert_eq!(baseline.metrics.ticks, explicit.metrics.ticks, "{alg}");
            assert_eq!(
                baseline.metrics.checkpoints, explicit.metrics.checkpoints,
                "{alg}"
            );
        }
    }

    #[test]
    fn start_ticks_match_backend_observations() {
        let (run, backend) = run(Algorithm::NaiveSnapshot, 2, 12);
        let starts: Vec<u64> = run
            .metrics
            .checkpoints
            .iter()
            .map(|c| c.start_tick)
            .collect();
        assert_eq!(&backend.started[..starts.len()], starts.as_slice());
    }
}
