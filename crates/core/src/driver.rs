//! The unified tick driver: one orchestration loop for all six algorithms.
//!
//! The paper's *Checkpointing Algorithmic Framework* (§3.3) is a single
//! loop — at every tick apply updates through `Handle-Update`, and at the
//! tick boundary start a new checkpoint if the previous one finished.
//! Historically this repository implemented that loop once per engine *per
//! algorithm* (the cost-model simulator plus four hand-rolled real
//! engines); [`TickDriver`] extracts it so it exists exactly once.
//!
//! The split of responsibilities mirrors the paper's framework table:
//!
//! * The **driver** owns the [`Bookkeeper`] — the algorithm-generic state
//!   machine deciding *what* must be copied, flushed and tracked — and the
//!   per-tick/per-checkpoint metric series.
//! * A [`CheckpointBackend`] performs the work and attaches its notion of
//!   time: the simulator prices operations in virtual seconds
//!   (`mmoc-sim`), the real engine runs memcpys, mutator/writer threads
//!   and `fsync`s and measures wall-clock seconds (`mmoc-storage`).
//!
//! Adding a new algorithm means extending the [`Bookkeeper`]'s plan; both
//! engines pick it up for free. Adding a new engine (an async-I/O backend,
//! a replicated store) means implementing this one trait.
//!
//! ## Loop shape
//!
//! ```text
//! for each tick t in the trace:
//!     backend.begin_tick(t)                    // query phase / time base
//!     cursor = backend.cursor()                // writer progress at tick start
//!     for each update u:
//!         ops = bookkeeper.on_update(obj(u), cursor)   // Handle-Update
//!         backend.apply_update(u, obj(u), ops)          // do + price it
//!     backend.end_updates(...)                 // stretch the tick
//!     if a checkpoint is in flight and backend.poll_completion():
//!         record it; bookkeeper.finish_checkpoint()
//!     if no checkpoint is in flight:
//!         plan = bookkeeper.begin_checkpoint() // Copy-To-Memory decision
//!         backend.start_checkpoint(plan)       // sync copy + async flush
//!     backend.end_tick(t)                      // pacing / sleep phase
//! drain the final in-flight checkpoint
//! ```

use crate::algorithms::bookkeeper::{Bookkeeper, FlushCursor, UpdateOps};
use crate::algorithms::AlgorithmSpec;
use crate::geometry::{CellUpdate, ObjectId};
use crate::metrics::{CheckpointRecord, RunMetrics, TickMetrics};
use crate::plan::CheckpointPlan;
use crate::trace::TraceSource;

/// Completion report for one asynchronous flush, produced by the backend.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlushCompletion {
    /// Duration of the asynchronous flush, in (virtual or wall) seconds.
    pub duration_s: f64,
    /// Atomic objects actually written to stable storage.
    pub objects_written: u32,
    /// Bytes actually written to stable storage.
    pub bytes_written: u64,
}

/// Aggregated `Handle-Update` work of one tick, as charged by the
/// bookkeeper.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TickOps {
    /// Dirty/flushed bit tests and sets.
    pub bit_ops: u64,
    /// Writer-lock acquisitions.
    pub locks: u64,
    /// Copy-on-update object copies.
    pub copies: u64,
}

impl TickOps {
    /// Accumulate one update's ops.
    #[inline]
    pub fn add(&mut self, ops: UpdateOps) {
        self.bit_ops += u64::from(ops.bit_ops);
        self.locks += u64::from(ops.lock);
        self.copies += u64::from(ops.copy);
    }
}

/// An engine executing (and timing) the work the driver sequences.
///
/// Implementations: the cost-model simulator (`mmoc-sim`) and the real
/// disk-backed engine (`mmoc-storage`). All methods are called from the
/// driver's single mutator thread; a backend may own worker threads
/// internally (the real engine's asynchronous writer).
pub trait CheckpointBackend {
    /// Error type surfaced by backend operations (`io::Error` for the real
    /// engine, [`std::convert::Infallible`] for the simulator).
    type Error;

    /// A tick is starting: run the query phase (real engine) or establish
    /// the tick's time base (simulator). `tick` is 1-based.
    fn begin_tick(&mut self, tick: u64) -> Result<(), Self::Error>;

    /// The asynchronous writer's progress at the start of this tick, in
    /// the in-flight sweep's slot units. Updates within the tick observe
    /// this frontier (the conservative discretization: an object the
    /// writer reaches mid-tick may be copied once more than strictly
    /// needed, never less).
    fn cursor(&mut self) -> FlushCursor;

    /// Apply one update to live state, performing (real engine) or
    /// pricing (simulator) the copy-on-update work the bookkeeper charged
    /// in `ops`.
    fn apply_update(
        &mut self,
        update: CellUpdate,
        obj: ObjectId,
        ops: UpdateOps,
    ) -> Result<(), Self::Error>;

    /// The tick's updates are all applied. Returns the update-phase
    /// overhead in seconds (the amount this tick was stretched, excluding
    /// any synchronous checkpoint pause). The simulator advances its
    /// virtual clock here.
    fn end_updates(&mut self, bk: &Bookkeeper, ops: &TickOps) -> Result<f64, Self::Error>;

    /// Did the in-flight asynchronous flush complete? Called once per tick
    /// while a checkpoint is in flight; must not block (the real engine
    /// polls its writer's completion channel).
    fn poll_completion(&mut self, bk: &Bookkeeper) -> Result<Option<FlushCompletion>, Self::Error>;

    /// A checkpoint is starting at this tick boundary: perform the plan's
    /// synchronous copy (if any) and launch the asynchronous flush.
    /// Returns the synchronous pause in seconds. The bookkeeper is already
    /// in-flight; `bk.flush_set()` / `bk.sweep_slots()` describe the write
    /// set.
    fn start_checkpoint(
        &mut self,
        bk: &Bookkeeper,
        plan: &CheckpointPlan,
        tick: u64,
    ) -> Result<f64, Self::Error>;

    /// The tick is over (metrics recorded): sleep out the tick period
    /// (paced real engine) or do nothing.
    fn end_tick(&mut self, tick: u64) -> Result<(), Self::Error>;

    /// The trace is exhausted with a checkpoint still in flight: wait for
    /// it to complete (blocking) and report it, or `None` if the backend
    /// abandoned it.
    fn drain(&mut self, bk: &Bookkeeper) -> Result<Option<FlushCompletion>, Self::Error>;
}

/// Result of one driver run, engine-agnostic. Engines wrap this into
/// their report types (`SimReport`, `RealReport`).
#[derive(Debug, Clone)]
pub struct DriverRun {
    /// Ticks executed (1-based count).
    pub ticks: u64,
    /// Updates applied.
    pub updates: u64,
    /// Per-tick and per-checkpoint series.
    pub metrics: RunMetrics,
}

/// A checkpoint handed to the backend and not yet completed.
#[derive(Debug, Clone, Copy)]
struct Pending {
    seq: u64,
    start_tick: u64,
    sync_pause_s: f64,
    full_flush: bool,
}

/// The unified orchestration loop (see module docs).
#[derive(Debug, Clone, Copy)]
pub struct TickDriver {
    spec: AlgorithmSpec,
}

impl TickDriver {
    /// Create a driver for one algorithm.
    pub fn new(spec: AlgorithmSpec) -> Self {
        TickDriver { spec }
    }

    /// The algorithm specification being driven.
    pub fn spec(&self) -> &AlgorithmSpec {
        &self.spec
    }

    /// Replay `trace` through `backend`, one checkpoint after another.
    ///
    /// Panics if the trace's geometry is invalid (engines validate before
    /// constructing their backends).
    pub fn run<S, B>(&self, trace: &mut S, backend: &mut B) -> Result<DriverRun, B::Error>
    where
        S: TraceSource,
        B: CheckpointBackend,
    {
        let geometry = trace.geometry();
        geometry.validate().expect("trace geometry must be valid");
        let mut bk = Bookkeeper::new(self.spec, geometry.n_objects());
        let mut metrics = RunMetrics::default();
        let mut pending: Option<Pending> = None;
        let mut buf = Vec::new();
        let mut tick = 0u64;
        let mut total_updates = 0u64;

        while trace.next_tick(&mut buf) {
            tick += 1;
            backend.begin_tick(tick)?;

            // --- Update phase: route every update through Handle-Update.
            let cursor = backend.cursor();
            let mut ops_total = TickOps::default();
            for &u in &buf {
                let obj = geometry.object_of_unchecked(u.addr);
                let ops = bk.on_update(obj, cursor);
                ops_total.add(ops);
                backend.apply_update(u, obj, ops)?;
            }
            total_updates += buf.len() as u64;
            let update_overhead_s = backend.end_updates(&bk, &ops_total)?;

            // --- Tick boundary: harvest a completed checkpoint...
            if pending.is_some() {
                if let Some(done) = backend.poll_completion(&bk)? {
                    let p = pending.take().expect("pending checkpoint");
                    metrics.checkpoints.push(Self::record(p, done, tick));
                    bk.finish_checkpoint();
                }
            }

            // ...and start the next one if the writer is free.
            let mut sync_pause_s = 0.0f64;
            if pending.is_none() {
                let plan = bk.begin_checkpoint();
                sync_pause_s = backend.start_checkpoint(&bk, &plan, tick)?;
                pending = Some(Pending {
                    seq: plan.seq,
                    start_tick: tick,
                    sync_pause_s,
                    full_flush: plan.full_flush,
                });
            }

            metrics.ticks.push(TickMetrics {
                tick,
                overhead_s: update_overhead_s + sync_pause_s,
                sync_pause_s,
                bit_ops: ops_total.bit_ops,
                locks: ops_total.locks,
                copies: ops_total.copies,
            });
            backend.end_tick(tick)?;
        }

        // Drain the final in-flight checkpoint so recovery sees a
        // committed image.
        if let Some(p) = pending.take() {
            if let Some(done) = backend.drain(&bk)? {
                metrics.checkpoints.push(Self::record(p, done, tick));
                bk.finish_checkpoint();
            }
        }

        Ok(DriverRun {
            ticks: tick,
            updates: total_updates,
            metrics,
        })
    }

    fn record(p: Pending, done: FlushCompletion, end_tick: u64) -> CheckpointRecord {
        CheckpointRecord {
            seq: p.seq,
            start_tick: p.start_tick,
            end_tick,
            duration_s: p.sync_pause_s + done.duration_s,
            sync_pause_s: p.sync_pause_s,
            objects_written: done.objects_written,
            bytes_written: done.bytes_written,
            full_flush: p.full_flush,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::Algorithm;
    use crate::geometry::StateGeometry;
    use std::convert::Infallible;

    /// A trace over `g` yielding `per_tick` updates for `ticks` ticks.
    struct FakeTrace {
        g: StateGeometry,
        ticks: u64,
        per_tick: u32,
        next: u64,
    }

    impl TraceSource for FakeTrace {
        fn geometry(&self) -> StateGeometry {
            self.g
        }

        fn next_tick(&mut self, buf: &mut Vec<CellUpdate>) -> bool {
            buf.clear();
            if self.next >= self.ticks {
                return false;
            }
            for i in 0..self.per_tick {
                let row = ((self.next as u32).wrapping_mul(7) + i * 13) % self.g.rows;
                buf.push(CellUpdate::new(row, i % self.g.cols, i));
            }
            self.next += 1;
            true
        }
    }

    /// A backend that completes every flush after `latency_ticks` ticks
    /// and logs the driver's calls.
    struct MockBackend {
        latency_ticks: u64,
        ticks_since_start: u64,
        in_flight_objects: Option<u32>,
        started: Vec<u64>,
        drained: bool,
    }

    impl MockBackend {
        fn new(latency_ticks: u64) -> Self {
            MockBackend {
                latency_ticks,
                ticks_since_start: 0,
                in_flight_objects: None,
                started: Vec::new(),
                drained: false,
            }
        }

        fn completion(&mut self) -> FlushCompletion {
            let objects = self.in_flight_objects.take().expect("flush in flight");
            FlushCompletion {
                duration_s: 0.001 * self.latency_ticks as f64,
                objects_written: objects,
                bytes_written: u64::from(objects) * 64,
            }
        }
    }

    impl CheckpointBackend for MockBackend {
        type Error = Infallible;

        fn begin_tick(&mut self, _tick: u64) -> Result<(), Infallible> {
            Ok(())
        }

        fn cursor(&mut self) -> FlushCursor {
            FlushCursor::START
        }

        fn apply_update(
            &mut self,
            _update: CellUpdate,
            _obj: ObjectId,
            _ops: UpdateOps,
        ) -> Result<(), Infallible> {
            Ok(())
        }

        fn end_updates(&mut self, _bk: &Bookkeeper, ops: &TickOps) -> Result<f64, Infallible> {
            Ok(ops.bit_ops as f64 * 1e-9)
        }

        fn poll_completion(
            &mut self,
            _bk: &Bookkeeper,
        ) -> Result<Option<FlushCompletion>, Infallible> {
            self.ticks_since_start += 1;
            if self.ticks_since_start >= self.latency_ticks {
                Ok(Some(self.completion()))
            } else {
                Ok(None)
            }
        }

        fn start_checkpoint(
            &mut self,
            _bk: &Bookkeeper,
            plan: &CheckpointPlan,
            tick: u64,
        ) -> Result<f64, Infallible> {
            self.in_flight_objects = Some(plan.flush.objects());
            self.ticks_since_start = 0;
            self.started.push(tick);
            Ok(plan.sync_copy.map_or(0.0, |c| f64::from(c.objects) * 1e-6))
        }

        fn end_tick(&mut self, _tick: u64) -> Result<(), Infallible> {
            Ok(())
        }

        fn drain(&mut self, _bk: &Bookkeeper) -> Result<Option<FlushCompletion>, Infallible> {
            self.drained = true;
            Ok(Some(self.completion()))
        }
    }

    fn run(alg: Algorithm, latency: u64, ticks: u64) -> (DriverRun, MockBackend) {
        let g = StateGeometry::small(64, 4);
        let mut trace = FakeTrace {
            g,
            ticks,
            per_tick: 8,
            next: 0,
        };
        let mut backend = MockBackend::new(latency);
        let driver = TickDriver::new(alg.spec());
        let run = driver.run(&mut trace, &mut backend).expect("infallible");
        (run, backend)
    }

    #[test]
    fn checkpoints_run_back_to_back_for_all_algorithms() {
        for alg in Algorithm::ALL {
            let (run, backend) = run(alg, 3, 30);
            assert_eq!(run.ticks, 30, "{alg}");
            assert_eq!(run.updates, 30 * 8, "{alg}");
            assert!(run.metrics.checkpoints.len() >= 2, "{alg}");
            for w in run.metrics.checkpoints.windows(2) {
                assert_eq!(w[1].seq, w[0].seq + 1, "{alg}: seq gap");
                assert_eq!(
                    w[1].start_tick, w[0].end_tick,
                    "{alg}: checkpoints must be back to back"
                );
            }
            assert!(backend.drained, "{alg}: final checkpoint must drain");
        }
    }

    #[test]
    fn eager_algorithms_pay_sync_pauses_through_the_driver() {
        let (naive, _) = run(Algorithm::NaiveSnapshot, 2, 20);
        assert!(naive.metrics.ticks.iter().any(|t| t.sync_pause_s > 0.0));
        // Naive tracks no dirty bits: zero bit ops through the bookkeeper.
        assert!(naive.metrics.ticks.iter().all(|t| t.bit_ops == 0));

        let (cou, _) = run(Algorithm::CopyOnUpdate, 2, 20);
        assert!(cou.metrics.ticks.iter().all(|t| t.sync_pause_s == 0.0));
        assert_eq!(
            cou.metrics.ticks.iter().map(|t| t.bit_ops).sum::<u64>(),
            cou.updates,
            "one bit op per update for dirty-tracking algorithms"
        );
    }

    #[test]
    fn driver_counts_copies_from_the_bookkeeper() {
        // Cursor pinned at START: every first touch of a flush-set member
        // must copy under copy-on-update.
        let (cou, _) = run(Algorithm::CopyOnUpdate, 4, 40);
        let copies: u64 = cou.metrics.ticks.iter().map(|t| t.copies).sum();
        assert!(copies > 0, "first touches must copy");
        let locks: u64 = cou.metrics.ticks.iter().map(|t| t.locks).sum();
        assert_eq!(copies, locks, "every copy holds the lock");
    }

    #[test]
    fn full_flush_cadence_flows_through_records() {
        let (pr, _) = run(Algorithm::PartialRedo, 1, 40);
        let fulls: Vec<u64> = pr
            .metrics
            .checkpoints
            .iter()
            .filter(|c| c.full_flush)
            .map(|c| c.seq)
            .collect();
        assert!(!fulls.is_empty(), "40 completed checkpoints include fulls");
        for seq in fulls {
            assert_eq!(
                (seq + 1) % u64::from(crate::algorithms::DEFAULT_FULL_FLUSH_PERIOD),
                0
            );
        }
    }

    #[test]
    fn start_ticks_match_backend_observations() {
        let (run, backend) = run(Algorithm::NaiveSnapshot, 2, 12);
        let starts: Vec<u64> = run
            .metrics
            .checkpoints
            .iter()
            .map(|c| c.start_tick)
            .collect();
        assert_eq!(&backend.started[..starts.len()], starts.as_slice());
    }
}
