//! The unified experiment API: one builder, one report, both engines.
//!
//! The paper's contribution is a *controlled comparison* — six algorithms
//! measured under one cost-model simulator and validated against one real
//! engine — yet historically every engine grew its own entry points
//! (`SimEngine::run`, `run_algorithm`, their sharded and checked variants)
//! and its own report type. [`Run`] replaces all of them with a single
//! description of an experiment:
//!
//! ```text
//! Run::algorithm(Algorithm::CopyOnUpdate)   // what to measure
//!     .engine(engine)                       // where to run it (sim / real / …)
//!     .trace(trace)                         // the workload
//!     .shards(4)                            // how the world is partitioned
//!     .batching(true)                       // driver-level update coalescing
//!     .fidelity_check(true)                 // value-level verification
//!     .pacing(30.0)                         // tick rate in Hz
//!     .execute()?                           // -> RunReport
//! ```
//!
//! Three traits make the builder engine- and workload-agnostic:
//!
//! * [`ExperimentEngine`] — implemented by `mmoc-sim`'s `SimConfig`, by
//!   `mmoc-storage`'s `RealConfig`, and by the facade's `Engine` enum.
//!   A future backend (async I/O writer, replicated store) plugs into the
//!   same comparison matrix by implementing this one trait.
//! * [`TraceSpec`] — a *replayable description* of a workload (a synthetic
//!   config, a game battle, a closure opening a trace file). Engines that
//!   measure real crash recovery re-open the spec to replay the stream.
//! * [`crate::TraceSource`] — the streaming trace the spec opens.
//!
//! Every engine returns the same [`RunReport`]: a shared metric core
//! ([`RunSummary`], backed by [`RunMetrics`]), a per-shard breakdown that
//! is trivially present for single-shard runs, and one [`EngineDetail`]
//! variant of engine-specific extras. Failures surface as the typed
//! [`RunError`] instead of the historical panic / `io::Error` mix.

use crate::algorithms::Algorithm;
use crate::error::CoreError;
use crate::metrics::RunMetrics;
use crate::trace::TraceSource;
use serde::{Deserialize, Serialize};
use std::fmt;

// ---------------------------------------------------------------------------
// Trace specifications
// ---------------------------------------------------------------------------

/// A replayable description of a workload.
///
/// [`TraceSpec::open`] may be called any number of times and must yield
/// byte-identical update streams each time: deterministic replay is what
/// lets the real engine measure crash recovery (restore a checkpoint,
/// re-run the stream) and lets sharded recovery replay each shard's slice
/// independently. Implementors are descriptions — a synthetic-workload
/// config, a game configuration, a recorded trace file — not live cursors.
pub trait TraceSpec: Sync {
    /// The streaming trace this spec opens.
    type Source: TraceSource;

    /// Open a fresh cursor over the trace, starting at tick one.
    fn open(&self) -> Self::Source;
}

/// Adapter turning a `Fn() -> impl TraceSource` closure into a
/// [`TraceSpec`], for workloads without a config type of their own:
///
/// ```
/// use mmoc_core::run::{TraceFn, TraceSpec};
/// # use mmoc_core::{CellUpdate, StateGeometry, TraceSource};
/// # #[derive(Clone)] struct MyTrace(StateGeometry);
/// # impl TraceSource for MyTrace {
/// #     fn geometry(&self) -> StateGeometry { self.0 }
/// #     fn next_tick(&mut self, _b: &mut Vec<CellUpdate>) -> bool { false }
/// # }
/// # let template = MyTrace(StateGeometry::test_small());
/// let spec = TraceFn(|| template.clone());
/// let trace = spec.open();
/// ```
#[derive(Debug, Clone, Copy)]
pub struct TraceFn<F>(pub F);

impl<S, F> TraceSpec for TraceFn<F>
where
    S: TraceSource,
    F: Fn() -> S + Sync,
{
    type Source = S;

    fn open(&self) -> S {
        (self.0)()
    }
}

impl<T: TraceSpec> TraceSpec for &T {
    type Source = T::Source;

    fn open(&self) -> Self::Source {
        (**self).open()
    }
}

// ---------------------------------------------------------------------------
// The experiment description
// ---------------------------------------------------------------------------

/// Selection of the asynchronous checkpoint-writer implementation an
/// engine uses to flush checkpoints to stable storage.
///
/// The backends are **recovery-equivalent by contract** — same files,
/// same durability ordering (data sync before metadata commit), same
/// published sweep frontier semantics — and differ only in how flush jobs
/// are scheduled; `crates/storage/tests/writer_equivalence.rs` pins the
/// equivalence differentially. The selection is interpreted by the real
/// disk-backed engine; the cost-model simulator prices the writer
/// analytically and ignores it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum WriterBackend {
    /// A pool of writer worker threads, each executing one flush job at a
    /// time end to end (the historical engine; a single-shard run is a
    /// pool of one — the classic dedicated writer thread).
    #[default]
    ThreadPool,
    /// An io_uring-style batched-submission engine: one loop coalesces
    /// every queued flush job into a batch, issues all data writes in the
    /// submission phase, then reaches each job's durability point and
    /// acks completions **out of submission order** in the completion
    /// phase (syncs coalesce at the batch tail).
    AsyncBatched,
    /// The real `io_uring(7)` ring: the batched engine's scheduling with
    /// the data writes submitted as `IORING_OP_WRITEV` SQEs and reaped
    /// out of order from the completion queue. Requires kernel support;
    /// a one-shot capability probe falls back permanently to
    /// [`WriterBackend::AsyncBatched`] on kernels without io_uring (the
    /// report names the backend that actually ran).
    IoUring,
}

impl WriterBackend {
    /// Every writer backend, for comparison matrices.
    pub const ALL: [WriterBackend; 3] = [
        WriterBackend::ThreadPool,
        WriterBackend::AsyncBatched,
        WriterBackend::IoUring,
    ];

    /// Stable label used in reports, CSV output and the
    /// `MMOC_WRITER_BACKEND` environment override.
    pub fn label(self) -> &'static str {
        match self {
            WriterBackend::ThreadPool => "thread-pool",
            WriterBackend::AsyncBatched => "async-batched",
            WriterBackend::IoUring => "io-uring",
        }
    }
}

impl fmt::Display for WriterBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The engine-independent description of one experiment, assembled by
/// [`Run`] and consumed by [`ExperimentEngine`] implementations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunSpec {
    /// The checkpoint-recovery algorithm to measure.
    pub algorithm: Algorithm,
    /// Number of disjoint shards the world is split into (≥ 1; the shard
    /// map must be able to align this many object bands).
    pub shards: u32,
    /// Driver-level update batching: coalesce same-object updates within
    /// a tick before bookkeeping (write sets stay bit-identical; the
    /// accounting drops redundant dirty-bit operations).
    pub batching: bool,
    /// Value-level verification. The simulator keeps a shadow disk and
    /// compares every completed checkpoint against the state at its start
    /// tick; the real engine forces its end-of-run crash-recovery
    /// measurement (restore + replay + byte comparison) on.
    pub fidelity_check: bool,
    /// Tick rate in Hz. The simulator prices ticks at this frequency; the
    /// real engine paces its mutator, sleeping out the remainder of every
    /// global tick. `None` keeps each engine's configured default.
    pub pacing_hz: Option<f64>,
    /// Writer backend executing the flush jobs (see [`WriterBackend`]).
    /// `None` keeps the engine's configured default.
    pub writer: Option<WriterBackend>,
    /// Adaptive batch window of the batched writer, in microseconds: the
    /// latency bound under which a shallow batch waits for straggler
    /// flush jobs so their durability points coalesce (see
    /// [`Run::batch_window`]). `Some(0)` pins "everything currently
    /// queued" batches; `None` keeps the engine's configured default.
    pub batch_window_us: Option<u64>,
    /// Checkpoint pipeline depth: how many of a shard's checkpoints may
    /// be in flight in the writer at once (see [`Run::pipeline_depth`]).
    /// Depth 1 is the historical stop-and-wait write path; `None` keeps
    /// the engine's configured default.
    pub pipeline_depth: Option<u32>,
    /// Replication factor K of the in-memory recovery tier: each shard
    /// pushes committed checkpoint deltas to K peer-shard memory mirrors
    /// and recovery tries a replica fetch before the disk path (see
    /// [`Run::replication`]). `Some(0)` pins the tier off; `None` keeps
    /// the engine's configured default. Real engine only: the simulator
    /// rejects a non-zero factor as unsupported.
    pub replication: Option<u32>,
    /// Retry budget of the writer backends for transient I/O faults:
    /// how many times a failed data write / fsync / meta commit is
    /// re-issued before the error takes the degradation ladder (see
    /// [`Run::retry_max`]). `Some(0)` pins the historical
    /// immediate-propagation engine; `None` keeps the engine's
    /// configured default. Real engine only; the simulator models no
    /// I/O faults and ignores it.
    pub retry_max: Option<u32>,
    /// Linear backoff base between retry attempts, in microseconds
    /// (attempt `k` sleeps `k × backoff`; see [`Run::retry_backoff`]).
    /// `None` keeps the engine's configured default.
    pub retry_backoff_us: Option<u64>,
}

impl RunSpec {
    /// A single-shard, unbatched, unchecked spec for `algorithm` at the
    /// engine's default tick rate.
    pub fn new(algorithm: Algorithm) -> Self {
        RunSpec {
            algorithm,
            shards: 1,
            batching: false,
            fidelity_check: false,
            pacing_hz: None,
            writer: None,
            batch_window_us: None,
            pipeline_depth: None,
            replication: None,
            retry_max: None,
            retry_backoff_us: None,
        }
    }

    /// Check the engine-independent invariants.
    pub fn validate(&self) -> Result<(), RunError> {
        if self.shards == 0 {
            return Err(RunError::Config(
                "an experiment needs at least one shard".into(),
            ));
        }
        if let Some(hz) = self.pacing_hz {
            if !(hz > 0.0 && hz.is_finite()) {
                return Err(RunError::Config(format!(
                    "pacing frequency must be positive and finite, got {hz}"
                )));
            }
        }
        if self.pipeline_depth == Some(0) {
            return Err(RunError::Config(
                "checkpoint pipeline depth must be at least 1".into(),
            ));
        }
        Ok(())
    }
}

/// Marker for a [`Run`] that has no engine yet (calling
/// [`Run::execute`] is a compile error until [`Run::engine`] is called).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoEngine;

/// Marker for a [`Run`] that has no trace yet (calling
/// [`Run::execute`] is a compile error until [`Run::trace`] is called).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoTrace;

/// Builder describing one experiment: an algorithm, an engine, a trace,
/// and the run options shared by every backend. See the [module
/// docs](self) for the full shape.
///
/// The builder is typestate-checked: [`Run::execute`] only exists once
/// both an [`ExperimentEngine`] and a [`TraceSpec`] have been supplied.
#[derive(Debug, Clone)]
pub struct Run<E = NoEngine, T = NoTrace> {
    spec: RunSpec,
    engine: E,
    trace: T,
}

impl Run {
    /// Start describing an experiment for `algorithm`.
    pub fn algorithm(algorithm: Algorithm) -> Run {
        Run {
            spec: RunSpec::new(algorithm),
            engine: NoEngine,
            trace: NoTrace,
        }
    }
}

impl<E, T> Run<E, T> {
    /// Select the engine executing the experiment (`SimConfig`,
    /// `RealConfig`, the facade's `Engine` enum, or any future backend).
    pub fn engine<E2: ExperimentEngine>(self, engine: E2) -> Run<E2, T> {
        Run {
            spec: self.spec,
            engine,
            trace: self.trace,
        }
    }

    /// Select the workload: any replayable trace description.
    pub fn trace<T2: TraceSpec>(self, trace: T2) -> Run<E, T2> {
        Run {
            spec: self.spec,
            engine: self.engine,
            trace,
        }
    }

    /// Select the workload from a replayable closure (each call must
    /// yield an identical stream). Shorthand for `.trace(TraceFn(f))`.
    pub fn trace_fn<S, F>(self, f: F) -> Run<E, TraceFn<F>>
    where
        S: TraceSource,
        F: Fn() -> S + Sync,
    {
        self.trace(TraceFn(f))
    }

    /// Split the world into `n` disjoint object-aligned shards (default 1).
    pub fn shards(mut self, n: u32) -> Self {
        self.spec.shards = n;
        self
    }

    /// Enable driver-level update batching (default off; see
    /// [`RunSpec::batching`]).
    pub fn batching(mut self, on: bool) -> Self {
        self.spec.batching = on;
        self
    }

    /// Enable value-level verification (default off; see
    /// [`RunSpec::fidelity_check`]).
    pub fn fidelity_check(mut self, on: bool) -> Self {
        self.spec.fidelity_check = on;
        self
    }

    /// Run the world at `hz` ticks per second (see [`RunSpec::pacing_hz`]).
    pub fn pacing(mut self, hz: f64) -> Self {
        self.spec.pacing_hz = Some(hz);
        self
    }

    /// Select the writer backend flushing checkpoints to stable storage
    /// (see [`RunSpec::writer`]; interpreted by the real engine, ignored
    /// by the simulator, default: the engine's configured backend).
    pub fn writer(mut self, backend: WriterBackend) -> Self {
        self.spec.writer = Some(backend);
        self
    }

    /// Bound the batched writer's adaptive batch window: when the job
    /// queue is shallow, the submission loop waits up to `window` for
    /// straggler flush jobs before closing the batch, trading up to
    /// `window` of ack latency for durability-point (fsync) coalescing.
    /// `Duration::ZERO` pins today's "everything currently queued"
    /// batches. Interpreted by the real engine's async-batched writer,
    /// ignored by the thread pool and the simulator; default: the
    /// engine's configured window.
    pub fn batch_window(mut self, window: std::time::Duration) -> Self {
        self.spec.batch_window_us = Some(u64::try_from(window.as_micros()).unwrap_or(u64::MAX));
        self
    }

    /// Allow up to `depth` of a shard's checkpoints in flight in the
    /// writer at once (default 1, the historical stop-and-wait write
    /// path). At depth ≥ 2 the real engine's driver starts the next
    /// checkpoint while the previous one's flush is still queued or
    /// batching — for the algorithm/flush combinations whose jobs carry
    /// private copies (log-organized eager plans); sweeping and
    /// double-backup checkpoints still drain the pipe first. Interpreted
    /// by the real engine; the simulator rejects depths above 1 as
    /// unsupported rather than silently pricing a pipeline it does not
    /// model.
    pub fn pipeline_depth(mut self, depth: u32) -> Self {
        self.spec.pipeline_depth = Some(depth);
        self
    }

    /// Replicate each shard's committed checkpoint deltas to `k` peer
    /// shards' memory (publish-on-commit), so single-shard recovery can
    /// fetch a mirror image instead of replaying from disk; `0` pins the
    /// tier off. Interpreted by the real engine; the simulator rejects a
    /// non-zero factor as unsupported rather than silently pricing a
    /// tier it does not model.
    pub fn replication(mut self, k: u32) -> Self {
        self.spec.replication = Some(k);
        self
    }

    /// Allow the real engine's writer up to `max` retries per failed
    /// data write / fsync / meta commit before the error takes the
    /// degradation ladder (typed `RunError` on the pool/batched
    /// engines, dead-flag synchronous redo on io_uring). `0` pins the
    /// historical immediate-propagation engine. Interpreted by the
    /// real engine; the simulator models no I/O faults.
    pub fn retry_max(mut self, max: u32) -> Self {
        self.spec.retry_max = Some(max);
        self
    }

    /// Linear backoff base between writer retry attempts (attempt `k`
    /// sleeps `k × backoff`). Interpreted by the real engine.
    pub fn retry_backoff(mut self, backoff: std::time::Duration) -> Self {
        self.spec.retry_backoff_us = Some(u64::try_from(backoff.as_micros()).unwrap_or(u64::MAX));
        self
    }

    /// The engine-independent description assembled so far.
    pub fn spec(&self) -> &RunSpec {
        &self.spec
    }
}

impl<E: ExperimentEngine, T: TraceSpec> Run<E, T> {
    /// Execute the experiment and collect the unified report.
    ///
    /// `execute` borrows the builder, so a configured run can be executed
    /// repeatedly (each execution opens a fresh trace cursor).
    pub fn execute(&self) -> Result<RunReport, RunError> {
        self.spec.validate()?;
        self.engine.run_experiment(&self.spec, &self.trace)
    }
}

/// A backend able to execute a [`RunSpec`] over a [`TraceSpec`] and
/// report in the unified shape.
///
/// Implementations: the cost-model simulator (`mmoc-sim::SimConfig`), the
/// real disk-backed engine (`mmoc-storage::RealConfig`), and the facade's
/// `Engine` enum dispatching between them. New backends implement this
/// trait and immediately participate in the full comparison matrix (all
/// six algorithms, any shard count, the same report type).
pub trait ExperimentEngine {
    /// Execute `spec` over the workload described by `trace`.
    ///
    /// Callers go through [`Run::execute`], which validates the spec
    /// first; implementations may assume [`RunSpec::validate`] passed.
    fn run_experiment<T: TraceSpec + ?Sized>(
        &self,
        spec: &RunSpec,
        trace: &T,
    ) -> Result<RunReport, RunError>;
}

impl<E: ExperimentEngine> ExperimentEngine for &E {
    fn run_experiment<T: TraceSpec + ?Sized>(
        &self,
        spec: &RunSpec,
        trace: &T,
    ) -> Result<RunReport, RunError> {
        (**self).run_experiment(spec, trace)
    }
}

// ---------------------------------------------------------------------------
// The unified report
// ---------------------------------------------------------------------------

/// The shared metric core of a run, reported at world level and per
/// shard: the paper's three quantities (overhead, time to checkpoint,
/// recovery time) over the raw [`RunMetrics`] series they derive from.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunSummary {
    /// Completed checkpoints.
    pub checkpoints_completed: u64,
    /// Average overhead added per tick, in seconds. At world level each
    /// tick costs the max across shards (shards run in parallel).
    pub avg_overhead_s: f64,
    /// Worst single-tick overhead, in seconds.
    pub max_overhead_s: f64,
    /// Average time to checkpoint, in seconds.
    pub avg_checkpoint_s: f64,
    /// Recovery time, in seconds: the simulator's analytic estimate or
    /// the real engine's measured restore + replay. At world level shards
    /// recover in parallel, so this tracks the slowest shard. `None` when
    /// the engine did not measure recovery.
    pub recovery_s: Option<f64>,
    /// The raw per-tick and per-checkpoint series (at world level, the
    /// shard series merged by [`RunMetrics::merge_shards`]).
    pub metrics: RunMetrics,
}

impl RunSummary {
    /// Build the summary straight from a metric series.
    pub fn from_metrics(metrics: RunMetrics, recovery_s: Option<f64>) -> Self {
        RunSummary {
            checkpoints_completed: metrics.checkpoints.len() as u64,
            avg_overhead_s: metrics.avg_overhead_s(),
            max_overhead_s: metrics.max_overhead_s(),
            avg_checkpoint_s: metrics.avg_checkpoint_s(),
            recovery_s,
            metrics,
        }
    }
}

/// One recovery measurement or estimate: restore the newest checkpoint,
/// replay the logical log.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RecoveryReport {
    /// Time to restore the checkpoint image, in seconds.
    pub restore_s: f64,
    /// Time to replay the update stream after restore, in seconds.
    pub replay_s: f64,
    /// Total recovery time, in seconds.
    pub total_s: f64,
    /// `true` for a wall-clock measurement (real engine), `false` for the
    /// simulator's analytic estimate.
    pub measured: bool,
    /// Tick of the restored checkpoint image (measured recoveries only).
    pub restored_from_tick: Option<u64>,
    /// Ticks replayed after restore (measured recoveries only).
    pub ticks_replayed: Option<u64>,
    /// Updates replayed after restore (measured recoveries only).
    pub updates_replayed: Option<u64>,
    /// Whether the recovered state byte-matched the live state at the
    /// crash tick (measured recoveries only).
    pub state_matches: Option<bool>,
    /// Whether the restore came from a peer shard's memory mirror (the
    /// replica tier) instead of disk (measured recoveries only; `None`
    /// for the simulator's estimate).
    pub from_replica: Option<bool>,
}

/// Outcome of the simulator's value-level fidelity checking for one
/// shard: every completed checkpoint's shadow-disk image compared against
/// the state at the checkpoint's start tick.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FidelitySummary {
    /// Checkpoint images verified equal to their start state.
    pub checks_passed: u64,
    /// Human-readable mismatch descriptions (empty on success).
    pub errors: Vec<String>,
}

impl FidelitySummary {
    /// True if every completed checkpoint verified clean.
    pub fn is_clean(&self) -> bool {
        self.errors.is_empty()
    }
}

/// One shard's slice of a run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardReport {
    /// Shard index (0-based, in [`crate::ShardMap`] band order).
    pub shard: u32,
    /// Ticks this shard executed (every shard executes every global tick).
    pub ticks: u64,
    /// Updates routed to this shard.
    pub updates: u64,
    /// The shard's metric core.
    pub summary: RunSummary,
    /// The shard's recovery measurement or estimate, when available.
    pub recovery: Option<RecoveryReport>,
    /// The shard's fidelity-check outcome, when [`RunSpec::fidelity_check`]
    /// was on and the engine performs shadow checking (the simulator).
    pub fidelity: Option<FidelitySummary>,
}

/// Engine-specific extras of a [`RunReport`]. Each backend contributes
/// one variant; the shared comparison surface lives in [`RunSummary`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum EngineDetail {
    /// Cost-model simulator extras.
    Sim(SimRunDetail),
    /// Real disk-backed engine extras.
    Real(RealRunDetail),
}

/// Simulator-specific run detail.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SimRunDetail {
    /// Aggregate virtual wall clock, in seconds: the max over the shards'
    /// independent virtual clocks.
    pub wall_clock_s: f64,
    /// The tick period priced by the virtual clock, in seconds.
    pub tick_period_s: f64,
}

/// Real-engine-specific run detail.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RealRunDetail {
    /// Writer backend that **actually executed** the shards' flush jobs.
    /// Normally the backend the run requested; when a requested backend's
    /// kernel capability probe failed (io_uring on a kernel without it),
    /// this is the fallback that ran instead and
    /// [`RealRunDetail::writer_fallback_from`] names the request — the
    /// report never silently claims a backend that did not run.
    pub writer_backend: WriterBackend,
    /// The requested backend this run *fell back from* when its
    /// capability probe found the kernel lacking (`Some(IoUring)` on a
    /// kernel without io_uring). `None` when the requested backend ran.
    pub writer_fallback_from: Option<WriterBackend>,
    /// Writer threads that served the shards' flush jobs (pool workers,
    /// or the batched engine's single submission/completion loop).
    pub pool_threads: usize,
    /// Checkpoint pipeline depth the run executed at: how many of a
    /// shard's checkpoints the writer could hold in flight at once
    /// (1 = the historical stop-and-wait write path).
    pub pipeline_depth: u32,
    /// Replication factor K of the in-memory recovery tier the run
    /// pushed checkpoint deltas to (0 = the tier was off and every
    /// recovery came from disk).
    pub replication_factor: u32,
    /// Flush jobs the writer completed across the run (all shards).
    pub flush_jobs: u64,
    /// Data `fsync` calls the writer issued across the run. The
    /// durability scheduler attributes every call to exactly one job, so
    /// this is the true call count: equal to [`RealRunDetail::flush_jobs`]
    /// under per-job durability (the thread pool with data syncing on),
    /// lower when cross-shard fsync coalescing merged same-file targets.
    pub data_fsyncs: u64,
    /// `syncfs`-style whole-device barriers the durability scheduler
    /// issued in place of per-file data fsyncs (zero when the device
    /// barrier is off or the platform probe found `syncfs` unusable).
    pub device_syncs: u64,
    /// Job-weighted average occupancy of the batches jobs completed in
    /// (1.0 for the thread pool, which completes jobs one by one).
    pub avg_batch_jobs: f64,
    /// Largest batch any flush job completed in.
    pub max_batch_jobs: u32,
    /// Checkpoint payload bytes the writer put on disk across the run
    /// (object data and segment records, not metadata commits) — the
    /// write-amplification numerator next to the trace's logical update
    /// volume.
    pub bytes_written: u64,
    /// Retry attempts the writer performed on transient I/O faults
    /// (each re-issue of a failed data write / fsync / meta commit;
    /// zero when no faults were injected or the retry budget is 0).
    pub retries: u64,
    /// Operations whose retry budget ran out: the error took the
    /// degradation ladder instead of being masked.
    pub retry_exhausted: u64,
    /// Flush jobs completed through the degradation ladder — on
    /// io_uring, jobs redone synchronously after the ring's dead flag
    /// latched mid-run (zero elsewhere; a capability-probe fallback
    /// is reported via [`RealRunDetail::writer_fallback_from`], not
    /// here).
    pub degraded_jobs: u64,
    /// Submission-queue entries the io_uring backend pushed per
    /// `io_uring_enter` round, job-weighted average (0.0 for backends
    /// that never touch a ring).
    pub avg_sqe_batch: f64,
    /// Largest single submission-queue batch any ring round pushed
    /// (0 for backends that never touch a ring).
    pub max_sqe_batch: u32,
    /// Wall-clock time of the parallel all-shard restore + replay, when
    /// recovery was measured.
    pub recovery_wall_s: Option<f64>,
    /// What a serial shard-after-shard recovery would have cost (the
    /// per-shard totals summed), when recovery was measured.
    pub serial_recovery_s: Option<f64>,
}

impl RealRunDetail {
    /// Data fsync calls per completed flush job — 1.0 under per-job
    /// durability, below 1.0 when the durability scheduler coalesced
    /// same-file targets (pipelined same-shard jobs share one target, so
    /// depth ≥ 2 log runs drop below 1.0), 0.0 when data syncing was
    /// off. Device barriers ([`RealRunDetail::device_syncs`]) are not
    /// counted: they replace per-file calls wholesale.
    pub fn fsyncs_per_job(&self) -> f64 {
        if self.flush_jobs == 0 {
            0.0
        } else {
            self.data_fsyncs as f64 / self.flush_jobs as f64
        }
    }
}

/// The unified result of one experiment, identical in shape across
/// engines: world-level [`RunSummary`], per-shard breakdown (one entry
/// even for unsharded runs), and one [`EngineDetail`] variant.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    /// Algorithm measured.
    pub algorithm: Algorithm,
    /// Engine label (`"sim"`, `"real"`, or a future backend's name).
    pub engine: &'static str,
    /// Number of shards the world was split into.
    pub n_shards: u32,
    /// Global ticks executed.
    pub ticks: u64,
    /// Total updates routed across all shards.
    pub updates: u64,
    /// The world-level metric core.
    pub world: RunSummary,
    /// One report per shard, in shard order (length `n_shards`).
    pub shards: Vec<ShardReport>,
    /// Engine-specific extras.
    pub detail: EngineDetail,
}

impl RunReport {
    /// Recovery time of the world, in seconds, when known.
    pub fn recovery_s(&self) -> Option<f64> {
        self.world.recovery_s
    }

    /// Did every verification the engine performed pass? Covers the
    /// simulator's shadow-disk fidelity checks and the real engine's
    /// recovered-state comparison; `None` if the run verified nothing.
    pub fn verified_consistent(&self) -> Option<bool> {
        let mut verified = None;
        for s in &self.shards {
            if let Some(f) = &s.fidelity {
                verified = Some(verified.unwrap_or(true) && f.is_clean());
            }
            if let Some(m) = s.recovery.as_ref().and_then(|r| r.state_matches) {
                verified = Some(verified.unwrap_or(true) && m);
            }
        }
        verified
    }

    /// One-line human-readable summary in the historical report format.
    pub fn summary(&self) -> String {
        let rec = self
            .world
            .recovery_s
            .map_or_else(|| "    n/a".into(), |r| format!("{r:>7.3} s"));
        format!(
            "{:<28} [{}] x{:<2} shards  overhead {:>9.4} ms  checkpoint {:>7.3} s  recovery {rec}",
            self.algorithm.name(),
            self.engine,
            self.n_shards,
            self.world.avg_overhead_s * 1e3,
            self.world.avg_checkpoint_s,
        )
    }
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Typed failure of [`Run::execute`], spanning every engine: geometry and
/// shard-map problems surface as [`RunError::Core`], invalid
/// configurations as [`RunError::Config`], and real-engine storage
/// failures as [`RunError::Io`] — replacing the historical mix of panics
/// and raw `io::Error`s.
#[derive(Debug)]
pub enum RunError {
    /// Geometry, shard-map or replay failure from the core layer.
    Core(CoreError),
    /// The run description or engine configuration is invalid.
    Config(String),
    /// The real engine hit a storage failure.
    Io(std::io::Error),
    /// The selected engine does not support a requested option.
    Unsupported {
        /// Engine label (`"sim"`, `"real"`, …).
        engine: &'static str,
        /// The unsupported option, human-readable.
        feature: String,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Core(e) => write!(f, "{e}"),
            RunError::Config(msg) => write!(f, "invalid experiment configuration: {msg}"),
            RunError::Io(e) => write!(f, "storage failure: {e}"),
            RunError::Unsupported { engine, feature } => {
                write!(f, "the {engine} engine does not support {feature}")
            }
        }
    }
}

impl std::error::Error for RunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RunError::Core(e) => Some(e),
            RunError::Io(e) => Some(e),
            RunError::Config(_) | RunError::Unsupported { .. } => None,
        }
    }
}

impl From<CoreError> for RunError {
    fn from(e: CoreError) -> Self {
        RunError::Core(e)
    }
}

impl From<std::io::Error> for RunError {
    fn from(e: std::io::Error) -> Self {
        RunError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{CheckpointBackend, FlushCompletion, TickOps};
    use crate::geometry::{CellUpdate, ObjectId, StateGeometry};
    use crate::{Bookkeeper, CheckpointPlan, FlushCursor, TickDriver, UpdateOps};
    use std::convert::Infallible;

    /// A minimal in-crate engine proving the trait is implementable
    /// outside the two real backends (the extensibility claim).
    struct CountingEngine;

    struct NullBackend;

    impl CheckpointBackend for NullBackend {
        type Error = Infallible;

        fn begin_tick(&mut self, _t: u64) -> Result<(), Infallible> {
            Ok(())
        }

        fn cursor(&mut self) -> FlushCursor {
            FlushCursor::START
        }

        fn apply_update(
            &mut self,
            _u: CellUpdate,
            _o: ObjectId,
            _ops: UpdateOps,
        ) -> Result<(), Infallible> {
            Ok(())
        }

        fn end_updates(&mut self, _bk: &Bookkeeper, _ops: &TickOps) -> Result<f64, Infallible> {
            Ok(0.0)
        }

        fn poll_completion(
            &mut self,
            _bk: &Bookkeeper,
        ) -> Result<Option<FlushCompletion>, Infallible> {
            Ok(Some(FlushCompletion {
                duration_s: 0.0,
                objects_written: 0,
                bytes_written: 0,
            }))
        }

        fn start_checkpoint(
            &mut self,
            _bk: &Bookkeeper,
            _plan: &CheckpointPlan,
            _tick: u64,
        ) -> Result<f64, Infallible> {
            Ok(0.0)
        }

        fn end_tick(&mut self, _t: u64) -> Result<(), Infallible> {
            Ok(())
        }

        fn drain(&mut self, bk: &Bookkeeper) -> Result<Option<FlushCompletion>, Infallible> {
            self.poll_completion(bk)
        }
    }

    impl ExperimentEngine for CountingEngine {
        fn run_experiment<T: TraceSpec + ?Sized>(
            &self,
            spec: &RunSpec,
            trace: &T,
        ) -> Result<RunReport, RunError> {
            let mut src = trace.open();
            let run = TickDriver::new(spec.algorithm.spec())
                .with_batching(spec.batching)
                .run(&mut src, &mut NullBackend)
                .expect("infallible");
            let world = RunSummary::from_metrics(run.metrics, None);
            Ok(RunReport {
                algorithm: spec.algorithm,
                engine: "counting",
                n_shards: spec.shards,
                ticks: run.ticks,
                updates: run.updates,
                shards: vec![ShardReport {
                    shard: 0,
                    ticks: run.ticks,
                    updates: run.updates,
                    summary: world.clone(),
                    recovery: None,
                    fidelity: None,
                }],
                world,
                detail: EngineDetail::Sim(SimRunDetail {
                    wall_clock_s: 0.0,
                    tick_period_s: 0.0,
                }),
            })
        }
    }

    struct TinyTrace {
        g: StateGeometry,
        left: u64,
    }

    impl TraceSource for TinyTrace {
        fn geometry(&self) -> StateGeometry {
            self.g
        }

        fn next_tick(&mut self, buf: &mut Vec<CellUpdate>) -> bool {
            buf.clear();
            if self.left == 0 {
                return false;
            }
            self.left -= 1;
            buf.push(CellUpdate::new(0, 0, 7));
            true
        }
    }

    fn tiny_spec() -> impl TraceSpec<Source = TinyTrace> {
        TraceFn(|| TinyTrace {
            g: StateGeometry::test_small(),
            left: 10,
        })
    }

    #[test]
    fn builder_accumulates_the_spec() {
        let run = Run::algorithm(Algorithm::CopyOnUpdate)
            .shards(4)
            .batching(true)
            .fidelity_check(true)
            .pacing(30.0)
            .writer(WriterBackend::AsyncBatched)
            .batch_window(std::time::Duration::from_micros(250))
            .pipeline_depth(2)
            .replication(1)
            .retry_max(2)
            .retry_backoff(std::time::Duration::from_micros(100));
        let spec = run.spec();
        assert_eq!(spec.retry_max, Some(2));
        assert_eq!(spec.retry_backoff_us, Some(100));
        assert_eq!(spec.algorithm, Algorithm::CopyOnUpdate);
        assert_eq!(spec.shards, 4);
        assert!(spec.batching);
        assert!(spec.fidelity_check);
        assert_eq!(spec.pacing_hz, Some(30.0));
        assert_eq!(spec.writer, Some(WriterBackend::AsyncBatched));
        assert_eq!(spec.batch_window_us, Some(250));
        assert_eq!(spec.pipeline_depth, Some(2));
        assert_eq!(spec.replication, Some(1));
        assert_eq!(WriterBackend::default(), WriterBackend::ThreadPool);
        assert_eq!(WriterBackend::AsyncBatched.to_string(), "async-batched");
        assert_eq!(WriterBackend::IoUring.to_string(), "io-uring");
        assert_eq!(WriterBackend::ALL.len(), 3);
    }

    #[test]
    fn zero_shards_and_bad_pacing_are_config_errors() {
        let err = Run::algorithm(Algorithm::NaiveSnapshot)
            .engine(CountingEngine)
            .trace(tiny_spec())
            .shards(0)
            .execute()
            .unwrap_err();
        assert!(matches!(err, RunError::Config(_)), "{err}");
        let err = Run::algorithm(Algorithm::NaiveSnapshot)
            .engine(CountingEngine)
            .trace(tiny_spec())
            .pacing(f64::NAN)
            .execute()
            .unwrap_err();
        assert!(matches!(err, RunError::Config(_)), "{err}");
        assert!(err.to_string().contains("pacing"));
        let err = Run::algorithm(Algorithm::NaiveSnapshot)
            .engine(CountingEngine)
            .trace(tiny_spec())
            .pipeline_depth(0)
            .execute()
            .unwrap_err();
        assert!(matches!(err, RunError::Config(_)), "{err}");
        assert!(err.to_string().contains("pipeline depth"));
    }

    #[test]
    fn a_custom_engine_plugs_into_the_builder() {
        let report = Run::algorithm(Algorithm::CopyOnUpdate)
            .engine(CountingEngine)
            .trace(tiny_spec())
            .execute()
            .expect("custom engine runs");
        assert_eq!(report.engine, "counting");
        assert_eq!(report.ticks, 10);
        assert_eq!(report.updates, 10);
        assert_eq!(report.shards.len(), 1);
        assert!(report.verified_consistent().is_none());
        assert!(report.summary().contains("[counting]"));
    }

    #[test]
    fn execute_is_repeatable() {
        let run = Run::algorithm(Algorithm::NaiveSnapshot)
            .engine(CountingEngine)
            .trace(tiny_spec());
        let a = run.execute().expect("first run");
        let b = run.execute().expect("second run");
        assert_eq!(a.ticks, b.ticks);
        assert_eq!(a.world.metrics.ticks, b.world.metrics.ticks);
    }

    #[test]
    fn verified_consistent_aggregates_shard_outcomes() {
        let summary = RunSummary::from_metrics(RunMetrics::default(), None);
        let shard = |fidelity: Option<bool>, matches: Option<bool>| ShardReport {
            shard: 0,
            ticks: 0,
            updates: 0,
            summary: summary.clone(),
            recovery: matches.map(|m| RecoveryReport {
                restore_s: 0.0,
                replay_s: 0.0,
                total_s: 0.0,
                measured: true,
                restored_from_tick: None,
                ticks_replayed: None,
                updates_replayed: None,
                state_matches: Some(m),
                from_replica: None,
            }),
            fidelity: fidelity.map(|clean: bool| FidelitySummary {
                checks_passed: 1,
                errors: if clean { vec![] } else { vec!["boom".into()] },
            }),
        };
        let report = |shards| RunReport {
            algorithm: Algorithm::CopyOnUpdate,
            engine: "sim",
            n_shards: 1,
            ticks: 0,
            updates: 0,
            world: summary.clone(),
            shards,
            detail: EngineDetail::Sim(SimRunDetail {
                wall_clock_s: 0.0,
                tick_period_s: 0.0,
            }),
        };
        assert_eq!(report(vec![shard(None, None)]).verified_consistent(), None);
        assert_eq!(
            report(vec![shard(Some(true), None), shard(None, Some(true))]).verified_consistent(),
            Some(true)
        );
        assert_eq!(
            report(vec![shard(Some(true), None), shard(Some(false), None)]).verified_consistent(),
            Some(false)
        );
        assert_eq!(
            report(vec![shard(None, Some(false))]).verified_consistent(),
            Some(false)
        );
    }

    #[test]
    fn errors_are_displayed_and_sourced() {
        let e = RunError::from(CoreError::NoCheckpoint);
        assert!(e.to_string().contains("no completed checkpoint"));
        assert!(std::error::Error::source(&e).is_some());
        let e = RunError::from(std::io::Error::other("disk gone"));
        assert!(e.to_string().contains("disk gone"));
        let e = RunError::Unsupported {
            engine: "sim",
            feature: "levitation".into(),
        };
        assert!(e.to_string().contains("sim"));
        assert!(std::error::Error::source(&e).is_none());
    }
}
