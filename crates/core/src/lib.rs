//! # mmoc-core — checkpoint recovery primitives for MMO game state
//!
//! This crate implements the checkpointing algorithmic framework of
//! *An Evaluation of Checkpoint Recovery for Massively Multiplayer Online
//! Games* (Vaz Salles et al., VLDB 2009), together with the six consistent
//! checkpointing algorithms the paper evaluates:
//!
//! * **Naive-Snapshot** — eager copy of the full state at a tick boundary.
//! * **Dribble-and-Copy-on-Update** — asynchronous sweep over all objects
//!   with copy-on-update for objects the sweep has not reached yet.
//! * **Atomic-Copy-Dirty-Objects** — eager copy of only the dirty objects,
//!   double-backup disk organization.
//! * **Partial-Redo** — eager copy of dirty objects, log-structured disk
//!   organization with periodic full flushes.
//! * **Copy-on-Update** — copy-on-update restricted to dirty objects,
//!   double-backup disk organization (the paper's overall winner).
//! * **Copy-on-Update-Partial-Redo** — copy-on-update of dirty objects,
//!   log-structured organization with periodic full flushes.
//!
//! The crate deliberately contains **no timing and no I/O**: it provides the
//! bookkeeping state machines ([`Bookkeeper`]), the state representation
//! ([`StateTable`]), the logical action log ([`ActionLog`]) and recovery
//! replay ([`recovery`]). The cost-model simulator (`mmoc-sim`) and the real
//! disk-backed engine (`mmoc-storage`) both drive these state machines and
//! attach their own notion of cost (virtual nanoseconds vs. wall-clock time).
//!
//! ## The framework
//!
//! The paper's *Checkpointing Algorithmic Framework* runs at every tick
//! boundary of the game's discrete-event simulation loop:
//!
//! ```text
//! on end of game tick:
//!   if last checkpoint finished:
//!     Ocopy <- Copy-To-Memory(Osync ⊆ Oall)          // synchronous pause
//!     async Write-Copies-To-Stable-Storage(Ocopy)
//!     register Handle-Update for update events
//!     async Write-Objects-To-Stable-Storage(Oall \ Osync)
//! on each update u of object o:
//!   Handle-Update(u, o)
//! ```
//!
//! [`Bookkeeper::begin_checkpoint`] corresponds to the tick-boundary branch
//! and returns a [`CheckpointPlan`] describing the synchronous copy and the
//! asynchronous flush job; [`Bookkeeper::on_update`] corresponds to
//! `Handle-Update` and returns the [`UpdateOps`] the update incurred.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod algorithms;
pub mod bitmap;
pub mod dirty;
pub mod driver;
pub mod error;
pub mod geometry;
pub mod log;
pub mod metrics;
pub mod plan;
pub mod recovery;
pub mod run;
pub mod sharding;
pub mod table;
pub mod trace;

pub use algorithms::bookkeeper::{Bookkeeper, FlushCursor, UpdateOps};
pub use algorithms::{Algorithm, AlgorithmSpec, CopyTiming, DiskOrg, ObjectsCopied, Subroutine};
pub use driver::{CheckpointBackend, DriverRun, DriverStep, FlushCompletion, TickDriver, TickOps};
pub use error::CoreError;
pub use geometry::{CellAddr, CellUpdate, ObjectId, StateGeometry};
pub use log::ActionLog;
pub use metrics::{sample_quantile, CheckpointRecord, RunMetrics, TickMetrics};
pub use plan::{CheckpointPlan, CursorKind, FlushJob, SyncCopy};
pub use recovery::{recover, CheckpointImage, RecoveryOutcome};
pub use run::{
    EngineDetail, ExperimentEngine, FidelitySummary, RealRunDetail, RecoveryReport, Run, RunError,
    RunReport, RunSpec, RunSummary, ShardReport, SimRunDetail, TraceFn, TraceSpec, WriterBackend,
};
pub use sharding::{ShardFilter, ShardMap, ShardedDriver, ShardedRun};
pub use table::StateTable;
pub use trace::TraceSource;
