//! The bookkeeping state machine shared by all six algorithms.
//!
//! [`Bookkeeper`] tracks dirty bits, flush sets and copied markers, and
//! answers the two questions both engines ask:
//!
//! 1. *A checkpoint just started — what must be copied and flushed?*
//!    ([`Bookkeeper::begin_checkpoint`] → [`CheckpointPlan`])
//! 2. *An object was just updated — what work did the algorithm incur?*
//!    ([`Bookkeeper::on_update`] → [`UpdateOps`])
//!
//! The bookkeeper is deliberately time-free: the cost-model simulator maps
//! [`UpdateOps`] to virtual nanoseconds (`Obit`, `Olock`, `ΔTsync(1)`) and
//! the real engine maps them to actual locks and `memcpy`s.
//!
//! ## Correctness argument (per algorithm)
//!
//! All six algorithms must produce, at checkpoint completion, a disk image
//! equal to the state at checkpoint *start* (tick-consistency):
//!
//! * **Eager algorithms** copy their write set synchronously at the start
//!   tick boundary; the writer reads only that private snapshot.
//! * **Sweep algorithms** write live values, except that the first update
//!   to a not-yet-flushed member of the flush set saves the pre-update
//!   value, which the writer then uses. Updates to already-flushed objects
//!   only re-mark dirty bits for later checkpoints.
//!
//! Dirty bits are cleared at checkpoint start and re-marked by concurrent
//! updates, which is exactly the set of objects whose live value can
//! diverge from the image being written. The `recovery_roundtrip`
//! property tests in `tests/` exercise this invariant with a value-level
//! shadow disk.

use std::collections::VecDeque;

use crate::algorithms::{Algorithm, AlgorithmSpec, DiskOrg};
use crate::bitmap::BitVec;
use crate::geometry::ObjectId;
use crate::plan::{CheckpointPlan, CursorKind, FlushJob, SyncCopy};

/// Work incurred by one update, to be priced by the engine.
///
/// In the paper's cost model (§4.2) this prices to
/// `bit_ops * Obit + lock * Olock + copy * ΔTsync(1)` where
/// `ΔTsync(1) = Omem + Sobj / Bmem`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UpdateOps {
    /// Dirty/flushed bit tests and sets (at most 1 per update in the
    /// paper's model).
    pub bit_ops: u8,
    /// Whether the update had to lock out the asynchronous writer.
    pub lock: bool,
    /// Whether the update copied the object's pre-update value.
    pub copy: bool,
}

/// The asynchronous writer's progress, measured in flushed *slots*.
///
/// A slot is one step of the writer's sweep: an object index for
/// [`CursorKind::ByIndex`] jobs, a position in the sorted dirty list for
/// [`CursorKind::ByPosition`] jobs. Engines compute the frontier from
/// elapsed time (simulator) or publish it from the writer thread (real
/// engine).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlushCursor {
    /// Number of fully flushed slots.
    pub frontier: u64,
}

impl FlushCursor {
    /// A cursor at the beginning of the sweep (nothing flushed).
    pub const START: FlushCursor = FlushCursor { frontier: 0 };

    /// Convenience constructor.
    pub fn at(frontier: u64) -> Self {
        FlushCursor { frontier }
    }
}

/// What kind of sweep the in-flight checkpoint performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SweepKind {
    /// No copy-on-update coordination (eager snapshot or nothing to write).
    NoSweep,
    /// All objects, in index order (Dribble, and full flushes).
    AllByIndex,
    /// Dirty objects; the writer sweeps the whole file in index order,
    /// skipping clean objects (double-backup sorted writes).
    DirtyByIndex,
    /// Dirty objects; the writer walks the sorted dirty list (log writes).
    DirtyByPosition,
}

#[derive(Debug)]
struct InFlight {
    full_flush: bool,
    sweep: SweepKind,
}

/// Bookkeeping state machine for one algorithm over one state table.
#[derive(Debug)]
pub struct Bookkeeper {
    spec: AlgorithmSpec,
    n_objects: u32,
    /// Per-backup dirty bits (double-backup dirty algorithms: ACDO, COU).
    dirty_double: Option<crate::dirty::DoubleDirty>,
    /// Single dirty bitmap (log dirty algorithms: PR, COUPR).
    dirty_log: Option<BitVec>,
    /// Copied-or-flushed marker for the in-flight sweep.
    handled: BitVec,
    /// Membership snapshot for dirty sweeps (which objects the in-flight
    /// checkpoint writes).
    flush_set: BitVec,
    /// Sorted object ids for `DirtyByPosition` sweeps.
    flush_list: Vec<u32>,
    /// Backup the in-flight (or next) checkpoint targets.
    target: usize,
    /// Completed checkpoint count; the sequence number of the next
    /// checkpoint to *start* is `seq + in_flight.len()`.
    seq: u64,
    /// Checkpoints begun but not yet finished, oldest first. More than
    /// one entry only under checkpoint pipelining, which
    /// [`Bookkeeper::can_pipeline_next`] restricts to log-organized
    /// no-sweep checkpoints; sweeps and double-backup checkpoints are
    /// pipeline barriers.
    in_flight: VecDeque<InFlight>,
}

impl Bookkeeper {
    /// Create a bookkeeper for `n_objects` atomic objects.
    ///
    /// Both on-disk backups are assumed to hold the *initial* state (the
    /// engines pre-load them), so all dirty bits start clear.
    pub fn new(spec: AlgorithmSpec, n_objects: u32) -> Self {
        let dirty_double = (spec.tracks_dirty && spec.disk_org == DiskOrg::DoubleBackup)
            .then(|| crate::dirty::DoubleDirty::new(n_objects));
        let dirty_log =
            (spec.tracks_dirty && spec.disk_org == DiskOrg::Log).then(|| BitVec::new(n_objects));
        Bookkeeper {
            spec,
            n_objects,
            dirty_double,
            dirty_log,
            handled: BitVec::new(n_objects),
            flush_set: BitVec::new(n_objects),
            flush_list: Vec::new(),
            target: 0,
            seq: 0,
            in_flight: VecDeque::new(),
        }
    }

    /// The algorithm's specification.
    pub fn spec(&self) -> &AlgorithmSpec {
        &self.spec
    }

    /// Number of atomic objects tracked.
    pub fn n_objects(&self) -> u32 {
        self.n_objects
    }

    /// Completed checkpoint count (the sequence number of the next
    /// checkpoint to start when nothing is in flight).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Backup index (0 or 1) the in-flight or next checkpoint targets.
    /// Only meaningful for double-backup organizations.
    pub fn target_backup(&self) -> usize {
        self.target
    }

    /// Is a checkpoint currently being written?
    pub fn is_in_flight(&self) -> bool {
        !self.in_flight.is_empty()
    }

    /// Checkpoints begun but not yet finished.
    pub fn in_flight_count(&self) -> usize {
        self.in_flight.len()
    }

    /// Whether another checkpoint may safely begin while the current
    /// in-flight queue is non-empty.
    ///
    /// Pipelining is sound only when neither the queued checkpoints nor
    /// the next one coordinate with concurrent updates through shared
    /// sweep state: log-organized *eager* (no-sweep) checkpoints carry a
    /// private copy of their write set, and successive log segments
    /// coalesce under one sync. Everything else is a barrier:
    ///
    /// * double-backup checkpoints alternate targets at finish, so an
    ///   overlapping write could tear the fallback image;
    /// * sweeps share `handled`/`flush_set`/`flush_list` and the writer
    ///   frontier, which exist once per bookkeeper.
    pub fn can_pipeline_next(&self) -> bool {
        self.spec.disk_org == DiskOrg::Log
            && self.in_flight.iter().all(|f| f.sweep == SweepKind::NoSweep)
            && !self.next_plan_sweeps()
    }

    /// Would [`Bookkeeper::begin_checkpoint`], called now, produce a
    /// sweep? Mirrors the plan construction below without mutating.
    fn next_plan_sweeps(&self) -> bool {
        let next_seq = self.seq + self.in_flight.len() as u64;
        let full_flush = self
            .spec
            .full_flush_period
            .is_some_and(|c| (next_seq + 1).is_multiple_of(u64::from(c)));
        match (self.spec.algorithm, full_flush) {
            (Algorithm::NaiveSnapshot | Algorithm::AtomicCopyDirtyObjects, _)
            | (Algorithm::PartialRedo, false) => false,
            (Algorithm::DribbleAndCopyOnUpdate, _)
            | (Algorithm::PartialRedo | Algorithm::CopyOnUpdatePartialRedo, true) => true,
            (Algorithm::CopyOnUpdate, _) => self
                .dirty_double
                .as_ref()
                .is_some_and(|d| d.count_dirty(self.target) > 0),
            (Algorithm::CopyOnUpdatePartialRedo, false) => {
                self.dirty_log.as_ref().is_some_and(|d| d.count_ones() > 0)
            }
        }
    }

    /// Number of objects currently dirty with respect to the given backup
    /// (double-backup algorithms) or since the last checkpoint (log
    /// algorithms). Returns 0 for algorithms without dirty tracking.
    pub fn dirty_count(&self, backup: usize) -> u32 {
        if let Some(d) = &self.dirty_double {
            d.count_dirty(backup)
        } else if let Some(d) = &self.dirty_log {
            d.count_ones()
        } else {
            0
        }
    }

    /// Start a checkpoint at a tick boundary. Panics if one is in flight
    /// and overlapping it would be unsound (see
    /// [`Bookkeeper::can_pipeline_next`]); the driver enforces the
    /// configured pipeline depth on top of this safety gate.
    pub fn begin_checkpoint(&mut self) -> CheckpointPlan {
        assert!(
            self.in_flight.is_empty() || self.can_pipeline_next(),
            "begin_checkpoint while a checkpoint is in flight"
        );
        let seq = self.seq + self.in_flight.len() as u64;
        let full_flush = self
            .spec
            .full_flush_period
            .is_some_and(|c| (seq + 1).is_multiple_of(u64::from(c)));

        let (sync_copy, flush, sweep) = match (self.spec.algorithm, full_flush) {
            (Algorithm::NaiveSnapshot, _) => {
                let sync = SyncCopy {
                    objects: self.n_objects,
                    runs: 1,
                };
                let flush = FlushJob::Snapshot {
                    objects: self.n_objects,
                    org: DiskOrg::DoubleBackup,
                };
                self.flush_set.set_all();
                (Some(sync), flush, SweepKind::NoSweep)
            }
            (Algorithm::AtomicCopyDirtyObjects, _) => {
                let d = self.dirty_double.as_mut().expect("ACDO tracks dirty");
                let snapshot = d.begin_checkpoint(self.target);
                let objects = snapshot.count_ones();
                let runs = snapshot.count_runs();
                self.flush_set = snapshot;
                let flush = if objects == 0 {
                    FlushJob::None
                } else {
                    FlushJob::Snapshot {
                        objects,
                        org: DiskOrg::DoubleBackup,
                    }
                };
                let sync = (objects > 0).then_some(SyncCopy { objects, runs });
                (sync, flush, SweepKind::NoSweep)
            }
            (Algorithm::PartialRedo, false) => {
                let d = self.dirty_log.as_mut().expect("PR tracks dirty");
                let objects = d.count_ones();
                let runs = d.count_runs();
                let snapshot = d.clone();
                d.clear_all();
                self.flush_set = snapshot;
                let flush = if objects == 0 {
                    FlushJob::None
                } else {
                    FlushJob::Snapshot {
                        objects,
                        org: DiskOrg::Log,
                    }
                };
                let sync = (objects > 0).then_some(SyncCopy { objects, runs });
                (sync, flush, SweepKind::NoSweep)
            }
            (Algorithm::DribbleAndCopyOnUpdate, _)
            | (Algorithm::PartialRedo | Algorithm::CopyOnUpdatePartialRedo, true) => {
                // A Dribble-style sweep of all objects. The partial-redo
                // algorithms run this as their periodic full flush.
                self.handled.clear_all();
                self.flush_set.set_all();
                if let Some(d) = self.dirty_log.as_mut() {
                    d.clear_all();
                }
                let flush = FlushJob::Sweep {
                    objects: self.n_objects,
                    org: DiskOrg::Log,
                    cursor: CursorKind::ByIndex,
                };
                (None, flush, SweepKind::AllByIndex)
            }
            (Algorithm::CopyOnUpdate, _) => {
                let d = self.dirty_double.as_mut().expect("COU tracks dirty");
                self.flush_set = d.begin_checkpoint(self.target);
                self.handled.clear_all();
                let objects = self.flush_set.count_ones();
                let flush = if objects == 0 {
                    FlushJob::None
                } else {
                    FlushJob::Sweep {
                        objects,
                        org: DiskOrg::DoubleBackup,
                        cursor: CursorKind::ByIndex,
                    }
                };
                let sweep = if objects == 0 {
                    SweepKind::NoSweep
                } else {
                    SweepKind::DirtyByIndex
                };
                (None, flush, sweep)
            }
            (Algorithm::CopyOnUpdatePartialRedo, false) => {
                let d = self.dirty_log.as_mut().expect("COUPR tracks dirty");
                self.flush_set = d.clone();
                d.clear_all();
                self.handled.clear_all();
                self.flush_list.clear();
                self.flush_list.extend(self.flush_set.iter_ones());
                let objects = self.flush_list.len() as u32;
                let flush = if objects == 0 {
                    FlushJob::None
                } else {
                    FlushJob::Sweep {
                        objects,
                        org: DiskOrg::Log,
                        cursor: CursorKind::ByPosition,
                    }
                };
                let sweep = if objects == 0 {
                    SweepKind::NoSweep
                } else {
                    SweepKind::DirtyByPosition
                };
                (None, flush, sweep)
            }
        };

        self.in_flight.push_back(InFlight { full_flush, sweep });
        CheckpointPlan {
            seq,
            full_flush,
            sync_copy,
            flush,
        }
    }

    /// Record that the *oldest* in-flight flush completed; completions
    /// drain in begin order.
    pub fn finish_checkpoint(&mut self) {
        assert!(
            self.in_flight.pop_front().is_some(),
            "finish_checkpoint without a checkpoint in flight"
        );
        if self.spec.disk_org == DiskOrg::DoubleBackup {
            self.target ^= 1;
        }
        self.seq += 1;
    }

    /// Handle one object update.
    ///
    /// `cursor` is the writer's current progress (ignored when no sweep is
    /// active). Returns the work incurred.
    #[inline]
    pub fn on_update(&mut self, obj: ObjectId, cursor: FlushCursor) -> UpdateOps {
        let mut ops = UpdateOps::default();

        // Dirty-bit maintenance runs on every update for algorithms that
        // checkpoint dirty objects, whether or not a checkpoint is active.
        if let Some(d) = &mut self.dirty_double {
            d.mark(obj);
            ops.bit_ops = 1;
        } else if let Some(d) = &mut self.dirty_log {
            d.set(obj.0);
            ops.bit_ops = 1;
        }

        // Only sweeps coordinate with updates, and a sweep is always the
        // *sole* in-flight checkpoint (sweeps are pipeline barriers), so
        // inspecting the queue front covers every case: pipelined queues
        // hold only no-sweep entries, which return early below.
        let Some(in_flight) = self.in_flight.front() else {
            return ops;
        };

        let participates = match in_flight.sweep {
            SweepKind::NoSweep => return ops,
            SweepKind::AllByIndex => true,
            SweepKind::DirtyByIndex | SweepKind::DirtyByPosition => self.flush_set.get(obj.0),
        };
        // The flushed-bit test of the copy-on-update handler.
        ops.bit_ops = 1;
        if !participates || self.handled.get(obj.0) {
            return ops;
        }

        let flushed = match in_flight.sweep {
            SweepKind::AllByIndex | SweepKind::DirtyByIndex => u64::from(obj.0) < cursor.frontier,
            SweepKind::DirtyByPosition => {
                let f = cursor.frontier as usize;
                f >= self.flush_list.len() || obj.0 < self.flush_list[f]
            }
            SweepKind::NoSweep => unreachable!(),
        };
        // Mark handled either way: if the writer already flushed the object
        // its bit is set (the writer set it); otherwise we copy it now and
        // set the bit ourselves.
        self.handled.set(obj.0);
        if !flushed {
            ops.lock = true;
            ops.copy = true;
        }
        ops
    }

    /// The object the in-flight sweep writes at a given slot, if any.
    ///
    /// `ByIndex` sweeps have one slot per object index (dirty sweeps skip
    /// clean slots and return `None`); `ByPosition` sweeps have one slot
    /// per dirty-list entry. Engines use this to maintain value-accurate
    /// shadow disks and to drive the real writer.
    pub fn sweep_object_at(&self, slot: u64) -> Option<ObjectId> {
        let in_flight = self.in_flight.front()?;
        match in_flight.sweep {
            SweepKind::NoSweep => None,
            SweepKind::AllByIndex => {
                (slot < u64::from(self.n_objects)).then_some(ObjectId(slot as u32))
            }
            SweepKind::DirtyByIndex => {
                if slot < u64::from(self.n_objects) && self.flush_set.get(slot as u32) {
                    Some(ObjectId(slot as u32))
                } else {
                    None
                }
            }
            SweepKind::DirtyByPosition => self.flush_list.get(slot as usize).map(|&o| ObjectId(o)),
        }
    }

    /// Total slots of the in-flight sweep (`None` if no sweep is active):
    /// the frontier runs from 0 to this value.
    pub fn sweep_slots(&self) -> Option<u64> {
        let in_flight = self.in_flight.front()?;
        match in_flight.sweep {
            SweepKind::NoSweep => None,
            SweepKind::AllByIndex | SweepKind::DirtyByIndex => Some(u64::from(self.n_objects)),
            SweepKind::DirtyByPosition => Some(self.flush_list.len() as u64),
        }
    }

    /// Whether the in-flight checkpoint is a periodic full flush. (Full
    /// flushes are sweeps, hence always the sole in-flight entry.)
    pub fn in_flight_full_flush(&self) -> bool {
        self.in_flight.front().is_some_and(|f| f.full_flush)
    }

    /// The set of objects the in-flight checkpoint writes (all bits set
    /// for full-state checkpoints). Only meaningful while a checkpoint is
    /// in flight; engines use it for eager copies and shadow-disk checks.
    pub fn flush_set(&self) -> &BitVec {
        &self.flush_set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::Algorithm;

    const N: u32 = 100;

    fn bk(alg: Algorithm) -> Bookkeeper {
        Bookkeeper::new(alg.spec(), N)
    }

    #[test]
    fn naive_plan_copies_everything_every_time() {
        let mut b = bk(Algorithm::NaiveSnapshot);
        for seq in 0..3 {
            let plan = b.begin_checkpoint();
            assert_eq!(plan.seq, seq);
            assert_eq!(
                plan.sync_copy,
                Some(SyncCopy {
                    objects: N,
                    runs: 1
                })
            );
            assert!(matches!(
                plan.flush,
                FlushJob::Snapshot {
                    objects: 100,
                    org: DiskOrg::DoubleBackup
                }
            ));
            // Updates cost nothing for Naive-Snapshot.
            let ops = b.on_update(ObjectId(5), FlushCursor::START);
            assert_eq!(ops, UpdateOps::default());
            b.finish_checkpoint();
        }
    }

    #[test]
    fn naive_alternates_backups() {
        let mut b = bk(Algorithm::NaiveSnapshot);
        assert_eq!(b.target_backup(), 0);
        b.begin_checkpoint();
        b.finish_checkpoint();
        assert_eq!(b.target_backup(), 1);
        b.begin_checkpoint();
        b.finish_checkpoint();
        assert_eq!(b.target_backup(), 0);
    }

    #[test]
    fn acdo_checkpoints_only_dirty_objects() {
        let mut b = bk(Algorithm::AtomicCopyDirtyObjects);
        // Nothing dirty: empty checkpoint.
        let plan = b.begin_checkpoint();
        assert_eq!(plan.sync_copy, None);
        assert_eq!(plan.flush, FlushJob::None);
        b.finish_checkpoint();

        // Dirty three objects, two contiguous.
        for i in [10u32, 11, 40] {
            let ops = b.on_update(ObjectId(i), FlushCursor::START);
            assert_eq!(ops.bit_ops, 1);
            assert!(!ops.copy);
        }
        let plan = b.begin_checkpoint();
        assert_eq!(
            plan.sync_copy,
            Some(SyncCopy {
                objects: 3,
                runs: 2
            })
        );
        assert_eq!(plan.flush.objects(), 3);
        b.finish_checkpoint();
    }

    #[test]
    fn acdo_alternating_backups_see_their_own_dirty_sets() {
        let mut b = bk(Algorithm::AtomicCopyDirtyObjects);
        b.on_update(ObjectId(1), FlushCursor::START);
        // Checkpoint to backup 0 takes object 1.
        let plan = b.begin_checkpoint();
        assert_eq!(plan.flush.objects(), 1);
        b.finish_checkpoint();
        // Backup 1 still owes object 1.
        let plan = b.begin_checkpoint();
        assert_eq!(plan.flush.objects(), 1, "object 1 still dirty for backup 1");
        b.finish_checkpoint();
        // Now both backups are clean.
        let plan = b.begin_checkpoint();
        assert_eq!(plan.flush, FlushJob::None);
    }

    #[test]
    fn update_during_checkpoint_is_captured_by_next_one() {
        let mut b = bk(Algorithm::AtomicCopyDirtyObjects);
        b.on_update(ObjectId(7), FlushCursor::START);
        b.begin_checkpoint();
        // Updated again while the checkpoint writes.
        b.on_update(ObjectId(7), FlushCursor::START);
        b.finish_checkpoint();
        // Backup 1's checkpoint must include it...
        let plan = b.begin_checkpoint();
        assert_eq!(plan.flush.objects(), 1);
        b.finish_checkpoint();
        // ...and backup 0's too, because the update arrived after backup
        // 0's snapshot was taken.
        let plan = b.begin_checkpoint();
        assert_eq!(plan.flush.objects(), 1);
    }

    #[test]
    fn cou_copies_only_unflushed_dirty_objects() {
        let mut b = bk(Algorithm::CopyOnUpdate);
        for i in [3u32, 50, 80] {
            b.on_update(ObjectId(i), FlushCursor::START);
        }
        let plan = b.begin_checkpoint();
        assert_eq!(plan.sync_copy, None, "COU never copies eagerly");
        assert!(plan.flush.is_sweep());
        assert_eq!(plan.flush.objects(), 3);

        // Writer has flushed indexes < 40: object 3 is already on disk, so
        // updating it costs only a bit test.
        let ops = b.on_update(ObjectId(3), FlushCursor::at(40));
        assert_eq!((ops.bit_ops, ops.lock, ops.copy), (1, false, false));

        // Object 50 is dirty and unflushed: first touch copies...
        let ops = b.on_update(ObjectId(50), FlushCursor::at(40));
        assert_eq!((ops.bit_ops, ops.lock, ops.copy), (1, true, true));
        // ...second touch only tests the bit.
        let ops = b.on_update(ObjectId(50), FlushCursor::at(40));
        assert_eq!((ops.bit_ops, ops.lock, ops.copy), (1, false, false));

        // Object 80 is dirty and unflushed: copy on first touch.
        let ops = b.on_update(ObjectId(80), FlushCursor::at(40));
        assert_eq!((ops.bit_ops, ops.lock, ops.copy), (1, true, true));
        // Objects 60 and 90 were clean at checkpoint start: not in the
        // flush set, so the writer skips them and no copy is ever needed.
        let ops = b.on_update(ObjectId(60), FlushCursor::at(40));
        assert_eq!((ops.bit_ops, ops.lock, ops.copy), (1, false, false));
        let ops = b.on_update(ObjectId(90), FlushCursor::at(40));
        assert!(!ops.copy);
    }

    #[test]
    fn cou_sweep_slots_span_the_file() {
        let mut b = bk(Algorithm::CopyOnUpdate);
        b.on_update(ObjectId(10), FlushCursor::START);
        b.on_update(ObjectId(20), FlushCursor::START);
        b.begin_checkpoint();
        // Double-backup sweeps have one slot per file index.
        assert_eq!(b.sweep_slots(), Some(u64::from(N)));
        assert_eq!(b.sweep_object_at(10), Some(ObjectId(10)));
        assert_eq!(b.sweep_object_at(11), None, "clean slots are skipped");
        assert_eq!(b.sweep_object_at(20), Some(ObjectId(20)));
    }

    #[test]
    fn dribble_copies_everything_on_first_touch() {
        let mut b = bk(Algorithm::DribbleAndCopyOnUpdate);
        // Outside a checkpoint, updates are free (no dirty tracking).
        let ops = b.on_update(ObjectId(1), FlushCursor::START);
        assert_eq!(ops, UpdateOps::default());

        let plan = b.begin_checkpoint();
        assert_eq!(plan.flush.objects(), N);
        assert!(plan.flush.is_sweep());
        assert_eq!(b.sweep_slots(), Some(u64::from(N)));

        // Every object participates: even one never updated before.
        let ops = b.on_update(ObjectId(99), FlushCursor::at(50));
        assert_eq!((ops.bit_ops, ops.lock, ops.copy), (1, true, true));
        // Already flushed object: bit test only.
        let ops = b.on_update(ObjectId(7), FlushCursor::at(50));
        assert_eq!((ops.bit_ops, ops.lock, ops.copy), (1, false, false));
    }

    #[test]
    fn partial_redo_full_flushes_on_schedule() {
        let spec = Algorithm::PartialRedo.spec_with_flush_period(3);
        let mut b = Bookkeeper::new(spec, N);
        // Checkpoints 0, 1 normal; 2 full flush; 3, 4 normal; 5 full flush.
        for seq in 0..6u64 {
            b.on_update(ObjectId((seq % 64) as u32), FlushCursor::START);
            let plan = b.begin_checkpoint();
            let expect_full = seq % 3 == 2;
            assert_eq!(plan.full_flush, expect_full, "seq {seq}");
            if expect_full {
                assert_eq!(plan.flush.objects(), N);
                assert!(plan.flush.is_sweep());
            } else {
                assert!(!plan.flush.is_sweep());
            }
            b.finish_checkpoint();
        }
    }

    #[test]
    fn partial_redo_normal_checkpoints_are_eager_and_logged() {
        let mut b = bk(Algorithm::PartialRedo);
        b.on_update(ObjectId(2), FlushCursor::START);
        b.on_update(ObjectId(3), FlushCursor::START);
        let plan = b.begin_checkpoint();
        assert_eq!(
            plan.sync_copy,
            Some(SyncCopy {
                objects: 2,
                runs: 1
            })
        );
        assert_eq!(
            plan.flush,
            FlushJob::Snapshot {
                objects: 2,
                org: DiskOrg::Log
            }
        );
        // No copy-on-update during normal PR checkpoints.
        let ops = b.on_update(ObjectId(2), FlushCursor::START);
        assert_eq!((ops.bit_ops, ops.lock, ops.copy), (1, false, false));
    }

    #[test]
    fn coupr_uses_position_cursor_over_sorted_list() {
        let mut b = bk(Algorithm::CopyOnUpdatePartialRedo);
        for i in [30u32, 10, 70] {
            b.on_update(ObjectId(i), FlushCursor::START);
        }
        let plan = b.begin_checkpoint();
        assert_eq!(
            plan.flush,
            FlushJob::Sweep {
                objects: 3,
                org: DiskOrg::Log,
                cursor: CursorKind::ByPosition
            }
        );
        assert_eq!(b.sweep_slots(), Some(3));
        // The list is sorted by object id regardless of update order.
        assert_eq!(b.sweep_object_at(0), Some(ObjectId(10)));
        assert_eq!(b.sweep_object_at(1), Some(ObjectId(30)));
        assert_eq!(b.sweep_object_at(2), Some(ObjectId(70)));
        assert_eq!(b.sweep_object_at(3), None);

        // Frontier 1: only object 10 flushed.
        let ops = b.on_update(ObjectId(10), FlushCursor::at(1));
        assert!(!ops.copy, "object 10 already flushed");
        let ops = b.on_update(ObjectId(30), FlushCursor::at(1));
        assert!(ops.copy, "object 30 not yet flushed");
        let ops = b.on_update(ObjectId(70), FlushCursor::at(3));
        assert!(!ops.copy, "frontier past the end means all flushed");
    }

    #[test]
    fn dirty_counts_are_queryable() {
        let mut b = bk(Algorithm::CopyOnUpdate);
        assert_eq!(b.dirty_count(0), 0);
        b.on_update(ObjectId(0), FlushCursor::START);
        b.on_update(ObjectId(1), FlushCursor::START);
        assert_eq!(b.dirty_count(0), 2);
        assert_eq!(b.dirty_count(1), 2);
        b.begin_checkpoint();
        assert_eq!(b.dirty_count(0), 0, "snapshotted away");
        assert_eq!(b.dirty_count(1), 2);
    }

    #[test]
    #[should_panic(expected = "begin_checkpoint while a checkpoint is in flight")]
    fn double_begin_panics() {
        let mut b = bk(Algorithm::NaiveSnapshot);
        b.begin_checkpoint();
        b.begin_checkpoint();
    }

    #[test]
    #[should_panic(expected = "finish_checkpoint without a checkpoint in flight")]
    fn finish_without_begin_panics() {
        let mut b = bk(Algorithm::NaiveSnapshot);
        b.finish_checkpoint();
    }

    #[test]
    fn log_eager_checkpoints_pipeline_with_queued_seqs() {
        let mut b = bk(Algorithm::PartialRedo);
        b.on_update(ObjectId(1), FlushCursor::START);
        assert!(!b.is_in_flight());
        let p0 = b.begin_checkpoint();
        assert_eq!(p0.seq, 0);
        assert!(b.can_pipeline_next(), "eager log checkpoints may overlap");
        b.on_update(ObjectId(2), FlushCursor::START);
        let p1 = b.begin_checkpoint();
        assert_eq!(p1.seq, 1, "queued begin gets the next sequence number");
        assert_eq!(b.in_flight_count(), 2);
        b.finish_checkpoint();
        b.finish_checkpoint();
        assert_eq!(b.seq(), 2);
        assert!(!b.is_in_flight());
    }

    #[test]
    fn full_flush_boundary_is_a_pipeline_barrier() {
        let spec = Algorithm::PartialRedo.spec_with_flush_period(2);
        let mut b = Bookkeeper::new(spec, N);
        b.on_update(ObjectId(1), FlushCursor::START);
        let p0 = b.begin_checkpoint();
        assert!(!p0.full_flush);
        // Checkpoint 1 would be the periodic full flush (a sweep): it must
        // not begin while checkpoint 0 is still in flight.
        assert!(!b.can_pipeline_next());
    }

    #[test]
    #[should_panic(expected = "begin_checkpoint while a checkpoint is in flight")]
    fn sweep_begin_while_in_flight_panics() {
        let mut b = bk(Algorithm::DribbleAndCopyOnUpdate);
        b.begin_checkpoint();
        b.begin_checkpoint();
    }

    #[test]
    fn empty_dirty_set_yields_empty_checkpoint_for_cou() {
        let mut b = bk(Algorithm::CopyOnUpdate);
        let plan = b.begin_checkpoint();
        assert_eq!(plan.flush, FlushJob::None);
        assert_eq!(b.sweep_slots(), None);
        // Updates during an empty checkpoint still only cost dirty marking.
        let ops = b.on_update(ObjectId(4), FlushCursor::START);
        assert_eq!((ops.bit_ops, ops.lock, ops.copy), (1, false, false));
        b.finish_checkpoint();
        let plan = b.begin_checkpoint();
        assert_eq!(plan.flush.objects(), 1);
    }
}
