//! The six checkpointing algorithms and their design-space classification.
//!
//! Table 1 of the paper organizes the algorithms along three dimensions:
//! *in-memory copy timing* (eager vs. copy-on-update), *objects copied*
//! (all vs. dirty only), and *disk organization* (double backup vs. log).
//! [`AlgorithmSpec`] captures those axes; [`Algorithm`] enumerates the six
//! points of the design space the paper evaluates, and
//! [`bookkeeper::Bookkeeper`] implements their shared state machine.

pub mod bookkeeper;

use serde::{Deserialize, Serialize};
use std::fmt;

/// When in-memory copies of checkpointed objects are taken (Table 1 axis 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CopyTiming {
    /// A synchronous copy at the tick boundary that starts the checkpoint.
    /// Conceptually simple but introduces a pause in the simulation loop.
    Eager,
    /// Objects are copied lazily, the first time they are updated while the
    /// asynchronous flush is still pending. Spreads overhead across ticks.
    OnUpdate,
}

/// Which objects are included in a checkpoint (Table 1 axis 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ObjectsCopied {
    /// Every atomic object, every checkpoint.
    All,
    /// Only objects dirtied since the relevant previous checkpoint.
    Dirty,
}

/// On-disk checkpoint organization (Table 1 axis 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DiskOrg {
    /// Two alternating full-state backup files; each object has a fixed
    /// offset, and dirty objects are written in increasing-offset ("sorted
    /// I/O") order. At least one backup is always consistent.
    DoubleBackup,
    /// A simple append-only log: fully sequential writes, but recovery may
    /// have to read back through several checkpoints' worth of log.
    Log,
}

/// Behaviour of one framework subroutine for a given algorithm (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Subroutine {
    /// The subroutine does nothing for this algorithm.
    NoOp,
    /// Acts on every atomic object.
    AllObjects,
    /// Acts on dirty objects only.
    DirtyObjects,
    /// Copy-on-update handler: copies an object the first time it is
    /// touched while unflushed; `all` selects whether all objects or only
    /// dirty ones participate.
    FirstTouched {
        /// True for Dribble (all objects participate), false for the
        /// dirty-only copy-on-update variants.
        all: bool,
    },
}

impl fmt::Display for Subroutine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Subroutine::NoOp => write!(f, "No-op"),
            Subroutine::AllObjects => write!(f, "All objects"),
            Subroutine::DirtyObjects => write!(f, "Dirty objects"),
            Subroutine::FirstTouched { all: true } => write!(f, "First touched, all"),
            Subroutine::FirstTouched { all: false } => write!(f, "First touched, dirty"),
        }
    }
}

/// Full classification of a checkpointing algorithm: its position in the
/// Table 1 design space plus the Table 2 subroutine assignments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AlgorithmSpec {
    /// Which algorithm this is.
    pub algorithm: Algorithm,
    /// In-memory copy timing.
    pub copy_timing: CopyTiming,
    /// Objects included per checkpoint.
    pub objects_copied: ObjectsCopied,
    /// Disk organization.
    pub disk_org: DiskOrg,
    /// `Copy-To-Memory` subroutine (synchronous, tick boundary).
    pub copy_to_memory: Subroutine,
    /// `Write-Copies-To-Stable-Storage` subroutine (asynchronous).
    pub write_copies: Subroutine,
    /// `Handle-Update` subroutine (synchronous, per update).
    pub handle_update: Subroutine,
    /// `Write-Objects-To-Stable-Storage` subroutine (asynchronous,
    /// reads live state, must be thread-safe).
    pub write_objects: Subroutine,
    /// For log-organized dirty-object algorithms: a full flush of the state
    /// (run as a Dribble-style checkpoint) is performed every this many
    /// checkpoints to bound log reads during recovery. `None` for the
    /// other algorithms.
    pub full_flush_period: Option<u32>,
    /// Whether updates maintain per-object dirty bits (costs one bit
    /// operation per update in the cost model). Naive-Snapshot is the only
    /// algorithm that does not.
    pub tracks_dirty: bool,
}

/// The six consistent checkpointing algorithms evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Algorithm {
    /// Quiesce at a tick boundary and eagerly copy the entire state.
    NaiveSnapshot,
    /// Asynchronously sweep ("dribble") all objects to disk; copy an object
    /// on its first update if the sweep has not flushed it yet.
    DribbleAndCopyOnUpdate,
    /// Eagerly copy only dirty objects at the tick boundary; double-backup
    /// disk organization with sorted writes.
    AtomicCopyDirtyObjects,
    /// Eagerly copy only dirty objects; append them to a log, with a
    /// periodic full flush to bound recovery-time log reads.
    PartialRedo,
    /// Copy dirty objects on first update while the asynchronous writer
    /// drains them to the double backup. The paper's recommended method.
    CopyOnUpdate,
    /// Copy-on-update of dirty objects appended to a log, with a periodic
    /// full flush.
    CopyOnUpdatePartialRedo,
}

/// Default full-flush period for the partial-redo algorithms, in
/// checkpoints. Back-derived from the paper's reported recovery times
/// (see DESIGN.md).
pub const DEFAULT_FULL_FLUSH_PERIOD: u32 = 8;

impl Algorithm {
    /// All six algorithms, in the order the paper's figures list them.
    pub const ALL: [Algorithm; 6] = [
        Algorithm::NaiveSnapshot,
        Algorithm::DribbleAndCopyOnUpdate,
        Algorithm::AtomicCopyDirtyObjects,
        Algorithm::PartialRedo,
        Algorithm::CopyOnUpdate,
        Algorithm::CopyOnUpdatePartialRedo,
    ];

    /// The algorithm's name as printed in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::NaiveSnapshot => "Naive-Snapshot",
            Algorithm::DribbleAndCopyOnUpdate => "Dribble-and-Copy-on-Update",
            Algorithm::AtomicCopyDirtyObjects => "Atomic-Copy-Dirty-Objects",
            Algorithm::PartialRedo => "Partial-Redo",
            Algorithm::CopyOnUpdate => "Copy-on-Update",
            Algorithm::CopyOnUpdatePartialRedo => "Copy-on-Update-Partial-Redo",
        }
    }

    /// A short name convenient for CSV headers and CLI flags.
    pub fn short_name(self) -> &'static str {
        match self {
            Algorithm::NaiveSnapshot => "naive",
            Algorithm::DribbleAndCopyOnUpdate => "dribble",
            Algorithm::AtomicCopyDirtyObjects => "atomic-copy",
            Algorithm::PartialRedo => "partial-redo",
            Algorithm::CopyOnUpdate => "cou",
            Algorithm::CopyOnUpdatePartialRedo => "cou-partial-redo",
        }
    }

    /// Parse either the full or the short name (case-insensitive).
    pub fn parse(s: &str) -> Option<Algorithm> {
        let s = s.to_ascii_lowercase();
        Algorithm::ALL
            .into_iter()
            .find(|a| a.name().eq_ignore_ascii_case(&s) || a.short_name() == s)
    }

    /// The algorithm's design-space classification with the default
    /// full-flush period.
    pub fn spec(self) -> AlgorithmSpec {
        self.spec_with_flush_period(DEFAULT_FULL_FLUSH_PERIOD)
    }

    /// As [`Algorithm::spec`] but with an explicit full-flush period for
    /// the partial-redo algorithms (ignored by the others).
    pub fn spec_with_flush_period(self, period: u32) -> AlgorithmSpec {
        let period = period.max(1);
        match self {
            Algorithm::NaiveSnapshot => AlgorithmSpec {
                algorithm: self,
                copy_timing: CopyTiming::Eager,
                objects_copied: ObjectsCopied::All,
                // The paper notes Naive-Snapshot can use either organization
                // and uses a double backup in the experiments.
                disk_org: DiskOrg::DoubleBackup,
                copy_to_memory: Subroutine::AllObjects,
                write_copies: Subroutine::AllObjects,
                handle_update: Subroutine::NoOp,
                write_objects: Subroutine::NoOp,
                full_flush_period: None,
                tracks_dirty: false,
            },
            Algorithm::DribbleAndCopyOnUpdate => AlgorithmSpec {
                algorithm: self,
                copy_timing: CopyTiming::OnUpdate,
                objects_copied: ObjectsCopied::All,
                disk_org: DiskOrg::Log,
                copy_to_memory: Subroutine::NoOp,
                write_copies: Subroutine::NoOp,
                handle_update: Subroutine::FirstTouched { all: true },
                write_objects: Subroutine::AllObjects,
                full_flush_period: None,
                // Dribble checkpoints every object, so it needs no dirty
                // bits; it only maintains the per-object flushed bit while a
                // checkpoint is in flight.
                tracks_dirty: false,
            },
            Algorithm::AtomicCopyDirtyObjects => AlgorithmSpec {
                algorithm: self,
                copy_timing: CopyTiming::Eager,
                objects_copied: ObjectsCopied::Dirty,
                disk_org: DiskOrg::DoubleBackup,
                copy_to_memory: Subroutine::DirtyObjects,
                write_copies: Subroutine::DirtyObjects,
                handle_update: Subroutine::NoOp,
                write_objects: Subroutine::NoOp,
                full_flush_period: None,
                tracks_dirty: true,
            },
            Algorithm::PartialRedo => AlgorithmSpec {
                algorithm: self,
                copy_timing: CopyTiming::Eager,
                objects_copied: ObjectsCopied::Dirty,
                disk_org: DiskOrg::Log,
                copy_to_memory: Subroutine::DirtyObjects,
                write_copies: Subroutine::DirtyObjects,
                handle_update: Subroutine::NoOp,
                write_objects: Subroutine::NoOp,
                full_flush_period: Some(period),
                tracks_dirty: true,
            },
            Algorithm::CopyOnUpdate => AlgorithmSpec {
                algorithm: self,
                copy_timing: CopyTiming::OnUpdate,
                objects_copied: ObjectsCopied::Dirty,
                disk_org: DiskOrg::DoubleBackup,
                copy_to_memory: Subroutine::NoOp,
                write_copies: Subroutine::NoOp,
                handle_update: Subroutine::FirstTouched { all: false },
                write_objects: Subroutine::DirtyObjects,
                full_flush_period: None,
                tracks_dirty: true,
            },
            Algorithm::CopyOnUpdatePartialRedo => AlgorithmSpec {
                algorithm: self,
                copy_timing: CopyTiming::OnUpdate,
                objects_copied: ObjectsCopied::Dirty,
                disk_org: DiskOrg::Log,
                copy_to_memory: Subroutine::NoOp,
                write_copies: Subroutine::NoOp,
                handle_update: Subroutine::FirstTouched { all: false },
                write_objects: Subroutine::DirtyObjects,
                full_flush_period: Some(period),
                tracks_dirty: true,
            },
        }
    }
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_match_table1() {
        // Table 1: rows = objects copied, columns = (copy timing, disk org).
        let spec = Algorithm::NaiveSnapshot.spec();
        assert_eq!(spec.copy_timing, CopyTiming::Eager);
        assert_eq!(spec.objects_copied, ObjectsCopied::All);

        let spec = Algorithm::DribbleAndCopyOnUpdate.spec();
        assert_eq!(spec.copy_timing, CopyTiming::OnUpdate);
        assert_eq!(spec.objects_copied, ObjectsCopied::All);

        let spec = Algorithm::AtomicCopyDirtyObjects.spec();
        assert_eq!(spec.copy_timing, CopyTiming::Eager);
        assert_eq!(spec.objects_copied, ObjectsCopied::Dirty);
        assert_eq!(spec.disk_org, DiskOrg::DoubleBackup);

        let spec = Algorithm::PartialRedo.spec();
        assert_eq!(spec.copy_timing, CopyTiming::Eager);
        assert_eq!(spec.disk_org, DiskOrg::Log);

        let spec = Algorithm::CopyOnUpdate.spec();
        assert_eq!(spec.copy_timing, CopyTiming::OnUpdate);
        assert_eq!(spec.disk_org, DiskOrg::DoubleBackup);

        let spec = Algorithm::CopyOnUpdatePartialRedo.spec();
        assert_eq!(spec.copy_timing, CopyTiming::OnUpdate);
        assert_eq!(spec.disk_org, DiskOrg::Log);
    }

    #[test]
    fn subroutines_match_table2() {
        use Subroutine::*;
        let s = Algorithm::NaiveSnapshot.spec();
        assert_eq!(
            (
                s.copy_to_memory,
                s.write_copies,
                s.handle_update,
                s.write_objects
            ),
            (AllObjects, AllObjects, NoOp, NoOp)
        );
        let s = Algorithm::DribbleAndCopyOnUpdate.spec();
        assert_eq!(
            (
                s.copy_to_memory,
                s.write_copies,
                s.handle_update,
                s.write_objects
            ),
            (NoOp, NoOp, FirstTouched { all: true }, AllObjects)
        );
        let s = Algorithm::AtomicCopyDirtyObjects.spec();
        assert_eq!(
            (
                s.copy_to_memory,
                s.write_copies,
                s.handle_update,
                s.write_objects
            ),
            (DirtyObjects, DirtyObjects, NoOp, NoOp)
        );
        let s = Algorithm::CopyOnUpdate.spec();
        assert_eq!(
            (
                s.copy_to_memory,
                s.write_copies,
                s.handle_update,
                s.write_objects
            ),
            (NoOp, NoOp, FirstTouched { all: false }, DirtyObjects)
        );
    }

    #[test]
    fn all_objects_algorithms_skip_dirty_tracking() {
        for alg in Algorithm::ALL {
            assert_eq!(
                alg.spec().tracks_dirty,
                alg.spec().objects_copied == ObjectsCopied::Dirty,
                "{alg}"
            );
        }
    }

    #[test]
    fn only_partial_redo_family_full_flushes() {
        for alg in Algorithm::ALL {
            let expects = matches!(
                alg,
                Algorithm::PartialRedo | Algorithm::CopyOnUpdatePartialRedo
            );
            assert_eq!(alg.spec().full_flush_period.is_some(), expects, "{alg}");
        }
    }

    #[test]
    fn names_parse_roundtrip() {
        for alg in Algorithm::ALL {
            assert_eq!(Algorithm::parse(alg.name()), Some(alg));
            assert_eq!(Algorithm::parse(alg.short_name()), Some(alg));
            assert_eq!(Algorithm::parse(&alg.name().to_uppercase()), Some(alg));
        }
        assert_eq!(Algorithm::parse("no-such-algorithm"), None);
    }

    #[test]
    fn flush_period_is_clamped_to_one() {
        let spec = Algorithm::PartialRedo.spec_with_flush_period(0);
        assert_eq!(spec.full_flush_period, Some(1));
    }

    #[test]
    fn subroutine_display_matches_table2_wording() {
        assert_eq!(Subroutine::NoOp.to_string(), "No-op");
        assert_eq!(
            Subroutine::FirstTouched { all: true }.to_string(),
            "First touched, all"
        );
        assert_eq!(
            Subroutine::FirstTouched { all: false }.to_string(),
            "First touched, dirty"
        );
    }
}
