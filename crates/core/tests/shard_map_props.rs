//! Property tests for [`ShardMap`]: for arbitrary valid geometries and
//! shard counts, the partition's invariants — bands are disjoint,
//! object-aligned, and cover the geometry exactly — must hold, and the
//! routing functions must agree with each other.
//!
//! Geometries are generated constructively: pick cells-per-object and a
//! column count, derive the object-aligned band quantum
//! (`lcm(cells_per_object, cols) / cols` rows), and build the table from
//! a whole number of quanta plus an optional ragged tail — which is how
//! every real geometry in the workspace decomposes, including ones whose
//! object boundaries do not fall on row boundaries.

use mmoc_core::{CellUpdate, ShardMap, StateGeometry};
use proptest::prelude::*;

/// Cells-per-object choices covering co-prime, divisor and multiple
/// relationships with the column counts below.
const CELLS_PER_OBJECT: [u32; 6] = [1, 2, 4, 8, 16, 128];

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// The smallest row count after which a row boundary coincides with an
/// atomic-object boundary (mirrors the map's internal quantum).
fn align_rows(g: &StateGeometry) -> u32 {
    let per = u64::from(g.cells_per_object());
    let cols = u64::from(g.cols);
    (per / gcd(per, cols)) as u32
}

/// One generated case: a valid geometry plus a feasible shard count.
#[derive(Debug, Clone, Copy)]
struct Case {
    g: StateGeometry,
    n_shards: u32,
}

fn arb_case() -> impl Strategy<Value = Case> {
    (
        0usize..CELLS_PER_OBJECT.len(),
        1u32..14,
        1u32..40,
        any::<u32>(),
        any::<u32>(),
    )
        .prop_map(|(cpo_idx, cols, quanta, tail_seed, shard_seed)| {
            let cpo = CELLS_PER_OBJECT[cpo_idx];
            let g_probe = StateGeometry {
                rows: 1,
                cols,
                cell_size: 4,
                object_size: cpo * 4,
            };
            let quantum = align_rows(&g_probe);
            // A whole number of aligned quanta, plus sometimes a ragged
            // tail shorter than one quantum (the final partial block).
            let tail = if quantum > 1 { tail_seed % quantum } else { 0 };
            let rows = quanta * quantum + tail;
            let g = StateGeometry {
                rows,
                cols,
                cell_size: 4,
                object_size: cpo * 4,
            };
            // Feasible shard counts: 1 ..= number of aligned blocks.
            let blocks = (u64::from(rows)).div_ceil(u64::from(quantum)) as u32;
            let n_shards = 1 + shard_seed % blocks;
            Case { g, n_shards }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Bands are disjoint, object-aligned, and cover the geometry
    /// exactly: rows and objects both sum to the global totals, every
    /// inner boundary starts a fresh atomic object, and per-shard object
    /// ids are a dense renumbering.
    #[test]
    fn bands_are_disjoint_aligned_and_exhaustive(case in arb_case()) {
        let Case { g, n_shards } = case;
        g.validate().expect("generated geometry is valid");
        let map = ShardMap::new(g, n_shards)
            .unwrap_or_else(|e| panic!("{g:?} x{n_shards}: {e}"));
        prop_assert_eq!(map.n_shards(), n_shards as usize);
        prop_assert_eq!(map.global_geometry(), g);

        let mut rows = 0u32;
        let mut objects = 0u64;
        for s in 0..map.n_shards() {
            let sg = map.shard_geometry(s);
            sg.validate().expect("shard geometry is valid");
            prop_assert!(sg.rows > 0, "shard {} must own at least one row", s);
            // Disjoint and contiguous: each band starts where the
            // previous one ended.
            prop_assert_eq!(map.row_start(s), rows);
            // Object-aligned: the cells before this band fill a whole
            // number of atomic objects, so the band starts a fresh one
            // and `object_start` is the exact dense renumbering base.
            let cells_before = u64::from(rows) * u64::from(g.cols);
            prop_assert_eq!(
                cells_before % u64::from(g.cells_per_object()),
                0,
                "shard {} boundary splits an atomic object",
                s
            );
            prop_assert_eq!(u64::from(map.object_start(s)), objects);
            rows += sg.rows;
            objects += u64::from(sg.n_objects());
        }
        // Exhaustive cover.
        prop_assert_eq!(rows, g.rows, "bands must cover every row");
        prop_assert_eq!(objects, u64::from(g.n_objects()), "object ids must be dense");
    }

    /// The routing functions agree: `shard_of_row`, `shard_of_object`
    /// and `route` name the same owner for any cell, the local rewrite
    /// round-trips, and the shard-local object id is the global id minus
    /// the shard's dense base.
    #[test]
    fn routing_agrees_with_ownership_and_round_trips(
        case in arb_case(),
        row_seed in any::<u32>(),
        col_seed in any::<u32>(),
        value in any::<u32>(),
    ) {
        let Case { g, n_shards } = case;
        let map = ShardMap::new(g, n_shards).expect("feasible case");
        let row = row_seed % g.rows;
        let col = col_seed % g.cols;
        let u = CellUpdate::new(row, col, value);

        let shard = map.shard_of_row(row);
        prop_assert!(shard < map.n_shards());
        let obj = g.object_of(u.addr).expect("in-bounds address");
        prop_assert_eq!(map.shard_of_object(obj), shard, "row/object routing disagree");

        let (s, local) = map.route(u);
        prop_assert_eq!(s, shard);
        prop_assert!(local.addr.row < map.shard_geometry(s).rows);
        prop_assert_eq!(local.addr.col, col);
        prop_assert_eq!(local.value, value);
        prop_assert_eq!(map.to_global(s, local), u, "route must round-trip");

        let local_obj = map
            .shard_geometry(s)
            .object_of(local.addr)
            .expect("local address in bounds");
        prop_assert_eq!(
            local_obj.0 + map.object_start(s),
            obj.0,
            "local object ids must be the dense renumbering"
        );
    }

    /// Every tick's updates are routed to exactly one shard each:
    /// `route_into` conserves the update count and each update lands in
    /// the buffer of the shard that owns its row.
    #[test]
    fn route_into_partitions_updates_exactly(
        case in arb_case(),
        seeds in proptest::collection::vec((any::<u32>(), any::<u32>(), any::<u32>()), 0..64),
    ) {
        let Case { g, n_shards } = case;
        let map = ShardMap::new(g, n_shards).expect("feasible case");
        let updates: Vec<CellUpdate> = seeds
            .iter()
            .map(|&(r, c, v)| CellUpdate::new(r % g.rows, c % g.cols, v))
            .collect();
        let mut bufs: Vec<Vec<CellUpdate>> = vec![Vec::new(); map.n_shards()];
        map.route_into(&updates, &mut bufs);
        let routed: usize = bufs.iter().map(Vec::len).sum();
        prop_assert_eq!(routed, updates.len(), "no update may be dropped or duplicated");
        for (s, buf) in bufs.iter().enumerate() {
            for local in buf {
                let global = map.to_global(s, *local);
                prop_assert_eq!(
                    map.shard_of_row(global.addr.row),
                    s,
                    "update landed in a shard that does not own its row"
                );
            }
        }
    }

    /// Infeasible shard counts are rejected with a typed error, never a
    /// panic or a silent mis-partition: one shard more than the number of
    /// aligned blocks must fail.
    #[test]
    fn oversubscription_is_a_typed_error(case in arb_case()) {
        let Case { g, .. } = case;
        let quantum = align_rows(&g);
        let blocks = (u64::from(g.rows)).div_ceil(u64::from(quantum)) as u32;
        prop_assert!(ShardMap::new(g, blocks).is_ok(), "max feasible count must work");
        prop_assert!(
            ShardMap::new(g, blocks + 1).is_err(),
            "{} shards over {} blocks must be rejected",
            blocks + 1,
            blocks
        );
        prop_assert!(ShardMap::new(g, 0).is_err(), "zero shards must be rejected");
    }
}
