//! Model-based property test for the bookkeeping state machine.
//!
//! A brute-force reference model tracks, per algorithm, exactly which
//! objects each checkpoint *must* write for the on-disk image to stay
//! consistent. Random interleavings of updates, checkpoint starts, writer
//! progress and completions are then run through both the [`Bookkeeper`]
//! and the model, and their write sets, copy decisions and counts must
//! agree.

use mmoc_core::{Algorithm, Bookkeeper, FlushCursor, FlushJob, ObjectId};
use proptest::prelude::*;
use std::collections::BTreeSet;

const N: u32 = 24;

/// One step of a random schedule.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Update object `id % N` while the writer is at `frontier % (N+1)`
    /// slots (only meaningful while a sweep is active).
    Update { id: u32, frontier: u64 },
    /// Finish the in-flight checkpoint (if any) and start the next one.
    NextCheckpoint,
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    let op = prop_oneof![
        4 => (0u32..N, 0u64..u64::from(N) + 1)
            .prop_map(|(id, frontier)| Op::Update { id, frontier }),
        1 => Just(Op::NextCheckpoint),
    ];
    proptest::collection::vec(op, 1..200)
}

/// Reference model: tracks dirty sets per backup (or the single log dirty
/// set) with plain `BTreeSet`s.
struct Model {
    alg: Algorithm,
    /// Objects modified since last captured by backup 0 / backup 1 (only
    /// index 0 is used for log algorithms).
    dirty: [BTreeSet<u32>; 2],
    target: usize,
}

impl Model {
    fn new(alg: Algorithm) -> Self {
        Model {
            alg,
            dirty: [BTreeSet::new(), BTreeSet::new()],
            target: 0,
        }
    }

    fn double_backup(&self) -> bool {
        matches!(
            self.alg,
            Algorithm::NaiveSnapshot | Algorithm::AtomicCopyDirtyObjects | Algorithm::CopyOnUpdate
        )
    }

    fn update(&mut self, id: u32) {
        self.dirty[0].insert(id);
        self.dirty[1].insert(id);
    }

    /// Objects the next checkpoint must write, per the algorithm's rule.
    /// `full` marks partial-redo full flushes.
    fn expected_write_set(&mut self, full: bool) -> BTreeSet<u32> {
        let all: BTreeSet<u32> = (0..N).collect();
        match self.alg {
            Algorithm::NaiveSnapshot | Algorithm::DribbleAndCopyOnUpdate => all,
            Algorithm::AtomicCopyDirtyObjects | Algorithm::CopyOnUpdate => {
                std::mem::take(&mut self.dirty[self.target])
            }
            Algorithm::PartialRedo | Algorithm::CopyOnUpdatePartialRedo => {
                let dirty = std::mem::take(&mut self.dirty[0]);
                self.dirty[1].clear();
                if full {
                    all
                } else {
                    dirty
                }
            }
        }
    }

    fn finish(&mut self) {
        if self.double_backup() {
            self.target ^= 1;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The bookkeeper's flush sets equal the reference model's expected
    /// write sets, for every algorithm under random schedules.
    #[test]
    fn write_sets_match_reference_model(ops in arb_ops()) {
        for alg in Algorithm::ALL {
            let mut bk = Bookkeeper::new(alg.spec(), N);
            let mut model = Model::new(alg);
            let mut in_flight = false;

            for &op in &ops {
                match op {
                    Op::Update { id, frontier } => {
                        let cursor = FlushCursor::at(frontier);
                        bk.on_update(ObjectId(id), cursor);
                        model.update(id);
                    }
                    Op::NextCheckpoint => {
                        if in_flight {
                            bk.finish_checkpoint();
                            model.finish();
                        }
                        let plan = bk.begin_checkpoint();
                        in_flight = true;
                        let expected = model.expected_write_set(plan.full_flush);
                        // Compare counts...
                        prop_assert_eq!(
                            plan.flush.objects() as usize,
                            expected.len(),
                            "{}: flush count mismatch", alg
                        );
                        // ...and exact membership via the flush set (for
                        // non-empty dirty checkpoints) or totality.
                        if plan.flush != FlushJob::None {
                            let got: BTreeSet<u32> =
                                bk.flush_set().iter_ones().collect();
                            prop_assert_eq!(got, expected, "{}: set mismatch", alg);
                        }
                    }
                }
            }
        }
    }

    /// Copy-on-update algorithms copy an object at most once per
    /// checkpoint, never copy clean objects, and never copy objects the
    /// writer already flushed.
    #[test]
    fn copy_discipline(ops in arb_ops()) {
        for alg in [
            Algorithm::DribbleAndCopyOnUpdate,
            Algorithm::CopyOnUpdate,
            Algorithm::CopyOnUpdatePartialRedo,
        ] {
            let mut bk = Bookkeeper::new(alg.spec(), N);
            let mut in_flight = false;
            let mut copied_this_ckpt: BTreeSet<u32> = BTreeSet::new();
            let mut min_frontier_seen: u64 = 0;

            for &op in &ops {
                match op {
                    Op::Update { id, frontier } => {
                        // Writer frontiers only move forward within a
                        // checkpoint.
                        let frontier = frontier.max(min_frontier_seen);
                        min_frontier_seen = frontier;
                        let before_in_set = bk.flush_set().get(id);
                        let ops_out = bk.on_update(ObjectId(id), FlushCursor::at(frontier));
                        if ops_out.copy {
                            prop_assert!(in_flight, "{}: copy outside checkpoint", alg);
                            prop_assert!(
                                copied_this_ckpt.insert(id),
                                "{}: double copy of {}", alg, id
                            );
                            prop_assert!(
                                before_in_set,
                                "{}: copied object {} outside the flush set", alg, id
                            );
                        }
                        prop_assert!(
                            !ops_out.copy || ops_out.lock,
                            "copies must hold the lock"
                        );
                    }
                    Op::NextCheckpoint => {
                        if in_flight {
                            bk.finish_checkpoint();
                        }
                        bk.begin_checkpoint();
                        in_flight = true;
                        copied_this_ckpt.clear();
                        min_frontier_seen = 0;
                    }
                }
            }
        }
    }

    /// Checkpoint sequencing invariants: seq increments by one per
    /// completed checkpoint; double-backup targets strictly alternate.
    #[test]
    fn sequencing_invariants(n_checkpoints in 1usize..30) {
        for alg in Algorithm::ALL {
            let mut bk = Bookkeeper::new(alg.spec(), N);
            let mut last_target = None;
            for i in 0..n_checkpoints {
                prop_assert_eq!(bk.seq(), i as u64);
                let target = bk.target_backup();
                if alg.spec().disk_org == mmoc_core::DiskOrg::DoubleBackup {
                    if let Some(prev) = last_target {
                        prop_assert_ne!(target, prev, "{}: target must alternate", alg);
                    }
                    last_target = Some(target);
                }
                bk.on_update(ObjectId((i as u32) % N), FlushCursor::START);
                bk.begin_checkpoint();
                prop_assert!(bk.is_in_flight());
                bk.finish_checkpoint();
                prop_assert!(!bk.is_in_flight());
            }
        }
    }
}
