//! Prints the fraction of atomic objects Copy-on-Update flushes per
//! checkpoint at increasing skew (the paper's "diminishes the updated
//! portion from roughly 100% to 84%" claim, §5.3).
use mmoc_core::{Algorithm, Run};
use mmoc_sim::SimConfig;
use mmoc_workload::SyntheticConfig;

fn main() {
    for skew in [0.0, 0.8, 0.99] {
        let trace = SyntheticConfig::paper_default()
            .with_skew(skew)
            .with_ticks(150);
        let r = Run::algorithm(Algorithm::CopyOnUpdate)
            .engine(SimConfig::default())
            .trace(trace)
            .execute()
            .expect("simulation runs");
        let frac = r.world.metrics.avg_objects_per_normal_checkpoint()
            / f64::from(trace.geometry.n_objects());
        println!(
            "skew {skew}: {:.1}% of objects flushed per checkpoint",
            frac * 100.0
        );
    }
}
