//! Prints the fraction of atomic objects Copy-on-Update flushes per
//! checkpoint at increasing skew (the paper's "diminishes the updated
//! portion from roughly 100% to 84%" claim, §5.3).
use mmoc_core::Algorithm;
use mmoc_sim::{SimConfig, SimEngine};
use mmoc_workload::SyntheticConfig;

fn main() {
    for skew in [0.0, 0.8, 0.99] {
        let trace = SyntheticConfig::paper_default()
            .with_skew(skew)
            .with_ticks(150);
        let r =
            SimEngine::new(SimConfig::default(), Algorithm::CopyOnUpdate).run(&mut trace.build());
        let frac = r.avg_objects_per_checkpoint / f64::from(r.geometry.n_objects());
        println!(
            "skew {skew}: {:.1}% of objects flushed per checkpoint",
            frac * 100.0
        );
    }
}
