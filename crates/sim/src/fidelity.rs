//! Value-level fidelity checking.
//!
//! The cost model tells us how *long* checkpointing takes; this module
//! verifies that the bookkeeping is *correct*: every completed checkpoint
//! must leave on disk exactly the state as of the tick boundary where the
//! checkpoint started (tick-consistency, §3.1).
//!
//! The checker maintains a live [`StateTable`], one shadow byte-array per
//! backup file, and the copy-on-update side buffer. The engine feeds it
//! update/copy/flush events; at every checkpoint completion the shadow is
//! compared byte-for-byte against the image captured at checkpoint start.
//! This exercises the exact mechanism the algorithms exist to protect:
//! that concurrent updates never leak post-checkpoint values into the
//! checkpoint image, and that dirty tracking never loses an object.

use mmoc_core::{Algorithm, Bookkeeper, CellUpdate, DiskOrg, ObjectId, StateGeometry, StateTable};
use std::collections::HashMap;

/// Outcome of a checked run.
#[derive(Debug, Clone)]
pub struct FidelityReport {
    /// Number of checkpoint images verified equal to their start state.
    pub checks_passed: u64,
    /// Human-readable descriptions of any mismatches (empty on success).
    pub errors: Vec<String>,
}

impl FidelityReport {
    /// True if every completed checkpoint was byte-identical to the state
    /// at its start tick.
    pub fn is_clean(&self) -> bool {
        self.errors.is_empty()
    }
}

/// Tracks live state, shadow disks and the copy-on-update buffer.
#[derive(Debug)]
pub struct FidelityChecker {
    geometry: StateGeometry,
    algorithm: Algorithm,
    live: StateTable,
    /// One shadow per backup file: two for double-backup organizations,
    /// one for logs (the log's *materialized* state).
    shadows: Vec<Vec<u8>>,
    /// Pre-update copies saved by `Handle-Update` this checkpoint.
    saved: HashMap<u32, Vec<u8>>,
    /// Eagerly copied (object, bytes) pairs for snapshot flush jobs.
    eager: Vec<(u32, Vec<u8>)>,
    /// Full state image captured at checkpoint start.
    start_image: Vec<u8>,
    /// Sweep slots already applied to the shadow.
    flushed_to: u64,
    /// Shadow index the in-flight checkpoint writes.
    shadow_idx: usize,
    checkpoint_active: bool,
    checks_passed: u64,
    errors: Vec<String>,
}

impl FidelityChecker {
    /// Create a checker for a zero-initialized state table. Both shadow
    /// backups start as copies of the initial state (the engines pre-load
    /// disk backups at boot).
    pub fn new(geometry: StateGeometry, algorithm: Algorithm) -> Self {
        let live = StateTable::new(geometry).expect("valid geometry");
        let n_shadows = match algorithm.spec().disk_org {
            DiskOrg::DoubleBackup => 2,
            DiskOrg::Log => 1,
        };
        let shadows = vec![live.as_bytes().to_vec(); n_shadows];
        FidelityChecker {
            geometry,
            algorithm,
            live,
            shadows,
            saved: HashMap::new(),
            eager: Vec::new(),
            start_image: Vec::new(),
            flushed_to: 0,
            shadow_idx: 0,
            checkpoint_active: false,
            checks_passed: 0,
            errors: Vec::new(),
        }
    }

    /// Save the pre-update value of an object (the engine calls this
    /// *before* [`FidelityChecker::apply`] when the bookkeeper reports a
    /// copy-on-update).
    pub fn save_copy(&mut self, obj: ObjectId) {
        let bytes = self
            .live
            .object_bytes(obj)
            .expect("copied object in bounds")
            .to_vec();
        self.saved.entry(obj.0).or_insert(bytes);
    }

    /// Apply an update to the live state.
    pub fn apply(&mut self, update: CellUpdate) {
        self.live.apply_unchecked(update);
    }

    /// A checkpoint just started (tick boundary): capture the reference
    /// image and the eager copies.
    pub fn begin_checkpoint(&mut self, bk: &Bookkeeper) {
        self.start_image = self.live.as_bytes().to_vec();
        self.saved.clear();
        self.eager.clear();
        self.flushed_to = 0;
        self.checkpoint_active = true;
        self.shadow_idx = match self.algorithm.spec().disk_org {
            DiskOrg::DoubleBackup => bk.target_backup(),
            DiskOrg::Log => 0,
        };
        if bk.sweep_slots().is_none() {
            // Eager (snapshot) flush job: the write set is copied now,
            // synchronously, from the live state.
            for obj in bk.flush_set().iter_ones() {
                let bytes = self
                    .live
                    .object_bytes(ObjectId(obj))
                    .expect("flush-set object in bounds")
                    .to_vec();
                self.eager.push((obj, bytes));
            }
        }
    }

    /// The asynchronous writer advanced to `frontier` slots: write the
    /// newly flushed objects into the shadow, preferring saved copies.
    pub fn advance_flush(&mut self, bk: &Bookkeeper, frontier: u64) {
        if !self.checkpoint_active {
            return;
        }
        let object_size = self.geometry.object_size as usize;
        for slot in self.flushed_to..frontier {
            let Some(obj) = bk.sweep_object_at(slot) else {
                continue;
            };
            let offset = self.geometry.object_offset(obj) as usize;
            let shadow = &mut self.shadows[self.shadow_idx];
            match self.saved.get(&obj.0) {
                Some(bytes) => shadow[offset..offset + object_size].copy_from_slice(bytes),
                None => {
                    let bytes = self.live.object_bytes(obj).expect("object in bounds");
                    shadow[offset..offset + object_size].copy_from_slice(bytes);
                }
            }
        }
        self.flushed_to = self.flushed_to.max(frontier);
    }

    /// The checkpoint completed: drain remaining flush slots, apply eager
    /// copies, and verify the shadow equals the start image.
    pub fn complete_checkpoint(&mut self, bk: &Bookkeeper) {
        if !self.checkpoint_active {
            return;
        }
        if let Some(slots) = bk.sweep_slots() {
            self.advance_flush(bk, slots);
        }
        let object_size = self.geometry.object_size as usize;
        let shadow = &mut self.shadows[self.shadow_idx];
        for (obj, bytes) in self.eager.drain(..) {
            let offset = obj as usize * object_size;
            shadow[offset..offset + object_size].copy_from_slice(bytes.as_slice());
        }

        let shadow = &self.shadows[self.shadow_idx];
        if shadow == &self.start_image {
            self.checks_passed += 1;
        } else {
            let first_bad = shadow
                .iter()
                .zip(&self.start_image)
                .position(|(a, b)| a != b)
                .unwrap_or(0);
            self.errors.push(format!(
                "{}: checkpoint {} image diverges from start state at byte {} (object {})",
                self.algorithm.name(),
                bk.seq(),
                first_bad,
                first_bad / object_size
            ));
        }
        self.checkpoint_active = false;
    }

    /// Finish checking and return the report.
    pub fn into_report(self) -> FidelityReport {
        FidelityReport {
            checks_passed: self.checks_passed,
            errors: self.errors,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmoc_core::FlushCursor;

    fn geometry() -> StateGeometry {
        StateGeometry::small(32, 4) // 8 objects of 64 bytes
    }

    /// Hand-drive a COU checkpoint and verify the checker catches both a
    /// correct sequence and a corrupted one.
    #[test]
    fn detects_correct_cou_sequence() {
        let g = geometry();
        let alg = Algorithm::CopyOnUpdate;
        let mut bk = Bookkeeper::new(alg.spec(), g.n_objects());
        let mut f = FidelityChecker::new(g, alg);

        // Dirty object 0 (cells 0..16 are object 0) and object 3.
        for (row, val) in [(0u32, 7u32), (13, 9)] {
            let u = CellUpdate::new(row, 0, val);
            let obj = g.object_of_unchecked(u.addr);
            bk.on_update(obj, FlushCursor::START);
            f.apply(u);
        }
        bk.begin_checkpoint();
        f.begin_checkpoint(&bk);

        // Update object 0 mid-checkpoint before the writer reaches it:
        // bookkeeper says copy, checker saves the pre-update value.
        let u = CellUpdate::new(1, 1, 42);
        let obj = g.object_of_unchecked(u.addr);
        let ops = bk.on_update(obj, FlushCursor::START);
        assert!(ops.copy);
        f.save_copy(obj);
        f.apply(u);

        f.complete_checkpoint(&bk);
        bk.finish_checkpoint();
        let report = f.into_report();
        assert_eq!(report.checks_passed, 1);
        assert!(report.is_clean(), "{:?}", report.errors);
    }

    #[test]
    fn detects_missing_copy_as_corruption() {
        let g = geometry();
        let alg = Algorithm::CopyOnUpdate;
        let mut bk = Bookkeeper::new(alg.spec(), g.n_objects());
        let mut f = FidelityChecker::new(g, alg);

        let u0 = CellUpdate::new(0, 0, 7);
        bk.on_update(g.object_of_unchecked(u0.addr), FlushCursor::START);
        f.apply(u0);

        bk.begin_checkpoint();
        f.begin_checkpoint(&bk);

        // Simulate a BUGGY engine: update the object mid-checkpoint but
        // "forget" to save the pre-update copy.
        let u1 = CellUpdate::new(0, 0, 1234);
        let ops = bk.on_update(g.object_of_unchecked(u1.addr), FlushCursor::START);
        assert!(ops.copy, "bookkeeper demanded a copy");
        // f.save_copy intentionally skipped.
        f.apply(u1);

        f.complete_checkpoint(&bk);
        let report = f.into_report();
        assert!(!report.is_clean(), "corruption must be detected");
        assert!(report.errors[0].contains("diverges"));
    }

    #[test]
    fn eager_checkpoints_verify_trivially() {
        let g = geometry();
        let alg = Algorithm::AtomicCopyDirtyObjects;
        let mut bk = Bookkeeper::new(alg.spec(), g.n_objects());
        let mut f = FidelityChecker::new(g, alg);

        let u = CellUpdate::new(5, 2, 11);
        bk.on_update(g.object_of_unchecked(u.addr), FlushCursor::START);
        f.apply(u);

        bk.begin_checkpoint();
        f.begin_checkpoint(&bk);
        // Concurrent update during the eager checkpoint: harmless, the
        // snapshot buffer was already taken.
        let u2 = CellUpdate::new(5, 2, 99);
        bk.on_update(g.object_of_unchecked(u2.addr), FlushCursor::START);
        f.apply(u2);

        f.complete_checkpoint(&bk);
        bk.finish_checkpoint();
        assert!(f.into_report().is_clean());
    }
}
