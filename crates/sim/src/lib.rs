//! # mmoc-sim — the cost-model simulator
//!
//! A Rust rebuild of the paper's Java simulation (§4.2): a discrete tick
//! engine that replays an update trace against one of the six checkpoint
//! recovery algorithms, pricing every operation with the hardware model of
//! Table 3 instead of performing real I/O or memory copies.
//!
//! The simulator answers, for each algorithm:
//!
//! * **overhead time** — how much each tick is stretched by bit tests,
//!   locks, copy-on-update copies, and eager snapshot pauses;
//! * **time to checkpoint** — the synchronous pause plus asynchronous
//!   write duration of each checkpoint;
//! * **recovery time** — the analytic estimate
//!   `ΔT_recovery = ΔT_restore + ΔT_replay` of §4.2.
//!
//! ```
//! use mmoc_core::{Algorithm, Run};
//! use mmoc_sim::SimConfig;
//! use mmoc_workload::SyntheticConfig;
//!
//! let trace = SyntheticConfig::paper_default()
//!     .with_ticks(60)
//!     .with_updates_per_tick(1_000);
//! let report = Run::algorithm(Algorithm::CopyOnUpdate)
//!     .engine(SimConfig::default())
//!     .trace(trace)
//!     .execute()
//!     .expect("simulation runs");
//! assert!(report.world.avg_overhead_s > 0.0);
//! assert!(report.world.checkpoints_completed > 0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cost;
pub mod engine;
pub mod fidelity;
pub mod params;
pub mod report;

pub use cost::CostModel;
pub use engine::{SimConfig, SimEngine};
pub use params::HardwareParams;
pub use report::{ShardedSimReport, SimReport};
