//! Hardware and game parameters (Table 3).
//!
//! | parameter            | notation | setting    |
//! |----------------------|----------|------------|
//! | Tick Frequency       | `Ftick`  | 30 Hz      |
//! | Atomic Object Size   | `Sobj`   | 512 bytes  |
//! | Memory Bandwidth     | `Bmem`   | 2.2 GB/s   |
//! | Memory Latency       | `Omem`   | 100 ns     |
//! | Lock overhead        | `Olock`  | 145 ns     |
//! | Bit test/set overhead| `Obit`   | 2 ns       |
//! | Disk Bandwidth       | `Bdisk`  | 60 MB/s    |
//!
//! `Sobj` lives in [`mmoc_core::StateGeometry`]; everything else is here.
//! Memory bandwidth is interpreted as GiB (the paper's reported ≈17 ms
//! full-state copy of the 40 MB table back-derives to 2.2 · 2³⁰ B/s),
//! disk bandwidth as decimal MB (0.667 s ≈ the paper's 0.68 s full write).

use serde::{Deserialize, Serialize};

/// The hardware cost parameters of Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HardwareParams {
    /// Memory bandwidth `Bmem` in bytes per second.
    pub mem_bandwidth: f64,
    /// Memory copy startup overhead `Omem` in seconds (includes expected
    /// cache misses).
    pub mem_latency: f64,
    /// Uncontested lock acquire/release cost `Olock` in seconds.
    pub lock_overhead: f64,
    /// Dirty-bit test/set cost `Obit` in seconds.
    pub bit_overhead: f64,
    /// Disk bandwidth `Bdisk` in bytes per second (sequential writes).
    pub disk_bandwidth: f64,
}

impl Default for HardwareParams {
    fn default() -> Self {
        HardwareParams::paper()
    }
}

impl HardwareParams {
    /// The paper's measured values (Table 3).
    pub fn paper() -> Self {
        HardwareParams {
            mem_bandwidth: 2.2 * 1024.0 * 1024.0 * 1024.0, // 2.2 GiB/s
            mem_latency: 100e-9,                           // 100 ns
            lock_overhead: 145e-9,                         // 145 ns
            bit_overhead: 2e-9,                            // 2 ns
            disk_bandwidth: 60e6,                          // 60 MB/s
        }
    }

    /// A contemporary-hardware variant used by the extension experiments:
    /// NVMe-class disk bandwidth and DDR5-class memory bandwidth.
    pub fn modern() -> Self {
        HardwareParams {
            mem_bandwidth: 20.0 * 1024.0 * 1024.0 * 1024.0, // 20 GiB/s
            mem_latency: 80e-9,
            lock_overhead: 20e-9,
            bit_overhead: 1e-9,
            disk_bandwidth: 2e9, // 2 GB/s NVMe
        }
    }

    /// Scale only the disk bandwidth (hardware-sweep experiments).
    pub fn with_disk_bandwidth(mut self, bytes_per_sec: f64) -> Self {
        self.disk_bandwidth = bytes_per_sec;
        self
    }

    /// Scale only the memory bandwidth (hardware-sweep experiments).
    pub fn with_mem_bandwidth(mut self, bytes_per_sec: f64) -> Self {
        self.mem_bandwidth = bytes_per_sec;
        self
    }

    /// Validate that every parameter is positive and finite.
    pub fn validate(&self) -> Result<(), String> {
        let checks = [
            ("mem_bandwidth", self.mem_bandwidth),
            ("mem_latency", self.mem_latency),
            ("lock_overhead", self.lock_overhead),
            ("bit_overhead", self.bit_overhead),
            ("disk_bandwidth", self.disk_bandwidth),
        ];
        for (name, v) in checks {
            if !(v.is_finite() && v > 0.0) {
                return Err(format!("{name} must be positive and finite, got {v}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_params_reproduce_headline_costs() {
        let p = HardwareParams::paper();
        p.validate().unwrap();
        // Full-state eager copy of the 40 MB synthetic table: "nearly 17
        // msec" (§5.1).
        let copy_s = 40_000_000.0 / p.mem_bandwidth;
        assert!((0.0166..0.0175).contains(&copy_s), "copy {copy_s}");
        // Full-state disk write: "around 0.68 sec" (§5.1).
        let write_s = 40_000_000.0 / p.disk_bandwidth;
        assert!((0.66..0.69).contains(&write_s), "write {write_s}");
    }

    #[test]
    fn validation_catches_nonsense() {
        let mut p = HardwareParams::paper();
        p.disk_bandwidth = 0.0;
        assert!(p.validate().is_err());
        let mut p = HardwareParams::paper();
        p.mem_latency = f64::NAN;
        assert!(p.validate().is_err());
        let mut p = HardwareParams::paper();
        p.bit_overhead = -1.0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn builders_override_single_axes() {
        let p = HardwareParams::paper()
            .with_disk_bandwidth(1e9)
            .with_mem_bandwidth(1e10);
        assert_eq!(p.disk_bandwidth, 1e9);
        assert_eq!(p.mem_bandwidth, 1e10);
        assert_eq!(p.lock_overhead, HardwareParams::paper().lock_overhead);
    }
}
