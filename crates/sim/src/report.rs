//! Simulation reports: the derived quantities the paper's figures plot.

use mmoc_core::{Algorithm, RunMetrics, StateGeometry};
use serde::{Deserialize, Serialize};

/// Result of one simulated run (one algorithm × one trace × one parameter
/// point).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimReport {
    /// Algorithm simulated.
    pub algorithm: Algorithm,
    /// Geometry of the state table.
    pub geometry: StateGeometry,
    /// Ticks simulated.
    pub ticks: u64,
    /// Total updates applied.
    pub updates: u64,
    /// Completed checkpoints.
    pub checkpoints_completed: u64,
    /// Average overhead added per tick, in seconds (Figures 2a/4a/5a).
    pub avg_overhead_s: f64,
    /// Worst single-tick overhead, in seconds (the Figure 3 peaks).
    pub max_overhead_s: f64,
    /// Average time to checkpoint, in seconds (Figures 2b/4b/5b).
    pub avg_checkpoint_s: f64,
    /// Estimated time to restore the last checkpoint from disk, in
    /// seconds.
    pub est_restore_s: f64,
    /// Estimated time to replay the simulation after restore, in seconds
    /// (≈ the checkpoint time, §4.2).
    pub est_replay_s: f64,
    /// Estimated recovery time: restore + replay (Figures 2c/4c/5c).
    pub est_recovery_s: f64,
    /// Average objects written per normal checkpoint (the model's `k`).
    pub avg_objects_per_checkpoint: f64,
    /// The raw per-tick and per-checkpoint series.
    pub metrics: RunMetrics,
}

impl SimReport {
    /// Tick length (base tick period + overhead) series in seconds, as
    /// plotted by Figure 3.
    pub fn tick_lengths_s(&self, tick_period_s: f64) -> Vec<f64> {
        self.metrics.tick_lengths_s(tick_period_s)
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{:<28} overhead {:>9.4} ms  checkpoint {:>7.3} s  recovery {:>7.3} s",
            self.algorithm.name(),
            self.avg_overhead_s * 1e3,
            self.avg_checkpoint_s,
            self.est_recovery_s
        )
    }
}

/// Result of one sharded simulated run: per-shard reports plus the
/// world-level aggregates (latency maxed, work summed across shards).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardedSimReport {
    /// Algorithm simulated (the same on every shard).
    pub algorithm: Algorithm,
    /// The *global* (unpartitioned) geometry.
    pub geometry: StateGeometry,
    /// Number of shards the state was split into.
    pub n_shards: u32,
    /// Global ticks simulated (every shard executes every tick).
    pub ticks: u64,
    /// Total updates routed across all shards.
    pub updates: u64,
    /// Completed checkpoints summed over shards.
    pub checkpoints_completed: u64,
    /// Average per-tick overhead of the *world*: each tick costs the max
    /// across shards (shards run in parallel), averaged over ticks.
    pub avg_overhead_s: f64,
    /// Worst single-tick world overhead, in seconds.
    pub max_overhead_s: f64,
    /// Average time to checkpoint across all shards' checkpoints.
    pub avg_checkpoint_s: f64,
    /// Estimated recovery time of the world: shards restore in parallel,
    /// so this is the max over per-shard estimates.
    pub est_recovery_s: f64,
    /// Aggregate virtual wall clock: the max over shards' final clocks.
    pub wall_clock_s: f64,
    /// One full report per shard, in shard order.
    pub shards: Vec<SimReport>,
    /// The merged per-tick and per-checkpoint series
    /// (see [`RunMetrics::merge_shards`]).
    pub metrics: RunMetrics,
}

impl ShardedSimReport {
    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{:<28} x{:<2} shards  overhead {:>9.4} ms  checkpoint {:>7.3} s  recovery {:>7.3} s",
            self.algorithm.name(),
            self.n_shards,
            self.avg_overhead_s * 1e3,
            self.avg_checkpoint_s,
            self.est_recovery_s
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_lengths_add_base_period() {
        let mut metrics = RunMetrics::default();
        metrics.ticks.push(mmoc_core::TickMetrics {
            tick: 0,
            overhead_s: 0.002,
            sync_pause_s: 0.0,
            bit_ops: 0,
            locks: 0,
            copies: 0,
        });
        let report = SimReport {
            algorithm: Algorithm::NaiveSnapshot,
            geometry: StateGeometry::small(4, 4),
            ticks: 1,
            updates: 0,
            checkpoints_completed: 0,
            avg_overhead_s: 0.002,
            max_overhead_s: 0.002,
            avg_checkpoint_s: 0.0,
            est_restore_s: 0.0,
            est_replay_s: 0.0,
            est_recovery_s: 0.0,
            avg_objects_per_checkpoint: 0.0,
            metrics,
        };
        let lengths = report.tick_lengths_s(1.0 / 30.0);
        assert_eq!(lengths.len(), 1);
        assert!((lengths[0] - (1.0 / 30.0 + 0.002)).abs() < 1e-12);
        assert!(report.summary().contains("Naive-Snapshot"));
    }
}
