//! The discrete tick engine.
//!
//! [`SimEngine::run`] replays a trace tick by tick, exactly following the
//! paper's Checkpointing Algorithmic Framework:
//!
//! 1. During a tick, every update is routed through the algorithm's
//!    `Handle-Update` bookkeeping, and its cost (`Obit`, `Olock`,
//!    `ΔTsync(1)`) stretches the tick.
//! 2. At the end of a tick, if the previous checkpoint has finished, a new
//!    one starts: eager algorithms pay their synchronous `Copy-To-Memory`
//!    pause here, and the asynchronous flush job is scheduled with the
//!    duration given by the disk model.
//! 3. The asynchronous writer's frontier advances with virtual wall-clock
//!    time; updates within a tick observe the frontier as of the start of
//!    the tick (the writer and the mutator genuinely race within a tick —
//!    using the tick-start frontier is the conservative discretization).
//!
//! Virtual time bookkeeping: a tick's wall length is the base tick period
//! plus all recovery-induced overhead, matching the paper's observation
//! that "a recovery method introduces overhead that stretches ticks beyond
//! their previous length".

use crate::cost::CostModel;
use crate::fidelity::{FidelityChecker, FidelityReport};
use crate::params::HardwareParams;
use crate::report::SimReport;
use mmoc_core::algorithms::DEFAULT_FULL_FLUSH_PERIOD;
use mmoc_core::{
    Algorithm, Bookkeeper, CheckpointPlan, CheckpointRecord, FlushCursor, FlushJob, RunMetrics,
    TickMetrics,
};
use mmoc_workload::TraceSource;
use serde::{Deserialize, Serialize};

/// Simulation configuration: hardware model plus game parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Hardware cost parameters (Table 3).
    pub hardware: HardwareParams,
    /// Tick frequency `Ftick` in Hz (the paper uses 30).
    pub tick_freq_hz: f64,
    /// Full-flush period `C` for the partial-redo algorithms.
    pub full_flush_period: u32,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            hardware: HardwareParams::paper(),
            tick_freq_hz: 30.0,
            full_flush_period: DEFAULT_FULL_FLUSH_PERIOD,
        }
    }
}

impl SimConfig {
    /// Tick period in seconds.
    pub fn tick_period_s(&self) -> f64 {
        1.0 / self.tick_freq_hz
    }
}

/// A checkpoint currently being written.
struct ActiveCheckpoint {
    plan: CheckpointPlan,
    /// Virtual time at which the asynchronous write began.
    started_at: f64,
    async_duration: f64,
    sync_pause: f64,
    start_tick: u64,
}

/// The simulator: drives one algorithm over one trace.
#[derive(Debug, Clone)]
pub struct SimEngine {
    config: SimConfig,
    algorithm: Algorithm,
}

impl SimEngine {
    /// Create an engine for the given configuration and algorithm.
    pub fn new(config: SimConfig, algorithm: Algorithm) -> Self {
        config
            .hardware
            .validate()
            .expect("invalid hardware parameters");
        assert!(
            config.tick_freq_hz > 0.0 && config.tick_freq_hz.is_finite(),
            "tick frequency must be positive"
        );
        SimEngine { config, algorithm }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Run the simulation over a trace and report the paper's metrics.
    pub fn run<S: TraceSource>(&self, trace: &mut S) -> SimReport {
        self.run_inner(trace, None).0
    }

    /// Run with value-level fidelity checking: every completed checkpoint's
    /// disk image is verified to equal the state at checkpoint start.
    /// Slower and memory-hungry; meant for tests and small geometries.
    pub fn run_checked<S: TraceSource>(&self, trace: &mut S) -> (SimReport, FidelityReport) {
        let checker = FidelityChecker::new(trace.geometry(), self.algorithm);
        let (report, fidelity) = self.run_inner(trace, Some(checker));
        (report, fidelity.expect("fidelity checker was installed"))
    }

    fn run_inner<S: TraceSource>(
        &self,
        trace: &mut S,
        mut fidelity: Option<FidelityChecker>,
    ) -> (SimReport, Option<FidelityReport>) {
        let geometry = trace.geometry();
        geometry.validate().expect("trace geometry must be valid");
        let n = geometry.n_objects();
        let cost = CostModel::new(self.config.hardware, geometry.object_size);
        let spec = self
            .algorithm
            .spec_with_flush_period(self.config.full_flush_period);
        let mut bk = Bookkeeper::new(spec, n);
        let tick_period = self.config.tick_period_s();
        let frontier_rate = cost.frontier_slots_per_s();

        let mut clock = 0.0f64;
        let mut active: Option<ActiveCheckpoint> = None;
        let mut metrics = RunMetrics::default();
        let mut total_updates = 0u64;
        let mut buf = Vec::new();
        let mut tick = 0u64;

        while trace.next_tick(&mut buf) {
            // --- Phase 1: apply the tick's updates. -----------------------
            let frontier_start = active.as_ref().map_or(0u64, |a| {
                let elapsed = (clock - a.started_at).max(0.0);
                (elapsed * frontier_rate) as u64
            });
            let cursor = FlushCursor::at(frontier_start);
            let (mut bit_ops, mut locks, mut copies) = (0u64, 0u64, 0u64);
            for &u in &buf {
                let obj = geometry.object_of_unchecked(u.addr);
                let ops = bk.on_update(obj, cursor);
                bit_ops += u64::from(ops.bit_ops);
                locks += u64::from(ops.lock);
                copies += u64::from(ops.copy);
                if let Some(f) = fidelity.as_mut() {
                    if ops.copy {
                        f.save_copy(obj);
                    }
                    f.apply(u);
                }
            }
            total_updates += buf.len() as u64;
            let update_overhead = cost.tick_update_overhead_s(bit_ops, locks, copies);

            // --- Phase 2: end of tick. The tick's wall length is the base
            // period stretched by the recovery overhead.
            clock += tick_period + update_overhead;

            // Writer progress during this tick; completion check.
            if let Some(a) = &active {
                let end = a.started_at + a.async_duration;
                if let Some(f) = fidelity.as_mut() {
                    let now = clock.min(end);
                    let frontier_end = ((now - a.started_at).max(0.0) * frontier_rate) as u64;
                    f.advance_flush(&bk, frontier_end);
                }
                if end <= clock {
                    let a = active.take().expect("active checkpoint");
                    if let Some(f) = fidelity.as_mut() {
                        f.complete_checkpoint(&bk);
                    }
                    metrics.checkpoints.push(CheckpointRecord {
                        seq: a.plan.seq,
                        start_tick: a.start_tick,
                        end_tick: tick,
                        duration_s: a.sync_pause + a.async_duration,
                        sync_pause_s: a.sync_pause,
                        objects_written: a.plan.flush.objects(),
                        bytes_written: cost.bytes_written(a.plan.flush.objects()),
                        full_flush: a.plan.full_flush,
                    });
                    bk.finish_checkpoint();
                }
            }

            // Tick boundary: start the next checkpoint if none in flight.
            let mut sync_pause = 0.0f64;
            if active.is_none() {
                let plan = bk.begin_checkpoint();
                sync_pause = plan
                    .sync_copy
                    .map_or(0.0, |c| cost.sync_copy_s(c));
                clock += sync_pause;
                let async_duration = match plan.flush {
                    FlushJob::None => 0.0,
                    FlushJob::Snapshot { objects, org } | FlushJob::Sweep { objects, org, .. } => {
                        cost.async_write_s(org, objects, n)
                    }
                };
                if let Some(f) = fidelity.as_mut() {
                    f.begin_checkpoint(&bk);
                }
                active = Some(ActiveCheckpoint {
                    plan,
                    started_at: clock,
                    async_duration,
                    sync_pause,
                    start_tick: tick,
                });
            }

            metrics.ticks.push(TickMetrics {
                tick,
                overhead_s: update_overhead + sync_pause,
                sync_pause_s: sync_pause,
                bit_ops,
                locks,
                copies,
            });
            tick += 1;
        }

        let report = self.build_report(geometry, &cost, tick, total_updates, metrics);
        (report, fidelity.map(FidelityChecker::into_report))
    }

    fn build_report(
        &self,
        geometry: mmoc_core::StateGeometry,
        cost: &CostModel,
        ticks: u64,
        updates: u64,
        metrics: RunMetrics,
    ) -> SimReport {
        let n = geometry.n_objects();
        let spec = self
            .algorithm
            .spec_with_flush_period(self.config.full_flush_period);
        let avg_k = metrics.avg_objects_per_normal_checkpoint();
        let est_restore_s = match spec.full_flush_period {
            Some(c) => cost.restore_partial_redo_s(avg_k, c, n),
            None => cost.restore_full_s(n),
        };
        let est_replay_s = metrics.avg_checkpoint_s();
        SimReport {
            algorithm: self.algorithm,
            geometry,
            ticks,
            updates,
            checkpoints_completed: metrics.checkpoints.len() as u64,
            avg_overhead_s: metrics.avg_overhead_s(),
            max_overhead_s: metrics.max_overhead_s(),
            avg_checkpoint_s: metrics.avg_checkpoint_s(),
            est_restore_s,
            est_replay_s,
            est_recovery_s: est_restore_s + est_replay_s,
            avg_objects_per_checkpoint: avg_k,
            metrics,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmoc_core::StateGeometry;
    use mmoc_workload::{SyntheticConfig, TraceSource};

    fn small_trace(ticks: u64, updates: u32, skew: f64) -> impl TraceSource {
        SyntheticConfig {
            geometry: StateGeometry::small(256, 8),
            ticks,
            updates_per_tick: updates,
            skew,
            seed: 99,
        }
        .build()
    }

    fn run(alg: Algorithm) -> SimReport {
        SimEngine::new(SimConfig::default(), alg).run(&mut small_trace(60, 64, 0.5))
    }

    #[test]
    fn all_algorithms_complete_checkpoints() {
        for alg in Algorithm::ALL {
            let report = run(alg);
            assert!(
                report.checkpoints_completed > 0,
                "{alg} completed no checkpoints"
            );
            assert_eq!(report.ticks, 60);
            assert_eq!(report.updates, 60 * 64);
            assert!(report.est_recovery_s > 0.0, "{alg}");
        }
    }

    #[test]
    fn naive_overhead_is_pure_sync_pause() {
        let report = run(Algorithm::NaiveSnapshot);
        for t in &report.metrics.ticks {
            assert_eq!(t.bit_ops, 0);
            assert_eq!(t.locks, 0);
            assert_eq!(t.copies, 0);
            assert!(
                (t.overhead_s - t.sync_pause_s).abs() < 1e-15,
                "naive overhead must be exactly the sync pause"
            );
        }
    }

    #[test]
    fn cou_overhead_has_no_sync_pause() {
        let report = run(Algorithm::CopyOnUpdate);
        for t in &report.metrics.ticks {
            assert_eq!(t.sync_pause_s, 0.0);
        }
        // But it does copy objects.
        let copies: u64 = report.metrics.ticks.iter().map(|t| t.copies).sum();
        assert!(copies > 0);
    }

    #[test]
    fn checkpoints_are_back_to_back() {
        let report = run(Algorithm::NaiveSnapshot);
        let cps = &report.metrics.checkpoints;
        assert!(cps.len() >= 2);
        for w in cps.windows(2) {
            // The next checkpoint starts at the tick its predecessor
            // completed in.
            assert_eq!(w[1].start_tick, w[0].end_tick);
            assert_eq!(w[1].seq, w[0].seq + 1);
        }
    }

    #[test]
    fn full_state_methods_have_constant_checkpoint_time() {
        // Naive writes n objects to the double backup every time: its
        // checkpoint duration is independent of the update rate.
        let r1 = SimEngine::new(SimConfig::default(), Algorithm::NaiveSnapshot)
            .run(&mut small_trace(40, 8, 0.5));
        let r2 = SimEngine::new(SimConfig::default(), Algorithm::NaiveSnapshot)
            .run(&mut small_trace(40, 512, 0.5));
        assert!(
            (r1.avg_checkpoint_s - r2.avg_checkpoint_s).abs() < 1e-9,
            "{} vs {}",
            r1.avg_checkpoint_s,
            r2.avg_checkpoint_s
        );
    }

    #[test]
    fn partial_redo_checkpoints_faster_at_low_rates() {
        let pr = SimEngine::new(SimConfig::default(), Algorithm::PartialRedo)
            .run(&mut small_trace(60, 4, 0.5));
        let naive = SimEngine::new(SimConfig::default(), Algorithm::NaiveSnapshot)
            .run(&mut small_trace(60, 4, 0.5));
        assert!(
            pr.avg_checkpoint_s < naive.avg_checkpoint_s,
            "PR {} !< Naive {}",
            pr.avg_checkpoint_s,
            naive.avg_checkpoint_s
        );
    }

    #[test]
    fn partial_redo_recovery_is_worse_at_high_rates() {
        let pr = SimEngine::new(SimConfig::default(), Algorithm::PartialRedo)
            .run(&mut small_trace(60, 2048, 0.5));
        let naive = SimEngine::new(SimConfig::default(), Algorithm::NaiveSnapshot)
            .run(&mut small_trace(60, 2048, 0.5));
        assert!(
            pr.est_recovery_s > naive.est_recovery_s,
            "PR {} !> Naive {}",
            pr.est_recovery_s,
            naive.est_recovery_s
        );
    }

    #[test]
    fn eager_methods_concentrate_overhead_cou_spreads_it() {
        // Slow the disk down so one checkpoint spans many ticks (the
        // paper's regime); with the default disk the tiny test state
        // checkpoints every tick and every Naive tick pays a sync pause.
        let config = SimConfig {
            // 8 KB test state at 20 kB/s: one checkpoint ≈ 12 ticks.
            hardware: HardwareParams::paper().with_disk_bandwidth(20e3),
            ..SimConfig::default()
        };
        let naive =
            SimEngine::new(config, Algorithm::NaiveSnapshot).run(&mut small_trace(60, 64, 0.5));
        let cou =
            SimEngine::new(config, Algorithm::CopyOnUpdate).run(&mut small_trace(60, 64, 0.5));
        // Naive's max tick is much larger relative to its average.
        let naive_ratio = naive.max_overhead_s / naive.avg_overhead_s.max(1e-30);
        let cou_ratio = cou.max_overhead_s / cou.avg_overhead_s.max(1e-30);
        assert!(
            naive_ratio > cou_ratio,
            "naive {naive_ratio} vs cou {cou_ratio}"
        );
    }

    #[test]
    fn zero_update_trace_still_checkpoints() {
        for alg in Algorithm::ALL {
            let report = SimEngine::new(SimConfig::default(), alg)
                .run(&mut small_trace(30, 0, 0.0));
            assert!(
                report.checkpoints_completed > 0,
                "{alg} must cycle empty checkpoints"
            );
            // Dirty-only algorithms write nothing.
            if alg != Algorithm::NaiveSnapshot
                && alg != Algorithm::DribbleAndCopyOnUpdate
            {
                let normal_bytes: u64 = report
                    .metrics
                    .checkpoints
                    .iter()
                    .filter(|c| !c.full_flush)
                    .map(|c| c.bytes_written)
                    .sum();
                assert_eq!(normal_bytes, 0, "{alg}");
            }
        }
    }

    #[test]
    fn fidelity_holds_for_all_algorithms() {
        for alg in Algorithm::ALL {
            let (report, fidelity) = SimEngine::new(SimConfig::default(), alg)
                .run_checked(&mut small_trace(80, 96, 0.7));
            assert!(report.checkpoints_completed > 1, "{alg}");
            assert!(
                fidelity.checks_passed >= report.checkpoints_completed,
                "{alg}: {} checks vs {} checkpoints",
                fidelity.checks_passed,
                report.checkpoints_completed
            );
            assert!(
                fidelity.errors.is_empty(),
                "{alg} fidelity errors: {:?}",
                fidelity.errors
            );
        }
    }
}
