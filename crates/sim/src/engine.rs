//! The discrete tick engine, expressed as a cost-model backend of the
//! unified [`TickDriver`].
//!
//! The orchestration loop — updates through `Handle-Update`, checkpoint
//! completion, checkpoint start — lives in `mmoc_core::driver`; this
//! module contributes only what is simulator-specific:
//!
//! 1. A **virtual clock**: a tick's wall length is the base tick period
//!    plus all recovery-induced overhead, matching the paper's observation
//!    that "a recovery method introduces overhead that stretches ticks
//!    beyond their previous length".
//! 2. The **cost model** (Table 3): update bookkeeping is priced with
//!    `Obit`, `Olock`, `ΔTsync(1)`; eager copies with `ΔTsync(k)`; flush
//!    jobs with the disk model `ΔTasync`.
//! 3. The **writer frontier**: the asynchronous writer's progress advances
//!    with virtual time; updates within a tick observe the frontier as of
//!    the start of the tick (the conservative discretization of the real
//!    engine's genuine mutator/writer race).
//! 4. Optional **value-level fidelity checking** for tests.

use crate::cost::CostModel;
use crate::fidelity::{FidelityChecker, FidelityReport};
use crate::params::HardwareParams;
use crate::report::ShardedSimReport;
use crate::report::SimReport;
use mmoc_core::algorithms::DEFAULT_FULL_FLUSH_PERIOD;
use mmoc_core::driver::{CheckpointBackend, FlushCompletion, TickOps};
use mmoc_core::run::{
    EngineDetail, ExperimentEngine, FidelitySummary, RecoveryReport, RunError, RunReport, RunSpec,
    RunSummary, ShardReport, SimRunDetail, TraceSpec,
};
use mmoc_core::{
    Algorithm, Bookkeeper, CellUpdate, CheckpointPlan, CoreError, FlushCursor, FlushJob, ObjectId,
    ShardMap, ShardedDriver, TickDriver, TraceSource,
};
use serde::{Deserialize, Serialize};
use std::convert::Infallible;

/// Simulation configuration: hardware model plus game parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Hardware cost parameters (Table 3).
    pub hardware: HardwareParams,
    /// Tick frequency `Ftick` in Hz (the paper uses 30).
    pub tick_freq_hz: f64,
    /// Full-flush period `C` for the partial-redo algorithms.
    pub full_flush_period: u32,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            hardware: HardwareParams::paper(),
            tick_freq_hz: 30.0,
            full_flush_period: DEFAULT_FULL_FLUSH_PERIOD,
        }
    }
}

impl SimConfig {
    /// Tick period in seconds.
    pub fn tick_period_s(&self) -> f64 {
        1.0 / self.tick_freq_hz
    }
}

/// A checkpoint currently being written (virtual-time bookkeeping).
struct ActiveFlush {
    /// Virtual time at which the asynchronous write began.
    started_at: f64,
    async_duration: f64,
    objects: u32,
}

/// The simulator-specific half of the engine: prices what the driver
/// sequences.
struct SimBackend {
    cost: CostModel,
    tick_period: f64,
    frontier_rate: f64,
    n_objects: u32,
    clock: f64,
    active: Option<ActiveFlush>,
    fidelity: Option<FidelityChecker>,
}

impl SimBackend {
    /// The writer's frontier at virtual time `now`, in sweep slots.
    fn frontier_at(&self, now: f64) -> u64 {
        self.active.as_ref().map_or(0, |a| {
            ((now - a.started_at).max(0.0) * self.frontier_rate) as u64
        })
    }
}

impl CheckpointBackend for SimBackend {
    type Error = Infallible;

    fn begin_tick(&mut self, _tick: u64) -> Result<(), Infallible> {
        Ok(())
    }

    fn cursor(&mut self) -> FlushCursor {
        FlushCursor::at(self.frontier_at(self.clock))
    }

    fn apply_update(
        &mut self,
        update: CellUpdate,
        obj: ObjectId,
        ops: mmoc_core::UpdateOps,
    ) -> Result<(), Infallible> {
        if let Some(f) = self.fidelity.as_mut() {
            if ops.copy {
                f.save_copy(obj);
            }
            f.apply(update);
        }
        Ok(())
    }

    fn end_updates(&mut self, bk: &Bookkeeper, ops: &TickOps) -> Result<f64, Infallible> {
        let overhead = self
            .cost
            .tick_update_overhead_s(ops.bit_ops, ops.locks, ops.copies);
        self.clock += self.tick_period + overhead;
        // Writer progress during this tick, capped at flush completion.
        if let Some(a) = &self.active {
            if let Some(f) = self.fidelity.as_mut() {
                let now = self.clock.min(a.started_at + a.async_duration);
                let slots = ((now - a.started_at).max(0.0) * self.frontier_rate) as u64;
                f.advance_flush(bk, slots);
            }
        }
        Ok(overhead)
    }

    fn poll_completion(&mut self, bk: &Bookkeeper) -> Result<Option<FlushCompletion>, Infallible> {
        let Some(a) = &self.active else {
            return Ok(None);
        };
        if a.started_at + a.async_duration <= self.clock {
            let a = self.active.take().expect("active flush");
            if let Some(f) = self.fidelity.as_mut() {
                f.complete_checkpoint(bk);
            }
            Ok(Some(FlushCompletion {
                duration_s: a.async_duration,
                objects_written: a.objects,
                bytes_written: self.cost.bytes_written(a.objects),
            }))
        } else {
            Ok(None)
        }
    }

    fn start_checkpoint(
        &mut self,
        bk: &Bookkeeper,
        plan: &CheckpointPlan,
        _tick: u64,
    ) -> Result<f64, Infallible> {
        let sync_pause = plan.sync_copy.map_or(0.0, |c| self.cost.sync_copy_s(c));
        self.clock += sync_pause;
        let async_duration = match plan.flush {
            FlushJob::None => 0.0,
            FlushJob::Snapshot { objects, org } | FlushJob::Sweep { objects, org, .. } => {
                self.cost.async_write_s(org, objects, self.n_objects)
            }
        };
        if let Some(f) = self.fidelity.as_mut() {
            f.begin_checkpoint(bk);
        }
        self.active = Some(ActiveFlush {
            started_at: self.clock,
            async_duration,
            objects: plan.flush.objects(),
        });
        Ok(sync_pause)
    }

    fn end_tick(&mut self, _tick: u64) -> Result<(), Infallible> {
        Ok(())
    }

    fn drain(&mut self, bk: &Bookkeeper) -> Result<Option<FlushCompletion>, Infallible> {
        // Virtual time: let the clock jump to the flush's completion.
        if let Some(a) = &self.active {
            self.clock = self.clock.max(a.started_at + a.async_duration);
        }
        self.poll_completion(bk)
    }
}

/// The simulator: drives one algorithm over one trace.
///
/// Constructed internally by the [`ExperimentEngine`] implementation on
/// [`SimConfig`]; experiments go through the unified builder
/// (`Run::algorithm(alg).engine(sim_config).trace(…).execute()`). The
/// pre-builder `run*` methods were removed after one deprecation release.
#[derive(Debug, Clone)]
pub struct SimEngine {
    config: SimConfig,
    algorithm: Algorithm,
}

impl SimEngine {
    /// Create an engine for the given configuration and algorithm.
    pub fn new(config: SimConfig, algorithm: Algorithm) -> Self {
        config
            .hardware
            .validate()
            .expect("invalid hardware parameters");
        assert!(
            config.tick_freq_hz > 0.0 && config.tick_freq_hz.is_finite(),
            "tick frequency must be positive"
        );
        SimEngine { config, algorithm }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The unsharded run: the exact call sequence `run_sharded_inner`
    /// performs per shard, on the single-driver path. Kept for the
    /// in-crate N = 1 bit-equivalence tests.
    #[cfg(test)]
    fn run_inner<S: TraceSource>(
        &self,
        trace: &mut S,
        fidelity: Option<FidelityChecker>,
    ) -> (SimReport, Option<FidelityReport>) {
        let geometry = trace.geometry();
        geometry.validate().expect("trace geometry must be valid");
        let cost = CostModel::new(self.config.hardware, geometry.object_size);
        let spec = self
            .algorithm
            .spec_with_flush_period(self.config.full_flush_period);

        let mut backend = self.make_backend(&cost, geometry.n_objects(), fidelity);
        let run = match TickDriver::new(spec).run(trace, &mut backend) {
            Ok(run) => run,
            Err(infallible) => match infallible {},
        };

        let report = self.build_report(geometry, &cost, run.ticks, run.updates, run.metrics);
        (report, backend.fidelity.map(FidelityChecker::into_report))
    }

    fn make_backend(
        &self,
        cost: &CostModel,
        n_objects: u32,
        fidelity: Option<FidelityChecker>,
    ) -> SimBackend {
        SimBackend {
            cost: *cost,
            tick_period: self.config.tick_period_s(),
            frontier_rate: cost.frontier_slots_per_s(),
            n_objects,
            clock: 0.0,
            active: None,
            fidelity,
        }
    }

    /// The shared sharded run: the single definition the unified builder
    /// executes — one bookkeeper and one **independent virtual clock**
    /// per shard, advanced in lockstep over the global trace; the
    /// aggregate wall clock (and the recovery estimate) is the max over
    /// shards, because shards run — and restore — in parallel.
    fn run_sharded_inner<S: TraceSource>(
        &self,
        trace: &mut S,
        n_shards: u32,
        checked: bool,
        batching: bool,
    ) -> Result<(ShardedSimReport, Option<Vec<FidelityReport>>), CoreError> {
        let geometry = trace.geometry();
        let map = ShardMap::new(geometry, n_shards)?;
        let cost = CostModel::new(self.config.hardware, geometry.object_size);
        let spec = self
            .algorithm
            .spec_with_flush_period(self.config.full_flush_period);

        let mut backends: Vec<SimBackend> = (0..map.n_shards())
            .map(|s| {
                let fidelity =
                    checked.then(|| FidelityChecker::new(map.shard_geometry(s), self.algorithm));
                self.make_backend(&cost, map.shard_geometry(s).n_objects(), fidelity)
            })
            .collect();

        let run =
            match ShardedDriver::new(TickDriver::new(spec).with_batching(batching), map.clone())
                .run(trace, &mut backends)
            {
                Ok(run) => run,
                Err(infallible) => match infallible {},
            };

        let wall_clock_s = backends.iter().map(|b| b.clock).fold(0.0f64, f64::max);
        let fidelity = checked.then(|| {
            backends
                .iter_mut()
                .map(|b| b.fidelity.take().expect("checker installed").into_report())
                .collect()
        });

        let metrics = run.merged_metrics();
        let shards: Vec<SimReport> = run
            .shards
            .into_iter()
            .enumerate()
            .map(|(s, r)| {
                self.build_report(map.shard_geometry(s), &cost, r.ticks, r.updates, r.metrics)
            })
            .collect();
        // Shards restore in parallel at recovery: the world is back when
        // the slowest shard is.
        let est_recovery_s = shards
            .iter()
            .map(|r| r.est_recovery_s)
            .fold(0.0f64, f64::max);
        let report = ShardedSimReport {
            algorithm: self.algorithm,
            geometry,
            n_shards,
            ticks: run.ticks,
            updates: run.updates,
            checkpoints_completed: metrics.checkpoints.len() as u64,
            avg_overhead_s: metrics.avg_overhead_s(),
            max_overhead_s: metrics.max_overhead_s(),
            avg_checkpoint_s: metrics.avg_checkpoint_s(),
            est_recovery_s,
            wall_clock_s,
            shards,
            metrics,
        };
        Ok((report, fidelity))
    }

    fn build_report(
        &self,
        geometry: mmoc_core::StateGeometry,
        cost: &CostModel,
        ticks: u64,
        updates: u64,
        metrics: mmoc_core::RunMetrics,
    ) -> SimReport {
        let n = geometry.n_objects();
        let spec = self
            .algorithm
            .spec_with_flush_period(self.config.full_flush_period);
        let avg_k = metrics.avg_objects_per_normal_checkpoint();
        let est_restore_s = match spec.full_flush_period {
            Some(c) => cost.restore_partial_redo_s(avg_k, c, n),
            None => cost.restore_full_s(n),
        };
        let est_replay_s = metrics.avg_checkpoint_s();
        SimReport {
            algorithm: self.algorithm,
            geometry,
            ticks,
            updates,
            checkpoints_completed: metrics.checkpoints.len() as u64,
            avg_overhead_s: metrics.avg_overhead_s(),
            max_overhead_s: metrics.max_overhead_s(),
            avg_checkpoint_s: metrics.avg_checkpoint_s(),
            est_restore_s,
            est_replay_s,
            est_recovery_s: est_restore_s + est_replay_s,
            avg_objects_per_checkpoint: avg_k,
            metrics,
        }
    }
}

/// The cost-model simulator as a pluggable experiment engine: a
/// `SimConfig` can be handed straight to
/// [`Run::engine`](mmoc_core::Run::engine) (or wrapped in the facade's
/// `Engine::Sim`). [`RunSpec::pacing_hz`] overrides the configured tick
/// frequency; [`RunSpec::fidelity_check`] enables per-shard shadow-disk
/// verification; recovery times in the report are the §4.2 analytic
/// estimates.
impl ExperimentEngine for SimConfig {
    fn run_experiment<T: TraceSpec + ?Sized>(
        &self,
        spec: &RunSpec,
        trace: &T,
    ) -> Result<RunReport, RunError> {
        let mut config = *self;
        if let Some(hz) = spec.pacing_hz {
            config.tick_freq_hz = hz;
        }
        config.hardware.validate().map_err(RunError::Config)?;
        if !(config.tick_freq_hz > 0.0 && config.tick_freq_hz.is_finite()) {
            return Err(RunError::Config(format!(
                "tick frequency must be positive and finite, got {}",
                config.tick_freq_hz
            )));
        }
        // The cost model prices one outstanding flush per shard; pricing
        // a deeper pipeline it does not model would silently misstate
        // the paper's comparison, so depth > 1 is refused instead.
        if let Some(depth) = spec.pipeline_depth {
            if depth > 1 {
                return Err(RunError::Unsupported {
                    engine: "sim",
                    feature: format!("checkpoint pipeline depth {depth} (the cost model prices one in-flight checkpoint per shard)"),
                });
            }
        }
        // Same policy for the replica tier: the cost model has no notion
        // of peer-memory mirrors, so a non-zero factor is refused rather
        // than silently priced as disk-only recovery.
        if let Some(k) = spec.replication {
            if k > 0 {
                return Err(RunError::Unsupported {
                    engine: "sim",
                    feature: format!(
                        "replication factor {k} (the cost model prices disk recovery only)"
                    ),
                });
            }
        }
        let engine = SimEngine {
            config,
            algorithm: spec.algorithm,
        };
        let mut src = trace.open();
        src.geometry().validate()?;
        let (report, fidelity) =
            engine.run_sharded_inner(&mut src, spec.shards, spec.fidelity_check, spec.batching)?;
        Ok(into_run_report(&config, report, fidelity))
    }
}

/// Map the simulator's sharded report into the unified cross-engine shape.
fn into_run_report(
    config: &SimConfig,
    report: ShardedSimReport,
    fidelity: Option<Vec<FidelityReport>>,
) -> RunReport {
    let mut fidelity: Vec<Option<FidelitySummary>> = match fidelity {
        Some(v) => v
            .into_iter()
            .map(|f| {
                Some(FidelitySummary {
                    checks_passed: f.checks_passed,
                    errors: f.errors,
                })
            })
            .collect(),
        None => vec![None; report.shards.len()],
    };
    let shards = report
        .shards
        .iter()
        .enumerate()
        .map(|(s, r)| ShardReport {
            shard: s as u32,
            ticks: r.ticks,
            updates: r.updates,
            summary: RunSummary::from_metrics(r.metrics.clone(), Some(r.est_recovery_s)),
            recovery: Some(RecoveryReport {
                restore_s: r.est_restore_s,
                replay_s: r.est_replay_s,
                total_s: r.est_recovery_s,
                measured: false,
                restored_from_tick: None,
                ticks_replayed: None,
                updates_replayed: None,
                state_matches: None,
                from_replica: None,
            }),
            fidelity: fidelity[s].take(),
        })
        .collect();
    RunReport {
        algorithm: report.algorithm,
        engine: "sim",
        n_shards: report.n_shards,
        ticks: report.ticks,
        updates: report.updates,
        world: RunSummary::from_metrics(report.metrics, Some(report.est_recovery_s)),
        shards,
        detail: EngineDetail::Sim(SimRunDetail {
            wall_clock_s: report.wall_clock_s,
            tick_period_s: config.tick_period_s(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmoc_core::StateGeometry;
    use mmoc_workload::{SyntheticConfig, TraceSource};

    fn small_trace(ticks: u64, updates: u32, skew: f64) -> impl TraceSource {
        SyntheticConfig {
            geometry: StateGeometry::test_small(),
            ticks,
            updates_per_tick: updates,
            skew,
            seed: 99,
        }
        .build()
    }

    /// The unsharded single-driver path (the call sequence the builder
    /// executes per shard), reported in the simulator's native shape.
    fn sim_run(config: SimConfig, alg: Algorithm, trace: &mut impl TraceSource) -> SimReport {
        SimEngine::new(config, alg).run_inner(trace, None).0
    }

    fn run(alg: Algorithm) -> SimReport {
        sim_run(SimConfig::default(), alg, &mut small_trace(60, 64, 0.5))
    }

    #[test]
    fn all_algorithms_complete_checkpoints() {
        for alg in Algorithm::ALL {
            let report = run(alg);
            assert!(
                report.checkpoints_completed > 0,
                "{alg} completed no checkpoints"
            );
            assert_eq!(report.ticks, 60);
            assert_eq!(report.updates, 60 * 64);
            assert!(report.est_recovery_s > 0.0, "{alg}");
        }
    }

    #[test]
    fn naive_overhead_is_pure_sync_pause() {
        let report = run(Algorithm::NaiveSnapshot);
        for t in &report.metrics.ticks {
            assert_eq!(t.bit_ops, 0);
            assert_eq!(t.locks, 0);
            assert_eq!(t.copies, 0);
            assert!(
                (t.overhead_s - t.sync_pause_s).abs() < 1e-15,
                "naive overhead must be exactly the sync pause"
            );
        }
    }

    #[test]
    fn cou_overhead_has_no_sync_pause() {
        let report = run(Algorithm::CopyOnUpdate);
        for t in &report.metrics.ticks {
            assert_eq!(t.sync_pause_s, 0.0);
        }
        // But it does copy objects.
        let copies: u64 = report.metrics.ticks.iter().map(|t| t.copies).sum();
        assert!(copies > 0);
    }

    #[test]
    fn checkpoints_are_back_to_back() {
        let report = run(Algorithm::NaiveSnapshot);
        let cps = &report.metrics.checkpoints;
        assert!(cps.len() >= 2);
        for w in cps.windows(2) {
            // The next checkpoint starts at the tick its predecessor
            // completed in.
            assert_eq!(w[1].start_tick, w[0].end_tick);
            assert_eq!(w[1].seq, w[0].seq + 1);
        }
    }

    #[test]
    fn full_state_methods_have_constant_checkpoint_time() {
        // Naive writes n objects to the double backup every time: its
        // checkpoint duration is independent of the update rate.
        let r1 = sim_run(
            SimConfig::default(),
            Algorithm::NaiveSnapshot,
            &mut small_trace(40, 8, 0.5),
        );
        let r2 = sim_run(
            SimConfig::default(),
            Algorithm::NaiveSnapshot,
            &mut small_trace(40, 512, 0.5),
        );
        assert!(
            (r1.avg_checkpoint_s - r2.avg_checkpoint_s).abs() < 1e-9,
            "{} vs {}",
            r1.avg_checkpoint_s,
            r2.avg_checkpoint_s
        );
    }

    #[test]
    fn partial_redo_checkpoints_faster_at_low_rates() {
        let pr = sim_run(
            SimConfig::default(),
            Algorithm::PartialRedo,
            &mut small_trace(60, 4, 0.5),
        );
        let naive = sim_run(
            SimConfig::default(),
            Algorithm::NaiveSnapshot,
            &mut small_trace(60, 4, 0.5),
        );
        assert!(
            pr.avg_checkpoint_s < naive.avg_checkpoint_s,
            "PR {} !< Naive {}",
            pr.avg_checkpoint_s,
            naive.avg_checkpoint_s
        );
    }

    #[test]
    fn partial_redo_recovery_is_worse_at_high_rates() {
        let pr = sim_run(
            SimConfig::default(),
            Algorithm::PartialRedo,
            &mut small_trace(60, 2048, 0.5),
        );
        let naive = sim_run(
            SimConfig::default(),
            Algorithm::NaiveSnapshot,
            &mut small_trace(60, 2048, 0.5),
        );
        assert!(
            pr.est_recovery_s > naive.est_recovery_s,
            "PR {} !> Naive {}",
            pr.est_recovery_s,
            naive.est_recovery_s
        );
    }

    #[test]
    fn eager_methods_concentrate_overhead_cou_spreads_it() {
        // Slow the disk down so one checkpoint spans many ticks (the
        // paper's regime); with the default disk the tiny test state
        // checkpoints every tick and every Naive tick pays a sync pause.
        let config = SimConfig {
            // 16 KB test state at 20 kB/s: one checkpoint ≈ 24 ticks.
            hardware: HardwareParams::paper().with_disk_bandwidth(20e3),
            ..SimConfig::default()
        };
        let naive = sim_run(
            config,
            Algorithm::NaiveSnapshot,
            &mut small_trace(60, 64, 0.5),
        );
        let cou = sim_run(
            config,
            Algorithm::CopyOnUpdate,
            &mut small_trace(60, 64, 0.5),
        );
        // Naive's max tick is much larger relative to its average.
        let naive_ratio = naive.max_overhead_s / naive.avg_overhead_s.max(1e-30);
        let cou_ratio = cou.max_overhead_s / cou.avg_overhead_s.max(1e-30);
        assert!(
            naive_ratio > cou_ratio,
            "naive {naive_ratio} vs cou {cou_ratio}"
        );
    }

    #[test]
    fn zero_update_trace_still_checkpoints() {
        for alg in Algorithm::ALL {
            let report = sim_run(SimConfig::default(), alg, &mut small_trace(30, 0, 0.0));
            assert!(
                report.checkpoints_completed > 0,
                "{alg} must cycle empty checkpoints"
            );
            // Dirty-only algorithms write nothing.
            if alg != Algorithm::NaiveSnapshot && alg != Algorithm::DribbleAndCopyOnUpdate {
                let normal_bytes: u64 = report
                    .metrics
                    .checkpoints
                    .iter()
                    .filter(|c| !c.full_flush)
                    .map(|c| c.bytes_written)
                    .sum();
                assert_eq!(normal_bytes, 0, "{alg}");
            }
        }
    }

    #[test]
    fn one_shard_is_bit_identical_to_the_single_driver_path() {
        for alg in Algorithm::ALL {
            let engine = SimEngine::new(SimConfig::default(), alg);
            let single = engine.run_inner(&mut small_trace(60, 96, 0.7), None).0;
            let sharded = engine
                .run_sharded_inner(&mut small_trace(60, 96, 0.7), 1, false, false)
                .expect("shardable geometry")
                .0;
            assert_eq!(sharded.n_shards, 1);
            assert_eq!(sharded.shards.len(), 1);
            let shard = &sharded.shards[0];
            // The virtual clock is deterministic: every derived number
            // must be *exactly* equal, not just close.
            assert_eq!(shard.ticks, single.ticks, "{alg}");
            assert_eq!(shard.updates, single.updates, "{alg}");
            assert_eq!(shard.metrics.ticks, single.metrics.ticks, "{alg}");
            assert_eq!(
                shard.metrics.checkpoints, single.metrics.checkpoints,
                "{alg}"
            );
            assert_eq!(shard.avg_overhead_s, single.avg_overhead_s, "{alg}");
            assert_eq!(shard.est_recovery_s, single.est_recovery_s, "{alg}");
            // And the world-level aggregates collapse to the shard's.
            assert_eq!(sharded.avg_overhead_s, single.avg_overhead_s, "{alg}");
            assert_eq!(sharded.est_recovery_s, single.est_recovery_s, "{alg}");
        }
    }

    #[test]
    fn sharded_fidelity_holds_and_clocks_are_independent() {
        for alg in Algorithm::ALL {
            let engine = SimEngine::new(SimConfig::default(), alg);
            let (report, fidelity) = engine
                .run_sharded_inner(&mut small_trace(60, 96, 0.7), 4, true, false)
                .expect("shardable geometry");
            let fidelity = fidelity.expect("fidelity checkers were installed");
            assert_eq!(report.n_shards, 4);
            assert_eq!(report.shards.len(), 4);
            assert_eq!(fidelity.len(), 4);
            for (s, f) in fidelity.iter().enumerate() {
                assert!(f.errors.is_empty(), "{alg} shard {s}: {:?}", f.errors);
                assert!(f.checks_passed > 0, "{alg} shard {s}");
            }
            // Each shard prices its own virtual clock; the aggregate wall
            // clock is the slowest shard's.
            let max_clock = report
                .shards
                .iter()
                .map(|r| {
                    r.ticks as f64 * engine.config().tick_period_s()
                        + r.metrics.ticks.iter().map(|t| t.overhead_s).sum::<f64>()
                })
                .fold(0.0f64, f64::max);
            assert!(
                report.wall_clock_s >= max_clock - 1e-9,
                "{alg}: wall clock {} < slowest shard {}",
                report.wall_clock_s,
                max_clock
            );
            // Recovery is parallel: the world estimate is a max, not a sum.
            let max_rec = report
                .shards
                .iter()
                .map(|r| r.est_recovery_s)
                .fold(0.0f64, f64::max);
            assert_eq!(report.est_recovery_s, max_rec, "{alg}");
            // Work is conserved: total updates equal the unsharded trace's.
            assert_eq!(report.updates, 60 * 96, "{alg}");
        }
    }

    #[test]
    fn sharding_shrinks_per_shard_checkpoints() {
        // Fixed total state split 4 ways: each shard flushes ~1/4 of the
        // full-state write, so Naive's per-shard checkpoint time drops.
        let engine = SimEngine::new(SimConfig::default(), Algorithm::NaiveSnapshot);
        let single = engine.run_inner(&mut small_trace(40, 64, 0.5), None).0;
        let sharded = engine
            .run_sharded_inner(&mut small_trace(40, 64, 0.5), 4, false, false)
            .expect("shardable geometry")
            .0;
        assert!(
            sharded.avg_checkpoint_s < single.avg_checkpoint_s,
            "sharded {} !< single {}",
            sharded.avg_checkpoint_s,
            single.avg_checkpoint_s
        );
    }

    fn small_spec(ticks: u64, updates: u32, skew: f64) -> SyntheticConfig {
        SyntheticConfig {
            geometry: StateGeometry::test_small(),
            ticks,
            updates_per_tick: updates,
            skew,
            seed: 99,
        }
    }

    #[test]
    fn builder_path_is_bit_identical_to_the_inner_run() {
        for alg in Algorithm::ALL {
            let legacy = sim_run(SimConfig::default(), alg, &mut small_trace(60, 96, 0.7));
            let report = mmoc_core::Run::algorithm(alg)
                .engine(SimConfig::default())
                .trace(small_spec(60, 96, 0.7))
                .execute()
                .expect("builder run");
            assert_eq!(report.engine, "sim");
            assert_eq!(report.n_shards, 1);
            assert_eq!(report.shards.len(), 1, "{alg}: trivial shard breakdown");
            assert_eq!(report.ticks, legacy.ticks, "{alg}");
            assert_eq!(report.updates, legacy.updates, "{alg}");
            // The virtual clock is deterministic: exact equality.
            assert_eq!(report.world.metrics.ticks, legacy.metrics.ticks, "{alg}");
            assert_eq!(
                report.world.metrics.checkpoints, legacy.metrics.checkpoints,
                "{alg}"
            );
            assert_eq!(report.world.avg_overhead_s, legacy.avg_overhead_s, "{alg}");
            assert_eq!(
                report.world.recovery_s,
                Some(legacy.est_recovery_s),
                "{alg}"
            );
            let rec = report.shards[0].recovery.as_ref().expect("estimate");
            assert!(!rec.measured);
            assert_eq!(rec.restore_s, legacy.est_restore_s, "{alg}");
            assert_eq!(rec.replay_s, legacy.est_replay_s, "{alg}");
        }
    }

    #[test]
    fn builder_fidelity_check_runs_the_shadow_disk() {
        let report = mmoc_core::Run::algorithm(Algorithm::CopyOnUpdate)
            .engine(SimConfig::default())
            .trace(small_spec(60, 96, 0.7))
            .shards(4)
            .fidelity_check(true)
            .execute()
            .expect("checked run");
        assert_eq!(report.shards.len(), 4);
        for s in &report.shards {
            let f = s.fidelity.as_ref().expect("fidelity checked");
            assert!(f.is_clean(), "shard {}: {:?}", s.shard, f.errors);
            assert!(f.checks_passed > 0);
        }
        assert_eq!(report.verified_consistent(), Some(true));
    }

    #[test]
    fn builder_pacing_overrides_the_tick_frequency() {
        let at = |hz: f64| {
            mmoc_core::Run::algorithm(Algorithm::NaiveSnapshot)
                .engine(SimConfig::default())
                .trace(small_spec(40, 32, 0.5))
                .pacing(hz)
                .execute()
                .expect("paced run")
        };
        let fast = at(60.0);
        let slow = at(10.0);
        let wall = |r: &mmoc_core::RunReport| match r.detail {
            mmoc_core::EngineDetail::Sim(d) => d.wall_clock_s,
            _ => unreachable!("sim engine"),
        };
        assert!(
            wall(&slow) > wall(&fast),
            "10 Hz world must take longer than the 60 Hz world"
        );
    }

    #[test]
    fn invalid_configs_are_typed_errors_not_panics() {
        let mut bad = SimConfig::default();
        bad.hardware = bad.hardware.with_disk_bandwidth(-1.0);
        let err = mmoc_core::Run::algorithm(Algorithm::CopyOnUpdate)
            .engine(bad)
            .trace(small_spec(10, 8, 0.5))
            .execute()
            .unwrap_err();
        assert!(matches!(err, mmoc_core::RunError::Config(_)), "{err}");

        let err = mmoc_core::Run::algorithm(Algorithm::CopyOnUpdate)
            .engine(SimConfig::default())
            .trace(small_spec(10, 8, 0.5))
            .shards(1_000_000)
            .execute()
            .unwrap_err();
        assert!(matches!(err, mmoc_core::RunError::Core(_)), "{err}");
    }

    #[test]
    fn fidelity_holds_for_all_algorithms() {
        for alg in Algorithm::ALL {
            let mut trace = small_trace(80, 96, 0.7);
            let checker = FidelityChecker::new(trace.geometry(), alg);
            let (report, fidelity) =
                SimEngine::new(SimConfig::default(), alg).run_inner(&mut trace, Some(checker));
            let fidelity = fidelity.expect("fidelity checker was installed");
            assert!(report.checkpoints_completed > 1, "{alg}");
            assert!(
                fidelity.checks_passed >= report.checkpoints_completed,
                "{alg}: {} checks vs {} checkpoints",
                fidelity.checks_passed,
                report.checkpoints_completed
            );
            assert!(
                fidelity.errors.is_empty(),
                "{alg} fidelity errors: {:?}",
                fidelity.errors
            );
        }
    }
}
