//! The analytic cost formulas of §4.2.
//!
//! * `ΔTsync(k) = Omem + k·Sobj/Bmem` per contiguous group — the pause a
//!   synchronous in-memory copy adds to the simulation loop;
//! * `ΔTasync(k) = k·Sobj/Bdisk` for log writes (fully sequential) and
//!   `≈ n·Sobj/Bdisk` for sorted double-backup writes (one disk rotation
//!   per track ⇒ the elapsed time of writing `k` sectors is the time of a
//!   full transfer, independent of `k`);
//! * `ΔToverhead = Obit + Olock + ΔTsync(1)` for a first-touch
//!   copy-on-update, with the later terms dropped when the bit test or
//!   flush check short-circuits;
//! * `ΔTrecovery = ΔTrestore + ΔTreplay`, where partial-redo algorithms
//!   pay `(k·C + n)·Sobj/Bdisk` to restore because they must read back
//!   through `C` checkpoints of log.

use crate::params::HardwareParams;
use mmoc_core::{DiskOrg, SyncCopy, UpdateOps};

/// Prices bookkeeping events using the Table 3 parameters.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    params: HardwareParams,
    /// Atomic object size `Sobj` in bytes.
    object_size: f64,
}

impl CostModel {
    /// Build a cost model for a given object size.
    pub fn new(params: HardwareParams, object_size: u32) -> Self {
        params.validate().expect("invalid hardware parameters");
        CostModel {
            params,
            object_size: f64::from(object_size),
        }
    }

    /// The hardware parameters in use.
    pub fn params(&self) -> &HardwareParams {
        &self.params
    }

    /// `ΔTsync` for an eager copy of `objects` objects in `runs`
    /// contiguous groups, in seconds.
    pub fn sync_copy_s(&self, copy: SyncCopy) -> f64 {
        if copy.objects == 0 {
            return 0.0;
        }
        f64::from(copy.runs) * self.params.mem_latency
            + f64::from(copy.objects) * self.object_size / self.params.mem_bandwidth
    }

    /// `ΔTsync(1)`: the in-memory copy of a single atomic object.
    pub fn single_copy_s(&self) -> f64 {
        self.params.mem_latency + self.object_size / self.params.mem_bandwidth
    }

    /// Overhead of one update's bookkeeping, in seconds.
    pub fn update_overhead_s(&self, ops: UpdateOps) -> f64 {
        let mut t = f64::from(ops.bit_ops) * self.params.bit_overhead;
        if ops.lock {
            t += self.params.lock_overhead;
        }
        if ops.copy {
            t += self.single_copy_s();
        }
        t
    }

    /// Overhead of a tick's aggregated update bookkeeping, in seconds.
    /// Identical to summing [`CostModel::update_overhead_s`] but avoids
    /// accumulating millions of tiny floats.
    pub fn tick_update_overhead_s(&self, bit_ops: u64, locks: u64, copies: u64) -> f64 {
        bit_ops as f64 * self.params.bit_overhead
            + locks as f64 * self.params.lock_overhead
            + copies as f64 * self.single_copy_s()
    }

    /// `ΔTasync`: duration of the asynchronous write of `k` objects into a
    /// state of `n` objects, in seconds.
    pub fn async_write_s(&self, org: DiskOrg, k: u32, n: u32) -> f64 {
        if k == 0 {
            return 0.0;
        }
        let objects = match org {
            // Sorted writes into a contiguously allocated backup file cost
            // a full rotation per track: elapsed time is that of a full
            // transfer, independent of k.
            DiskOrg::DoubleBackup => n,
            DiskOrg::Log => k,
        };
        f64::from(objects) * self.object_size / self.params.disk_bandwidth
    }

    /// Rate at which the asynchronous writer's *frontier* advances, in
    /// slots per second. For both organizations the writer moves through
    /// its slot space (file offsets, or sorted-list positions) at disk
    /// bandwidth.
    pub fn frontier_slots_per_s(&self) -> f64 {
        self.params.disk_bandwidth / self.object_size
    }

    /// `ΔTrestore` for algorithms that read one sequential checkpoint
    /// image (everything except the partial-redo family), in seconds.
    pub fn restore_full_s(&self, n: u32) -> f64 {
        f64::from(n) * self.object_size / self.params.disk_bandwidth
    }

    /// `ΔTrestore` for partial-redo algorithms: in the worst case the log
    /// is read back through `full_flush_period` checkpoints of `avg_k`
    /// objects each plus one full image of `n` objects.
    pub fn restore_partial_redo_s(&self, avg_k: f64, full_flush_period: u32, n: u32) -> f64 {
        (avg_k * f64::from(full_flush_period) + f64::from(n)) * self.object_size
            / self.params.disk_bandwidth
    }

    /// Bytes written by a checkpoint that flushes `k` objects.
    pub fn bytes_written(&self, k: u32) -> u64 {
        u64::from(k) * self.object_size as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmoc_core::SyncCopy;

    fn model() -> CostModel {
        CostModel::new(HardwareParams::paper(), 512)
    }

    #[test]
    fn sync_copy_matches_formula() {
        let m = model();
        // One run of 78,125 objects = the full 40 MB synthetic state.
        let t = m.sync_copy_s(SyncCopy {
            objects: 78_125,
            runs: 1,
        });
        // 100ns + 40e6 / 2.2GiB/s ≈ 16.9 ms.
        assert!((0.0167..0.0172).contains(&t), "t = {t}");
        // Runs multiply the latency term only.
        let t2 = m.sync_copy_s(SyncCopy {
            objects: 78_125,
            runs: 1_000,
        });
        assert!((t2 - t - 999.0 * 100e-9).abs() < 1e-12);
        // Empty copies are free.
        assert_eq!(
            m.sync_copy_s(SyncCopy {
                objects: 0,
                runs: 0
            }),
            0.0
        );
    }

    #[test]
    fn update_overhead_matches_paper_formula() {
        let m = model();
        // Full first-touch: Obit + Olock + ΔTsync(1)
        let full = m.update_overhead_s(UpdateOps {
            bit_ops: 1,
            lock: true,
            copy: true,
        });
        let expected = 2e-9 + 145e-9 + (100e-9 + 512.0 / (2.2 * 1024f64.powi(3)));
        assert!((full - expected).abs() < 1e-15, "{full} vs {expected}");
        // Bit test only.
        let bit = m.update_overhead_s(UpdateOps {
            bit_ops: 1,
            lock: false,
            copy: false,
        });
        assert_eq!(bit, 2e-9);
        // No-op (Naive-Snapshot updates).
        assert_eq!(m.update_overhead_s(UpdateOps::default()), 0.0);
    }

    #[test]
    fn aggregated_tick_overhead_equals_sum() {
        let m = model();
        let per = m.update_overhead_s(UpdateOps {
            bit_ops: 1,
            lock: true,
            copy: true,
        });
        let agg = m.tick_update_overhead_s(10, 10, 10);
        assert!((agg - 10.0 * per).abs() < 1e-12);
    }

    #[test]
    fn double_backup_write_time_is_independent_of_k() {
        let m = model();
        let n = 78_125;
        let full = m.async_write_s(DiskOrg::DoubleBackup, n, n);
        let partial = m.async_write_s(DiskOrg::DoubleBackup, 1_000, n);
        assert_eq!(full, partial, "sorted writes cost a full transfer");
        // ≈ 0.667 s: the paper's "around 0.68 sec" constant checkpoint.
        assert!((0.66..0.68).contains(&full), "full = {full}");
        // ...but an empty write is free.
        assert_eq!(m.async_write_s(DiskOrg::DoubleBackup, 0, n), 0.0);
    }

    #[test]
    fn log_write_time_scales_with_k() {
        let m = model();
        let n = 78_125;
        let t1 = m.async_write_s(DiskOrg::Log, 10_000, n);
        let t2 = m.async_write_s(DiskOrg::Log, 20_000, n);
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
        // At k = n the log write equals the double-backup full transfer.
        assert_eq!(
            m.async_write_s(DiskOrg::Log, n, n),
            m.async_write_s(DiskOrg::DoubleBackup, n, n)
        );
    }

    #[test]
    fn recovery_formulas() {
        let m = model();
        let n = 78_125;
        // Restore of a full image ≈ the full write time.
        assert_eq!(m.restore_full_s(n), m.async_write_s(DiskOrg::Log, n, n));
        // Partial-redo restore grows with k·C.
        let r = m.restore_partial_redo_s(70_000.0, 8, n);
        let base = m.restore_full_s(n);
        assert!(r > 8.0 * base, "r = {r}, base = {base}");
        // With an empty log (k = 0) it degenerates to a full restore.
        assert_eq!(m.restore_partial_redo_s(0.0, 8, n), base);
    }

    #[test]
    fn frontier_rate_crosses_file_in_write_time() {
        let m = model();
        let n = 78_125u32;
        let duration = m.async_write_s(DiskOrg::DoubleBackup, n, n);
        let slots = m.frontier_slots_per_s() * duration;
        assert!((slots - f64::from(n)).abs() < 1.0);
    }

    #[test]
    fn bytes_written_is_object_multiples() {
        let m = model();
        assert_eq!(m.bytes_written(3), 1_536);
        assert_eq!(m.bytes_written(0), 0);
    }
}
