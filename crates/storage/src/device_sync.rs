//! `syncfs`-style whole-device durability barriers.
//!
//! When the batched writer's durability scheduler finds several distinct
//! files pending in one batch that all live on the same device (same
//! `SyncTarget::dev`), M per-file `fsync` calls can collapse to a single
//! `syncfs(2)` on any descriptor naming that filesystem — the kernel
//! flushes every dirty page of the filesystem, which is a superset of
//! what the per-file calls would flush. Correctness is unchanged: the
//! barrier is *stronger* than the per-file syncs it replaces, so every
//! pending checkpoint's data is durable before its metadata commit.
//!
//! `syncfs` is Linux-specific and can be denied (seccomp filters,
//! exotic filesystems, pre-2.6.39 kernels return `ENOSYS`). The first
//! failed probe latches a process-global **unavailable** verdict and
//! every later batch silently falls back to per-file `fsync` — the
//! fallback ladder is `syncfs → fsync`, never `syncfs → error`.

use std::io;
use std::os::unix::io::RawFd;
use std::sync::atomic::{AtomicU8, Ordering};

// std already links libc; declaring the one symbol we need avoids a
// dependency the offline build doesn't have.
extern "C" {
    fn syncfs(fd: std::ffi::c_int) -> std::ffi::c_int;
}

const UNKNOWN: u8 = 0;
const AVAILABLE: u8 = 1;
const UNAVAILABLE: u8 = 2;

/// Process-global capability verdict, latched by the first probe.
static CAPABILITY: AtomicU8 = AtomicU8::new(UNKNOWN);

/// Flush every dirty page of the filesystem holding `fd`.
///
/// Returns `Ok(true)` when the barrier ran, `Ok(false)` when `syncfs`
/// is unavailable on this system (caller must fall back to per-file
/// `fsync`), and `Err` only for real I/O failures on a working `syncfs`.
pub(crate) fn sync_device(fd: RawFd) -> io::Result<bool> {
    sync_device_impl(&CAPABILITY, || {
        // SAFETY: `fd` is a live descriptor owned by the caller's store
        // for the duration of the call; syncfs reads nothing from user
        // memory.
        let rc = unsafe { syncfs(fd) };
        if rc == 0 {
            Ok(())
        } else {
            Err(io::Error::last_os_error())
        }
    })
}

/// The capability ladder around one barrier attempt, with the latch and
/// the syscall injected so the contract is testable without racing the
/// process-global verdict from parallel tests.
fn sync_device_impl(cap: &AtomicU8, barrier: impl FnOnce() -> io::Result<()>) -> io::Result<bool> {
    if cap.load(Ordering::Relaxed) == UNAVAILABLE {
        return Ok(false);
    }
    match barrier() {
        Ok(()) => {
            cap.store(AVAILABLE, Ordering::Relaxed);
            Ok(true)
        }
        Err(err) => match err.raw_os_error() {
            // Capability failures: the syscall is filtered, unimplemented,
            // or rejects this fd class. Latch unavailable and fall back.
            Some(libc_errno::ENOSYS | libc_errno::EPERM | libc_errno::EINVAL) => {
                cap.store(UNAVAILABLE, Ordering::Relaxed);
                Ok(false)
            }
            // A working syncfs reporting an I/O error is a real durability
            // failure — surface it like a failed fsync.
            _ => Err(err),
        },
    }
}

/// The errno values the capability probe distinguishes (spelled out here
/// because the build has no `libc` crate).
mod libc_errno {
    pub const EPERM: i32 = 1;
    pub const EINVAL: i32 = 22;
    pub const ENOSYS: i32 = 38;
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::os::unix::io::AsRawFd;

    /// On any Linux this repo builds on, syncfs either works on a tempdir
    /// file (tmpfs/ext4/btrfs all support it) or latches unavailable; a
    /// bad fd must never latch the capability off after a success.
    #[test]
    fn sync_device_probes_and_latches() {
        let dir = tempfile::tempdir().unwrap();
        let f = std::fs::File::create(dir.path().join("probe")).unwrap();
        let first = sync_device(f.as_raw_fd()).expect("no I/O error on a fresh file");
        let second = sync_device(f.as_raw_fd()).expect("no I/O error on a fresh file");
        assert_eq!(first, second, "capability verdict must be stable");
    }

    #[test]
    fn sync_device_rejects_closed_fd_without_poisoning() {
        let dir = tempfile::tempdir().unwrap();
        let f = std::fs::File::create(dir.path().join("probe")).unwrap();
        let live = sync_device(f.as_raw_fd()).unwrap();
        // EBADF is neither a capability errno nor success: it must come
        // back as a real error (or as unavailable if already latched).
        let bad = sync_device(-1);
        match bad {
            Err(_) | Ok(false) => {}
            Ok(true) => panic!("syncfs(-1) cannot succeed"),
        }
        if live {
            assert!(
                sync_device(f.as_raw_fd()).unwrap(),
                "a bad fd must not latch the capability off"
            );
        }
    }

    /// The permanent-fallback contract the batched engine's device-sync
    /// arm relies on: one `ENOSYS` from the kernel latches the barrier
    /// off for good — every later batch gets `Ok(false)` *without
    /// re-probing* and resumes per-file fsyncs (the scheduler's
    /// `Ok(false)` arm records no device barrier, so `device_syncs`
    /// stays 0) — while a real I/O error on a working `syncfs` surfaces
    /// as `Err` and leaves the capability alone. Driven against a local
    /// latch so parallel tests cannot race the process-global verdict.
    #[test]
    fn forced_enosys_latches_permanent_per_file_fallback() {
        let cap = AtomicU8::new(UNKNOWN);
        let first = sync_device_impl(&cap, || {
            Err(io::Error::from_raw_os_error(libc_errno::ENOSYS))
        })
        .expect("capability failure is not an I/O error");
        assert!(!first, "ENOSYS must report the barrier unavailable");
        assert_eq!(cap.load(Ordering::Relaxed), UNAVAILABLE);
        // A later batch — even one whose syncfs would succeed — must not
        // re-probe: the verdict is permanent for the process.
        let again = sync_device_impl(&cap, || panic!("latched-off probe must not call syncfs"))
            .expect("latched fallback cannot fail");
        assert!(!again, "per-file fsyncs resume for every later batch");

        // EIO on a working syncfs is a durability failure, not a missing
        // capability: it surfaces and the barrier stays available.
        let cap = AtomicU8::new(AVAILABLE);
        let err = sync_device_impl(&cap, || Err(io::Error::from_raw_os_error(5)));
        assert!(err.is_err(), "real I/O failures must surface");
        assert_eq!(cap.load(Ordering::Relaxed), AVAILABLE);
    }
}
