//! `syncfs`-style whole-device durability barriers.
//!
//! When the batched writer's durability scheduler finds several distinct
//! files pending in one batch that all live on the same device (same
//! `SyncTarget::dev`), M per-file `fsync` calls can collapse to a single
//! `syncfs(2)` on any descriptor naming that filesystem — the kernel
//! flushes every dirty page of the filesystem, which is a superset of
//! what the per-file calls would flush. Correctness is unchanged: the
//! barrier is *stronger* than the per-file syncs it replaces, so every
//! pending checkpoint's data is durable before its metadata commit.
//!
//! `syncfs` is Linux-specific and can be denied (seccomp filters,
//! exotic filesystems, pre-2.6.39 kernels return `ENOSYS`). The first
//! failed probe latches a process-global **unavailable** verdict and
//! every later batch silently falls back to per-file `fsync` — the
//! fallback ladder is `syncfs → fsync`, never `syncfs → error`.

use std::io;
use std::os::unix::io::RawFd;
use std::sync::atomic::{AtomicU8, Ordering};

// std already links libc; declaring the one symbol we need avoids a
// dependency the offline build doesn't have.
extern "C" {
    fn syncfs(fd: std::ffi::c_int) -> std::ffi::c_int;
}

const UNKNOWN: u8 = 0;
const AVAILABLE: u8 = 1;
const UNAVAILABLE: u8 = 2;

/// Process-global capability verdict, latched by the first probe.
static CAPABILITY: AtomicU8 = AtomicU8::new(UNKNOWN);

/// Flush every dirty page of the filesystem holding `fd`.
///
/// Returns `Ok(true)` when the barrier ran, `Ok(false)` when `syncfs`
/// is unavailable on this system (caller must fall back to per-file
/// `fsync`), and `Err` only for real I/O failures on a working `syncfs`.
pub(crate) fn sync_device(fd: RawFd) -> io::Result<bool> {
    if CAPABILITY.load(Ordering::Relaxed) == UNAVAILABLE {
        return Ok(false);
    }
    // SAFETY: `fd` is a live descriptor owned by the caller's store for
    // the duration of the call; syncfs reads nothing from user memory.
    let rc = unsafe { syncfs(fd) };
    if rc == 0 {
        CAPABILITY.store(AVAILABLE, Ordering::Relaxed);
        return Ok(true);
    }
    let err = io::Error::last_os_error();
    match err.raw_os_error() {
        // Capability failures: the syscall is filtered, unimplemented, or
        // rejects this fd class. Latch unavailable and fall back.
        Some(libc_errno::ENOSYS | libc_errno::EPERM | libc_errno::EINVAL) => {
            CAPABILITY.store(UNAVAILABLE, Ordering::Relaxed);
            Ok(false)
        }
        // A working syncfs reporting an I/O error is a real durability
        // failure — surface it like a failed fsync.
        _ => Err(err),
    }
}

/// The errno values the capability probe distinguishes (spelled out here
/// because the build has no `libc` crate).
mod libc_errno {
    pub const EPERM: i32 = 1;
    pub const EINVAL: i32 = 22;
    pub const ENOSYS: i32 = 38;
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::os::unix::io::AsRawFd;

    /// On any Linux this repo builds on, syncfs either works on a tempdir
    /// file (tmpfs/ext4/btrfs all support it) or latches unavailable; a
    /// bad fd must never latch the capability off after a success.
    #[test]
    fn sync_device_probes_and_latches() {
        let dir = tempfile::tempdir().unwrap();
        let f = std::fs::File::create(dir.path().join("probe")).unwrap();
        let first = sync_device(f.as_raw_fd()).expect("no I/O error on a fresh file");
        let second = sync_device(f.as_raw_fd()).expect("no I/O error on a fresh file");
        assert_eq!(first, second, "capability verdict must be stable");
    }

    #[test]
    fn sync_device_rejects_closed_fd_without_poisoning() {
        let dir = tempfile::tempdir().unwrap();
        let f = std::fs::File::create(dir.path().join("probe")).unwrap();
        let live = sync_device(f.as_raw_fd()).unwrap();
        // EBADF is neither a capability errno nor success: it must come
        // back as a real error (or as unavailable if already latched).
        let bad = sync_device(-1);
        match bad {
            Err(_) | Ok(false) => {}
            Ok(true) => panic!("syncfs(-1) cannot succeed"),
        }
        if live {
            assert!(
                sync_device(f.as_raw_fd()).unwrap(),
                "a bad fd must not latch the capability off"
            );
        }
    }
}
