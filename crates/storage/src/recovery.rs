//! Real crash recovery: restore the newest backup, replay the stream.
//!
//! "In the event of a crash, the game state can be reconstructed by
//! reading the most recent checkpoint and replaying the logical log."
//! The logical log of these experiments is the deterministic update
//! stream itself (the paper drives both engines from trace files), so
//! replay re-iterates the trace source and applies every tick after the
//! checkpoint's consistent tick.
//!
//! Both disk organizations are covered: [`recover_and_replay`] restores
//! the newest consistent [`BackupSet`] image, and
//! [`recover_and_replay_log`] reconstructs the newest image from the
//! [`LogStore`] (reading back through the log to the last full flush).

use crate::crash::{CrashPoint, CrashState};
use crate::fault::{FaultState, RetryCounters, RetryPolicy};
use crate::files::BackupSet;
use crate::log_store::LogStore;
use mmoc_core::{StateGeometry, StateTable};
use mmoc_workload::TraceSource;
use std::io;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

/// Instrumentation threaded through one recovery attempt: a crash
/// lattice for the recovery-phase points (re-crash-during-recovery), a
/// transient-fault layer for the restore reads, and the retry policy
/// absorbing injected read faults. `Default` is production: nothing
/// armed, reads retried under the default bounded policy (a no-op when
/// nothing fails).
///
/// Re-entrancy contract: a recovery-phase crash point fires **once**
/// per [`CrashState`] (the fired latch), returning an error from the
/// recovery function without freezing anything — so re-invoking the
/// same recovery over the same directory (the process-restart model)
/// passes the point and must succeed.
#[derive(Debug, Default, Clone)]
pub struct RecoveryOpts {
    /// Crash lattice consulted at the recovery-phase points. For
    /// re-crash plans this is a *separate* state from the run's (whose
    /// fired latch the mid-run crash already consumed).
    pub crash: Option<Arc<CrashState>>,
    /// Transient-fault layer attached to the store being restored.
    pub fault: Option<Arc<FaultState>>,
    /// Bounded retry policy for the restore reads.
    pub retry: RetryPolicy,
}

impl RecoveryOpts {
    /// Consult the recovery crash lattice at `point`; firing turns
    /// into the error a re-crashed recovery attempt would surface.
    fn recrash(&self, point: CrashPoint) -> io::Result<()> {
        if let Some(c) = &self.crash {
            if c.reach(point).is_some() {
                return Err(io::Error::other(format!(
                    "injected re-crash during recovery at {}",
                    point.name()
                )));
            }
        }
        Ok(())
    }
}

/// A recovered state plus timing breakdown.
#[derive(Debug)]
pub struct RecoveredState {
    /// The reconstructed game state.
    pub table: StateTable,
    /// Tick the restored backup was consistent as of.
    pub from_tick: u64,
    /// Ticks whose updates were replayed.
    pub ticks_replayed: u64,
    /// Updates replayed.
    pub updates_replayed: u64,
    /// Wall time reading + installing the backup image.
    pub restore_s: f64,
    /// Wall time replaying the stream.
    pub replay_s: f64,
}

/// Restore from the backups under `dir` and replay `trace` (iterated from
/// its beginning) up to and including `crash_tick`.
pub fn recover_and_replay<S: TraceSource>(
    dir: &Path,
    geometry: StateGeometry,
    trace: &mut S,
    crash_tick: u64,
) -> io::Result<RecoveredState> {
    recover_and_replay_with(dir, geometry, trace, crash_tick, &RecoveryOpts::default())
}

/// [`recover_and_replay`] with explicit instrumentation. Safely
/// re-entrant: a failed attempt (injected or real) leaves the backup
/// files untouched, so calling again over the same directory restores
/// the same image.
pub fn recover_and_replay_with<S: TraceSource>(
    dir: &Path,
    geometry: StateGeometry,
    trace: &mut S,
    crash_tick: u64,
    opts: &RecoveryOpts,
) -> io::Result<RecoveredState> {
    let t0 = Instant::now();
    let mut set = BackupSet::open(dir, geometry)?;
    set.attach_fault(opts.fault.clone());
    let (idx, from_tick) = set
        .newest_consistent()
        .ok_or_else(|| io::Error::other("no consistent backup to restore"))?;
    let mut counters = RetryCounters::default();
    let image = opts.retry.run(&mut counters, || set.read_full(idx))?;
    opts.recrash(CrashPoint::RecoveryReadImage)?;
    restore_and_replay(geometry, image, from_tick, t0, trace, crash_tick, opts)
}

/// Restore from the checkpoint log under `dir` (reconstructing the newest
/// consistent image back to the last full flush) and replay `trace` up to
/// and including `crash_tick`.
pub fn recover_and_replay_log<S: TraceSource>(
    dir: &Path,
    geometry: StateGeometry,
    trace: &mut S,
    crash_tick: u64,
) -> io::Result<RecoveredState> {
    recover_and_replay_log_with(dir, geometry, trace, crash_tick, &RecoveryOpts::default())
}

/// [`recover_and_replay_log`] with explicit instrumentation. Safely
/// re-entrant: reconstruction only reads, so a failed attempt can be
/// repeated over the same log.
pub fn recover_and_replay_log_with<S: TraceSource>(
    dir: &Path,
    geometry: StateGeometry,
    trace: &mut S,
    crash_tick: u64,
    opts: &RecoveryOpts,
) -> io::Result<RecoveredState> {
    let t0 = Instant::now();
    let mut log = LogStore::open(dir, geometry)?;
    log.attach_fault(opts.fault.clone());
    let mut counters = RetryCounters::default();
    let (image, from_tick, _bytes_read) = opts.retry.run(&mut counters, || log.reconstruct())?;
    opts.recrash(CrashPoint::RecoveryReadImage)?;
    restore_and_replay(geometry, image, from_tick, t0, trace, crash_tick, opts)
}

/// Restore from the replica tier: fetch a complete peer mirror of
/// `shard`'s state (a memcpy — no disk reads) and replay `trace` from
/// the mirror's consistent tick up to and including `crash_tick`.
///
/// Returns `None` when the tier cannot serve — no [`ReplicaSet`] mirror
/// of the shard is complete (a push transaction was open at crash time,
/// or every hosting peer died mid-fetch per the armed
/// [`crash::CrashPoint::ReplicaFetch`] plan) — in which case the caller
/// falls back to the disk path with the trace cursor untouched.
///
/// [`ReplicaSet`]: crate::replica::ReplicaSet
/// [`crash::CrashPoint::ReplicaFetch`]: crate::crash::CrashPoint::ReplicaFetch
pub fn recover_from_replica<S: TraceSource>(
    replicas: &crate::replica::ReplicaSet,
    shard: u32,
    geometry: StateGeometry,
    trace: &mut S,
    crash_tick: u64,
    opts: &RecoveryOpts,
) -> Option<io::Result<RecoveredState>> {
    let t0 = Instant::now();
    // One state-sized copy: clone the mirror image under its lock, then
    // adopt the clone as the recovered table's backing buffer. The fetch
    // consults the recovery-phase peer-death points (`replica-fetch`,
    // `replica-fetch-mid`) per mirror tried.
    let (image, from_tick) = replicas.fetch(shard, opts.crash.as_deref())?;
    Some(
        StateTable::from_image(geometry, image)
            .map_err(|e| io::Error::other(e.to_string()))
            .and_then(|table| replay_tail(table, from_tick, t0, trace, crash_tick, opts)),
    )
}

/// Shared tail of both disk restore paths: adopt the image as the
/// recovered table, replay the logical log (the deterministic trace) to
/// the crash tick.
fn restore_and_replay<S: TraceSource>(
    geometry: StateGeometry,
    image: Vec<u8>,
    from_tick: u64,
    restore_start: Instant,
    trace: &mut S,
    crash_tick: u64,
    opts: &RecoveryOpts,
) -> io::Result<RecoveredState> {
    let table =
        StateTable::from_image(geometry, image).map_err(|e| io::Error::other(e.to_string()))?;
    replay_tail(table, from_tick, restore_start, trace, crash_tick, opts)
}

/// Replay the logical log (the deterministic trace) over a restored
/// table up to and including `crash_tick`. `restore_start` closes the
/// restore-phase timing; everything from here is the replay phase. The
/// `recovery-replay-tick` point is reached once per replayed tick, so
/// a re-crash plan can land anywhere in the tail.
fn replay_tail<S: TraceSource>(
    mut table: StateTable,
    from_tick: u64,
    restore_start: Instant,
    trace: &mut S,
    crash_tick: u64,
    opts: &RecoveryOpts,
) -> io::Result<RecoveredState> {
    let restore_s = restore_start.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let mut buf = Vec::new();
    let mut ticks_replayed = 0u64;
    let mut updates_replayed = 0u64;
    let mut tick = 0u64;
    while tick < crash_tick && trace.next_tick(&mut buf) {
        tick += 1;
        if tick <= from_tick {
            continue; // already reflected in the checkpoint image
        }
        opts.recrash(CrashPoint::RecoveryReplayTick)?;
        ticks_replayed += 1;
        for &u in &buf {
            table.apply_unchecked(u);
            updates_replayed += 1;
        }
    }
    let replay_s = t1.elapsed().as_secs_f64();

    Ok(RecoveredState {
        table,
        from_tick,
        ticks_replayed,
        updates_replayed,
        restore_s,
        replay_s,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmoc_core::CellUpdate;
    use mmoc_workload::RecordedTrace;

    fn geometry() -> StateGeometry {
        StateGeometry::test_micro()
    }

    fn trace() -> RecordedTrace {
        let ticks: Vec<Vec<CellUpdate>> = (1..=10u32)
            .map(|t| vec![CellUpdate::new(t % 16, t % 4, t * 11)])
            .collect();
        RecordedTrace::new(geometry(), ticks)
    }

    #[test]
    fn recovery_restores_then_replays_the_tail() {
        let dir = tempfile::tempdir().unwrap();
        let g = geometry();
        let t = trace();

        // Build the state as of tick 6 and commit it as backup 0.
        let mut at6 = StateTable::new(g).unwrap();
        let mut replay = t.replay();
        let mut buf = Vec::new();
        for _ in 0..6 {
            replay.next_tick(&mut buf);
            for &u in &buf {
                at6.apply(u).unwrap();
            }
        }
        let mut set = BackupSet::create(dir.path(), g, at6.as_bytes()).unwrap();
        set.commit(0, 6).unwrap();
        drop(set);

        // Full state as of tick 10 for comparison.
        let mut at10 = at6.clone();
        for _ in 6..10 {
            replay.next_tick(&mut buf);
            for &u in &buf {
                at10.apply(u).unwrap();
            }
        }

        let rec = recover_and_replay(dir.path(), g, &mut t.replay(), 10).unwrap();
        assert_eq!(rec.from_tick, 6);
        assert_eq!(rec.ticks_replayed, 4);
        assert_eq!(rec.updates_replayed, 4);
        assert_eq!(rec.table.fingerprint(), at10.fingerprint());
        assert!(rec.restore_s >= 0.0 && rec.replay_s >= 0.0);
    }

    #[test]
    fn recovery_without_backups_fails() {
        let dir = tempfile::tempdir().unwrap();
        let g = geometry();
        // Create then invalidate both backups.
        let mut set = BackupSet::create(dir.path(), g, &vec![0u8; 4 * 64]).unwrap();
        set.invalidate(0).unwrap();
        set.invalidate(1).unwrap();
        drop(set);
        let t = trace();
        assert!(recover_and_replay(dir.path(), g, &mut t.replay(), 5).is_err());
    }

    #[test]
    fn crash_at_checkpoint_tick_replays_nothing() {
        let dir = tempfile::tempdir().unwrap();
        let g = geometry();
        let t = trace();
        let mut at3 = StateTable::new(g).unwrap();
        let mut replay = t.replay();
        let mut buf = Vec::new();
        for _ in 0..3 {
            replay.next_tick(&mut buf);
            for &u in &buf {
                at3.apply(u).unwrap();
            }
        }
        let mut set = BackupSet::create(dir.path(), g, at3.as_bytes()).unwrap();
        set.commit(0, 3).unwrap();
        drop(set);

        let rec = recover_and_replay(dir.path(), g, &mut t.replay(), 3).unwrap();
        assert_eq!(rec.ticks_replayed, 0);
        assert_eq!(rec.table.fingerprint(), at3.fingerprint());
    }
}
