//! The real Copy-on-Update engine — a configuration of the shared
//! [`crate::engine`], not an orchestration loop of its own.
//!
//! The mutator and the asynchronous writer genuinely race here, as in the
//! paper's C++ implementation: the writer walks the sorted dirty list and
//! reads live objects under per-object locks, while the mutator saves an
//! object's pre-update image the first time it touches an unflushed dirty
//! object. See [`crate::shared::SharedTable`] for the protocol and its
//! correctness argument.
//!
//! Overhead accounting: the slow path (lock + copy) is timed directly;
//! dirty-bit maintenance is counted and priced at the calibrated
//! [`crate::RealConfig::bit_test_cost_s`], because individually timing a
//! ~2 ns bit operation with a ~20 ns clock read would swamp the quantity
//! being measured — the same reason the paper measured `Obit` with a
//! dedicated microbenchmark.

use crate::config::RealConfig;
use crate::engine::run_single;
use crate::report::RealReport;
use mmoc_core::{Algorithm, TraceSource};
use std::io;

/// Run Copy-on-Update over the trace produced by `make_trace`.
///
/// `make_trace` must be replayable; the second instantiation drives
/// recovery replay.
#[deprecated(
    since = "0.2.0",
    note = "use the unified builder: `Run::algorithm(Algorithm::CopyOnUpdate).engine(real_config).trace(\u{2026}).execute()`"
)]
pub fn run_copy_on_update<S, F>(config: &RealConfig, make_trace: F) -> io::Result<RealReport>
where
    S: TraceSource,
    F: Fn() -> S + Sync,
{
    run_single(Algorithm::CopyOnUpdate, config, make_trace)
}

#[cfg(test)]
mod tests {
    #![allow(deprecated)] // the wrappers stay exercised until removal

    use super::*;
    use mmoc_core::StateGeometry;
    use mmoc_workload::SyntheticConfig;

    fn config(dir: &std::path::Path) -> RealConfig {
        let mut c = RealConfig::new(dir);
        c.query_ops_per_tick = 64;
        c
    }

    fn trace_config() -> SyntheticConfig {
        SyntheticConfig {
            geometry: StateGeometry::test_small(),
            ticks: 50,
            updates_per_tick: 300,
            skew: 0.7,
            seed: 77,
        }
    }

    #[test]
    fn cou_run_checkpoints_and_recovers_exactly() {
        let dir = tempfile::tempdir().unwrap();
        let report = run_copy_on_update(&config(dir.path()), || trace_config().build()).unwrap();
        assert_eq!(report.ticks, 50);
        assert!(report.checkpoints_completed > 0);
        let rec = report.recovery.expect("recovery measured");
        assert!(
            rec.state_matches,
            "recovered state diverged from live state"
        );
    }

    #[test]
    fn cou_copies_objects_under_contention() {
        let dir = tempfile::tempdir().unwrap();
        let report = run_copy_on_update(&config(dir.path()), || trace_config().build()).unwrap();
        let copies: u64 = report.metrics.ticks.iter().map(|t| t.copies).sum();
        let bit_ops: u64 = report.metrics.ticks.iter().map(|t| t.bit_ops).sum();
        assert_eq!(bit_ops, report.updates, "one bit op per update");
        assert!(copies > 0, "some first-touch copies must happen");
        // Never more copies than distinct objects per checkpoint allows.
        assert!(copies <= report.updates);
    }

    #[test]
    fn cou_writes_only_dirty_objects() {
        let dir = tempfile::tempdir().unwrap();
        let report = run_copy_on_update(&config(dir.path()), || trace_config().build()).unwrap();
        let g = trace_config().geometry;
        for c in &report.metrics.checkpoints {
            assert!(
                c.objects_written <= g.n_objects(),
                "checkpoint wrote more than the whole state"
            );
        }
        // With 300 updates per tick over 512 objects, at least one
        // checkpoint must be partial.
        assert!(report
            .metrics
            .checkpoints
            .iter()
            .any(|c| c.objects_written < g.n_objects()));
    }

    /// Torture test for the mutator/writer protocol: a hot workload where
    /// the same objects are updated every tick while the writer flushes.
    #[test]
    fn cou_recovery_correct_under_hot_contention() {
        let dir = tempfile::tempdir().unwrap();
        let cfg = SyntheticConfig {
            geometry: StateGeometry::test_hot(), // tiny: everything is hot
            ticks: 200,
            updates_per_tick: 500,
            skew: 0.99,
            seed: 5,
        };
        let report = run_copy_on_update(&config(dir.path()), || cfg.build()).unwrap();
        let rec = report.recovery.expect("recovery measured");
        assert!(rec.state_matches, "hot-contention recovery diverged");
        // Unpaced ticks outrun the fsync-bound writer; just require that
        // the cycle ran more than once.
        assert!(report.checkpoints_completed > 1);
    }
}
