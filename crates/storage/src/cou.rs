//! The real Copy-on-Update engine.
//!
//! The mutator and the asynchronous writer genuinely race here, as in the
//! paper's C++ implementation: the writer walks the sorted dirty list and
//! reads live objects under per-object locks, while the mutator saves an
//! object's pre-update image the first time it touches an unflushed dirty
//! object. See [`crate::shared::SharedTable`] for the protocol and its
//! correctness argument.
//!
//! Overhead accounting: the slow path (lock + copy) is timed directly;
//! dirty-bit maintenance is counted and priced at the calibrated
//! [`crate::RealConfig::bit_test_cost_s`], because individually timing a
//! ~2 ns bit operation with a ~20 ns clock read would swamp the quantity
//! being measured — the same reason the paper measured `Obit` with a
//! dedicated microbenchmark.

use crate::config::RealConfig;
use crate::files::BackupSet;
use crate::recovery::recover_and_replay;
use crate::report::{RealReport, RecoveryMeasurement};
use crate::shared::{AtomicBitmap, SharedTable};
use mmoc_core::bitmap::BitVec;
use mmoc_core::{Algorithm, CheckpointRecord, ObjectId, RunMetrics, TickMetrics};
use mmoc_workload::TraceSource;
use parking_lot::Mutex;
use std::io;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

/// State shared between the mutator and the writer thread.
pub(crate) struct Shared {
    pub(crate) table: SharedTable,
    /// Side arena holding pre-update images of copied objects (same cell
    /// layout as the table).
    pub(crate) arena: Box<[std::sync::atomic::AtomicU32]>,
    pub(crate) copied: AtomicBitmap,
    pub(crate) flushed: AtomicBitmap,
    pub(crate) locks: Box<[Mutex<()>]>,
}

impl Shared {
    pub(crate) fn new(table: SharedTable) -> Self {
        let g = *table.geometry();
        let n = g.n_objects();
        let cells = n as u64 * u64::from(g.cells_per_object());
        Shared {
            table,
            arena: (0..cells)
                .map(|_| std::sync::atomic::AtomicU32::new(0))
                .collect(),
            copied: AtomicBitmap::new(n),
            flushed: AtomicBitmap::new(n),
            locks: (0..n).map(|_| Mutex::new(())).collect(),
        }
    }

    /// Copy an object's live cells into the arena (mutator, under lock).
    pub(crate) fn save_to_arena(&self, obj: ObjectId) {
        let per = self.table.geometry().cells_per_object() as usize;
        let base = obj.index() * per;
        for i in 0..per {
            let v = self.table.read_cell_raw(base + i);
            self.arena[base + i].store(v, Ordering::Relaxed);
        }
    }

    /// Read an object image from the arena into `buf` (writer, under
    /// lock, after observing `copied`).
    pub(crate) fn read_arena_into(&self, obj: ObjectId, buf: &mut [u8]) {
        let per = self.table.geometry().cells_per_object() as usize;
        let base = obj.index() * per;
        for (i, chunk) in buf.chunks_exact_mut(4).enumerate().take(per) {
            chunk.copy_from_slice(&self.arena[base + i].load(Ordering::Relaxed).to_le_bytes());
        }
    }
}

struct Job {
    list: Vec<u32>,
    target: usize,
    tick: u64,
}

struct Done {
    result: io::Result<f64>,
    objects: u32,
}

/// Run Copy-on-Update over the trace produced by `make_trace`.
///
/// `make_trace` must be replayable; the second instantiation drives
/// recovery replay.
pub fn run_copy_on_update<S, F>(config: &RealConfig, make_trace: F) -> io::Result<RealReport>
where
    S: TraceSource,
    F: Fn() -> S,
{
    let mut trace = make_trace();
    let geometry = trace.geometry();
    geometry
        .validate()
        .map_err(|e| io::Error::other(e.to_string()))?;
    let n = geometry.n_objects();
    let shared = Arc::new(Shared::new(SharedTable::new(geometry)));

    // Pre-load both backups with the initial (zeroed) state.
    let initial = vec![0u8; n as usize * geometry.object_size as usize];
    let mut set = BackupSet::create(&config.dir, geometry, &initial)?;
    let sync_data = config.sync_data;

    let (job_tx, job_rx) = crossbeam::channel::bounded::<Job>(1);
    let (done_tx, done_rx) = crossbeam::channel::bounded::<Done>(1);
    let writer_shared = Arc::clone(&shared);
    let writer = std::thread::spawn(move || {
        let mut buf = vec![0u8; geometry.object_size as usize];
        for job in job_rx {
            let t0 = Instant::now();
            let result = (|| {
                set.invalidate(job.target)?;
                for &o in &job.list {
                    let obj = ObjectId(o);
                    {
                        let _guard = writer_shared.locks[o as usize].lock();
                        if writer_shared.copied.get(o) {
                            writer_shared.read_arena_into(obj, &mut buf);
                        } else {
                            writer_shared.table.read_object_into(obj, &mut buf);
                        }
                        writer_shared.flushed.set(o);
                    }
                    // Sorted I/O: `list` is in increasing offset order.
                    set.write_object(job.target, obj, &buf)?;
                }
                if sync_data {
                    set.sync(job.target)?;
                }
                set.commit(job.target, job.tick)?;
                Ok(t0.elapsed().as_secs_f64())
            })();
            let _ = done_tx.send(Done {
                result,
                objects: job.list.len() as u32,
            });
        }
    });

    let mut metrics = RunMetrics::default();
    let mut dirty = [BitVec::new(n), BitVec::new(n)];
    // Mutator-local "already dealt with this checkpoint" cache: avoids
    // touching shared atomics for repeat updates to the same object.
    let mut handled = BitVec::new(n);
    let mut flush_member = BitVec::new(n);
    let mut in_flight: Option<(u64, u64, usize)> = None; // (seq, start tick, target)
    let mut seq = 0u64;
    let mut target = 0usize;
    let mut tick = 0u64;
    let mut total_updates = 0u64;
    let mut rng_state = 0x1234_5678u64;
    let mut query_sink = 0u64;
    let mut buf = Vec::new();

    while trace.next_tick(&mut buf) {
        tick += 1;
        let tick_start = Instant::now();

        for _ in 0..config.query_ops_per_tick {
            rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let row = (rng_state >> 33) as u32 % geometry.rows;
            let col = (rng_state >> 13) as u32 % geometry.cols;
            query_sink ^= u64::from(shared.table.read_cell(row, col));
        }

        // Update phase with the copy-on-update handler.
        let (mut bit_ops, mut locks, mut copies) = (0u64, 0u64, 0u64);
        let mut slow_path_s = 0.0f64;
        for &u in &buf {
            let obj = geometry.object_of_unchecked(u.addr);
            dirty[0].set(obj.0);
            dirty[1].set(obj.0);
            bit_ops += 1;
            if in_flight.is_some() && flush_member.get(obj.0) && !handled.get(obj.0) {
                let t0 = Instant::now();
                if !shared.flushed.get(obj.0) {
                    let _guard = shared.locks[obj.index()].lock();
                    locks += 1;
                    // Re-check under the lock: the writer may have flushed
                    // the object while we were acquiring.
                    if !shared.flushed.get(obj.0) {
                        shared.save_to_arena(obj);
                        shared.copied.set(obj.0);
                        copies += 1;
                    }
                }
                handled.set(obj.0);
                slow_path_s += t0.elapsed().as_secs_f64();
            }
            shared.table.write_cell(u);
        }
        total_updates += buf.len() as u64;

        // Tick boundary: harvest a completed checkpoint.
        if let Ok(done) = done_rx.try_recv() {
            let duration = done.result?;
            let (s, start_tick, tgt) = in_flight.take().expect("job in flight");
            metrics.checkpoints.push(CheckpointRecord {
                seq: s,
                start_tick,
                end_tick: tick,
                duration_s: duration,
                sync_pause_s: 0.0,
                objects_written: done.objects,
                bytes_written: u64::from(done.objects) * u64::from(geometry.object_size),
                full_flush: false,
            });
            target = tgt ^ 1;
        }

        // Start the next checkpoint: snapshot the dirty set for the
        // target backup and hand the sorted list to the writer.
        if in_flight.is_none() {
            flush_member.clone_from(&dirty[target]);
            let list: Vec<u32> = dirty[target].ones();
            dirty[target].clear_all();
            shared.copied.clear_all();
            shared.flushed.clear_all();
            handled.clear_all();
            job_tx
                .send(Job {
                    list,
                    target,
                    tick,
                })
                .expect("writer alive");
            in_flight = Some((seq, tick, target));
            seq += 1;
        }

        let overhead_s = slow_path_s + bit_ops as f64 * config.bit_test_cost_s;
        metrics.ticks.push(TickMetrics {
            tick,
            overhead_s,
            sync_pause_s: 0.0,
            bit_ops,
            locks,
            copies,
        });

        if config.paced {
            let elapsed = tick_start.elapsed();
            if elapsed < config.tick_period {
                std::thread::sleep(config.tick_period - elapsed);
            }
        }
    }

    // Drain the in-flight checkpoint.
    if let Some((s, start_tick, _)) = in_flight.take() {
        let done = done_rx.recv().expect("writer alive");
        let duration = done.result?;
        metrics.checkpoints.push(CheckpointRecord {
            seq: s,
            start_tick,
            end_tick: tick,
            duration_s: duration,
            sync_pause_s: 0.0,
            objects_written: done.objects,
            bytes_written: u64::from(done.objects) * u64::from(geometry.object_size),
            full_flush: false,
        });
    }
    drop(job_tx);
    writer.join().expect("writer thread");
    std::hint::black_box(query_sink);

    let recovery = if config.measure_recovery {
        let mut replay_trace = make_trace();
        let rec = recover_and_replay(&config.dir, geometry, &mut replay_trace, tick)?;
        Some(RecoveryMeasurement {
            restore_s: rec.restore_s,
            replay_s: rec.replay_s,
            total_s: rec.restore_s + rec.replay_s,
            restored_from_tick: rec.from_tick,
            ticks_replayed: rec.ticks_replayed,
            updates_replayed: rec.updates_replayed,
            state_matches: rec.table.fingerprint() == shared.table.fingerprint(),
        })
    } else {
        None
    };

    Ok(RealReport {
        algorithm: Algorithm::CopyOnUpdate,
        ticks: tick,
        updates: total_updates,
        checkpoints_completed: metrics.checkpoints.len() as u64,
        avg_overhead_s: metrics.avg_overhead_s(),
        max_overhead_s: metrics.max_overhead_s(),
        avg_checkpoint_s: metrics.avg_checkpoint_s(),
        metrics,
        recovery,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmoc_core::StateGeometry;
    use mmoc_workload::SyntheticConfig;

    fn config(dir: &std::path::Path) -> RealConfig {
        let mut c = RealConfig::new(dir);
        c.query_ops_per_tick = 64;
        c
    }

    fn trace_config() -> SyntheticConfig {
        SyntheticConfig {
            geometry: StateGeometry::small(512, 8),
            ticks: 50,
            updates_per_tick: 300,
            skew: 0.7,
            seed: 77,
        }
    }

    #[test]
    fn cou_run_checkpoints_and_recovers_exactly() {
        let dir = tempfile::tempdir().unwrap();
        let report = run_copy_on_update(&config(dir.path()), || trace_config().build()).unwrap();
        assert_eq!(report.ticks, 50);
        assert!(report.checkpoints_completed > 0);
        let rec = report.recovery.expect("recovery measured");
        assert!(
            rec.state_matches,
            "recovered state diverged from live state"
        );
    }

    #[test]
    fn cou_copies_objects_under_contention() {
        let dir = tempfile::tempdir().unwrap();
        let report = run_copy_on_update(&config(dir.path()), || trace_config().build()).unwrap();
        let copies: u64 = report.metrics.ticks.iter().map(|t| t.copies).sum();
        let bit_ops: u64 = report.metrics.ticks.iter().map(|t| t.bit_ops).sum();
        assert_eq!(bit_ops, report.updates, "one bit op per update");
        assert!(copies > 0, "some first-touch copies must happen");
        // Never more copies than distinct objects per checkpoint allows.
        assert!(copies <= report.updates);
    }

    #[test]
    fn cou_writes_only_dirty_objects() {
        let dir = tempfile::tempdir().unwrap();
        let report = run_copy_on_update(&config(dir.path()), || trace_config().build()).unwrap();
        let g = trace_config().geometry;
        for c in &report.metrics.checkpoints {
            assert!(
                c.objects_written <= g.n_objects(),
                "checkpoint wrote more than the whole state"
            );
        }
        // With 300 updates per tick over 512 objects, at least one
        // checkpoint must be partial.
        assert!(report
            .metrics
            .checkpoints
            .iter()
            .any(|c| c.objects_written < g.n_objects()));
    }

    /// Torture test for the mutator/writer protocol: a hot workload where
    /// the same objects are updated every tick while the writer flushes.
    #[test]
    fn cou_recovery_correct_under_hot_contention() {
        let dir = tempfile::tempdir().unwrap();
        let cfg = SyntheticConfig {
            geometry: StateGeometry::small(64, 8), // tiny: everything is hot
            ticks: 200,
            updates_per_tick: 500,
            skew: 0.99,
            seed: 5,
        };
        let report = run_copy_on_update(&config(dir.path()), || cfg.build()).unwrap();
        let rec = report.recovery.expect("recovery measured");
        assert!(rec.state_matches, "hot-contention recovery diverged");
        // Unpaced ticks outrun the fsync-bound writer; just require that
        // the cycle ran more than once.
        assert!(report.checkpoints_completed > 1);
    }
}
