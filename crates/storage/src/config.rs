//! Configuration of the real engine.

use mmoc_core::WriterBackend;
use std::path::PathBuf;
use std::time::Duration;

/// Configuration for a real (disk-backed) checkpointing run.
#[derive(Debug, Clone)]
pub struct RealConfig {
    /// Directory holding the backup files (ideally on a dedicated disk, as
    /// in the paper; any directory works).
    pub dir: PathBuf,
    /// Tick period. The paper games tick at 30 Hz (33.3 ms).
    pub tick_period: Duration,
    /// When true, the mutator sleeps out the remainder of each tick (the
    /// paper's sleep phase); when false, ticks run back to back — the mode
    /// tests use so they finish quickly.
    pub paced: bool,
    /// Random state lookups per tick (the paper's query phase, which fills
    /// the tick with game-like read work).
    pub query_ops_per_tick: u32,
    /// Calibrated cost of one dirty-bit test/set, used to account the
    /// per-update bit overhead without timing every update (timing a ~2 ns
    /// operation with a ~20 ns clock read would swamp it).
    pub bit_test_cost_s: f64,
    /// `fsync` checkpoint data before declaring a checkpoint durable.
    pub sync_data: bool,
    /// After the run, simulate a crash and measure real recovery.
    pub measure_recovery: bool,
    /// Writer-pool workers serving all shards' flush jobs in sharded
    /// runs. `0` (the default) picks `min(n_shards, 4)` — the pool is a
    /// shared resource sized to the storage device, not to the shard
    /// count. Single-shard runs always use one worker (the historical
    /// dedicated writer thread). Only meaningful for
    /// [`WriterBackend::ThreadPool`]; the batched engine always runs one
    /// submission/completion loop.
    pub writer_pool_threads: usize,
    /// The writer backend executing flush jobs: the worker-thread pool or
    /// the io_uring-style batched-submission engine. Defaults to
    /// [`WriterBackend::ThreadPool`], overridable process-wide through
    /// the `MMOC_WRITER_BACKEND` environment variable (`thread-pool` /
    /// `async-batched`) so whole test suites can run under either backend
    /// — the CI backend matrix's lever. Explicit settings
    /// ([`RealConfig::with_writer_backend`], the builder's `.writer(…)`)
    /// always win over the environment.
    pub writer_backend: WriterBackend,
    /// Adaptive batch window of the async-batched writer: when the job
    /// queue holds fewer jobs than there are shards, the submission loop
    /// waits up to this long for stragglers before closing the batch, so
    /// their durability points coalesce — trading up to one window of ack
    /// latency per checkpoint for fewer fsyncs. `Duration::ZERO` (the
    /// default) reproduces the historical "everything currently queued"
    /// batches exactly. Defaults to the `MMOC_WRITER_BATCH_WINDOW`
    /// environment variable when set (`250us`, `2ms`, `1s`, or a bare
    /// integer in microseconds); explicit settings
    /// ([`RealConfig::with_batch_window`], the builder's
    /// `.batch_window(…)`) win over the environment. Ignored by the
    /// thread pool, which has no batches.
    pub batch_window: Duration,
    /// Cross-shard fsync coalescing in the async-batched writer's
    /// durability scheduler: when true (the default), a batch issues one
    /// data `fsync` per **distinct target file** — all pending data syncs
    /// before any metadata commit — instead of one per job. Recovery-
    /// equivalent by construction (the data-sync-before-metadata-commit
    /// invariant holds batch-globally) and pinned differentially; turn
    /// off via [`RealConfig::with_fsync_coalescing`] to reproduce the
    /// historical per-job completion bit for bit. Ignored by the thread
    /// pool, which completes jobs one at a time.
    pub coalesce_fsync: bool,
}

impl RealConfig {
    /// A configuration rooted at `dir` with test-friendly defaults:
    /// unpaced ticks, light query phase, recovery measurement on.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        RealConfig {
            dir: dir.into(),
            tick_period: Duration::from_nanos(33_333_333),
            paced: false,
            query_ops_per_tick: 1_000,
            bit_test_cost_s: 2e-9,
            sync_data: true,
            measure_recovery: true,
            writer_pool_threads: 0,
            writer_backend: writer_backend_from_env(),
            batch_window: batch_window_from_env(),
            coalesce_fsync: true,
        }
    }

    /// Override the writer-pool size for sharded runs (`0` = auto).
    pub fn with_writer_pool(mut self, threads: usize) -> Self {
        self.writer_pool_threads = threads;
        self
    }

    /// Select the writer backend executing flush jobs.
    pub fn with_writer_backend(mut self, backend: WriterBackend) -> Self {
        self.writer_backend = backend;
        self
    }

    /// Bound the async-batched writer's adaptive batch window (see
    /// [`RealConfig::batch_window`]; `Duration::ZERO` = no waiting).
    pub fn with_batch_window(mut self, window: Duration) -> Self {
        self.batch_window = window;
        self
    }

    /// Enable or disable cross-shard fsync coalescing in the
    /// async-batched writer (see [`RealConfig::coalesce_fsync`]).
    pub fn with_fsync_coalescing(mut self, on: bool) -> Self {
        self.coalesce_fsync = on;
        self
    }

    /// The writer-thread count actually used for an `n_shards`-way run:
    /// the sized pool, or one for the batched engine's single loop.
    pub fn effective_pool_threads(&self, n_shards: usize) -> usize {
        match self.writer_backend {
            WriterBackend::AsyncBatched => 1,
            WriterBackend::ThreadPool => {
                if n_shards <= 1 {
                    1
                } else if self.writer_pool_threads == 0 {
                    n_shards.min(4)
                } else {
                    self.writer_pool_threads
                }
            }
        }
    }

    /// Pace ticks at the paper's 30 Hz (or any frequency).
    pub fn paced_at_hz(mut self, hz: f64) -> Self {
        assert!(hz > 0.0 && hz.is_finite());
        self.paced = true;
        self.tick_period = Duration::from_secs_f64(1.0 / hz);
        self
    }

    /// Override the query-phase size.
    pub fn with_query_ops(mut self, ops: u32) -> Self {
        self.query_ops_per_tick = ops;
        self
    }

    /// Disable the end-of-run recovery measurement.
    pub fn without_recovery(mut self) -> Self {
        self.measure_recovery = false;
        self
    }
}

/// The process-wide writer-backend default: `MMOC_WRITER_BACKEND` if
/// set, the thread pool otherwise. Unrecognized values panic rather than
/// fall back — a typo in a CI matrix leg must fail loudly, not silently
/// re-run the default backend and report coverage that never happened.
fn writer_backend_from_env() -> WriterBackend {
    match std::env::var("MMOC_WRITER_BACKEND") {
        Err(_) => WriterBackend::ThreadPool,
        Ok(v) => match v.as_str() {
            "" | "thread-pool" | "threads" => WriterBackend::ThreadPool,
            "async-batched" | "async" => WriterBackend::AsyncBatched,
            other => panic!(
                "unrecognized MMOC_WRITER_BACKEND value {other:?}; \
                 use \"thread-pool\" or \"async-batched\""
            ),
        },
    }
}

/// The process-wide adaptive-batch-window default:
/// `MMOC_WRITER_BATCH_WINDOW` if set, zero (no waiting) otherwise.
/// Accepts `us`/`ms`/`s` suffixes or a bare integer in microseconds;
/// like the backend variable, garbage panics rather than silently
/// running the default window.
fn batch_window_from_env() -> Duration {
    match std::env::var("MMOC_WRITER_BATCH_WINDOW") {
        Err(_) => Duration::ZERO,
        Ok(v) => parse_window(&v).unwrap_or_else(|| {
            panic!(
                "unrecognized MMOC_WRITER_BATCH_WINDOW value {v:?}; \
                 use e.g. \"0\", \"250us\", \"2ms\" or \"1s\""
            )
        }),
    }
}

/// Parse a window spec: `250us`, `2ms`, `1s`, or a bare integer
/// (microseconds).
fn parse_window(v: &str) -> Option<Duration> {
    let v = v.trim();
    let (digits, scale_us) = if let Some(n) = v.strip_suffix("us") {
        (n, 1u64)
    } else if let Some(n) = v.strip_suffix("ms") {
        (n, 1_000)
    } else if let Some(n) = v.strip_suffix('s') {
        (n, 1_000_000)
    } else {
        (v, 1)
    };
    let n: u64 = digits.trim().parse().ok()?;
    Some(Duration::from_micros(n.checked_mul(scale_us)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_test_friendly() {
        let cfg = RealConfig::new("/tmp/x");
        assert!(!cfg.paced);
        assert!(cfg.measure_recovery);
        assert!(cfg.sync_data);
        assert!(cfg.coalesce_fsync, "coalescing is the default scheduler");
    }

    #[test]
    fn batch_window_specs_parse() {
        assert_eq!(parse_window("0"), Some(Duration::ZERO));
        assert_eq!(parse_window("250"), Some(Duration::from_micros(250)));
        assert_eq!(parse_window("250us"), Some(Duration::from_micros(250)));
        assert_eq!(parse_window(" 2ms "), Some(Duration::from_millis(2)));
        assert_eq!(parse_window("1s"), Some(Duration::from_secs(1)));
        assert_eq!(parse_window("fast"), None);
        assert_eq!(parse_window("1.5ms"), None, "whole numbers only");
    }

    #[test]
    fn batch_window_and_coalescing_are_configurable() {
        let cfg = RealConfig::new("/tmp/x")
            .with_batch_window(Duration::from_micros(500))
            .with_fsync_coalescing(false);
        assert_eq!(cfg.batch_window, Duration::from_micros(500));
        assert!(!cfg.coalesce_fsync);
    }

    #[test]
    fn pacing_sets_period() {
        let cfg = RealConfig::new("/tmp/x").paced_at_hz(30.0);
        assert!(cfg.paced);
        assert!((cfg.tick_period.as_secs_f64() - 1.0 / 30.0).abs() < 1e-9);
    }

    #[test]
    fn writer_backend_is_selectable_and_sizes_the_writer() {
        let cfg = RealConfig::new("/tmp/x").with_writer_backend(WriterBackend::AsyncBatched);
        assert_eq!(cfg.writer_backend, WriterBackend::AsyncBatched);
        assert_eq!(cfg.effective_pool_threads(4), 1, "batched engine: one loop");
        let cfg = cfg.with_writer_backend(WriterBackend::ThreadPool);
        assert_eq!(cfg.effective_pool_threads(1), 1);
        assert_eq!(cfg.effective_pool_threads(8), 4, "auto pool caps at 4");
        assert_eq!(cfg.with_writer_pool(2).effective_pool_threads(8), 2);
    }
}
