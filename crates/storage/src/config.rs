//! Configuration of the real engine.

use crate::crash::CrashState;
use crate::fault::{FaultState, RetryPolicy};
use mmoc_core::WriterBackend;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// Configuration for a real (disk-backed) checkpointing run.
#[derive(Debug, Clone)]
pub struct RealConfig {
    /// Directory holding the backup files (ideally on a dedicated disk, as
    /// in the paper; any directory works).
    pub dir: PathBuf,
    /// Tick period. The paper games tick at 30 Hz (33.3 ms).
    pub tick_period: Duration,
    /// When true, the mutator sleeps out the remainder of each tick (the
    /// paper's sleep phase); when false, ticks run back to back — the mode
    /// tests use so they finish quickly.
    pub paced: bool,
    /// Random state lookups per tick (the paper's query phase, which fills
    /// the tick with game-like read work).
    pub query_ops_per_tick: u32,
    /// Calibrated cost of one dirty-bit test/set, used to account the
    /// per-update bit overhead without timing every update (timing a ~2 ns
    /// operation with a ~20 ns clock read would swamp it).
    pub bit_test_cost_s: f64,
    /// `fsync` checkpoint data before declaring a checkpoint durable.
    pub sync_data: bool,
    /// After the run, simulate a crash and measure real recovery.
    pub measure_recovery: bool,
    /// Writer-pool workers serving all shards' flush jobs in sharded
    /// runs. `0` (the default) picks `min(n_shards, 4)` — the pool is a
    /// shared resource sized to the storage device, not to the shard
    /// count. Single-shard runs always use one worker (the historical
    /// dedicated writer thread). Only meaningful for
    /// [`WriterBackend::ThreadPool`]; the batched engine always runs one
    /// submission/completion loop.
    pub writer_pool_threads: usize,
    /// The writer backend executing flush jobs: the worker-thread pool,
    /// the io_uring-style batched-submission engine, or the real
    /// `io_uring` ring. Defaults to [`WriterBackend::ThreadPool`],
    /// overridable process-wide through the `MMOC_WRITER_BACKEND`
    /// environment variable (`thread-pool` / `async-batched` /
    /// `io-uring`) so whole test suites can run under any backend — the
    /// CI backend matrix's lever. An unparseable value is **not** a
    /// panic: it is deferred into [`RealConfig::env_error`] and surfaced
    /// as a typed `RunError::Config` when a run starts. Explicit settings
    /// ([`RealConfig::with_writer_backend`], the builder's `.writer(…)`)
    /// always win over the environment.
    pub writer_backend: WriterBackend,
    /// Adaptive batch window of the async-batched writer: when the job
    /// queue holds fewer jobs than there are shards, the submission loop
    /// waits up to this long for stragglers before closing the batch, so
    /// their durability points coalesce — trading up to one window of ack
    /// latency per checkpoint for fewer fsyncs. `Duration::ZERO` (the
    /// default) reproduces the historical "everything currently queued"
    /// batches exactly. Defaults to the `MMOC_WRITER_BATCH_WINDOW`
    /// environment variable when set (`250us`, `2ms`, `1s`, a bare
    /// integer in microseconds, or `auto` — see
    /// [`RealConfig::auto_window`]); explicit settings
    /// ([`RealConfig::with_batch_window`], the builder's
    /// `.batch_window(…)`) win over the environment. An unparseable
    /// value is **not** a panic: it is deferred into
    /// [`RealConfig::env_error`] and surfaced as a typed
    /// `RunError::Config` when a run starts. Ignored by the thread pool,
    /// which has no batches.
    pub batch_window: Duration,
    /// Occupancy-driven window auto-tuning (`batch_window = auto`):
    /// ignore the fixed window and derive each round's window from the
    /// job inter-arrival EWMA the batched writer observes — zero while
    /// batches close full, the scaled EWMA (capped at 2 ms) otherwise.
    /// Off by default; enabled by `MMOC_WRITER_BATCH_WINDOW=auto` or
    /// [`RealConfig::with_auto_window`].
    pub auto_window: bool,
    /// Cross-shard fsync coalescing in the async-batched writer's
    /// durability scheduler: when true (the default), a batch issues one
    /// data `fsync` per **distinct target file** — all pending data syncs
    /// before any metadata commit — instead of one per job. Recovery-
    /// equivalent by construction (the data-sync-before-metadata-commit
    /// invariant holds batch-globally) and pinned differentially; turn
    /// off via [`RealConfig::with_fsync_coalescing`] to reproduce the
    /// historical per-job completion bit for bit. Ignored by the thread
    /// pool, which completes jobs one at a time.
    pub coalesce_fsync: bool,
    /// Device-level sync barriers in the async-batched writer: when a
    /// batch holds two or more distinct target files on one device,
    /// collapse their per-file fsyncs into a single `syncfs` on that
    /// device. Capability-probed at first use; where `syncfs` is
    /// unavailable the scheduler silently falls back to per-file fsync.
    /// Off by default (per-file counts stay exact for the instrumented
    /// tests); enable via [`RealConfig::with_device_sync`] or
    /// `MMOC_WRITER_DEVICE_SYNC=1`. Requires `coalesce_fsync`.
    pub device_sync: bool,
    /// Checkpoint pipeline depth: how many checkpoints the driver may
    /// have in flight per shard before it must wait for the oldest to
    /// complete. Only log-organization checkpoints without a sweep
    /// actually overlap (the bookkeeper's safety gate serializes
    /// everything else regardless of this setting); `1` (the default)
    /// reproduces the historical one-in-flight engine exactly. Defaults
    /// to the `MMOC_WRITER_PIPELINE_DEPTH` environment variable when
    /// set; explicit settings ([`RealConfig::with_pipeline_depth`], the
    /// builder's `.pipeline_depth(…)`) win over the environment.
    pub pipeline_depth: u32,
    /// Crash-point lattice state for this run: `None` (the default) in
    /// production — every instrumentation site is then a single
    /// `Option` check — or a per-run [`CrashState`] installed by the
    /// crash-fuzz harness ([`RealConfig::with_crash_state`]) or the
    /// `MMOC_FUZZ_CRASH` environment variable
    /// (`point[:hit[:torn[:action]]]`, see [`crate::crash::plan_spec`]).
    /// One `Arc` is shared by every shard of the run; a simulated
    /// crash freezes all shards' disks together.
    pub crash: Option<Arc<CrashState>>,
    /// Transient-fault failpoint state for this run: `None` (the
    /// default) in production — every injection seam is then a single
    /// `Option` check — or a per-run [`FaultState`] installed by the
    /// fuzz harness ([`RealConfig::with_fault_state`]) or the
    /// `MMOC_FAULTS` environment variable
    /// (`site[:hit[:kind[:burst]]]`, see [`crate::fault::fault_spec`]).
    /// One `Arc` is shared by every shard of the run.
    pub fault: Option<Arc<FaultState>>,
    /// Retry budget of the writer backends for transient I/O faults:
    /// how many times a failed data write / fsync / meta commit is
    /// re-issued before the error takes the degradation ladder
    /// (typed `RunError` on the pool/batched engines, dead-flag
    /// synchronous redo on io_uring). `0` reproduces the historical
    /// immediate-propagation engine bit for bit. Defaults to 3,
    /// overridable via `MMOC_WRITER_RETRY_MAX`; explicit settings
    /// ([`RealConfig::with_retry`]) win over the environment.
    pub retry_max: u32,
    /// Linear backoff base between retry attempts (attempt `k` sleeps
    /// `k × backoff`). Defaults to zero (spin retry — transient
    /// failpoints clear by reach count, not by time), overridable via
    /// `MMOC_WRITER_RETRY_BACKOFF` (`250us`, `2ms`, bare integer in
    /// microseconds).
    pub retry_backoff: Duration,
    /// Replication factor K of the in-memory recovery tier: each shard
    /// pushes its committed checkpoint deltas to K peer-shard mirrors
    /// (publish-on-commit), and single-shard recovery tries a replica
    /// fetch before the disk path. `0` (the default) disables the tier.
    /// Defaults to the `MMOC_REPLICATION` environment variable when set;
    /// explicit settings ([`RealConfig::with_replication`], the
    /// builder's `.replication(…)`) win over the environment. An
    /// unparseable value is deferred into [`RealConfig::env_error`] like
    /// the other `MMOC_*` knobs.
    pub replication_factor: u32,
    /// A pre-built replica tier installed by a caller that wants to keep
    /// its own handle — the fuzz harness and the recovery bench retain
    /// the `Arc` to drive recovery themselves after the run. `Some`
    /// activates replication regardless of
    /// [`RealConfig::replication_factor`]; `None` (the default) lets the
    /// sharded run build an internal set when the factor is non-zero.
    pub replica_set: Option<Arc<crate::replica::ReplicaSet>>,
    /// Deferred environment-parsing failure: when one of the
    /// `MMOC_WRITER_*` (or `MMOC_FUZZ_*`) variables holds garbage,
    /// construction still succeeds (so `RealConfig::new` stays
    /// infallible) and the message is surfaced as a typed
    /// `RunError::Config` the moment the config is used to execute a
    /// run.
    pub env_error: Option<String>,
}

impl RealConfig {
    /// A configuration rooted at `dir` with test-friendly defaults:
    /// unpaced ticks, light query phase, recovery measurement on.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        let (batch_window, auto_window, window_err) = batch_window_from_env();
        let (pipeline_depth, depth_err) = pipeline_depth_from_env();
        let (device_sync, device_err) = device_sync_from_env();
        let (writer_backend, backend_err) = writer_backend_from_env();
        let (crash, crash_err) = crash_from_env();
        let (fault, fault_err) = fault_from_env();
        let (retry_max, retry_max_err) = retry_max_from_env();
        let (retry_backoff, retry_backoff_err) = retry_backoff_from_env();
        let (replication_factor, replication_err) = replication_from_env();
        RealConfig {
            dir: dir.into(),
            tick_period: Duration::from_nanos(33_333_333),
            paced: false,
            query_ops_per_tick: 1_000,
            bit_test_cost_s: 2e-9,
            sync_data: true,
            measure_recovery: true,
            writer_pool_threads: 0,
            writer_backend,
            batch_window,
            auto_window,
            coalesce_fsync: true,
            device_sync,
            pipeline_depth,
            crash,
            fault,
            retry_max,
            retry_backoff,
            replication_factor,
            replica_set: None,
            env_error: backend_err
                .or(window_err)
                .or(depth_err)
                .or(device_err)
                .or(crash_err)
                .or(fault_err)
                .or(retry_max_err)
                .or(retry_backoff_err)
                .or(replication_err),
        }
    }

    /// Override the writer-pool size for sharded runs (`0` = auto).
    pub fn with_writer_pool(mut self, threads: usize) -> Self {
        self.writer_pool_threads = threads;
        self
    }

    /// Select the writer backend executing flush jobs.
    pub fn with_writer_backend(mut self, backend: WriterBackend) -> Self {
        self.writer_backend = backend;
        self
    }

    /// Bound the async-batched writer's adaptive batch window (see
    /// [`RealConfig::batch_window`]; `Duration::ZERO` = no waiting).
    pub fn with_batch_window(mut self, window: Duration) -> Self {
        self.batch_window = window;
        self
    }

    /// Enable or disable cross-shard fsync coalescing in the
    /// async-batched writer (see [`RealConfig::coalesce_fsync`]).
    pub fn with_fsync_coalescing(mut self, on: bool) -> Self {
        self.coalesce_fsync = on;
        self
    }

    /// Enable or disable occupancy-driven window auto-tuning (see
    /// [`RealConfig::auto_window`]). Overrides any fixed window.
    pub fn with_auto_window(mut self, on: bool) -> Self {
        self.auto_window = on;
        self
    }

    /// Enable or disable `syncfs`-style device barriers in the batched
    /// writer's durability scheduler (see [`RealConfig::device_sync`]).
    pub fn with_device_sync(mut self, on: bool) -> Self {
        self.device_sync = on;
        self
    }

    /// Set the checkpoint pipeline depth (see
    /// [`RealConfig::pipeline_depth`]; must be at least 1).
    pub fn with_pipeline_depth(mut self, depth: u32) -> Self {
        assert!(depth >= 1, "pipeline depth must be at least 1");
        self.pipeline_depth = depth;
        self
    }

    /// The writer-thread count actually used for an `n_shards`-way run:
    /// the sized pool, or one for the batched engine's single loop.
    pub fn effective_pool_threads(&self, n_shards: usize) -> usize {
        match self.writer_backend {
            WriterBackend::AsyncBatched | WriterBackend::IoUring => 1,
            WriterBackend::ThreadPool => {
                if n_shards <= 1 {
                    1
                } else if self.writer_pool_threads == 0 {
                    n_shards.min(4)
                } else {
                    self.writer_pool_threads
                }
            }
        }
    }

    /// Pace ticks at the paper's 30 Hz (or any frequency).
    pub fn paced_at_hz(mut self, hz: f64) -> Self {
        assert!(hz > 0.0 && hz.is_finite());
        self.paced = true;
        self.tick_period = Duration::from_secs_f64(1.0 / hz);
        self
    }

    /// Override the query-phase size.
    pub fn with_query_ops(mut self, ops: u32) -> Self {
        self.query_ops_per_tick = ops;
        self
    }

    /// Disable the end-of-run recovery measurement.
    pub fn without_recovery(mut self) -> Self {
        self.measure_recovery = false;
        self
    }

    /// Install a per-run crash-point lattice state (see
    /// [`RealConfig::crash`]). The fuzz harness keeps a clone of the
    /// `Arc` to read reach counts and the fired/down latches after
    /// the run.
    pub fn with_crash_state(mut self, state: Arc<CrashState>) -> Self {
        self.crash = Some(state);
        self
    }

    /// Install a per-run transient-fault failpoint state (see
    /// [`RealConfig::fault`]). The fuzz harness keeps a clone of the
    /// `Arc` to read the injected-fault tally after the run.
    pub fn with_fault_state(mut self, state: Arc<FaultState>) -> Self {
        self.fault = Some(state);
        self
    }

    /// Set the writer's transient-fault retry budget and backoff base
    /// (see [`RealConfig::retry_max`]; `max = 0` is the historical
    /// immediate-propagation engine).
    pub fn with_retry(mut self, max: u32, backoff: Duration) -> Self {
        self.retry_max = max;
        self.retry_backoff = backoff;
        self
    }

    /// The writer layer's retry policy for this run.
    #[must_use]
    pub fn retry_policy(&self) -> RetryPolicy {
        RetryPolicy {
            max: self.retry_max,
            backoff: self.retry_backoff,
        }
    }

    /// Set the replica tier's replication factor (see
    /// [`RealConfig::replication_factor`]; `0` disables the tier).
    pub fn with_replication(mut self, factor: u32) -> Self {
        self.replication_factor = factor;
        self
    }

    /// Install a pre-built replica tier (see
    /// [`RealConfig::replica_set`]). The caller keeps a clone of the
    /// `Arc` to fetch mirrors after the run — the fuzz harness and the
    /// recovery bench drive recovery from the surviving peers' memory
    /// themselves.
    pub fn with_replica_set(mut self, set: Arc<crate::replica::ReplicaSet>) -> Self {
        self.replica_set = Some(set);
        self
    }
}

/// The process-wide writer-backend default: `MMOC_WRITER_BACKEND` if
/// set, the thread pool otherwise. Returns `(backend, deferred_error)`:
/// an unrecognized value is a typed error surfaced as `RunError::Config`
/// when the config executes a run — like the other `MMOC_WRITER_*`
/// variables — so a typo in a CI matrix leg still fails loudly (the run
/// errors, it never silently re-runs the default backend) without making
/// `RealConfig::new` panic in library code.
fn writer_backend_from_env() -> (WriterBackend, Option<String>) {
    match std::env::var("MMOC_WRITER_BACKEND") {
        Err(_) => (WriterBackend::ThreadPool, None),
        Ok(v) => match writer_backend_spec(&v) {
            Ok(backend) => (backend, None),
            Err(msg) => (WriterBackend::ThreadPool, Some(msg)),
        },
    }
}

/// Parse a `MMOC_WRITER_BACKEND` value. Garbage is a typed error message
/// naming the variable and the accepted forms, not a panic.
pub(crate) fn writer_backend_spec(v: &str) -> Result<WriterBackend, String> {
    match v.trim() {
        "" | "thread-pool" | "threads" => Ok(WriterBackend::ThreadPool),
        "async-batched" | "async" => Ok(WriterBackend::AsyncBatched),
        "io-uring" | "io_uring" | "uring" => Ok(WriterBackend::IoUring),
        other => Err(format!(
            "unrecognized MMOC_WRITER_BACKEND value {other:?}; \
             use \"thread-pool\", \"async-batched\" or \"io-uring\""
        )),
    }
}

/// A parsed `MMOC_WRITER_BATCH_WINDOW` value: a fixed window, or the
/// auto-tuning sentinel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum WindowSpec {
    /// Occupancy-driven auto-tuning (`batch_window = auto`).
    Auto,
    /// A fixed window (zero = close batches immediately).
    Fixed(Duration),
}

/// Parse a `MMOC_WRITER_BATCH_WINDOW` value: `auto`, `250us`, `2ms`,
/// `1s`, or a bare integer in microseconds. Garbage is a typed error
/// message (surfaced as `RunError::Config` at run time), not a panic.
pub(crate) fn window_spec(v: &str) -> Result<WindowSpec, String> {
    if v.trim() == "auto" {
        return Ok(WindowSpec::Auto);
    }
    parse_window(v).map(WindowSpec::Fixed).ok_or_else(|| {
        format!(
            "unrecognized MMOC_WRITER_BATCH_WINDOW value {v:?}; \
             use e.g. \"0\", \"250us\", \"2ms\", \"1s\" or \"auto\""
        )
    })
}

/// The process-wide adaptive-batch-window default:
/// `MMOC_WRITER_BATCH_WINDOW` if set, zero (no waiting) otherwise.
/// Returns `(window, auto, deferred_error)`.
fn batch_window_from_env() -> (Duration, bool, Option<String>) {
    match std::env::var("MMOC_WRITER_BATCH_WINDOW") {
        Err(_) => (Duration::ZERO, false, None),
        Ok(v) => match window_spec(&v) {
            Ok(WindowSpec::Auto) => (Duration::ZERO, true, None),
            Ok(WindowSpec::Fixed(d)) => (d, false, None),
            Err(msg) => (Duration::ZERO, false, Some(msg)),
        },
    }
}

/// The process-wide pipeline-depth default: `MMOC_WRITER_PIPELINE_DEPTH`
/// if set, 1 (the historical one-in-flight engine) otherwise. Returns
/// `(depth, deferred_error)`.
fn pipeline_depth_from_env() -> (u32, Option<String>) {
    match std::env::var("MMOC_WRITER_PIPELINE_DEPTH") {
        Err(_) => (1, None),
        Ok(v) => match v.trim().parse::<u32>() {
            Ok(d) if d >= 1 => (d, None),
            _ => (
                1,
                Some(format!(
                    "unrecognized MMOC_WRITER_PIPELINE_DEPTH value {v:?}; \
                     use an integer of at least 1"
                )),
            ),
        },
    }
}

/// The process-wide device-barrier default: `MMOC_WRITER_DEVICE_SYNC` if
/// set (`1`/`true` or `0`/`false`), off otherwise. Returns
/// `(device_sync, deferred_error)`.
fn device_sync_from_env() -> (bool, Option<String>) {
    match std::env::var("MMOC_WRITER_DEVICE_SYNC") {
        Err(_) => (false, None),
        Ok(v) => match v.trim() {
            "1" | "true" => (true, None),
            "" | "0" | "false" => (false, None),
            _ => (
                false,
                Some(format!(
                    "unrecognized MMOC_WRITER_DEVICE_SYNC value {v:?}; \
                     use \"1\"/\"true\" or \"0\"/\"false\""
                )),
            ),
        },
    }
}

/// The process-wide replication default: `MMOC_REPLICATION` if set
/// (`K` peer mirrors per shard, `0` = off), off otherwise. Returns
/// `(factor, deferred_error)`.
fn replication_from_env() -> (u32, Option<String>) {
    match std::env::var("MMOC_REPLICATION") {
        Err(_) => (0, None),
        Ok(v) => match v.trim().parse::<u32>() {
            Ok(k) => (k, None),
            Err(_) => (
                0,
                Some(format!(
                    "unrecognized MMOC_REPLICATION value {v:?}; \
                     use an unsigned integer (0 disables the replica tier)"
                )),
            ),
        },
    }
}

/// The process-wide crash-plan default: an armed [`CrashState`] when
/// `MMOC_FUZZ_CRASH` holds a valid `point[:hit[:torn[:action]]]` spec,
/// none otherwise. Garbage is a typed error message naming the
/// variable (surfaced as `RunError::Config` when the run starts, like
/// the `MMOC_WRITER_*` knobs), not a panic. Returns
/// `(state, deferred_error)`.
fn crash_from_env() -> (Option<Arc<CrashState>>, Option<String>) {
    match std::env::var("MMOC_FUZZ_CRASH") {
        Err(_) => (None, None),
        Ok(v) => crash_from_spec(&v),
    }
}

/// The value half of [`crash_from_env`], split out so the error path is
/// testable without racing parallel tests on the process environment.
fn crash_from_spec(v: &str) -> (Option<Arc<CrashState>>, Option<String>) {
    match crate::crash::plan_spec(v.trim()) {
        Ok(plan) => (Some(Arc::new(CrashState::armed(plan))), None),
        Err(msg) => (
            None,
            Some(format!("unrecognized MMOC_FUZZ_CRASH value {v:?}: {msg}")),
        ),
    }
}

/// The process-wide transient-fault default: an armed [`FaultState`]
/// when `MMOC_FAULTS` holds a valid `site[:hit[:kind[:burst]]]` spec,
/// none otherwise. Garbage is a typed error message naming the
/// variable (surfaced as `RunError::Config` when the run starts, like
/// the other `MMOC_*` knobs), not a panic. Returns
/// `(state, deferred_error)`.
fn fault_from_env() -> (Option<Arc<FaultState>>, Option<String>) {
    match std::env::var("MMOC_FAULTS") {
        Err(_) => (None, None),
        Ok(v) => fault_from_spec(&v),
    }
}

/// The value half of [`fault_from_env`], split out so the error path
/// is testable without racing parallel tests on the process
/// environment.
fn fault_from_spec(v: &str) -> (Option<Arc<FaultState>>, Option<String>) {
    match crate::fault::fault_spec(v.trim()) {
        Ok(plan) => (Some(Arc::new(FaultState::armed(plan))), None),
        Err(msg) => (
            None,
            Some(format!("unrecognized MMOC_FAULTS value {v:?}: {msg}")),
        ),
    }
}

/// The process-wide retry-budget default: `MMOC_WRITER_RETRY_MAX` if
/// set, 3 otherwise (`0` = the historical immediate-propagation
/// engine). Returns `(max, deferred_error)`.
fn retry_max_from_env() -> (u32, Option<String>) {
    match std::env::var("MMOC_WRITER_RETRY_MAX") {
        Err(_) => (3, None),
        Ok(v) => match v.trim().parse::<u32>() {
            Ok(n) => (n, None),
            Err(_) => (
                3,
                Some(format!(
                    "unrecognized MMOC_WRITER_RETRY_MAX value {v:?}; \
                     use an unsigned integer (0 disables retries)"
                )),
            ),
        },
    }
}

/// The process-wide retry-backoff default: `MMOC_WRITER_RETRY_BACKOFF`
/// if set (`250us`, `2ms`, `1s`, or a bare integer in microseconds),
/// zero otherwise. Returns `(backoff, deferred_error)`.
fn retry_backoff_from_env() -> (Duration, Option<String>) {
    match std::env::var("MMOC_WRITER_RETRY_BACKOFF") {
        Err(_) => (Duration::ZERO, None),
        Ok(v) => match parse_window(&v) {
            Some(d) => (d, None),
            None => (
                Duration::ZERO,
                Some(format!(
                    "unrecognized MMOC_WRITER_RETRY_BACKOFF value {v:?}; \
                     use e.g. \"0\", \"250us\", \"2ms\" or \"1s\""
                )),
            ),
        },
    }
}

/// Parse a window spec: `250us`, `2ms`, `1s`, or a bare integer
/// (microseconds).
fn parse_window(v: &str) -> Option<Duration> {
    let v = v.trim();
    let (digits, scale_us) = if let Some(n) = v.strip_suffix("us") {
        (n, 1u64)
    } else if let Some(n) = v.strip_suffix("ms") {
        (n, 1_000)
    } else if let Some(n) = v.strip_suffix('s') {
        (n, 1_000_000)
    } else {
        (v, 1)
    };
    let n: u64 = digits.trim().parse().ok()?;
    Some(Duration::from_micros(n.checked_mul(scale_us)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_test_friendly() {
        let cfg = RealConfig::new("/tmp/x");
        assert!(!cfg.paced);
        assert!(cfg.measure_recovery);
        assert!(cfg.sync_data);
        assert!(cfg.coalesce_fsync, "coalescing is the default scheduler");
    }

    /// `MMOC_FUZZ_CRASH` follows the writer-knob contract: a valid spec
    /// arms a crash state, garbage becomes a deferred error naming the
    /// variable (surfaced as `RunError::Config` at execute time), and
    /// the armed plan round-trips the spec exactly.
    #[test]
    fn fuzz_crash_specs_arm_or_defer_a_named_error() {
        let (state, err) = crash_from_spec(" backup-commit:2:7:crash ");
        assert!(err.is_none(), "{err:?}");
        let plan = state.expect("armed").plan().expect("plan");
        assert_eq!(plan.spec(), "backup-commit:2:7:crash");

        let (state, err) = crash_from_spec("no-such-point:1");
        assert!(state.is_none());
        let msg = err.expect("garbage must defer an error");
        assert!(msg.contains("MMOC_FUZZ_CRASH"), "{msg}");
        assert!(msg.contains("no-such-point"), "{msg}");
    }

    /// `MMOC_FAULTS` follows the writer-knob contract: a valid spec
    /// arms a fault state, garbage becomes a deferred error naming
    /// the variable, and the armed plan round-trips the spec exactly.
    #[test]
    fn fault_specs_arm_or_defer_a_named_error() {
        let (state, err) = fault_from_spec(" backup-write:2:short-write:3 ");
        assert!(err.is_none(), "{err:?}");
        let plan = state.expect("armed").plan().expect("plan");
        assert_eq!(plan.spec(), "backup-write:2:short-write:3");

        let (state, err) = fault_from_spec("no-such-site:1");
        assert!(state.is_none());
        let msg = err.expect("garbage must defer an error");
        assert!(msg.contains("MMOC_FAULTS"), "{msg}");
        assert!(msg.contains("no-such-site"), "{msg}");
    }

    #[test]
    fn retry_knobs_default_and_build() {
        let cfg = RealConfig::new("/tmp/x");
        assert_eq!(cfg.retry_max, 3, "bounded retries by default");
        assert_eq!(cfg.retry_backoff, Duration::ZERO);
        assert!(cfg.fault.is_none(), "no failpoints in production");
        let cfg = cfg.with_retry(0, Duration::from_micros(250));
        assert_eq!(cfg.retry_policy().max, 0, "historical engine");
        assert_eq!(cfg.retry_policy().backoff, Duration::from_micros(250));
    }

    #[test]
    fn batch_window_specs_parse() {
        assert_eq!(parse_window("0"), Some(Duration::ZERO));
        assert_eq!(parse_window("250"), Some(Duration::from_micros(250)));
        assert_eq!(parse_window("250us"), Some(Duration::from_micros(250)));
        assert_eq!(parse_window(" 2ms "), Some(Duration::from_millis(2)));
        assert_eq!(parse_window("1s"), Some(Duration::from_secs(1)));
        assert_eq!(parse_window("fast"), None);
        assert_eq!(parse_window("1.5ms"), None, "whole numbers only");
    }

    /// The env-facing spec: every accepted suffix maps to the right
    /// window, `auto` selects auto-tuning, and garbage is a typed error
    /// message — not a panic — naming the variable and the accepted
    /// forms.
    #[test]
    fn window_spec_accepts_every_suffix_and_rejects_garbage() {
        assert_eq!(
            window_spec("250"),
            Ok(WindowSpec::Fixed(Duration::from_micros(250))),
            "bare integer = microseconds"
        );
        assert_eq!(
            window_spec("250us"),
            Ok(WindowSpec::Fixed(Duration::from_micros(250)))
        );
        assert_eq!(
            window_spec("2ms"),
            Ok(WindowSpec::Fixed(Duration::from_millis(2)))
        );
        assert_eq!(
            window_spec("1s"),
            Ok(WindowSpec::Fixed(Duration::from_secs(1)))
        );
        assert_eq!(window_spec(" auto "), Ok(WindowSpec::Auto));
        let err = window_spec("fast").expect_err("garbage must be rejected");
        assert!(
            err.contains("MMOC_WRITER_BATCH_WINDOW") && err.contains("fast"),
            "error names the variable and the offending value: {err}"
        );
    }

    #[test]
    fn pipeline_depth_defaults_to_one_and_is_configurable() {
        let cfg = RealConfig::new("/tmp/x");
        assert_eq!(cfg.pipeline_depth, 1, "historical engine by default");
        assert!(!cfg.auto_window);
        assert!(!cfg.device_sync);
        let cfg = cfg
            .with_pipeline_depth(4)
            .with_auto_window(true)
            .with_device_sync(true);
        assert_eq!(cfg.pipeline_depth, 4);
        assert!(cfg.auto_window);
        assert!(cfg.device_sync);
    }

    #[test]
    #[should_panic(expected = "pipeline depth must be at least 1")]
    fn zero_pipeline_depth_is_rejected() {
        let _ = RealConfig::new("/tmp/x").with_pipeline_depth(0);
    }

    #[test]
    fn batch_window_and_coalescing_are_configurable() {
        let cfg = RealConfig::new("/tmp/x")
            .with_batch_window(Duration::from_micros(500))
            .with_fsync_coalescing(false);
        assert_eq!(cfg.batch_window, Duration::from_micros(500));
        assert!(!cfg.coalesce_fsync);
    }

    #[test]
    fn pacing_sets_period() {
        let cfg = RealConfig::new("/tmp/x").paced_at_hz(30.0);
        assert!(cfg.paced);
        assert!((cfg.tick_period.as_secs_f64() - 1.0 / 30.0).abs() < 1e-9);
    }

    #[test]
    fn writer_backend_is_selectable_and_sizes_the_writer() {
        let cfg = RealConfig::new("/tmp/x").with_writer_backend(WriterBackend::AsyncBatched);
        assert_eq!(cfg.writer_backend, WriterBackend::AsyncBatched);
        assert_eq!(cfg.effective_pool_threads(4), 1, "batched engine: one loop");
        let cfg = cfg.with_writer_backend(WriterBackend::IoUring);
        assert_eq!(cfg.effective_pool_threads(4), 1, "ring engine: one loop");
        let cfg = cfg.with_writer_backend(WriterBackend::ThreadPool);
        assert_eq!(cfg.effective_pool_threads(1), 1);
        assert_eq!(cfg.effective_pool_threads(8), 4, "auto pool caps at 4");
        assert_eq!(cfg.with_writer_pool(2).effective_pool_threads(8), 2);
    }

    /// The env-facing spec for backend selection: every label round-trips
    /// (including the io-uring spellings), and garbage is a typed error
    /// message — not a panic — naming the variable and the accepted forms.
    #[test]
    fn writer_backend_spec_accepts_labels_and_rejects_garbage() {
        assert_eq!(writer_backend_spec(""), Ok(WriterBackend::ThreadPool));
        assert_eq!(
            writer_backend_spec("thread-pool"),
            Ok(WriterBackend::ThreadPool)
        );
        assert_eq!(
            writer_backend_spec("async-batched"),
            Ok(WriterBackend::AsyncBatched)
        );
        for spelling in ["io-uring", "io_uring", "uring", " io-uring "] {
            assert_eq!(
                writer_backend_spec(spelling),
                Ok(WriterBackend::IoUring),
                "{spelling:?}"
            );
        }
        for backend in WriterBackend::ALL {
            assert_eq!(writer_backend_spec(backend.label()), Ok(backend));
        }
        let err = writer_backend_spec("turbo").expect_err("garbage must be rejected");
        assert!(
            err.contains("MMOC_WRITER_BACKEND")
                && err.contains("turbo")
                && err.contains("io-uring"),
            "error names the variable, the offending value and the accepted forms: {err}"
        );
    }
}
