//! Replicated in-memory recovery tier (ReStore-style).
//!
//! Each shard pushes its committed checkpoint delta — the dirty objects
//! of a double-backup job or the records of a sealed log segment — to
//! `K` peer shards' memory over an in-process transport. Recovering a
//! single crashed shard then starts from a replica fetch (a memcpy of
//! the mirrored image plus a bounded tail replay) and only falls back
//! to the disk path when no mirror holds a complete copy.
//!
//! # Publish-on-commit
//!
//! A mirror must never hold state the disk has not durably committed:
//! the push transaction *opens* (all mirrors for the shard are marked
//! incomplete) before the checkpoint's durability point, and the delta
//! is *published* (applied and marked complete) only after
//! `commit_pending` returns. This is the same sync-before-commit
//! discipline the scheduler already enforces for the disk tier, lifted
//! to the replica tier. If the process dies between open and publish,
//! every mirror is incomplete and recovery falls back to disk — which
//! by construction holds the last committed checkpoint.
//!
//! # Consistency of the mirrored image
//!
//! Deltas are applied in per-shard submission order (the writer seam's
//! `TurnGate` already serializes completions per shard), and each delta
//! carries the pre-update ("consistent tick") images the checkpoint
//! algorithms stage — so after publishing the checkpoint at tick `t`,
//! the mirror byte-for-byte equals the state a disk recovery would
//! reconstruct for tick `t`. Both tiers then replay the same trace tail
//! deterministically, so recovered fingerprints are identical.

use std::sync::Mutex;

use mmoc_core::StateGeometry;

use crate::crash::{CrashPoint, CrashState};

/// One peer-hosted mirror of a shard's checkpointed state.
struct Mirror {
    /// Consistent tick of the last published checkpoint.
    tick: u64,
    /// False while a push transaction is open (or after a crash landed
    /// mid-push); an incomplete mirror is never served to recovery.
    complete: bool,
    /// Full shard image at `tick`, `objects * object_size` bytes.
    image: Vec<u8>,
}

/// Per-shard replica placement: which peer hosts each of the K copies.
struct ShardMirrors {
    /// Peer shard ids hosting the copies, `(shard + i) % n` for
    /// `i in 1..=K`. Kept for reporting; the mirrors themselves live
    /// inline since the transport is in-process.
    hosts: Vec<u32>,
    copies: Vec<Mutex<Mirror>>,
}

/// The in-process shard-to-shard replication transport: `K` memory
/// mirrors per shard, hosted at successor peers. Owned by the sharded
/// run (or retained by a caller that wants to drive recovery itself,
/// e.g. the fuzzer and the recovery bench) via `Arc`.
pub struct ReplicaSet {
    factor: u32,
    shards: Vec<ShardMirrors>,
}

impl std::fmt::Debug for ReplicaSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicaSet")
            .field("factor", &self.factor)
            .field("shards", &self.shards.len())
            .finish()
    }
}

/// Recover a poisoned mirror lock: the poisoning panic belongs to a
/// writer thread that already took the run down; the mirror data is a
/// plain byte image and stays usable.
fn relock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl ReplicaSet {
    /// Build the mirror topology for `geometries[s]` = shard `s`'s
    /// geometry. Each shard gets `factor` mirrors hosted at its
    /// successor peers; with a single shard the mirror is self-hosted,
    /// which still exercises the memcpy recovery path.
    ///
    /// Mirrors are seeded with the zeroed image at tick 0, complete —
    /// matching the durable initial state `create_store` lays down, so
    /// a crash before the first checkpoint can still recover from the
    /// replica tier.
    #[must_use]
    pub fn new(factor: u32, geometries: &[StateGeometry]) -> ReplicaSet {
        let n = geometries.len() as u32;
        let shards = geometries
            .iter()
            .enumerate()
            .map(|(s, g)| {
                let hosts: Vec<u32> = (1..=factor.max(1))
                    .map(|i| (s as u32 + i) % n.max(1))
                    .collect();
                let bytes = g.n_objects() as usize * g.object_size as usize;
                let copies = hosts
                    .iter()
                    .map(|_| {
                        Mutex::new(Mirror {
                            tick: 0,
                            complete: true,
                            image: vec![0_u8; bytes],
                        })
                    })
                    .collect();
                ShardMirrors { hosts, copies }
            })
            .collect();
        ReplicaSet {
            factor: factor.max(1),
            shards,
        }
    }

    /// The replication factor K (copies per shard).
    #[must_use]
    pub fn factor(&self) -> u32 {
        self.factor
    }

    /// Peer shard ids hosting `shard`'s mirrors.
    #[must_use]
    pub fn hosts(&self, shard: u32) -> &[u32] {
        &self.shards[shard as usize].hosts
    }

    /// Open a push transaction for `shard`: every mirror is marked
    /// incomplete until the matching [`ReplicaSet::publish`]. Called
    /// before the checkpoint's durability point so a crash in between
    /// leaves no mirror claiming a commit the disk never made.
    pub fn invalidate(&self, shard: u32) {
        for m in &self.shards[shard as usize].copies {
            relock(m).complete = false;
        }
    }

    /// Publish a committed checkpoint delta: apply `(ids, data)` —
    /// `data[i * object_size ..][..object_size]` is the image of object
    /// `ids[i]` — to every mirror, then mark them complete at `tick`.
    /// Must only be called after the delta's durability point.
    ///
    /// # Panics
    ///
    /// Panics if an object id is outside the mirrored image (a delta
    /// from the wrong shard's geometry — a protocol bug, not a data
    /// error).
    pub fn publish(&self, shard: u32, tick: u64, ids: &[u32], data: &[u8], object_size: u32) {
        let osz = object_size as usize;
        for m in &self.shards[shard as usize].copies {
            let mut mirror = relock(m);
            for (i, &id) in ids.iter().enumerate() {
                let src = &data[i * osz..(i + 1) * osz];
                let off = id as usize * osz;
                mirror.image[off..off + osz].copy_from_slice(src);
            }
            mirror.tick = tick;
            mirror.complete = true;
        }
    }

    /// Fetch a complete mirror of `shard` for recovery: returns the
    /// image and its consistent tick, or `None` when no copy is
    /// complete (push transaction in flight at crash time, or every
    /// hosting peer died).
    ///
    /// Each mirror attempt reaches [`CrashPoint::ReplicaFetch`]; if the
    /// armed plan fires there the hosting peer is considered dead
    /// mid-transfer and that copy is skipped — so `K = 1` falls back to
    /// disk while `K >= 2` survives a single peer death.
    #[must_use]
    pub fn fetch(&self, shard: u32, crash: Option<&CrashState>) -> Option<(Vec<u8>, u64)> {
        self.with_mirror(shard, crash, |image, tick| (image.to_vec(), tick))
    }

    /// As [`ReplicaSet::fetch`], but runs `f` over the mirror image in
    /// place instead of cloning it — for callers that only need to
    /// inspect the image. The mirror lock is held for the duration of
    /// `f`; keep it short.
    pub fn with_mirror<R>(
        &self,
        shard: u32,
        crash: Option<&CrashState>,
        f: impl FnOnce(&[u8], u64) -> R,
    ) -> Option<R> {
        for m in &self.shards[shard as usize].copies {
            if let Some(state) = crash {
                if state.reach(CrashPoint::ReplicaFetch).is_some() {
                    continue;
                }
            }
            let mirror = relock(m);
            if mirror.complete {
                if let Some(state) = crash {
                    // Peer died *mid-transfer*: the copy was locked and
                    // streaming when the host went away. Discard the
                    // partial copy and try the next mirror — K >= 2
                    // survives — before the caller's disk fallback.
                    if state.reach(CrashPoint::ReplicaFetchMid).is_some() {
                        continue;
                    }
                }
                return Some(f(&mirror.image, mirror.tick));
            }
        }
        None
    }

    /// Observability for reports/tests: `(complete_copies, tick of the
    /// newest complete copy)` for `shard`.
    #[must_use]
    pub fn mirror_status(&self, shard: u32) -> (u32, u64) {
        let mut complete = 0_u32;
        let mut newest = 0_u64;
        for m in &self.shards[shard as usize].copies {
            let mirror = relock(m);
            if mirror.complete {
                complete += 1;
                newest = newest.max(mirror.tick);
            }
        }
        (complete, newest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crash::CrashPlan;
    use std::sync::Arc;

    /// `objects` atomic objects of `object_size` bytes, one cell per
    /// object byte-for-byte (cell_size == object_size).
    fn geom(objects: u32, object_size: u32) -> StateGeometry {
        StateGeometry {
            rows: objects,
            cols: 1,
            cell_size: object_size,
            object_size,
        }
    }

    #[test]
    fn mirrors_seed_complete_and_zeroed() {
        let set = ReplicaSet::new(2, &[geom(4, 8), geom(4, 8), geom(4, 8)]);
        for s in 0..3 {
            let (image, tick) = set.fetch(s, None).expect("seed mirror is complete");
            assert_eq!(tick, 0);
            assert_eq!(image, vec![0_u8; 32]);
            assert_eq!(set.mirror_status(s), (2, 0));
        }
        // Successor placement: shard 0's copies live on shards 1 and 2.
        assert_eq!(set.hosts(0), &[1, 2]);
        assert_eq!(set.hosts(2), &[0, 1]);
    }

    #[test]
    fn publish_applies_delta_and_invalidate_hides_mirrors() {
        let set = ReplicaSet::new(1, &[geom(4, 4)]);
        set.invalidate(0);
        assert!(set.fetch(0, None).is_none(), "open push hides the mirror");
        set.publish(0, 7, &[1, 3], &[1, 1, 1, 1, 3, 3, 3, 3], 4);
        let (image, tick) = set.fetch(0, None).expect("published mirror serves");
        assert_eq!(tick, 7);
        assert_eq!(image, vec![0, 0, 0, 0, 1, 1, 1, 1, 0, 0, 0, 0, 3, 3, 3, 3]);
    }

    #[test]
    fn fetch_crash_skips_one_mirror_per_fire() {
        let state = Arc::new(CrashState::armed(CrashPlan::at(CrashPoint::ReplicaFetch)));
        let set = ReplicaSet::new(2, &[geom(2, 2), geom(2, 2)]);
        set.publish(0, 5, &[0], &[9, 9], 2);
        // First attempt fires (peer death) and is skipped; the second
        // mirror still serves the published state.
        let (image, tick) = set
            .fetch(0, Some(&state))
            .expect("K=2 survives one peer death");
        assert_eq!((image, tick), (vec![9, 9, 0, 0], 5));
        assert!(state.fired());
    }

    /// Peer death *mid-fetch* (after the mirror lock was taken on a
    /// complete copy): with K = 2 the next complete mirror serves the
    /// same published state, before any disk fallback.
    #[test]
    fn mid_fetch_peer_death_tries_next_mirror_before_disk() {
        let state = Arc::new(CrashState::armed(CrashPlan::at(
            CrashPoint::ReplicaFetchMid,
        )));
        let set = ReplicaSet::new(2, &[geom(2, 2), geom(2, 2)]);
        set.publish(0, 5, &[0], &[9, 9], 2);
        let (image, tick) = set
            .fetch(0, Some(&state))
            .expect("K=2 survives one mid-fetch peer death");
        assert_eq!((image, tick), (vec![9, 9, 0, 0], 5));
        assert!(state.fired());
        // Both mirrors were locked: the first fetch died mid-transfer.
        assert_eq!(state.reach_count(CrashPoint::ReplicaFetchMid), 2);

        // K = 1 has no second mirror: the same plan forces the disk
        // fallback (fetch misses without consuming anything).
        let state = Arc::new(CrashState::armed(CrashPlan::at(
            CrashPoint::ReplicaFetchMid,
        )));
        let single = ReplicaSet::new(1, &[geom(2, 2)]);
        assert!(single.fetch(0, Some(&state)).is_none());
    }
}
