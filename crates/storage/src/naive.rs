//! The real Naive-Snapshot engine.
//!
//! At each tick boundary where the previous checkpoint has finished, the
//! mutator quiesces (it *is* the only updater between ticks) and eagerly
//! copies the full state into a snapshot buffer — the real `memcpy` whose
//! duration is the algorithm's entire overhead. The asynchronous writer
//! then streams the buffer sequentially into the alternate backup file.

use crate::config::RealConfig;
use crate::files::BackupSet;
use crate::recovery::recover_and_replay;
use crate::report::{RealReport, RecoveryMeasurement};
use mmoc_core::{Algorithm, CheckpointRecord, RunMetrics, StateTable, TickMetrics};
use mmoc_workload::TraceSource;
use std::io;
use std::time::Instant;

struct Job {
    image: Vec<u8>,
    target: usize,
    tick: u64,
}

struct Done {
    result: io::Result<f64>,
    image: Vec<u8>,
}

/// Run Naive-Snapshot over the trace produced by `make_trace`.
///
/// `make_trace` must be replayable (calling it again yields an identical
/// stream); the second instantiation drives recovery replay.
pub fn run_naive_snapshot<S, F>(config: &RealConfig, make_trace: F) -> io::Result<RealReport>
where
    S: TraceSource,
    F: Fn() -> S,
{
    let mut trace = make_trace();
    let geometry = trace.geometry();
    geometry
        .validate()
        .map_err(|e| io::Error::other(e.to_string()))?;
    let mut table = StateTable::new(geometry).map_err(|e| io::Error::other(e.to_string()))?;
    let mut set = BackupSet::create(&config.dir, geometry, table.as_bytes())?;
    let sync_data = config.sync_data;

    let (job_tx, job_rx) = crossbeam::channel::bounded::<Job>(1);
    let (done_tx, done_rx) = crossbeam::channel::bounded::<Done>(1);
    let writer = std::thread::spawn(move || {
        for job in job_rx {
            let t0 = Instant::now();
            let result = (|| {
                set.invalidate(job.target)?;
                set.write_full(job.target, &job.image)?;
                if sync_data {
                    set.sync(job.target)?;
                }
                set.commit(job.target, job.tick)?;
                Ok(t0.elapsed().as_secs_f64())
            })();
            let _ = done_tx.send(Done {
                result,
                image: job.image,
            });
        }
    });

    let mut metrics = RunMetrics::default();
    let mut rng_state = 0x9E37_79B9u64;
    let mut query_sink = 0u64;
    let mut buf = Vec::new();
    let mut spare: Option<Vec<u8>> = Some(vec![0u8; table.as_bytes().len()]);
    // (seq, start tick, sync pause, target)
    let mut in_flight: Option<(u64, u64, f64, usize)> = None;
    let mut seq = 0u64;
    let mut target = 0usize;
    let mut tick = 0u64;
    let mut total_updates = 0u64;

    while trace.next_tick(&mut buf) {
        tick += 1;
        let tick_start = Instant::now();

        // Query phase: random state lookups standing in for game logic.
        for _ in 0..config.query_ops_per_tick {
            rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let row = (rng_state >> 33) as u32 % geometry.rows;
            let col = (rng_state >> 13) as u32 % geometry.cols;
            query_sink ^= u64::from(
                table
                    .read(mmoc_core::CellAddr::new(row, col))
                    .expect("query in bounds"),
            );
        }

        // Update phase.
        for &u in &buf {
            table.apply_unchecked(u);
        }
        total_updates += buf.len() as u64;

        // Tick boundary: harvest a completed checkpoint, reclaiming its
        // buffer and flipping the target backup.
        if let Ok(done) = done_rx.try_recv() {
            let duration = done.result?;
            let (s, start_tick, pause, tgt) = in_flight.take().expect("job was in flight");
            metrics.checkpoints.push(CheckpointRecord {
                seq: s,
                start_tick,
                end_tick: tick,
                duration_s: pause + duration,
                sync_pause_s: pause,
                objects_written: geometry.n_objects(),
                bytes_written: table.as_bytes().len() as u64,
                full_flush: false,
            });
            target = tgt ^ 1;
            spare = Some(done.image);
        }

        // Start the next checkpoint: the eager full-state copy is the
        // pause Naive-Snapshot inflicts on the game.
        let mut sync_pause = 0.0f64;
        if in_flight.is_none() {
            let mut image = spare.take().expect("one spare buffer cycles");
            let p0 = Instant::now();
            image.copy_from_slice(table.as_bytes());
            sync_pause = p0.elapsed().as_secs_f64();
            job_tx
                .send(Job {
                    image,
                    target,
                    tick,
                })
                .expect("writer alive");
            in_flight = Some((seq, tick, sync_pause, target));
            seq += 1;
        }

        metrics.ticks.push(TickMetrics {
            tick,
            overhead_s: sync_pause,
            sync_pause_s: sync_pause,
            bit_ops: 0,
            locks: 0,
            copies: 0,
        });

        if config.paced {
            let elapsed = tick_start.elapsed();
            if elapsed < config.tick_period {
                std::thread::sleep(config.tick_period - elapsed);
            }
        }
    }

    // Drain the in-flight checkpoint so recovery sees a committed backup.
    if let Some((s, start_tick, pause, _)) = in_flight.take() {
        let done = done_rx.recv().expect("writer alive");
        let duration = done.result?;
        metrics.checkpoints.push(CheckpointRecord {
            seq: s,
            start_tick,
            end_tick: tick,
            duration_s: pause + duration,
            sync_pause_s: pause,
            objects_written: geometry.n_objects(),
            bytes_written: table.as_bytes().len() as u64,
            full_flush: false,
        });
        spare = Some(done.image);
    }
    drop(job_tx);
    writer.join().expect("writer thread");
    drop(spare);
    std::hint::black_box(query_sink);

    let recovery = if config.measure_recovery {
        let mut replay_trace = make_trace();
        let rec = recover_and_replay(&config.dir, geometry, &mut replay_trace, tick)?;
        Some(RecoveryMeasurement {
            restore_s: rec.restore_s,
            replay_s: rec.replay_s,
            total_s: rec.restore_s + rec.replay_s,
            restored_from_tick: rec.from_tick,
            ticks_replayed: rec.ticks_replayed,
            updates_replayed: rec.updates_replayed,
            state_matches: rec.table.fingerprint() == table.fingerprint(),
        })
    } else {
        None
    };

    Ok(RealReport {
        algorithm: Algorithm::NaiveSnapshot,
        ticks: tick,
        updates: total_updates,
        checkpoints_completed: metrics.checkpoints.len() as u64,
        avg_overhead_s: metrics.avg_overhead_s(),
        max_overhead_s: metrics.max_overhead_s(),
        avg_checkpoint_s: metrics.avg_checkpoint_s(),
        metrics,
        recovery,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmoc_core::StateGeometry;
    use mmoc_workload::SyntheticConfig;

    fn config(dir: &std::path::Path) -> RealConfig {
        let mut c = RealConfig::new(dir);
        c.query_ops_per_tick = 64;
        c
    }

    fn trace_config() -> SyntheticConfig {
        SyntheticConfig {
            geometry: StateGeometry::small(512, 8),
            ticks: 40,
            updates_per_tick: 200,
            skew: 0.7,
            seed: 21,
        }
    }

    #[test]
    fn naive_run_checkpoints_and_recovers() {
        let dir = tempfile::tempdir().unwrap();
        let report = run_naive_snapshot(&config(dir.path()), || trace_config().build()).unwrap();
        assert_eq!(report.ticks, 40);
        assert_eq!(report.updates, 40 * 200);
        assert!(report.checkpoints_completed > 0);
        assert!(report.avg_checkpoint_s > 0.0);
        let rec = report.recovery.expect("recovery measured");
        assert!(rec.state_matches, "recovered state must match live state");
        assert!(rec.restored_from_tick > 0);
    }

    #[test]
    fn naive_overhead_is_the_copy_pause() {
        let dir = tempfile::tempdir().unwrap();
        let report = run_naive_snapshot(&config(dir.path()), || trace_config().build()).unwrap();
        for t in &report.metrics.ticks {
            assert_eq!(t.bit_ops, 0);
            assert_eq!(t.copies, 0);
            assert!((t.overhead_s - t.sync_pause_s).abs() < 1e-12);
        }
        // At least one tick actually paid a snapshot pause.
        assert!(report.max_overhead_s > 0.0);
    }

    #[test]
    fn naive_without_recovery_measurement() {
        let dir = tempfile::tempdir().unwrap();
        let report = run_naive_snapshot(&config(dir.path()).without_recovery(), || {
            trace_config().build()
        })
        .unwrap();
        assert!(report.recovery.is_none());
    }
}
