//! The real Naive-Snapshot engine — a configuration of the shared
//! [`crate::engine`], not an orchestration loop of its own.
//!
//! At each tick boundary where the previous checkpoint has finished, the
//! driver's eager path quiesces the mutator (it *is* the only updater
//! between ticks) and copies the full state into a private buffer — the
//! real `memcpy` whose duration is the algorithm's entire overhead. The
//! asynchronous writer then streams the buffer into the alternate backup
//! file.

use crate::config::RealConfig;
use crate::engine::run_single;
use crate::report::RealReport;
use mmoc_core::{Algorithm, TraceSource};
use std::io;

/// Run Naive-Snapshot over the trace produced by `make_trace`.
///
/// `make_trace` must be replayable (calling it again yields an identical
/// stream); the second instantiation drives recovery replay.
#[deprecated(
    since = "0.2.0",
    note = "use the unified builder: `Run::algorithm(Algorithm::NaiveSnapshot).engine(real_config).trace(\u{2026}).execute()`"
)]
pub fn run_naive_snapshot<S, F>(config: &RealConfig, make_trace: F) -> io::Result<RealReport>
where
    S: TraceSource,
    F: Fn() -> S + Sync,
{
    run_single(Algorithm::NaiveSnapshot, config, make_trace)
}

#[cfg(test)]
mod tests {
    #![allow(deprecated)] // the wrappers stay exercised until removal

    use super::*;
    use mmoc_core::StateGeometry;
    use mmoc_workload::SyntheticConfig;

    fn config(dir: &std::path::Path) -> RealConfig {
        let mut c = RealConfig::new(dir);
        c.query_ops_per_tick = 64;
        c
    }

    fn trace_config() -> SyntheticConfig {
        SyntheticConfig {
            geometry: StateGeometry::test_small(),
            ticks: 40,
            updates_per_tick: 200,
            skew: 0.7,
            seed: 21,
        }
    }

    #[test]
    fn naive_run_checkpoints_and_recovers() {
        let dir = tempfile::tempdir().unwrap();
        let report = run_naive_snapshot(&config(dir.path()), || trace_config().build()).unwrap();
        assert_eq!(report.ticks, 40);
        assert_eq!(report.updates, 40 * 200);
        assert!(report.checkpoints_completed > 0);
        assert!(report.avg_checkpoint_s > 0.0);
        let rec = report.recovery.expect("recovery measured");
        assert!(rec.state_matches, "recovered state must match live state");
        assert!(rec.restored_from_tick > 0);
    }

    #[test]
    fn naive_overhead_is_the_copy_pause() {
        let dir = tempfile::tempdir().unwrap();
        let report = run_naive_snapshot(&config(dir.path()), || trace_config().build()).unwrap();
        for t in &report.metrics.ticks {
            assert_eq!(t.bit_ops, 0);
            assert_eq!(t.copies, 0);
            assert!((t.overhead_s - t.sync_pause_s).abs() < 1e-12);
        }
        // At least one tick actually paid a snapshot pause.
        assert!(report.max_overhead_s > 0.0);
    }

    #[test]
    fn naive_without_recovery_measurement() {
        let dir = tempfile::tempdir().unwrap();
        let report = run_naive_snapshot(&config(dir.path()).without_recovery(), || {
            trace_config().build()
        })
        .unwrap();
        assert!(report.recovery.is_none());
    }

    #[test]
    fn naive_checkpoints_are_always_full_state() {
        let dir = tempfile::tempdir().unwrap();
        let report = run_naive_snapshot(&config(dir.path()).without_recovery(), || {
            trace_config().build()
        })
        .unwrap();
        let n = trace_config().geometry.n_objects();
        for c in &report.metrics.checkpoints {
            assert_eq!(c.objects_written, n);
        }
    }
}
