//! Crash-point lattice: named phase boundaries through the storage
//! engine's write path, consulted via a near-zero-cost armed check.
//!
//! The lattice exists so the crash-fuzz harness (`mmoc-fuzz`) can
//! simulate a process kill at *any* phase boundary of the durability
//! story — not just the handful of hand-picked sites in
//! `failure_injection.rs`. Every boundary is a [`CrashPoint`]; a run
//! that should crash carries a [`CrashPlan`] naming one point, the
//! 1-based hit index at which it fires, an optional torn-write byte
//! budget, and the [`CrashAction`] to take.
//!
//! The plan lives in a per-run [`CrashState`] threaded through
//! `RealConfig` (never a process global, so parallel `cargo test`
//! runs cannot arm each other). Disarmed, every instrumentation site
//! is one `Option` check on an `Arc` field that is `None` in
//! production — effectively free. Armed, each `reach` increments the
//! point's counter and fires exactly once when the counter reaches
//! the plan's hit index.
//!
//! "Crashing" does not kill the process: the firing site applies its
//! partial effect (a torn prefix, a truncated tail, a skipped sync),
//! then latches the [`CrashState::go_down`] flag. From that instant
//! every instrumented disk mutation is suppressed — the disk is
//! frozen exactly as a kill would leave it — while completions still
//! acknowledge so the driver drains cleanly. The fuzzer then runs
//! real recovery over the frozen directory and compares against an
//! in-memory oracle.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// A named phase boundary in the storage engine's write path.
///
/// The discriminant order is stable and is the index into
/// [`CrashState`]'s per-point counters; new points append at the end.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CrashPoint {
    /// The driver hands a checkpoint job to the writer backend
    /// (`RealBackend::send`), before it reaches any writer thread.
    JobEnqueued = 0,
    /// `submit_job` invalidated the double-backup target's metadata
    /// (the write window is open, the old image is gone).
    BackupInvalidate = 1,
    /// A single object write into the double-backup image file; the
    /// torn budget truncates the object's bytes mid-write.
    BackupWriteObject = 2,
    /// The 16-byte metadata commit of a double-backup checkpoint; the
    /// torn budget leaves a short, unsynced meta file behind.
    BackupCommit = 3,
    /// A single object record appended to an open log segment; the
    /// torn budget tears the record after its object-id header.
    LogAppendObject = 4,
    /// A log segment was sealed (trailer + length backpatch) but not
    /// yet synced; the torn budget truncates the sealed tail.
    LogSegmentSealed = 5,
    /// `submit_job` finished: all data writes staged, nothing synced
    /// or committed yet.
    JobSubmitted = 6,
    /// `complete_job` entered, before the job's data sync (or the
    /// inherited pre-sync result) is considered.
    CompleteBeforeSync = 7,
    /// `complete_job` synced the data but has not yet committed the
    /// metadata (double-backup) or synced the log store.
    CompleteBeforeCommit = 8,
    /// The durability scheduler's seam between the coalesced sync
    /// phase and the completion loop (batched and ring engines).
    SchedulerCommitSeam = 9,
    /// Immediately before the `syncfs`-style device barrier replaces
    /// the batch's per-file fsyncs.
    DeviceBarrier = 10,
    /// A per-shard io_uring wave is staged and about to be pushed to
    /// the submission queue.
    UringWaveStaged = 11,
    /// A per-shard io_uring wave's CQEs were reaped and accounted.
    UringWaveComplete = 12,
    /// The replica push transaction opened (the shard's peer mirrors are
    /// invalidated for the transfer) but the disk metadata commit has
    /// not happened yet; a crash here leaves every mirror incomplete and
    /// recovery must fall back to disk.
    ReplicaPushPreCommit = 13,
    /// The checkpoint committed on disk and its delta was published to
    /// the peer mirrors; a crash here leaves replica and disk agreeing
    /// on the new checkpoint.
    ReplicaPushPostCommit = 14,
    /// A recovery-time replica fetch attempt (one reach per mirror
    /// tried); firing simulates the hosting peer dying *before* the
    /// mirror lock is taken, so that mirror is skipped and recovery
    /// moves to the next copy or falls back to disk.
    ReplicaFetch = 15,
    /// Recovery read the newest consistent image (backup file or log
    /// reconstruction) but has not started replaying; firing simulates
    /// a re-crash mid-restore — the recovery attempt errors out and
    /// must be restarted from scratch.
    RecoveryReadImage = 16,
    /// One reach per tick replayed over the restored image; firing
    /// simulates a re-crash mid-tail-replay — the recovery attempt
    /// errors out and must be restarted from scratch.
    RecoveryReplayTick = 17,
    /// A recovery-time replica fetch locked a complete mirror and is
    /// copying its image; firing simulates the hosting peer dying
    /// mid-transfer — the partial copy is discarded and recovery tries
    /// the next mirror (K ≥ 2 survives) before falling back to disk.
    ReplicaFetchMid = 18,
}

/// Number of registered crash points.
pub const N_POINTS: usize = 19;

/// Every registered crash point, in registry (discriminant) order.
pub const ALL_POINTS: [CrashPoint; N_POINTS] = [
    CrashPoint::JobEnqueued,
    CrashPoint::BackupInvalidate,
    CrashPoint::BackupWriteObject,
    CrashPoint::BackupCommit,
    CrashPoint::LogAppendObject,
    CrashPoint::LogSegmentSealed,
    CrashPoint::JobSubmitted,
    CrashPoint::CompleteBeforeSync,
    CrashPoint::CompleteBeforeCommit,
    CrashPoint::SchedulerCommitSeam,
    CrashPoint::DeviceBarrier,
    CrashPoint::UringWaveStaged,
    CrashPoint::UringWaveComplete,
    CrashPoint::ReplicaPushPreCommit,
    CrashPoint::ReplicaPushPostCommit,
    CrashPoint::ReplicaFetch,
    CrashPoint::RecoveryReadImage,
    CrashPoint::RecoveryReplayTick,
    CrashPoint::ReplicaFetchMid,
];

impl CrashPoint {
    /// Stable kebab-case name, used by `mmoc-fuzz --list-points`,
    /// reproducer lines, and the `MMOC_FUZZ_CRASH` spec.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            CrashPoint::JobEnqueued => "job-enqueued",
            CrashPoint::BackupInvalidate => "backup-invalidate",
            CrashPoint::BackupWriteObject => "backup-write-object",
            CrashPoint::BackupCommit => "backup-commit",
            CrashPoint::LogAppendObject => "log-append-object",
            CrashPoint::LogSegmentSealed => "log-segment-sealed",
            CrashPoint::JobSubmitted => "job-submitted",
            CrashPoint::CompleteBeforeSync => "complete-before-sync",
            CrashPoint::CompleteBeforeCommit => "complete-before-commit",
            CrashPoint::SchedulerCommitSeam => "scheduler-commit-seam",
            CrashPoint::DeviceBarrier => "device-barrier",
            CrashPoint::UringWaveStaged => "uring-wave-staged",
            CrashPoint::UringWaveComplete => "uring-wave-complete",
            CrashPoint::ReplicaPushPreCommit => "replica-push-pre-commit",
            CrashPoint::ReplicaPushPostCommit => "replica-push-post-commit",
            CrashPoint::ReplicaFetch => "replica-fetch",
            CrashPoint::RecoveryReadImage => "recovery-read-image",
            CrashPoint::RecoveryReplayTick => "recovery-replay-tick",
            CrashPoint::ReplicaFetchMid => "replica-fetch-mid",
        }
    }

    /// Parse a registry name back into its point.
    ///
    /// # Errors
    /// Returns the offending name when it matches no registered point.
    pub fn parse(name: &str) -> Result<CrashPoint, String> {
        ALL_POINTS
            .iter()
            .copied()
            .find(|p| p.name() == name)
            .ok_or_else(|| format!("unknown crash point `{name}`"))
    }

    /// One-line description of the phase boundary, for `--list-points`.
    #[must_use]
    pub fn describe(self) -> &'static str {
        match self {
            CrashPoint::JobEnqueued => "driver hands the job to the writer backend",
            CrashPoint::BackupInvalidate => "double-backup target meta invalidated",
            CrashPoint::BackupWriteObject => "mid object write into the backup image (torn)",
            CrashPoint::BackupCommit => "mid 16-byte meta commit, unsynced (torn)",
            CrashPoint::LogAppendObject => "mid object record append to an open segment (torn)",
            CrashPoint::LogSegmentSealed => "segment sealed but unsynced (torn tail)",
            CrashPoint::JobSubmitted => "submit_job done: staged, nothing committed",
            CrashPoint::CompleteBeforeSync => "complete_job entry, before the data sync",
            CrashPoint::CompleteBeforeCommit => "after data sync, before the meta/log commit",
            CrashPoint::SchedulerCommitSeam => "scheduler seam between sync phase and completions",
            CrashPoint::DeviceBarrier => "before the syncfs-style device barrier",
            CrashPoint::UringWaveStaged => "uring wave staged, about to push SQEs",
            CrashPoint::UringWaveComplete => "uring wave reaped and accounted",
            CrashPoint::ReplicaPushPreCommit => {
                "replica push opened, mirrors invalid, not committed"
            }
            CrashPoint::ReplicaPushPostCommit => {
                "checkpoint committed and delta published to mirrors"
            }
            CrashPoint::ReplicaFetch => "recovery-time replica fetch attempt (peer death)",
            CrashPoint::RecoveryReadImage => "re-crash after the restore image was read",
            CrashPoint::RecoveryReplayTick => "re-crash mid tail replay (one reach per tick)",
            CrashPoint::ReplicaFetchMid => "peer death mid mirror transfer (next mirror tried)",
        }
    }

    /// The durability phase the point sits in, for grouped listings.
    #[must_use]
    pub fn phase(self) -> CrashPhase {
        match self {
            CrashPoint::JobEnqueued
            | CrashPoint::BackupInvalidate
            | CrashPoint::BackupWriteObject
            | CrashPoint::LogAppendObject
            | CrashPoint::LogSegmentSealed
            | CrashPoint::JobSubmitted
            | CrashPoint::UringWaveStaged => CrashPhase::Submit,
            CrashPoint::BackupCommit
            | CrashPoint::CompleteBeforeSync
            | CrashPoint::CompleteBeforeCommit
            | CrashPoint::SchedulerCommitSeam
            | CrashPoint::DeviceBarrier
            | CrashPoint::UringWaveComplete
            | CrashPoint::ReplicaPushPreCommit
            | CrashPoint::ReplicaPushPostCommit => CrashPhase::Complete,
            CrashPoint::ReplicaFetch
            | CrashPoint::RecoveryReadImage
            | CrashPoint::RecoveryReplayTick
            | CrashPoint::ReplicaFetchMid => CrashPhase::Recovery,
        }
    }

    /// True for the points consulted *during recovery* rather than
    /// during the run: they never freeze the disk — firing makes the
    /// recovery attempt fail (or skip a mirror) and a restarted
    /// attempt must succeed.
    #[must_use]
    pub fn is_recovery_point(self) -> bool {
        self.phase() == CrashPhase::Recovery
    }

    /// Human-readable compatibility set: the run shapes under which
    /// the point can be reached at all (`mmoc-fuzz --list-points`
    /// prints this next to the reach counts so the grown lattice
    /// stays auditable).
    #[must_use]
    pub fn compat(self) -> &'static str {
        match self {
            CrashPoint::JobEnqueued
            | CrashPoint::CompleteBeforeSync
            | CrashPoint::CompleteBeforeCommit => "any backend, any algorithm",
            CrashPoint::BackupInvalidate | CrashPoint::BackupCommit => {
                "double-backup algorithms, any backend"
            }
            CrashPoint::BackupWriteObject => "double-backup algorithms, pool/batched backends",
            CrashPoint::LogAppendObject | CrashPoint::LogSegmentSealed => {
                "log algorithms, pool/batched backends"
            }
            CrashPoint::JobSubmitted => "pool/batched backends",
            CrashPoint::SchedulerCommitSeam => "batched/uring backends",
            CrashPoint::DeviceBarrier => {
                "batched/uring backends, multi-shard, device-sync + coalescing on"
            }
            CrashPoint::UringWaveStaged | CrashPoint::UringWaveComplete => {
                "io-uring backend (ring actually running); also takes ring-death"
            }
            CrashPoint::ReplicaPushPreCommit | CrashPoint::ReplicaPushPostCommit => {
                "replication >= 1"
            }
            CrashPoint::ReplicaFetch => "replication >= 1, recovery-time (hit <= mirrors tried)",
            CrashPoint::RecoveryReadImage | CrashPoint::RecoveryReplayTick => {
                "recovery-time, any algorithm (disk or replica path)"
            }
            CrashPoint::ReplicaFetchMid => "replication >= 1, recovery-time",
        }
    }
}

/// The durability phase a [`CrashPoint`] belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPhase {
    /// Submission: data writes staged, nothing durable yet.
    Submit,
    /// Completion: durability points, commits, replica publishes.
    Complete,
    /// Recovery: consulted while restoring, not while running.
    Recovery,
}

impl CrashPhase {
    /// Stable display label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            CrashPhase::Submit => "submit",
            CrashPhase::Complete => "complete",
            CrashPhase::Recovery => "recovery",
        }
    }
}

/// What happens when the armed point fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashAction {
    /// Freeze the disk as a process kill would: apply the site's
    /// partial/torn effect, then suppress every later disk mutation.
    Crash,
    /// Latch the io_uring dead flag mid-batch *without* crashing, so
    /// the synchronous redo path has to finish the batch. Only
    /// meaningful on the uring points.
    RingDeath,
}

impl CrashAction {
    /// Stable spec name (`crash` / `ring-death`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            CrashAction::Crash => "crash",
            CrashAction::RingDeath => "ring-death",
        }
    }
}

/// A fully specified crash: which point, on which reach, how torn,
/// and what to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPlan {
    /// The phase boundary to fire at.
    pub point: CrashPoint,
    /// 1-based reach index at which the point fires (1 = first time
    /// any thread reaches it).
    pub hit: u64,
    /// Torn-write byte budget for the sites that support partial
    /// effects: how many bytes of the interrupted write survive (or,
    /// for `LogSegmentSealed`, how many tail bytes are truncated).
    pub torn: u64,
    /// What firing does.
    pub action: CrashAction,
}

impl CrashPlan {
    /// A plan that crashes at `point`'s first reach with no torn bytes.
    #[must_use]
    pub fn at(point: CrashPoint) -> CrashPlan {
        CrashPlan {
            point,
            hit: 1,
            torn: 0,
            action: CrashAction::Crash,
        }
    }

    /// Render as the canonical `point:hit:torn:action` spec string,
    /// re-parseable by [`plan_spec`].
    #[must_use]
    pub fn spec(&self) -> String {
        format!(
            "{}:{}:{}:{}",
            self.point.name(),
            self.hit,
            self.torn,
            self.action.name()
        )
    }
}

/// Parse a `MMOC_FUZZ_CRASH`-style plan spec.
///
/// Format: `point[:hit[:torn[:action]]]` — e.g. `backup-commit`,
/// `log-segment-sealed:2:5`, `uring-wave-staged:1:0:ring-death`.
///
/// # Errors
/// Returns a message naming the bad field; callers surface it as a
/// typed configuration error.
pub fn plan_spec(spec: &str) -> Result<CrashPlan, String> {
    let mut parts = spec.split(':');
    let point = CrashPoint::parse(parts.next().unwrap_or(""))?;
    let mut plan = CrashPlan::at(point);
    if let Some(hit) = parts.next() {
        plan.hit = hit
            .parse::<u64>()
            .ok()
            .filter(|&h| h >= 1)
            .ok_or_else(|| format!("bad hit index `{hit}` (want an integer >= 1)"))?;
    }
    if let Some(torn) = parts.next() {
        plan.torn = torn
            .parse::<u64>()
            .map_err(|_| format!("bad torn byte count `{torn}` (want an integer)"))?;
    }
    if let Some(action) = parts.next() {
        plan.action = match action {
            "crash" => CrashAction::Crash,
            "ring-death" => CrashAction::RingDeath,
            other => return Err(format!("unknown crash action `{other}`")),
        };
    }
    if let Some(extra) = parts.next() {
        return Err(format!("trailing spec field `{extra}`"));
    }
    Ok(plan)
}

/// Per-run crash state: the (optional) armed plan plus per-point
/// reach counters and the fired / down latches.
///
/// One `Arc<CrashState>` is shared by every shard of a run, because a
/// simulated crash is process-wide: once any site fires, all shards'
/// disks freeze together.
#[derive(Debug, Default)]
pub struct CrashState {
    plan: Option<CrashPlan>,
    reached: [AtomicU64; N_POINTS],
    fired: AtomicBool,
    down: AtomicBool,
}

impl CrashState {
    /// A disarmed state that only counts reaches (coverage tracking).
    #[must_use]
    pub fn tracking() -> CrashState {
        CrashState::default()
    }

    /// A state armed with `plan`.
    #[must_use]
    pub fn armed(plan: CrashPlan) -> CrashState {
        CrashState {
            plan: Some(plan),
            ..CrashState::default()
        }
    }

    /// The armed plan, if any.
    #[must_use]
    pub fn plan(&self) -> Option<CrashPlan> {
        self.plan
    }

    /// Record that execution reached `point`. Returns the plan when
    /// this reach is the armed point's firing hit — exactly once per
    /// run; the caller applies the site-specific effect and, for
    /// [`CrashAction::Crash`], calls [`CrashState::go_down`].
    pub fn reach(&self, point: CrashPoint) -> Option<CrashPlan> {
        let n = self.reached[point as usize].fetch_add(1, Ordering::AcqRel) + 1;
        let plan = self.plan?;
        if plan.point == point && n == plan.hit && !self.fired.swap(true, Ordering::AcqRel) {
            return Some(plan);
        }
        None
    }

    /// Latch the simulated-kill flag: all instrumented disk mutations
    /// after this instant are suppressed.
    pub fn go_down(&self) {
        self.down.store(true, Ordering::Release);
    }

    /// True once the simulated kill happened — the disk is frozen.
    #[must_use]
    pub fn is_down(&self) -> bool {
        self.down.load(Ordering::Acquire)
    }

    /// True once the armed point has fired.
    #[must_use]
    pub fn fired(&self) -> bool {
        self.fired.load(Ordering::Acquire)
    }

    /// How many times `point` was reached so far.
    #[must_use]
    pub fn reach_count(&self, point: CrashPoint) -> u64 {
        self.reached[point as usize].load(Ordering::Acquire)
    }

    /// Reach counts for all points, in registry order.
    #[must_use]
    pub fn counts(&self) -> [u64; N_POINTS] {
        let mut out = [0u64; N_POINTS];
        for (slot, ctr) in out.iter_mut().zip(&self.reached) {
            *slot = ctr.load(Ordering::Acquire);
        }
        out
    }
}

/// Whether the io_uring writer backend can actually run on this
/// kernel. Re-exported for the fuzzer's coverage accounting (the
/// `uring-*` points are exempt from the must-fire assertion when the
/// ring is unavailable and every io-uring case fell back).
#[must_use]
pub fn ring_available() -> bool {
    crate::uring::ring_available()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip_and_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for p in ALL_POINTS {
            assert!(seen.insert(p.name()), "duplicate name {}", p.name());
            assert_eq!(CrashPoint::parse(p.name()).unwrap(), p);
            assert_eq!(
                ALL_POINTS[p as usize], p,
                "registry order matches discriminant"
            );
        }
        assert!(CrashPoint::parse("no-such-point").is_err());
    }

    #[test]
    fn every_point_has_a_phase_and_compat_set() {
        let mut recovery = 0;
        for p in ALL_POINTS {
            assert!(!p.compat().is_empty());
            assert!(!p.phase().label().is_empty());
            if p.is_recovery_point() {
                recovery += 1;
                assert_eq!(p.phase(), CrashPhase::Recovery);
            }
        }
        assert_eq!(recovery, 4, "replica-fetch + the three PR-10 points");
        assert_eq!(CrashPoint::RecoveryReadImage.phase(), CrashPhase::Recovery);
        assert_eq!(CrashPoint::JobSubmitted.phase(), CrashPhase::Submit);
        assert_eq!(CrashPoint::BackupCommit.phase(), CrashPhase::Complete);
    }

    #[test]
    fn plan_specs_parse_and_round_trip() {
        let p = plan_spec("backup-commit").unwrap();
        assert_eq!(p, CrashPlan::at(CrashPoint::BackupCommit));
        let p = plan_spec("log-segment-sealed:2:5").unwrap();
        assert_eq!(p.hit, 2);
        assert_eq!(p.torn, 5);
        assert_eq!(p.action, CrashAction::Crash);
        let p = plan_spec("uring-wave-staged:1:0:ring-death").unwrap();
        assert_eq!(p.action, CrashAction::RingDeath);
        assert_eq!(plan_spec(&p.spec()).unwrap(), p);
        for bad in [
            "",
            "bogus",
            "backup-commit:0",
            "backup-commit:x",
            "backup-commit:1:y",
            "backup-commit:1:0:explode",
            "backup-commit:1:0:crash:extra",
        ] {
            assert!(plan_spec(bad).is_err(), "spec `{bad}` must be rejected");
        }
    }

    #[test]
    fn armed_state_fires_exactly_once_at_the_hit_index() {
        let s = CrashState::armed(CrashPlan {
            point: CrashPoint::JobSubmitted,
            hit: 3,
            torn: 7,
            action: CrashAction::Crash,
        });
        assert!(s.reach(CrashPoint::JobSubmitted).is_none());
        assert!(s.reach(CrashPoint::CompleteBeforeSync).is_none());
        assert!(s.reach(CrashPoint::JobSubmitted).is_none());
        let fired = s
            .reach(CrashPoint::JobSubmitted)
            .expect("third reach fires");
        assert_eq!(fired.torn, 7);
        assert!(s.fired());
        assert!(!s.is_down(), "down is the caller's move");
        s.go_down();
        assert!(s.is_down());
        assert!(
            s.reach(CrashPoint::JobSubmitted).is_none(),
            "never re-fires"
        );
        assert_eq!(s.reach_count(CrashPoint::JobSubmitted), 4);
        assert_eq!(s.reach_count(CrashPoint::CompleteBeforeSync), 1);
    }

    #[test]
    fn tracking_state_only_counts() {
        let s = CrashState::tracking();
        for _ in 0..5 {
            assert!(s.reach(CrashPoint::DeviceBarrier).is_none());
        }
        assert!(!s.fired());
        assert!(!s.is_down());
        let counts = s.counts();
        assert_eq!(counts[CrashPoint::DeviceBarrier as usize], 5);
        assert_eq!(counts.iter().sum::<u64>(), 5);
    }
}
