//! The unified real engine: all six algorithms as one
//! [`CheckpointBackend`] over real threads, files and `fsync`.
//!
//! Historically this crate hand-rolled a separate mutator/writer
//! orchestration per algorithm (`naive.rs`, `cou.rs`, `partial_redo.rs` —
//! about 1,300 duplicated lines for four of the six algorithms). The
//! orchestration now lives once in [`mmoc_core::driver::TickDriver`]; this
//! module contributes the real-world half:
//!
//! * the **mutator side** of each tick: the query phase (random state
//!   lookups standing in for game logic), applying updates to the
//!   [`Shared`] table with the copy-on-update slow path (lock, re-check,
//!   arena save), and the paced sleep phase;
//! * a **pluggable writer backend** ([`crate::writer`]) executing every
//!   shard's flush jobs against its disk organization — the [`BackupSet`]
//!   double backup (sorted offset-ordered writes) or the [`LogStore`]
//!   (sequential segment appends) — publishing each shard's sweep
//!   frontier for the bookkeeper's copy-on-update decisions. Two backends
//!   exist behind the one seam: the shared worker-thread pool (a
//!   single-shard run with one worker is exactly the old dedicated writer
//!   thread) and the io_uring-style batched-submission engine, selected
//!   by [`RealConfig::writer_backend`] or the builder's `.writer(…)`;
//! * real **durability**: data `fsync` before metadata commit, and a
//!   wall-clock recovery measurement (restore the newest consistent image,
//!   replay the deterministic update stream).
//!
//! Adding the two algorithms the old per-algorithm engines never
//! implemented (Dribble-and-Copy-on-Update, Atomic-Copy-Dirty-Objects)
//! required no new orchestration — they are one-line algorithm choices
//! like the rest, which is the point of the refactor. Experiments reach
//! this engine through the unified builder
//! (`Run::algorithm(alg).engine(real_config).trace(…).execute()`, see
//! [`crate::run`]); the pre-builder free functions were removed after one
//! deprecation release.

use crate::config::RealConfig;
use crate::files::BackupSet;
use crate::log_store::LogStore;
use crate::recovery::{recover_and_replay_log_with, recover_and_replay_with, RecoveryOpts};
use crate::report::{RealReport, RecoveryMeasurement, WriterStats};
use crate::shared::{Shared, SharedTable};
use mmoc_core::driver::{CheckpointBackend, FlushCompletion, TickOps};
#[cfg(test)]
use mmoc_core::run::RunError;
use mmoc_core::{
    Algorithm, Bookkeeper, CellUpdate, CheckpointPlan, CursorKind, DiskOrg, FlushCursor, FlushJob,
    ObjectId, StateGeometry, TraceSource, UpdateOps,
};
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// The stable-storage organization a pool worker writes for one shard.
pub(crate) enum Store {
    /// Two alternating full-size backup files (sorted writes).
    Double(BackupSet),
    /// The append-only checkpoint log.
    Log(LogStore),
}

impl Store {
    /// Attach a crash-point lattice handle to the underlying store
    /// (see [`crate::crash`]); a `None` handle detaches.
    pub(crate) fn attach_crash(&mut self, crash: Option<Arc<crate::crash::CrashState>>) {
        match self {
            Store::Double(set) => set.attach_crash(crash),
            Store::Log(log) => log.attach_crash(crash),
        }
    }

    /// Attach a transient-fault failpoint handle to the underlying
    /// store (see [`crate::fault`]); a `None` handle detaches.
    pub(crate) fn attach_fault(&mut self, fault: Option<Arc<crate::fault::FaultState>>) {
        match self {
            Store::Double(set) => set.attach_fault(fault),
            Store::Log(log) => log.attach_fault(fault),
        }
    }
}

/// Create a shard's store under `dir`, pre-loading the complete initial
/// (zeroed) state — the boot-time load the bookkeeping assumes.
pub(crate) fn create_store(
    dir: &Path,
    geometry: StateGeometry,
    disk_org: DiskOrg,
) -> io::Result<Store> {
    let n = geometry.n_objects();
    let initial = vec![0u8; n as usize * geometry.object_size as usize];
    Ok(match disk_org {
        DiskOrg::DoubleBackup => Store::Double(BackupSet::create(dir, geometry, &initial)?),
        DiskOrg::Log => {
            let mut log = LogStore::create(dir, geometry)?;
            let obj_size = geometry.object_size as usize;
            log.append_segment(
                0,
                0,
                true,
                (0..n).map(|i| (ObjectId(i), &initial[i as usize * obj_size..][..obj_size])),
                true,
            )?;
            Store::Log(log)
        }
    })
}

/// One checkpoint's flush job, handed to the writer backend.
/// (`Clone` is test-only: the differential writer tests replay one
/// deterministic job stream through every backend.)
#[cfg_attr(test, derive(Clone))]
pub(crate) enum Job {
    /// Write a privately buffered eager copy (`Write-Copies-To-Stable-
    /// Storage`): no coordination with the mutator is needed.
    Eager {
        /// Object ids in increasing order.
        ids: Vec<u32>,
        /// `ids.len() * object_size` bytes, one image per id.
        data: Vec<u8>,
        seq: u64,
        tick: u64,
        target: usize,
        /// The segment holds the complete state (log recovery anchor).
        full_image: bool,
    },
    /// Sweep live objects (`Write-Objects-To-Stable-Storage`) under the
    /// copy-on-update protocol, publishing the frontier as it goes.
    Sweep {
        /// Object ids in increasing order.
        list: Vec<u32>,
        /// How the published frontier is denominated (object index vs.
        /// position in `list`).
        cursor: CursorKind,
        seq: u64,
        tick: u64,
        target: usize,
        full_image: bool,
    },
}

/// Writer → mutator completion report.
pub(crate) struct Done {
    pub(crate) result: io::Result<f64>,
    pub(crate) objects: u32,
    pub(crate) bytes: u64,
    /// Eager-job buffers handed back for reuse, so steady-state eager
    /// checkpoints allocate nothing on the mutator thread.
    pub(crate) recycled: Option<(Vec<u32>, Vec<u8>)>,
    /// Data `fsync` calls attributed to this job by the durability
    /// scheduler (0 when riding a coalesced call or syncing is off, so
    /// the per-job sum is the true call count).
    pub(crate) data_syncs: u32,
    /// `syncfs`-style whole-device barriers attributed to this job (0
    /// when riding another job's barrier or the barrier is off).
    pub(crate) device_syncs: u32,
    /// Occupancy of the batch this job completed in (1 for the pool).
    pub(crate) batch_jobs: u32,
    /// SQEs in the ring submission round that carried this job's data
    /// writes (0 for the syscall-per-write backends), reporting how well
    /// the io_uring backend packs the ring.
    pub(crate) sqe_batch: u32,
    /// Retry attempts the writer spent on this job's transient I/O
    /// faults (re-issued writes / fsyncs / meta commits).
    pub(crate) retries: u64,
    /// Operations of this job whose retry budget ran out.
    pub(crate) retry_exhausted: u64,
    /// The job completed through the degradation ladder (io_uring's
    /// synchronous redo after the ring's dead flag latched).
    pub(crate) degraded: bool,
}

/// Per-shard execution ordering for fungible pool workers. Jobs of one
/// shard must hit the store in submission order — under checkpoint
/// pipelining two of a shard's jobs can sit in the queue at once, and
/// two workers could otherwise race them into the store out of order
/// (interleaving log segments, acking completions backwards). Each job
/// carries its shard-local submission index ([`PoolJob::order`]); a
/// worker waits its turn before touching the store and advances the
/// gate after acking. At pipeline depth 1 the gate never waits.
pub(crate) struct TurnGate {
    // std::sync directly: the workspace's parking_lot shim has no Condvar.
    turn: std::sync::Mutex<u64>,
    ready: std::sync::Condvar,
}

impl TurnGate {
    pub(crate) fn new() -> Self {
        TurnGate {
            turn: std::sync::Mutex::new(0),
            ready: std::sync::Condvar::new(),
        }
    }

    /// Block until it is `order`'s turn to execute.
    pub(crate) fn wait_for(&self, order: u64) {
        let mut turn = self.turn.lock().unwrap_or_else(|e| e.into_inner());
        while *turn != order {
            turn = self.ready.wait(turn).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// The current job is fully acked; release the next one.
    pub(crate) fn advance(&self) {
        *self.turn.lock().unwrap_or_else(|e| e.into_inner()) += 1;
        self.ready.notify_all();
    }
}

/// Everything a pool worker needs to execute one shard's flush jobs: the
/// shard's store (a mutex because workers are fungible; contended only
/// when pipelining queues several of the shard's checkpoints at once),
/// its shared table/protocol state, and its frontier + completion
/// channel.
pub(crate) struct ShardCtx {
    pub(crate) store: parking_lot::Mutex<Store>,
    pub(crate) shared: Arc<Shared>,
    pub(crate) frontier: Arc<AtomicU64>,
    pub(crate) geometry: StateGeometry,
    pub(crate) sync_data: bool,
    pub(crate) done_tx: crossbeam::channel::Sender<Done>,
    pub(crate) turn: TurnGate,
    /// Crash-point lattice handle shared by the whole run (`None` in
    /// production): writer backends consult it at their scheduler
    /// seams; the stores inside [`ShardCtx::store`] carry their own
    /// clone for the mutation sites.
    pub(crate) crash: Option<Arc<crate::crash::CrashState>>,
    /// Transient-fault failpoints shared by the whole run (`None` in
    /// production): the io_uring backend consults it at the CQE seam;
    /// the stores inside [`ShardCtx::store`] carry their own clone for
    /// the syscall sites.
    pub(crate) fault: Option<Arc<crate::fault::FaultState>>,
    /// Bounded retry policy for transient I/O faults, applied by every
    /// writer backend around the store's fallible operations.
    pub(crate) retry: crate::fault::RetryPolicy,
    /// Replica tier shared by the whole run (`None` when replication is
    /// off): the completion seam pushes each committed checkpoint delta
    /// to the shard's peer mirrors (publish-on-commit).
    pub(crate) replicas: Option<Arc<crate::replica::ReplicaSet>>,
}

/// A flush job tagged with the shard it belongs to and the instant the
/// mutator handed it to the writer. Every backend backdates the job's
/// duration clock to `queued_at`, so reported checkpoint durations and
/// ack latencies span the full queue wait — the pool's channel wait and
/// the batched engine's adaptive-window hold alike — measured the same
/// way under every scheduler.
pub(crate) struct PoolJob {
    pub(crate) shard: usize,
    pub(crate) job: Job,
    pub(crate) queued_at: Instant,
    /// Shard-local submission index (0, 1, 2, …), consumed by the
    /// pool's [`TurnGate`] to keep same-shard jobs in order.
    pub(crate) order: u64,
}

/// The mutator-side backend the [`mmoc_core::TickDriver`] (or, across
/// shards, the [`mmoc_core::ShardedDriver`]) drives: one per shard.
pub(crate) struct RealBackend {
    config: RealConfig,
    geometry: StateGeometry,
    shard: usize,
    shared: Arc<Shared>,
    frontier: Arc<AtomicU64>,
    /// `None` after [`RealBackend::release_writer`]: the backend's clone
    /// of the pool's job sender, dropped so the pool can wind down.
    job_tx: Option<crossbeam::channel::Sender<PoolJob>>,
    done_rx: crossbeam::channel::Receiver<Done>,
    /// Query-phase RNG state and sink (prevents the loop optimizing away).
    rng_state: u64,
    query_sink: u64,
    /// Wall-clock start of the current tick (pacing).
    tick_start: Instant,
    /// Copy-on-update slow-path time accumulated this tick.
    slow_path_s: f64,
    /// Recycled eager-copy buffers (ids, data), cycled through the
    /// writer so the steady state allocates nothing per checkpoint.
    spare: Option<(Vec<u32>, Vec<u8>)>,
    /// Writer-side durability instrumentation accumulated from this
    /// shard's completions (fsync calls, batch occupancy).
    writer_stats: WriterStats,
    /// Shard-local submission counter stamping [`PoolJob::order`].
    jobs_sent: u64,
}

impl RealBackend {
    fn send(&mut self, job: Job) {
        if let Some(c) = &self.config.crash {
            // The job is enqueued either way: the simulated kill lands
            // at the handoff, before any writer thread touches disk.
            if c.reach(crate::crash::CrashPoint::JobEnqueued).is_some() {
                c.go_down();
            }
        }
        let order = self.jobs_sent;
        self.jobs_sent += 1;
        self.job_tx
            .as_ref()
            .expect("writer pool running")
            .send(PoolJob {
                shard: self.shard,
                job,
                queued_at: Instant::now(),
                order,
            })
            .expect("writer pool alive");
    }

    /// Drop this backend's job sender so the pool can shut down.
    pub(crate) fn release_writer(&mut self) {
        self.job_tx = None;
    }

    /// Fold one completion's writer instrumentation into the shard's
    /// running stats.
    fn note_done(&mut self, done: &Done) {
        let s = &mut self.writer_stats;
        s.flush_jobs += 1;
        s.data_fsyncs += u64::from(done.data_syncs);
        s.device_syncs += u64::from(done.device_syncs);
        s.batch_jobs_sum += u64::from(done.batch_jobs);
        s.max_batch_jobs = s.max_batch_jobs.max(done.batch_jobs);
        s.bytes_written += done.bytes;
        s.sqe_batch_sum += u64::from(done.sqe_batch);
        s.max_sqe_batch = s.max_sqe_batch.max(done.sqe_batch);
        s.retries += done.retries;
        s.retry_exhausted += done.retry_exhausted;
        s.degraded_jobs += u64::from(done.degraded);
    }

    /// The shard's accumulated writer instrumentation.
    pub(crate) fn writer_stats(&self) -> WriterStats {
        self.writer_stats
    }
}

impl Drop for RealBackend {
    fn drop(&mut self) {
        std::hint::black_box(self.query_sink);
    }
}

impl CheckpointBackend for RealBackend {
    type Error = io::Error;

    fn begin_tick(&mut self, _tick: u64) -> io::Result<()> {
        self.tick_start = Instant::now();
        self.slow_path_s = 0.0;
        // Query phase: random state lookups standing in for game logic.
        for _ in 0..self.config.query_ops_per_tick {
            self.rng_state = self
                .rng_state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1);
            let row = (self.rng_state >> 33) as u32 % self.geometry.rows;
            let col = (self.rng_state >> 13) as u32 % self.geometry.cols;
            self.query_sink ^= u64::from(self.shared.table.read_cell(row, col));
        }
        Ok(())
    }

    fn cursor(&mut self) -> FlushCursor {
        FlushCursor::at(self.frontier.load(Ordering::Acquire))
    }

    fn apply_update(
        &mut self,
        update: CellUpdate,
        obj: ObjectId,
        ops: UpdateOps,
    ) -> io::Result<()> {
        if ops.copy {
            // First touch of an unflushed flush-set member (per the
            // tick-start frontier): run the real slow path. The flushed
            // bit is re-checked, without and then with the lock, because
            // the writer races ahead of the frontier snapshot.
            let t0 = Instant::now();
            if !self.shared.flushed.get(obj.0) {
                let _guard = self.shared.locks[obj.index()].lock();
                if !self.shared.flushed.get(obj.0) {
                    self.shared.save_to_arena(obj);
                    self.shared.copied.set(obj.0);
                }
            }
            self.slow_path_s += t0.elapsed().as_secs_f64();
        }
        self.shared.table.write_cell(update);
        Ok(())
    }

    fn end_updates(&mut self, _bk: &Bookkeeper, ops: &TickOps) -> io::Result<f64> {
        // The slow path is timed directly; dirty-bit maintenance is priced
        // at the calibrated per-bit cost because individually timing a
        // ~2 ns bit operation with a ~20 ns clock read would swamp it.
        Ok(self.slow_path_s + ops.bit_ops as f64 * self.config.bit_test_cost_s)
    }

    fn poll_completion(&mut self, _bk: &Bookkeeper) -> io::Result<Option<FlushCompletion>> {
        match self.done_rx.try_recv() {
            Ok(mut done) => {
                self.note_done(&done);
                if done.recycled.is_some() {
                    self.spare = done.recycled.take();
                }
                Ok(Some(FlushCompletion {
                    duration_s: done.result?,
                    objects_written: done.objects,
                    bytes_written: done.bytes,
                }))
            }
            Err(_) => Ok(None),
        }
    }

    fn start_checkpoint(
        &mut self,
        bk: &Bookkeeper,
        plan: &CheckpointPlan,
        tick: u64,
    ) -> io::Result<f64> {
        let n = self.geometry.n_objects();
        let full_image = plan.flush.objects() == n;
        let target = bk.target_backup();
        if bk.sweep_slots().is_some() {
            // Sweep job: the writer reads live state under the protocol.
            let FlushJob::Sweep { cursor, .. } = plan.flush else {
                unreachable!("sweep slots imply a sweep flush job")
            };
            self.shared.reset_for_checkpoint();
            self.frontier.store(0, Ordering::Release);
            self.send(Job::Sweep {
                list: bk.flush_set().ones(),
                cursor,
                seq: plan.seq,
                tick,
                target,
                full_image,
            });
            Ok(0.0)
        } else {
            // Eager job: `Copy-To-Memory` is the synchronous pause this
            // algorithm inflicts on the game loop. Buffer bookkeeping
            // stays outside the timed window — only the copy itself is
            // the pause the paper's ΔTsync models.
            let (mut ids, mut data) = self.spare.take().unwrap_or_default();
            ids.clear();
            ids.extend(bk.flush_set().iter_ones());
            let obj_size = self.geometry.object_size as usize;
            data.resize(ids.len() * obj_size, 0);
            let p0 = Instant::now();
            for (i, &id) in ids.iter().enumerate() {
                self.shared
                    .table
                    .read_object_into(ObjectId(id), &mut data[i * obj_size..][..obj_size]);
            }
            let sync_pause = p0.elapsed().as_secs_f64();
            self.send(Job::Eager {
                ids,
                data,
                seq: plan.seq,
                tick,
                target,
                full_image,
            });
            Ok(sync_pause)
        }
    }

    fn end_tick(&mut self, _tick: u64) -> io::Result<()> {
        if self.config.paced {
            let elapsed = self.tick_start.elapsed();
            if elapsed < self.config.tick_period {
                std::thread::sleep(self.config.tick_period.saturating_sub(elapsed));
            }
        }
        Ok(())
    }

    fn drain(&mut self, _bk: &Bookkeeper) -> io::Result<Option<FlushCompletion>> {
        let done = self.done_rx.recv().expect("writer alive");
        self.note_done(&done);
        Ok(Some(FlushCompletion {
            duration_s: done.result?,
            objects_written: done.objects,
            bytes_written: done.bytes,
        }))
    }
}

/// Build one shard's backend + context pair. `n_shards` scales the query
/// phase (the total game-logic read load stays fixed as the world is
/// split) and decorrelates the per-shard query RNG; shard 0 of a
/// single-shard run reproduces the historical single-engine stream
/// exactly.
#[allow(clippy::too_many_arguments)]
pub(crate) fn make_shard(
    algorithm: Algorithm,
    config: &RealConfig,
    geometry: StateGeometry,
    shard: usize,
    n_shards: usize,
    dir: &Path,
    job_tx: crossbeam::channel::Sender<PoolJob>,
    replicas: Option<Arc<crate::replica::ReplicaSet>>,
) -> io::Result<(ShardCtx, RealBackend)> {
    let spec = algorithm.spec();
    // Only algorithms that ever run a sweep (copy-on-update handlers, or
    // the partial-redo family's Dribble-style full flushes) need the
    // copy-on-update protocol state; purely-eager algorithms skip the
    // state-sized arena and the per-object locks.
    let sweeps =
        spec.copy_timing == mmoc_core::CopyTiming::OnUpdate || spec.full_flush_period.is_some();
    let shared = Arc::new(Shared::with_protocol(SharedTable::new(geometry), sweeps));
    let mut store = create_store(dir, geometry, spec.disk_org)?;
    store.attach_crash(config.crash.clone());
    store.attach_fault(config.fault.clone());
    let frontier = Arc::new(AtomicU64::new(0));
    // The completion channel must hold one ack per in-flight checkpoint,
    // or a worker acking checkpoint N would block the mutator from ever
    // polling (deadlock at pipeline depth > 1).
    let depth = config.pipeline_depth.max(1) as usize;
    let (done_tx, done_rx) = crossbeam::channel::bounded::<Done>(depth);

    let mut shard_config = config.clone();
    // Pacing is a per-world concern (one sleep per global tick); a
    // multi-shard run executes its shards back to back on the mutator
    // thread, so only the single-shard configuration keeps it.
    shard_config.paced = config.paced && n_shards == 1;
    shard_config.query_ops_per_tick = config.query_ops_per_tick / n_shards as u32;

    let ctx = ShardCtx {
        store: parking_lot::Mutex::new(store),
        shared: Arc::clone(&shared),
        frontier: Arc::clone(&frontier),
        geometry,
        sync_data: config.sync_data,
        done_tx,
        turn: TurnGate::new(),
        crash: config.crash.clone(),
        fault: config.fault.clone(),
        retry: config.retry_policy(),
        replicas,
    };
    let backend = RealBackend {
        config: shard_config,
        geometry,
        shard,
        shared,
        frontier,
        job_tx: Some(job_tx),
        done_rx,
        rng_state: 0x9E37_79B9 ^ plan_seed(algorithm) ^ shard_seed(shard),
        query_sink: 0,
        tick_start: Instant::now(),
        slow_path_s: 0.0,
        spare: None,
        writer_stats: WriterStats::default(),
        jobs_sent: 0,
    };
    Ok((ctx, backend))
}

/// Live-state fingerprint of a backend's shard (for recovery checks).
pub(crate) fn live_fingerprint(backend: &RealBackend) -> u64 {
    backend.shared.table.fingerprint()
}

/// Assemble one shard's [`RealReport`] from its driver run.
pub(crate) fn shard_report(
    algorithm: Algorithm,
    run: mmoc_core::DriverRun,
    writer: WriterStats,
    recovery: Option<RecoveryMeasurement>,
) -> RealReport {
    RealReport {
        algorithm,
        ticks: run.ticks,
        updates: run.updates,
        checkpoints_completed: run.metrics.checkpoints.len() as u64,
        avg_overhead_s: run.metrics.avg_overhead_s(),
        max_overhead_s: run.metrics.max_overhead_s(),
        avg_checkpoint_s: run.metrics.avg_checkpoint_s(),
        metrics: run.metrics,
        writer,
        recovery,
    }
}

/// The single-shard specialization of
/// [`crate::sharded::run_sharded_impl`]: one shard served by a writer of
/// one. Used by in-crate tests; experiments go through the `Run` builder.
#[cfg(test)]
pub(crate) fn run_single<S, F>(
    algorithm: Algorithm,
    config: &RealConfig,
    make_trace: F,
) -> Result<RealReport, RunError>
where
    S: TraceSource,
    F: Fn() -> S + Sync,
{
    let mut report = crate::sharded::run_sharded_impl(algorithm, config, 1, false, make_trace)?;
    Ok(report.shards.remove(0))
}

/// A per-algorithm constant decorrelating the query phases of different
/// algorithms run over the same trace.
fn plan_seed(algorithm: Algorithm) -> u64 {
    algorithm as u64 ^ 0xFACE_BEEF
}

/// A per-shard constant decorrelating shard query phases; zero for shard
/// 0, so single-shard runs reproduce the historical stream.
fn shard_seed(shard: usize) -> u64 {
    (shard as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93)
}

/// Measure one real crash recovery of one shard (or the whole world, for
/// single-shard runs): restore the newest consistent image from the
/// organization's files under `dir`, replay the stream, compare
/// fingerprints.
#[allow(clippy::too_many_arguments)]
pub(crate) fn measure_recovery<S: TraceSource>(
    disk_org: DiskOrg,
    dir: &Path,
    geometry: StateGeometry,
    trace: &mut S,
    crash_tick: u64,
    live_fingerprint: u64,
    opts: &RecoveryOpts,
) -> io::Result<RecoveryMeasurement> {
    let rec = match disk_org {
        DiskOrg::DoubleBackup => recover_and_replay_with(dir, geometry, trace, crash_tick, opts)?,
        DiskOrg::Log => recover_and_replay_log_with(dir, geometry, trace, crash_tick, opts)?,
    };
    Ok(RecoveryMeasurement {
        restore_s: rec.restore_s,
        replay_s: rec.replay_s,
        total_s: rec.restore_s + rec.replay_s,
        restored_from_tick: rec.from_tick,
        ticks_replayed: rec.ticks_replayed,
        updates_replayed: rec.updates_replayed,
        state_matches: rec.table.fingerprint() == live_fingerprint,
        from_replica: false,
    })
}

/// Tiered single-shard recovery: try the replica tier first (a memcpy of
/// a peer mirror plus a bounded tail replay), fall back to the disk path
/// when replication is off or no mirror is complete. The replica fetch
/// consumes nothing from `trace` on a miss, so the fallback replays from
/// an untouched cursor.
#[allow(clippy::too_many_arguments)]
pub(crate) fn measure_recovery_tiered<S: TraceSource>(
    disk_org: DiskOrg,
    dir: &Path,
    geometry: StateGeometry,
    trace: &mut S,
    crash_tick: u64,
    live_fingerprint: u64,
    replicas: Option<&crate::replica::ReplicaSet>,
    shard: u32,
    opts: &RecoveryOpts,
) -> io::Result<RecoveryMeasurement> {
    if let Some(set) = replicas {
        if let Some(rec) =
            crate::recovery::recover_from_replica(set, shard, geometry, trace, crash_tick, opts)
        {
            let rec = rec?;
            return Ok(RecoveryMeasurement {
                restore_s: rec.restore_s,
                replay_s: rec.replay_s,
                total_s: rec.restore_s + rec.replay_s,
                restored_from_tick: rec.from_tick,
                ticks_replayed: rec.ticks_replayed,
                updates_replayed: rec.updates_replayed,
                state_matches: rec.table.fingerprint() == live_fingerprint,
                from_replica: true,
            });
        }
    }
    measure_recovery(
        disk_org,
        dir,
        geometry,
        trace,
        crash_tick,
        live_fingerprint,
        opts,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmoc_workload::SyntheticConfig;

    fn config(dir: &std::path::Path) -> RealConfig {
        let mut c = RealConfig::new(dir);
        c.query_ops_per_tick = 64;
        c
    }

    fn trace_config() -> SyntheticConfig {
        SyntheticConfig {
            geometry: StateGeometry::test_small(),
            ticks: 50,
            updates_per_tick: 300,
            skew: 0.7,
            seed: 4242,
        }
    }

    /// The acceptance criterion of the refactor: every algorithm runs on
    /// the real engine through the shared driver and recovers exactly.
    #[test]
    fn all_six_algorithms_run_and_recover() {
        for alg in Algorithm::ALL {
            let dir = tempfile::tempdir().unwrap();
            let report = run_single(alg, &config(dir.path()), || trace_config().build())
                .unwrap_or_else(|e| panic!("{alg}: {e}"));
            assert_eq!(report.algorithm, alg);
            assert_eq!(report.ticks, 50);
            assert_eq!(report.updates, 50 * 300);
            assert!(report.checkpoints_completed > 0, "{alg}");
            let rec = report.recovery.expect("recovery measured");
            assert!(rec.state_matches, "{alg}: recovered state diverged");
        }
    }

    /// Dirty-only algorithms write partial checkpoints; full-state
    /// algorithms always write everything.
    #[test]
    fn write_set_sizes_match_the_design_space() {
        let g = trace_config().geometry;
        for alg in Algorithm::ALL {
            let dir = tempfile::tempdir().unwrap();
            let report = run_single(alg, &config(dir.path()).without_recovery(), || {
                trace_config().build()
            })
            .unwrap();
            let spec = alg.spec();
            for c in &report.metrics.checkpoints {
                assert!(c.objects_written <= g.n_objects(), "{alg}");
                if spec.objects_copied == mmoc_core::ObjectsCopied::All || c.full_flush {
                    assert_eq!(c.objects_written, g.n_objects(), "{alg} seq {}", c.seq);
                }
            }
            if spec.objects_copied == mmoc_core::ObjectsCopied::Dirty {
                assert!(
                    report
                        .metrics
                        .checkpoints
                        .iter()
                        .any(|c| c.objects_written < g.n_objects()),
                    "{alg}: 300 updates/tick over 512 objects must leave clean objects"
                );
            }
        }
    }

    /// Eager algorithms pay synchronous pauses; copy-on-update algorithms
    /// pay copies instead.
    #[test]
    fn overhead_shapes_match_copy_timing() {
        for alg in Algorithm::ALL {
            let dir = tempfile::tempdir().unwrap();
            let report = run_single(alg, &config(dir.path()).without_recovery(), || {
                trace_config().build()
            })
            .unwrap();
            let spec = alg.spec();
            let pauses: f64 = report.metrics.ticks.iter().map(|t| t.sync_pause_s).sum();
            let copies: u64 = report.metrics.ticks.iter().map(|t| t.copies).sum();
            match spec.copy_timing {
                mmoc_core::CopyTiming::Eager => {
                    assert!(pauses > 0.0, "{alg}: eager methods must pause");
                }
                mmoc_core::CopyTiming::OnUpdate => {
                    assert!(copies > 0, "{alg}: copy-on-update methods must copy");
                    // Partial-redo full flushes are the only sweeps with a
                    // pause, and they have none either.
                    assert_eq!(pauses, 0.0, "{alg}: no eager pauses allowed");
                }
            }
        }
    }

    /// Torture the mutator/writer protocol: a hot workload where the same
    /// objects are updated every tick while the writer flushes.
    #[test]
    fn recovery_correct_under_hot_contention_for_sweep_algorithms() {
        for alg in [
            Algorithm::DribbleAndCopyOnUpdate,
            Algorithm::CopyOnUpdate,
            Algorithm::CopyOnUpdatePartialRedo,
        ] {
            let dir = tempfile::tempdir().unwrap();
            let cfg = SyntheticConfig {
                geometry: StateGeometry::test_hot(), // tiny: everything is hot
                ticks: 200,
                updates_per_tick: 500,
                skew: 0.99,
                seed: 5,
            };
            let report = run_single(alg, &config(dir.path()), || cfg.build()).unwrap();
            let rec = report.recovery.expect("recovery measured");
            assert!(rec.state_matches, "{alg}: hot-contention recovery diverged");
            assert!(report.checkpoints_completed > 1, "{alg}");
        }
    }
}
