//! The double-backup checkpoint files.
//!
//! Salem and Garcia-Molina's organization (§3.2): two full-size backup
//! files that checkpoints alternate between, so at least one consistent
//! image exists at all times. Every atomic object has a fixed offset
//! (`object_id × object_size`) and dirty objects are written in increasing
//! offset order (the "sorted I/O" optimization the paper calls crucial).
//!
//! Durability protocol: data writes are flushed with `fsync` *before* the
//! small metadata file naming the backup's consistent tick is rewritten,
//! so a crash mid-checkpoint leaves the other backup's metadata (and thus
//! a consistent image) intact.

use crate::crash::{CrashPoint, CrashState};
use crate::fault::{FaultKind, FaultSite, FaultState};
use mmoc_core::{ObjectId, StateGeometry};
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::Arc;

const META_MAGIC: u64 = 0x4d4d_4f43_4d45_5441; // "MMOCMETA"

/// Stable identity of an on-disk durability target: the `(device, inode)`
/// pair of the file a data `fsync` would flush. The batched writer's
/// durability scheduler collects every pending target in a batch and
/// issues **one** data sync per distinct identity — two handles naming
/// the same underlying file (however they were opened) coalesce into one
/// `fsync` call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SyncTarget {
    dev: u64,
    ino: u64,
}

impl SyncTarget {
    /// Identity of an open file, from its metadata.
    pub fn of(file: &File) -> io::Result<SyncTarget> {
        use std::os::unix::fs::MetadataExt;
        let meta = file.metadata()?;
        Ok(SyncTarget {
            dev: meta.dev(),
            ino: meta.ino(),
        })
    }

    /// The device the target lives on. Targets sharing a device can be
    /// flushed together by one `syncfs`-style whole-device barrier.
    pub fn dev(&self) -> u64 {
        self.dev
    }
}

/// One backup file plus its consistency metadata.
#[derive(Debug)]
pub struct Backup {
    file: File,
    meta_path: PathBuf,
    /// Tick this backup is consistent as of, if it holds a complete image.
    consistent_tick: Option<u64>,
    /// Cached identity of `file` (stable for the open handle's lifetime),
    /// so the durability scheduler's dedupe costs no syscall per job.
    sync_target: SyncTarget,
}

/// A pair of alternating backups.
#[derive(Debug)]
pub struct BackupSet {
    backups: [Backup; 2],
    geometry: StateGeometry,
    /// Crash-point lattice handle (see [`crate::crash`]): `None` in
    /// production. Once the armed point fires and the state goes
    /// down, every mutation below freezes the files as a process
    /// kill would have left them.
    crash: Option<Arc<CrashState>>,
    /// Transient-fault failpoints (see [`crate::fault`]): `None` in
    /// production. Consulted at every syscall seam below; an injected
    /// fault returns an error (after a short write's partial effect)
    /// and the writer's retry policy re-invokes the operation.
    fault: Option<Arc<FaultState>>,
}

impl BackupSet {
    /// Create (or overwrite) a backup pair under `dir`, pre-loading both
    /// files with `initial` (the state at tick 0) — the boot-time load the
    /// bookkeeping assumes.
    pub fn create(dir: &Path, geometry: StateGeometry, initial: &[u8]) -> io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        let expected = geometry.n_objects() as u64 * u64::from(geometry.object_size);
        assert_eq!(
            initial.len() as u64,
            expected,
            "initial image must be n_objects * object_size bytes"
        );
        let make = |idx: usize| -> io::Result<Backup> {
            let path = dir.join(format!("backup_{idx}.img"));
            let mut file = OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(true)
                .open(&path)?;
            file.write_all(initial)?;
            file.sync_all()?;
            let sync_target = SyncTarget::of(&file)?;
            let mut b = Backup {
                file,
                meta_path: dir.join(format!("backup_{idx}.meta")),
                consistent_tick: None,
                sync_target,
            };
            b.commit(0)?;
            Ok(b)
        };
        Ok(BackupSet {
            backups: [make(0)?, make(1)?],
            geometry,
            crash: None,
            fault: None,
        })
    }

    /// Open an existing backup pair for recovery.
    pub fn open(dir: &Path, geometry: StateGeometry) -> io::Result<Self> {
        let make = |idx: usize| -> io::Result<Backup> {
            let path = dir.join(format!("backup_{idx}.img"));
            let file = OpenOptions::new().read(true).write(true).open(&path)?;
            let meta_path = dir.join(format!("backup_{idx}.meta"));
            let consistent_tick = read_meta(&meta_path);
            let sync_target = SyncTarget::of(&file)?;
            Ok(Backup {
                file,
                meta_path,
                consistent_tick,
                sync_target,
            })
        };
        Ok(BackupSet {
            backups: [make(0)?, make(1)?],
            geometry,
            crash: None,
            fault: None,
        })
    }

    /// The geometry the files were laid out for.
    pub fn geometry(&self) -> &StateGeometry {
        &self.geometry
    }

    /// Attach a crash-point lattice handle. Installed by the engine
    /// right after store creation when the run carries a
    /// [`CrashState`]; production stores never pay more than the
    /// `None` check.
    pub fn attach_crash(&mut self, crash: Option<Arc<CrashState>>) {
        self.crash = crash;
    }

    /// True once a simulated crash froze this store's files.
    fn down(&self) -> bool {
        self.crash.as_ref().is_some_and(|c| c.is_down())
    }

    /// Attach a transient-fault failpoint handle. Installed by the
    /// engine right after store creation when the run carries a
    /// [`FaultState`]; production stores never pay more than the
    /// `None` check.
    pub fn attach_fault(&mut self, fault: Option<Arc<FaultState>>) {
        self.fault = fault;
    }

    /// Consult the transient-fault layer at `site`. `Some(kind)` means
    /// this call must fail with `kind` (after applying a short write's
    /// partial effect at sites that carry a payload).
    fn faulted(&self, site: FaultSite) -> Option<FaultKind> {
        self.fault.as_ref().and_then(|f| f.consult(site))
    }

    /// Write one object's bytes at its fixed offset in backup `idx`.
    /// Callers must write objects in increasing id order for sorted I/O.
    pub fn write_object(&self, idx: usize, obj: ObjectId, data: &[u8]) -> io::Result<()> {
        debug_assert_eq!(data.len(), self.geometry.object_size as usize);
        if let Some(c) = &self.crash {
            if c.is_down() {
                return Ok(());
            }
            if let Some(plan) = c.reach(CrashPoint::BackupWriteObject) {
                // Torn object write: only the first `torn` bytes land.
                let torn = (plan.torn as usize).min(data.len());
                self.backups[idx]
                    .file
                    .write_all_at(&data[..torn], self.geometry.object_offset(obj))?;
                c.go_down();
                return Ok(());
            }
        }
        if let Some(kind) = self.faulted(FaultSite::BackupWrite) {
            if kind == FaultKind::ShortWrite {
                // A short write's partial effect: half the object lands.
                // Retries overwrite the same fixed offset, so the repair
                // is positionally idempotent.
                self.backups[idx]
                    .file
                    .write_all_at(&data[..data.len() / 2], self.geometry.object_offset(obj))?;
            }
            return Err(kind.to_error());
        }
        self.backups[idx]
            .file
            .write_all_at(data, self.geometry.object_offset(obj))
    }

    /// Write the entire image sequentially into backup `idx`
    /// (Naive-Snapshot's flush).
    pub fn write_full(&mut self, idx: usize, image: &[u8]) -> io::Result<()> {
        let mut image = image;
        if let Some(c) = &self.crash {
            if c.is_down() {
                return Ok(());
            }
            if let Some(plan) = c.reach(CrashPoint::BackupWriteObject) {
                // Torn full-image write: a prefix of the image lands.
                image = &image[..(plan.torn as usize).min(image.len())];
                let f = &mut self.backups[idx].file;
                f.seek(SeekFrom::Start(0))?;
                f.write_all(image)?;
                c.go_down();
                return Ok(());
            }
        }
        if let Some(kind) = self.faulted(FaultSite::BackupWrite) {
            if kind == FaultKind::ShortWrite {
                // Half the image lands; the retry rewrites from offset 0.
                let f = &mut self.backups[idx].file;
                f.seek(SeekFrom::Start(0))?;
                f.write_all(&image[..image.len() / 2])?;
            }
            return Err(kind.to_error());
        }
        let f = &mut self.backups[idx].file;
        f.seek(SeekFrom::Start(0))?;
        f.write_all(image)?;
        Ok(())
    }

    /// Flush backup `idx`'s data to stable storage.
    pub fn sync(&self, idx: usize) -> io::Result<()> {
        if self.down() {
            return Ok(());
        }
        if let Some(kind) = self.faulted(FaultSite::BackupSync) {
            return Err(kind.to_error());
        }
        self.backups[idx].file.sync_data()
    }

    /// Identity of backup `idx`'s image file, for the durability
    /// scheduler's per-distinct-file sync deduplication (cached at
    /// create/open — the handle never changes underneath it).
    pub fn sync_target(&self, idx: usize) -> SyncTarget {
        self.backups[idx].sync_target
    }

    /// Raw descriptor of backup `idx`'s image file, for the `syncfs`
    /// device barrier (any fd on the device names it).
    pub fn sync_fd(&self, idx: usize) -> std::os::unix::io::RawFd {
        use std::os::unix::io::AsRawFd;
        self.backups[idx].file.as_raw_fd()
    }

    /// Declare backup `idx` consistent as of `tick` (writes and syncs the
    /// metadata file; call only after [`BackupSet::sync`]).
    pub fn commit(&mut self, idx: usize, tick: u64) -> io::Result<()> {
        if let Some(c) = &self.crash {
            if c.is_down() {
                return Ok(());
            }
            if let Some(plan) = c.reach(CrashPoint::BackupCommit) {
                // Torn metadata commit: a short, unsynced meta file —
                // recovery must reject it (magic + length guards).
                let mut bytes = Vec::with_capacity(16);
                bytes.extend_from_slice(&META_MAGIC.to_le_bytes());
                bytes.extend_from_slice(&tick.to_le_bytes());
                bytes.truncate((plan.torn as usize).min(bytes.len()));
                let mut f = File::create(&self.backups[idx].meta_path)?;
                f.write_all(&bytes)?;
                c.go_down();
                return Ok(());
            }
        }
        if let Some(kind) = self.faulted(FaultSite::BackupCommit) {
            // The meta file is untouched, so the previous commit (or the
            // invalidation) still stands; a retry rewrites it whole.
            return Err(kind.to_error());
        }
        self.backups[idx].commit(tick)
    }

    /// Invalidate backup `idx` (done right before overwriting it, so a
    /// crash mid-write cannot restore a torn image).
    pub fn invalidate(&mut self, idx: usize) -> io::Result<()> {
        if self.down() {
            return Ok(());
        }
        self.backups[idx].consistent_tick = None;
        match std::fs::remove_file(&self.backups[idx].meta_path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }?;
        if let Some(c) = &self.crash {
            // The crash lands *after* the invalidate took effect: the
            // write window is open and the old image is already gone.
            if c.reach(CrashPoint::BackupInvalidate).is_some() {
                c.go_down();
            }
        }
        Ok(())
    }

    /// The backup holding the newest consistent image, if any:
    /// `(index, consistent_tick)`.
    pub fn newest_consistent(&self) -> Option<(usize, u64)> {
        let mut best = None;
        for (idx, b) in self.backups.iter().enumerate() {
            if let Some(tick) = b.consistent_tick {
                if best.is_none_or(|(_, t)| tick > t) {
                    best = Some((idx, tick));
                }
            }
        }
        best
    }

    /// Read backup `idx`'s full image (the restore path).
    pub fn read_full(&mut self, idx: usize) -> io::Result<Vec<u8>> {
        if let Some(kind) = self.faulted(FaultSite::ImageRead) {
            return Err(kind.to_error());
        }
        let len = self.geometry.n_objects() as u64 * u64::from(self.geometry.object_size);
        let f = &mut self.backups[idx].file;
        f.seek(SeekFrom::Start(0))?;
        let mut buf = vec![0u8; len as usize];
        f.read_exact(&mut buf)?;
        Ok(buf)
    }
}

impl Backup {
    fn commit(&mut self, tick: u64) -> io::Result<()> {
        let mut bytes = Vec::with_capacity(16);
        bytes.extend_from_slice(&META_MAGIC.to_le_bytes());
        bytes.extend_from_slice(&tick.to_le_bytes());
        // Write-then-rename would be even stronger; a small rewrite +
        // fsync is sufficient here because the magic guards torn metas.
        let mut f = File::create(&self.meta_path)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
        self.consistent_tick = Some(tick);
        Ok(())
    }
}

fn read_meta(path: &Path) -> Option<u64> {
    let mut f = File::open(path).ok()?;
    let mut buf = [0u8; 16];
    f.read_exact(&mut buf).ok()?;
    let magic = u64::from_le_bytes(buf[0..8].try_into().expect("8 bytes"));
    if magic != META_MAGIC {
        return None;
    }
    Some(u64::from_le_bytes(buf[8..16].try_into().expect("8 bytes")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geometry() -> StateGeometry {
        StateGeometry::test_micro() // 4 objects of 64 bytes
    }

    fn image(fill: u8) -> Vec<u8> {
        vec![fill; 4 * 64]
    }

    #[test]
    fn create_preloads_both_backups() {
        let dir = tempfile::tempdir().unwrap();
        let mut set = BackupSet::create(dir.path(), geometry(), &image(7)).unwrap();
        assert_eq!(set.newest_consistent(), Some((0, 0)));
        assert_eq!(set.read_full(0).unwrap(), image(7));
        assert_eq!(set.read_full(1).unwrap(), image(7));
    }

    #[test]
    fn commit_advances_newest() {
        let dir = tempfile::tempdir().unwrap();
        let mut set = BackupSet::create(dir.path(), geometry(), &image(0)).unwrap();
        set.commit(1, 42).unwrap();
        assert_eq!(set.newest_consistent(), Some((1, 42)));
        set.commit(0, 50).unwrap();
        assert_eq!(set.newest_consistent(), Some((0, 50)));
    }

    #[test]
    fn invalidate_falls_back_to_other_backup() {
        let dir = tempfile::tempdir().unwrap();
        let mut set = BackupSet::create(dir.path(), geometry(), &image(0)).unwrap();
        set.commit(1, 42).unwrap();
        set.invalidate(1).unwrap();
        assert_eq!(set.newest_consistent(), Some((0, 0)));
        set.invalidate(0).unwrap();
        assert_eq!(set.newest_consistent(), None);
    }

    #[test]
    fn object_writes_land_at_fixed_offsets() {
        let dir = tempfile::tempdir().unwrap();
        let mut set = BackupSet::create(dir.path(), geometry(), &image(0)).unwrap();
        let data = vec![9u8; 64];
        set.write_object(0, ObjectId(2), &data).unwrap();
        set.sync(0).unwrap();
        let full = set.read_full(0).unwrap();
        assert!(full[..128].iter().all(|&b| b == 0));
        assert!(full[128..192].iter().all(|&b| b == 9));
        assert!(full[192..].iter().all(|&b| b == 0));
    }

    #[test]
    fn reopen_recovers_metadata() {
        let dir = tempfile::tempdir().unwrap();
        {
            let mut set = BackupSet::create(dir.path(), geometry(), &image(3)).unwrap();
            set.commit(1, 99).unwrap();
        }
        let mut set = BackupSet::open(dir.path(), geometry()).unwrap();
        assert_eq!(set.newest_consistent(), Some((1, 99)));
        assert_eq!(set.read_full(1).unwrap(), image(3));
    }

    #[test]
    fn corrupt_meta_is_treated_as_invalid() {
        let dir = tempfile::tempdir().unwrap();
        {
            BackupSet::create(dir.path(), geometry(), &image(0)).unwrap();
        }
        std::fs::write(dir.path().join("backup_0.meta"), b"garbage?").unwrap();
        let set = BackupSet::open(dir.path(), geometry()).unwrap();
        assert_eq!(set.newest_consistent(), Some((1, 0)));
    }

    #[test]
    fn full_write_replaces_image() {
        let dir = tempfile::tempdir().unwrap();
        let mut set = BackupSet::create(dir.path(), geometry(), &image(1)).unwrap();
        set.write_full(0, &image(8)).unwrap();
        set.sync(0).unwrap();
        assert_eq!(set.read_full(0).unwrap(), image(8));
        assert_eq!(set.read_full(1).unwrap(), image(1));
    }
}
