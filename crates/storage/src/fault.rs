//! Transient-fault failpoints: deterministic I/O error injection at the
//! syscall seams, plus the writer's typed retry policy.
//!
//! Where the crash lattice ([`crate::crash`]) models *terminal* faults —
//! a process kill that freezes the disk — this module models the
//! *transient* faults that dominate real serving: an `EIO` that succeeds
//! on retry, an `ENOSPC` burst while the device trims, a short write.
//! The design deliberately mirrors the crash lattice's arm/consult
//! pattern: a seeded [`FaultPlan`] names one [`FaultSite`] (a syscall
//! seam: backup pwrite, backup fsync, meta commit, log append, log
//! fsync, image read, or an io_uring CQE result), the 1-based reach
//! index at which injection starts, the [`FaultKind`] to inject, and a
//! `burst` length — the number of *consecutive* reaches of that site
//! that fail before the fault clears. A per-run [`FaultState`] is
//! threaded through `RealConfig` exactly like `CrashState`; disarmed
//! (production) every consult is one `Option` check.
//!
//! Injection sites only ever *return errors* (after applying a short
//! write's partial effect); they never corrupt unrelated state. Every
//! instrumented operation is positionally idempotent (pwrite at a fixed
//! offset, fsync, whole-segment append checked before any byte lands,
//! whole-image read), so a retry that re-invokes the full operation is
//! always safe. The retry loop itself lives in the writer layer
//! ([`RetryPolicy`], `MMOC_WRITER_RETRY_MAX` / `MMOC_WRITER_RETRY_BACKOFF`):
//! bounded attempts with linear backoff, per-job retry and exhaustion
//! counters surfaced through `WriterStats`, and a graceful-degradation
//! ladder when the budget runs out (see `crate::writer`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A named syscall seam where transient faults can be injected.
///
/// The discriminant order is stable and indexes [`FaultState`]'s
/// per-site reach counters; new sites append at the end.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// A positional data write into a double-backup image file
    /// (`BackupSet::write_object` / `write_full`).
    BackupWrite = 0,
    /// A data `fsync` of a backup image file (`BackupSet::sync`).
    BackupSync = 1,
    /// The 16-byte metadata commit of a double-backup checkpoint
    /// (`BackupSet::commit` — write + sync of the meta file).
    BackupCommit = 2,
    /// A whole-segment append to the checkpoint log
    /// (`LogStore::append_segment`; checked before any byte lands, so
    /// the log length is unchanged and a retry appends cleanly).
    LogAppend = 3,
    /// A data `fsync` of the checkpoint log (`LogStore::sync`).
    LogSync = 4,
    /// A recovery-time image read (`BackupSet::read_full` /
    /// `LogStore::reconstruct`).
    ImageRead = 5,
    /// An io_uring completion-queue entry's result: the reaped CQE
    /// reports a negative errno for a write that was submitted fine.
    UringCqe = 6,
}

/// Number of registered fault sites.
pub const N_SITES: usize = 7;

/// Every registered fault site, in registry (discriminant) order.
pub const ALL_SITES: [FaultSite; N_SITES] = [
    FaultSite::BackupWrite,
    FaultSite::BackupSync,
    FaultSite::BackupCommit,
    FaultSite::LogAppend,
    FaultSite::LogSync,
    FaultSite::ImageRead,
    FaultSite::UringCqe,
];

impl FaultSite {
    /// Stable kebab-case name, used by reproducer lines and the
    /// `MMOC_FAULTS` spec.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::BackupWrite => "backup-write",
            FaultSite::BackupSync => "backup-sync",
            FaultSite::BackupCommit => "backup-commit-meta",
            FaultSite::LogAppend => "log-append",
            FaultSite::LogSync => "log-sync",
            FaultSite::ImageRead => "image-read",
            FaultSite::UringCqe => "uring-cqe",
        }
    }

    /// Parse a registry name back into its site.
    ///
    /// # Errors
    /// Returns the offending name when it matches no registered site.
    pub fn parse(name: &str) -> Result<FaultSite, String> {
        ALL_SITES
            .iter()
            .copied()
            .find(|s| s.name() == name)
            .ok_or_else(|| format!("unknown fault site `{name}`"))
    }

    /// One-line description of the seam.
    #[must_use]
    pub fn describe(self) -> &'static str {
        match self {
            FaultSite::BackupWrite => "positional data write into a backup image",
            FaultSite::BackupSync => "data fsync of a backup image file",
            FaultSite::BackupCommit => "16-byte meta commit (write + sync)",
            FaultSite::LogAppend => "whole-segment append to the checkpoint log",
            FaultSite::LogSync => "data fsync of the checkpoint log",
            FaultSite::ImageRead => "recovery-time image read / log reconstruction",
            FaultSite::UringCqe => "io_uring CQE result (negative errno)",
        }
    }
}

/// The transient error a firing failpoint injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// `EIO` — a generic device error.
    Eio,
    /// `ENOSPC` — the device is (momentarily) out of space.
    Enospc,
    /// A short write: a prefix of the payload lands, then the call
    /// errors (`WriteZero`). Retrying re-issues the full positional
    /// operation, which overwrites the prefix — idempotent by
    /// construction. At non-write sites this behaves like `Eio`.
    ShortWrite,
}

/// Every fault kind, for samplers.
pub const ALL_KINDS: [FaultKind; 3] = [FaultKind::Eio, FaultKind::Enospc, FaultKind::ShortWrite];

impl FaultKind {
    /// Stable spec name (`eio` / `enospc` / `short-write`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Eio => "eio",
            FaultKind::Enospc => "enospc",
            FaultKind::ShortWrite => "short-write",
        }
    }

    /// Parse a spec name back into its kind.
    ///
    /// # Errors
    /// Returns the offending name when it matches no kind.
    pub fn parse(name: &str) -> Result<FaultKind, String> {
        ALL_KINDS
            .iter()
            .copied()
            .find(|k| k.name() == name)
            .ok_or_else(|| format!("unknown fault kind `{name}`"))
    }

    /// The `io::Error` this kind injects.
    #[must_use]
    pub fn to_error(self) -> std::io::Error {
        match self {
            FaultKind::Eio => std::io::Error::from_raw_os_error(libc_eio()),
            FaultKind::Enospc => std::io::Error::from_raw_os_error(libc_enospc()),
            FaultKind::ShortWrite => std::io::Error::new(
                std::io::ErrorKind::WriteZero,
                "injected short write (transient failpoint)",
            ),
        }
    }

    /// The raw errno this kind reports through an io_uring CQE
    /// (`-errno` in the CQE's `res` field).
    #[must_use]
    pub fn errno(self) -> i32 {
        match self {
            FaultKind::Eio | FaultKind::ShortWrite => libc_eio(),
            FaultKind::Enospc => libc_enospc(),
        }
    }
}

const fn libc_eio() -> i32 {
    5
}

const fn libc_enospc() -> i32 {
    28
}

/// A fully specified transient-fault schedule: which seam, starting at
/// which reach, injecting what, for how many consecutive reaches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// The syscall seam to inject at.
    pub site: FaultSite,
    /// 1-based reach index at which injection starts.
    pub hit: u64,
    /// The error to inject.
    pub kind: FaultKind,
    /// Consecutive reaches of the site that fail, starting at `hit`.
    /// A burst no larger than the retry budget is masked entirely by
    /// retries; a larger burst exhausts them and takes the
    /// degradation ladder.
    pub burst: u64,
}

impl FaultPlan {
    /// A single `EIO` at `site`'s first reach.
    #[must_use]
    pub fn at(site: FaultSite) -> FaultPlan {
        FaultPlan {
            site,
            hit: 1,
            kind: FaultKind::Eio,
            burst: 1,
        }
    }

    /// Render as the canonical `site:hit:kind:burst` spec string,
    /// re-parseable by [`fault_spec`].
    #[must_use]
    pub fn spec(&self) -> String {
        format!(
            "{}:{}:{}:{}",
            self.site.name(),
            self.hit,
            self.kind.name(),
            self.burst
        )
    }
}

/// Parse a `MMOC_FAULTS`-style plan spec.
///
/// Format: `site[:hit[:kind[:burst]]]` — e.g. `backup-write`,
/// `log-sync:2:enospc`, `backup-write:1:short-write:3`.
///
/// # Errors
/// Returns a message naming the bad field; callers surface it as a
/// typed configuration error.
pub fn fault_spec(spec: &str) -> Result<FaultPlan, String> {
    let mut parts = spec.split(':');
    let site = FaultSite::parse(parts.next().unwrap_or(""))?;
    let mut plan = FaultPlan::at(site);
    if let Some(hit) = parts.next() {
        plan.hit = hit
            .parse::<u64>()
            .ok()
            .filter(|&h| h >= 1)
            .ok_or_else(|| format!("bad hit index `{hit}` (want an integer >= 1)"))?;
    }
    if let Some(kind) = parts.next() {
        plan.kind = FaultKind::parse(kind)?;
    }
    if let Some(burst) = parts.next() {
        plan.burst = burst
            .parse::<u64>()
            .ok()
            .filter(|&b| b >= 1)
            .ok_or_else(|| format!("bad burst length `{burst}` (want an integer >= 1)"))?;
    }
    if let Some(extra) = parts.next() {
        return Err(format!("trailing spec field `{extra}`"));
    }
    Ok(plan)
}

/// Per-run transient-fault state: the (optional) armed plan plus
/// per-site reach counters and the injected-fault tally.
///
/// One `Arc<FaultState>` is shared by every shard of a run (like
/// [`crate::crash::CrashState`]), threaded through `RealConfig` —
/// never a process global, so parallel tests cannot arm each other.
#[derive(Debug, Default)]
pub struct FaultState {
    plan: Option<FaultPlan>,
    reached: [AtomicU64; N_SITES],
    injected: AtomicU64,
}

impl FaultState {
    /// A disarmed state that only counts reaches (coverage tracking).
    #[must_use]
    pub fn tracking() -> FaultState {
        FaultState::default()
    }

    /// A state armed with `plan`.
    #[must_use]
    pub fn armed(plan: FaultPlan) -> FaultState {
        FaultState {
            plan: Some(plan),
            ..FaultState::default()
        }
    }

    /// The armed plan, if any.
    #[must_use]
    pub fn plan(&self) -> Option<FaultPlan> {
        self.plan
    }

    /// Record that execution reached `site`. Returns the kind to
    /// inject when this reach falls inside the armed plan's burst
    /// window (`hit <= reach < hit + burst`); the caller applies any
    /// partial effect and returns the kind's error. A retry consults
    /// the site again, so a burst of N is cleared by N retries.
    pub fn consult(&self, site: FaultSite) -> Option<FaultKind> {
        let n = self.reached[site as usize].fetch_add(1, Ordering::AcqRel) + 1;
        let plan = self.plan?;
        if plan.site == site && n >= plan.hit && n < plan.hit + plan.burst {
            self.injected.fetch_add(1, Ordering::AcqRel);
            return Some(plan.kind);
        }
        None
    }

    /// Faults injected so far.
    #[must_use]
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Acquire)
    }

    /// How many times `site` was reached so far.
    #[must_use]
    pub fn reach_count(&self, site: FaultSite) -> u64 {
        self.reached[site as usize].load(Ordering::Acquire)
    }
}

/// The writer layer's bounded retry policy for transient I/O faults.
///
/// `max` is the retry budget per operation (0 = no retries: the first
/// error propagates immediately, reproducing the pre-retry engine
/// bit for bit). `backoff` is the base of a linear backoff: attempt
/// `k` sleeps `k × backoff` before re-issuing (zero = spin retry,
/// the test-friendly default).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retry attempts allowed per operation after the first failure.
    pub max: u32,
    /// Linear backoff base between attempts.
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max: 3,
            backoff: Duration::ZERO,
        }
    }
}

impl RetryPolicy {
    /// No retries: errors propagate on first occurrence (the
    /// historical engine).
    #[must_use]
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max: 0,
            backoff: Duration::ZERO,
        }
    }

    /// Run `op`, retrying up to the budget on error with linear
    /// backoff. `counters` accumulates one count per retry *attempt*
    /// and one exhaustion when the budget runs out; threading it
    /// through keeps per-job accounting exact under coalesced
    /// batches.
    pub fn run<T>(
        &self,
        counters: &mut RetryCounters,
        mut op: impl FnMut() -> std::io::Result<T>,
    ) -> std::io::Result<T> {
        let mut attempt = 0u32;
        loop {
            match op() {
                Ok(v) => return Ok(v),
                Err(e) => {
                    if !self.note_failure(&mut attempt, counters) {
                        return Err(e);
                    }
                }
            }
        }
    }

    /// Book one failed attempt: returns `true` when the caller should
    /// retry (after the backoff sleep this performs), `false` when the
    /// budget is exhausted and the error must propagate. For call
    /// sites that cannot express the operation as an [`FnMut`] closure
    /// (the streamed log append returns a borrow of the store).
    pub fn note_failure(&self, attempt: &mut u32, counters: &mut RetryCounters) -> bool {
        if *attempt >= self.max {
            // max == 0 is the historical engine: the error propagates
            // without touching the retry books.
            if self.max > 0 {
                counters.exhausted += 1;
            }
            return false;
        }
        *attempt += 1;
        counters.retries += 1;
        if !self.backoff.is_zero() {
            std::thread::sleep(self.backoff * *attempt);
        }
        true
    }
}

/// Per-job retry accounting threaded through the writer's phase
/// functions into `Done` and summed into `WriterStats`.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RetryCounters {
    /// Retry attempts performed (each re-issue of a failed op).
    pub retries: u64,
    /// Operations whose retry budget ran out (the error propagated
    /// into the degradation ladder).
    pub exhausted: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip_and_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for s in ALL_SITES {
            assert!(seen.insert(s.name()), "duplicate name {}", s.name());
            assert_eq!(FaultSite::parse(s.name()).unwrap(), s);
            assert_eq!(
                ALL_SITES[s as usize], s,
                "registry order matches discriminant"
            );
        }
        assert!(FaultSite::parse("no-such-site").is_err());
        for k in ALL_KINDS {
            assert_eq!(FaultKind::parse(k.name()).unwrap(), k);
        }
    }

    #[test]
    fn fault_specs_parse_and_round_trip() {
        let p = fault_spec("backup-write").unwrap();
        assert_eq!(p, FaultPlan::at(FaultSite::BackupWrite));
        let p = fault_spec("log-sync:2:enospc").unwrap();
        assert_eq!(p.hit, 2);
        assert_eq!(p.kind, FaultKind::Enospc);
        assert_eq!(p.burst, 1);
        let p = fault_spec("backup-write:1:short-write:3").unwrap();
        assert_eq!(p.burst, 3);
        assert_eq!(fault_spec(&p.spec()).unwrap(), p);
        for bad in [
            "",
            "bogus",
            "backup-write:0",
            "backup-write:x",
            "backup-write:1:explode",
            "backup-write:1:eio:0",
            "backup-write:1:eio:2:extra",
        ] {
            assert!(fault_spec(bad).is_err(), "spec `{bad}` must be rejected");
        }
    }

    #[test]
    fn armed_state_injects_exactly_the_burst_window() {
        let s = FaultState::armed(FaultPlan {
            site: FaultSite::BackupSync,
            hit: 2,
            kind: FaultKind::Enospc,
            burst: 2,
        });
        assert!(s.consult(FaultSite::BackupSync).is_none(), "reach 1");
        assert!(s.consult(FaultSite::BackupWrite).is_none(), "other site");
        assert_eq!(
            s.consult(FaultSite::BackupSync),
            Some(FaultKind::Enospc),
            "reach 2 starts the burst"
        );
        assert_eq!(s.consult(FaultSite::BackupSync), Some(FaultKind::Enospc));
        assert!(s.consult(FaultSite::BackupSync).is_none(), "burst cleared");
        assert_eq!(s.injected(), 2);
        assert_eq!(s.reach_count(FaultSite::BackupSync), 4);
    }

    #[test]
    fn injected_errors_carry_the_right_errno() {
        let e = FaultKind::Eio.to_error();
        assert_eq!(e.raw_os_error(), Some(5));
        let e = FaultKind::Enospc.to_error();
        assert_eq!(e.raw_os_error(), Some(28));
        let e = FaultKind::ShortWrite.to_error();
        assert_eq!(e.kind(), std::io::ErrorKind::WriteZero);
    }

    #[test]
    fn retry_masks_bursts_within_budget_and_counts_attempts() {
        let s = FaultState::armed(FaultPlan {
            site: FaultSite::LogSync,
            hit: 1,
            kind: FaultKind::Eio,
            burst: 2,
        });
        let policy = RetryPolicy {
            max: 3,
            backoff: Duration::ZERO,
        };
        let mut c = RetryCounters::default();
        let out = policy.run(&mut c, || match s.consult(FaultSite::LogSync) {
            Some(k) => Err(k.to_error()),
            None => Ok(42),
        });
        assert_eq!(out.unwrap(), 42);
        assert_eq!(c.retries, 2, "two failed reaches, two retries");
        assert_eq!(c.exhausted, 0);
    }

    #[test]
    fn retry_exhaustion_surfaces_the_error_and_counts_it() {
        let s = FaultState::armed(FaultPlan {
            site: FaultSite::BackupWrite,
            hit: 1,
            kind: FaultKind::Eio,
            burst: 10,
        });
        let policy = RetryPolicy {
            max: 2,
            backoff: Duration::ZERO,
        };
        let mut c = RetryCounters::default();
        let out: std::io::Result<()> =
            policy.run(&mut c, || match s.consult(FaultSite::BackupWrite) {
                Some(k) => Err(k.to_error()),
                None => Ok(()),
            });
        assert_eq!(out.unwrap_err().raw_os_error(), Some(5));
        assert_eq!(c.retries, 2);
        assert_eq!(c.exhausted, 1);
    }

    #[test]
    fn zero_budget_is_the_historical_engine() {
        let policy = RetryPolicy::none();
        let mut c = RetryCounters::default();
        let out: std::io::Result<()> =
            policy.run(&mut c, || Err(std::io::Error::other("first failure")));
        assert!(out.is_err());
        assert_eq!(c.retries, 0, "no retry books touched");
        assert_eq!(c.exhausted, 0);
    }

    #[test]
    fn tracking_state_never_injects() {
        let s = FaultState::tracking();
        for _ in 0..5 {
            assert!(s.consult(FaultSite::UringCqe).is_none());
        }
        assert_eq!(s.injected(), 0);
        assert_eq!(s.reach_count(FaultSite::UringCqe), 5);
    }
}
