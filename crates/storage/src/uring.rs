//! Raw-syscall `io_uring` bindings for the checkpoint flush path.
//!
//! The offline build has neither the `io-uring` crate nor `libc`, so this
//! module declares the syscalls and ring mappings it needs directly
//! against the C runtime std already links. The scope is exactly what the
//! [`writer`](crate::writer) module's uring backend uses:
//!
//! * `io_uring_setup(2)` plus the SQ/CQ/SQE `mmap`s (honoring
//!   `IORING_FEAT_SINGLE_MMAP` on kernels ≥ 5.4),
//! * `IORING_OP_WRITEV` / `IORING_OP_FSYNC` / `IORING_OP_NOP` submission
//!   with optional `IOSQE_IO_LINK` chaining,
//! * `io_uring_enter(2)` with `GETEVENTS`, and out-of-order CQE reaping
//!   keyed by `user_data`.
//!
//! Availability mirrors [`crate::device_sync`]: a one-shot NOP round-trip
//! probe latches a process-global verdict, so `ENOSYS`/`EPERM` (seccomp
//! filters, pre-5.1 kernels, hardened containers) permanently fall the
//! writer back to the portable batched backend instead of erroring — the
//! ladder is `io_uring → write/fsync`, never `io_uring → error`.

use std::ffi::{c_int, c_long, c_void};
use std::io;
use std::os::unix::io::RawFd;
use std::sync::atomic::{AtomicU32, AtomicU8, Ordering};

// std already links libc; declaring the handful of symbols we need
// avoids a dependency the offline build doesn't have. `io_uring_setup`
// and `io_uring_enter` have no wrappers even in glibc — they are raw
// `syscall(2)` numbers on every Linux ABI this repo targets (425/426 on
// both x86_64 and aarch64).
extern "C" {
    fn syscall(num: c_long, ...) -> c_long;
    fn mmap(
        addr: *mut c_void,
        length: usize,
        prot: c_int,
        flags: c_int,
        fd: c_int,
        offset: i64,
    ) -> *mut c_void;
    fn munmap(addr: *mut c_void, length: usize) -> c_int;
    fn close(fd: c_int) -> c_int;
    fn pwrite(fd: c_int, buf: *const c_void, count: usize, offset: i64) -> isize;
}

const SYS_IO_URING_SETUP: c_long = 425;
const SYS_IO_URING_ENTER: c_long = 426;

const PROT_READ: c_int = 1;
const PROT_WRITE: c_int = 2;
const MAP_SHARED: c_int = 1;
const MAP_POPULATE: c_int = 0x8000;

const IORING_OFF_SQ_RING: u64 = 0;
const IORING_OFF_CQ_RING: u64 = 0x800_0000;
const IORING_OFF_SQES: u64 = 0x1000_0000;

/// One mapping covers both rings (kernel ≥ 5.4); we only ever map once.
const IORING_FEAT_SINGLE_MMAP: u32 = 1 << 0;

const IORING_OP_NOP: u8 = 0;
const IORING_OP_WRITEV: u8 = 2;
const IORING_OP_FSYNC: u8 = 3;

/// Start the next SQE only after this one succeeds (durability chains).
const IOSQE_IO_LINK: u8 = 1 << 2;

const IORING_ENTER_GETEVENTS: u32 = 1;

/// `fdatasync` semantics for `IORING_OP_FSYNC`, matching the synchronous
/// backends' `File::sync_data` calls.
const IORING_FSYNC_DATASYNC: u32 = 1;

mod libc_errno {
    pub const EINTR: i32 = 4;
}

// ---------------------------------------------------------------------------
// Kernel ABI structs (linux/io_uring.h), laid out field-for-field.
// ---------------------------------------------------------------------------

#[repr(C)]
#[derive(Clone, Copy, Default)]
struct SqringOffsets {
    head: u32,
    tail: u32,
    ring_mask: u32,
    ring_entries: u32,
    flags: u32,
    dropped: u32,
    array: u32,
    resv1: u32,
    resv2: u64,
}

#[repr(C)]
#[derive(Clone, Copy, Default)]
struct CqringOffsets {
    head: u32,
    tail: u32,
    ring_mask: u32,
    ring_entries: u32,
    overflow: u32,
    cqes: u32,
    flags: u32,
    resv1: u32,
    resv2: u64,
}

#[repr(C)]
#[derive(Clone, Copy, Default)]
struct UringParams {
    sq_entries: u32,
    cq_entries: u32,
    flags: u32,
    sq_thread_cpu: u32,
    sq_thread_idle: u32,
    features: u32,
    wq_fd: u32,
    resv: [u32; 3],
    sq_off: SqringOffsets,
    cq_off: CqringOffsets,
}

/// A submission queue entry (64 bytes). The tail `_pad` covers the
/// `buf_index`/`personality`/`splice` union this backend never touches.
#[repr(C)]
#[derive(Clone, Copy)]
pub(crate) struct Sqe {
    opcode: u8,
    flags: u8,
    ioprio: u16,
    fd: i32,
    off: u64,
    addr: u64,
    len: u32,
    rw_flags: u32,
    user_data: u64,
    _pad: [u64; 3],
}

impl Sqe {
    fn zeroed(opcode: u8, fd: i32, user_data: u64) -> Sqe {
        Sqe {
            opcode,
            flags: 0,
            ioprio: 0,
            fd,
            off: 0,
            addr: 0,
            len: 0,
            rw_flags: 0,
            user_data,
            _pad: [0; 3],
        }
    }

    /// Vectored write of `n` iovecs at absolute `offset`. The iovec array
    /// and every buffer it names must stay alive and unmoved until the
    /// matching CQE is reaped.
    pub(crate) fn writev(
        fd: RawFd,
        iovecs: *const Iovec,
        n: u32,
        offset: u64,
        user_data: u64,
    ) -> Sqe {
        let mut s = Sqe::zeroed(IORING_OP_WRITEV, fd, user_data);
        s.addr = iovecs as u64;
        s.len = n;
        s.off = offset;
        s
    }

    /// `fdatasync`-grade flush of `fd`, matching `File::sync_data`.
    pub(crate) fn fsync_data(fd: RawFd, user_data: u64) -> Sqe {
        let mut s = Sqe::zeroed(IORING_OP_FSYNC, fd, user_data);
        s.rw_flags = IORING_FSYNC_DATASYNC;
        s
    }

    /// No-op, for capability probing.
    pub(crate) fn nop(user_data: u64) -> Sqe {
        Sqe::zeroed(IORING_OP_NOP, -1, user_data)
    }

    /// Chain the *next* SQE after this one: it starts only once this one
    /// succeeds, and is cancelled (`ECANCELED`) if this one fails.
    pub(crate) fn link(mut self) -> Sqe {
        self.flags |= IOSQE_IO_LINK;
        self
    }
}

/// A completion queue entry.
#[repr(C)]
#[derive(Clone, Copy, Debug)]
pub(crate) struct Cqe {
    /// The `user_data` of the SQE this completes.
    pub user_data: u64,
    /// Result: bytes written for `WRITEV`, 0 for `FSYNC`/`NOP`, negated
    /// errno on failure.
    pub res: i32,
    #[allow(dead_code)]
    flags: u32,
}

/// `struct iovec`, for `IORING_OP_WRITEV`.
#[repr(C)]
#[derive(Clone, Copy)]
pub(crate) struct Iovec {
    pub iov_base: *mut c_void,
    pub iov_len: usize,
}

// ---------------------------------------------------------------------------
// Ring
// ---------------------------------------------------------------------------

/// One `mmap` region, unmapped on drop (so partially-constructed rings
/// clean up without bookkeeping).
struct Mapping {
    ptr: *mut c_void,
    len: usize,
}

impl Mapping {
    fn new(fd: i32, len: usize, offset: u64) -> io::Result<Mapping> {
        // SAFETY: a fresh anonymous-address shared mapping of a ring fd
        // the kernel sized for exactly this offset/length contract.
        let ptr = unsafe {
            mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ | PROT_WRITE,
                MAP_SHARED | MAP_POPULATE,
                fd,
                offset as i64,
            )
        };
        if ptr as isize == -1 {
            return Err(io::Error::last_os_error());
        }
        Ok(Mapping { ptr, len })
    }

    fn at(&self, byte_offset: u32) -> *mut u8 {
        // SAFETY: callers only pass kernel-reported offsets that lie
        // inside `len` by the io_uring mmap contract.
        unsafe { self.ptr.cast::<u8>().add(byte_offset as usize) }
    }
}

impl Drop for Mapping {
    fn drop(&mut self) {
        // SAFETY: `ptr`/`len` came from a successful mmap and nothing
        // else unmaps them.
        unsafe { munmap(self.ptr, self.len) };
    }
}

/// An `io_uring` instance: the fd, its three mappings, and cached
/// pointers into the shared ring heads/tails.
///
/// Single-threaded by design — the uring writer backend owns one ring on
/// its flush thread. `Send` (to move it onto that thread) but not `Sync`.
pub(crate) struct Ring {
    fd: i32,
    // Held for their Drop (munmap); all access goes through raw pointers.
    _sq_map: Mapping,
    _cq_map: Option<Mapping>,
    _sqes: Mapping,
    sq_khead: *const AtomicU32,
    sq_ktail: *const AtomicU32,
    sq_mask: u32,
    entries: u32,
    cq_khead: *const AtomicU32,
    cq_ktail: *const AtomicU32,
    cq_mask: u32,
    sqe_base: *mut Sqe,
    cqe_base: *const Cqe,
    /// Producer-side tail (mirrors the shared tail between submits).
    local_tail: u32,
    /// SQEs pushed since the last `submit_and_wait`.
    pending: u32,
}

// SAFETY: the ring is confined to one thread at a time; the raw pointers
// target mappings owned by this struct, valid wherever it moves.
unsafe impl Send for Ring {}

impl Ring {
    /// Create a ring with at least `entries` SQ slots (kernel rounds up
    /// to a power of two).
    pub(crate) fn new(entries: u32) -> io::Result<Ring> {
        let mut p = UringParams::default();
        // SAFETY: `p` is a zeroed params struct matching the kernel ABI;
        // the kernel fills it on success.
        let fd = unsafe {
            syscall(
                SYS_IO_URING_SETUP,
                c_long::from(entries),
                std::ptr::addr_of_mut!(p) as c_long,
            )
        };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        let fd = fd as i32;
        match Ring::map(fd, &p) {
            Ok(ring) => Ok(ring),
            Err(e) => {
                // SAFETY: `fd` is the live ring fd we just created and the
                // failed mapping path did not hand it to anything else.
                unsafe { close(fd) };
                Err(e)
            }
        }
    }

    // The u8 → u32/AtomicU32/Cqe pointer casts below are sound: every
    // offset is a kernel-reported field position inside the ring mapping,
    // aligned by the io_uring ABI (mmap itself is page-aligned).
    #[allow(clippy::cast_ptr_alignment)]
    fn map(fd: i32, p: &UringParams) -> io::Result<Ring> {
        let sq_len = p.sq_off.array as usize + p.sq_entries as usize * std::mem::size_of::<u32>();
        let cq_len = p.cq_off.cqes as usize + p.cq_entries as usize * std::mem::size_of::<Cqe>();
        let single = p.features & IORING_FEAT_SINGLE_MMAP != 0;
        let sq_ring = Mapping::new(
            fd,
            if single { sq_len.max(cq_len) } else { sq_len },
            IORING_OFF_SQ_RING,
        )?;
        let cq_ring = if single {
            None
        } else {
            Some(Mapping::new(fd, cq_len, IORING_OFF_CQ_RING)?)
        };
        let sqes = Mapping::new(
            fd,
            p.sq_entries as usize * std::mem::size_of::<Sqe>(),
            IORING_OFF_SQES,
        )?;

        let cq_base = cq_ring.as_ref().unwrap_or(&sq_ring);
        // SAFETY: all offsets below are kernel-reported fields inside the
        // mapped rings; the head/tail words are 4-aligned shared counters
        // the kernel itself accesses atomically.
        let ring = unsafe {
            let sq_mask = *sq_ring.at(p.sq_off.ring_mask).cast::<u32>();
            let cq_mask = *cq_base.at(p.cq_off.ring_mask).cast::<u32>();
            // Identity-map the SQ index array once: slot i always holds
            // SQE i, so submission order is purely tail-driven.
            let array = sq_ring.at(p.sq_off.array).cast::<u32>();
            for i in 0..p.sq_entries {
                array.add(i as usize).write(i);
            }
            Ring {
                fd,
                sq_khead: sq_ring.at(p.sq_off.head).cast::<AtomicU32>(),
                sq_ktail: sq_ring.at(p.sq_off.tail).cast::<AtomicU32>(),
                sq_mask,
                entries: p.sq_entries,
                cq_khead: cq_base.at(p.cq_off.head).cast::<AtomicU32>(),
                cq_ktail: cq_base.at(p.cq_off.tail).cast::<AtomicU32>(),
                cq_mask,
                sqe_base: sqes.ptr.cast::<Sqe>(),
                cqe_base: cq_base.at(p.cq_off.cqes).cast::<Cqe>(),
                local_tail: (*sq_ring.at(p.sq_off.tail).cast::<AtomicU32>())
                    .load(Ordering::Relaxed),
                _sq_map: sq_ring,
                _cq_map: cq_ring,
                _sqes: sqes,
                pending: 0,
            }
        };
        Ok(ring)
    }

    /// SQ slots this ring was created with.
    pub(crate) fn capacity(&self) -> u32 {
        self.entries
    }

    /// SQ slots currently free to `push` into.
    pub(crate) fn sq_space(&self) -> u32 {
        // SAFETY: `sq_khead` points into the live SQ mapping.
        let head = unsafe { (*self.sq_khead).load(Ordering::Acquire) };
        self.entries - self.local_tail.wrapping_sub(head)
    }

    /// Stage one SQE; it is not visible to the kernel until
    /// [`Ring::submit_and_wait`]. Errors (without staging) if the SQ is full.
    pub(crate) fn push(&mut self, sqe: Sqe) -> io::Result<()> {
        if self.sq_space() == 0 {
            return Err(io::Error::new(
                io::ErrorKind::WouldBlock,
                "io_uring submission queue full",
            ));
        }
        let idx = (self.local_tail & self.sq_mask) as usize;
        // SAFETY: `idx` is masked into the SQE array mapping.
        unsafe { self.sqe_base.add(idx).write(sqe) };
        self.local_tail = self.local_tail.wrapping_add(1);
        self.pending += 1;
        Ok(())
    }

    /// Publish every staged SQE and block until at least `min_complete`
    /// CQEs are available, retrying `EINTR` and partial submissions.
    pub(crate) fn submit_and_wait(&mut self, min_complete: u32) -> io::Result<()> {
        // SAFETY: `sq_ktail` points into the live SQ mapping; Release
        // pairs with the kernel's Acquire of the tail.
        unsafe { (*self.sq_ktail).store(self.local_tail, Ordering::Release) };
        let mut to_submit = self.pending;
        self.pending = 0;
        loop {
            // SAFETY: plain enter with no sigset; all arguments are
            // scalars the kernel validates.
            let rc = unsafe {
                syscall(
                    SYS_IO_URING_ENTER,
                    c_long::from(self.fd),
                    c_long::from(to_submit),
                    c_long::from(min_complete),
                    c_long::from(IORING_ENTER_GETEVENTS),
                    0 as c_long,
                    0 as c_long,
                )
            };
            if rc < 0 {
                let err = io::Error::last_os_error();
                if err.raw_os_error() == Some(libc_errno::EINTR) {
                    continue;
                }
                return Err(err);
            }
            to_submit = to_submit.saturating_sub(rc as u32);
            if to_submit == 0 {
                return Ok(());
            }
        }
    }

    /// Pop the next completion, if any. CQEs arrive in completion order,
    /// not submission order — match them up by `user_data`.
    pub(crate) fn reap(&mut self) -> Option<Cqe> {
        // SAFETY: both pointers target the live CQ mapping; Acquire on
        // the tail pairs with the kernel's Release after writing a CQE.
        let (head, tail) = unsafe {
            (
                (*self.cq_khead).load(Ordering::Relaxed),
                (*self.cq_ktail).load(Ordering::Acquire),
            )
        };
        if head == tail {
            return None;
        }
        // SAFETY: a CQE the kernel published (head < tail) at a masked
        // index inside the CQE array.
        let cqe = unsafe { *self.cqe_base.add((head & self.cq_mask) as usize) };
        // SAFETY: Release hands the consumed slot back to the kernel.
        unsafe { (*self.cq_khead).store(head.wrapping_add(1), Ordering::Release) };
        Some(cqe)
    }
}

impl Drop for Ring {
    fn drop(&mut self) {
        // Mappings unmap themselves; the fd is ours to close.
        // SAFETY: `fd` is the live ring fd and nothing else closes it.
        unsafe { close(self.fd) };
    }
}

// ---------------------------------------------------------------------------
// Capability probes
// ---------------------------------------------------------------------------

const UNKNOWN: u8 = 0;
const AVAILABLE: u8 = 1;
const UNAVAILABLE: u8 = 2;

/// Process-global ring-capability verdict, latched by the first probe.
static CAPABILITY: AtomicU8 = AtomicU8::new(UNKNOWN);

/// Process-global `IOSQE_IO_LINK`-support verdict (5.3+), latched once.
static LINK_SUPPORT: AtomicU8 = AtomicU8::new(UNKNOWN);

/// One-shot probe: can this process create a ring and drive a NOP
/// through it? Any failure — `ENOSYS` (pre-5.1 kernel), `EPERM`
/// (seccomp/sysctl lockdown), resource limits, or an inconsistent ring —
/// latches *unavailable* for the life of the process; deliberately
/// broader than the errno allowlist in `device_sync` because every
/// failure mode has the same safe answer here: use the portable backend.
pub(crate) fn ring_available() -> bool {
    match CAPABILITY.load(Ordering::Relaxed) {
        AVAILABLE => true,
        UNAVAILABLE => false,
        _ => {
            let ok = probe_ring();
            CAPABILITY.store(if ok { AVAILABLE } else { UNAVAILABLE }, Ordering::Relaxed);
            ok
        }
    }
}

fn probe_ring() -> bool {
    let Ok(mut ring) = Ring::new(2) else {
        return false;
    };
    if ring.push(Sqe::nop(0x70_07)).is_err() || ring.submit_and_wait(1).is_err() {
        return false;
    }
    matches!(ring.reap(), Some(c) if c.user_data == 0x70_07 && c.res == 0)
}

/// One-shot probe for SQE chaining (`IOSQE_IO_LINK`): push a linked NOP
/// pair through a throwaway ring and require both to succeed. Kernels
/// that predate links fail the first SQE with `EINVAL`, which simply
/// keeps the writer on its synchronous-fsync fallback.
pub(crate) fn links_available() -> bool {
    match LINK_SUPPORT.load(Ordering::Relaxed) {
        AVAILABLE => true,
        UNAVAILABLE => false,
        _ => {
            let ok = ring_available() && probe_links();
            LINK_SUPPORT.store(if ok { AVAILABLE } else { UNAVAILABLE }, Ordering::Relaxed);
            ok
        }
    }
}

fn probe_links() -> bool {
    let Ok(mut ring) = Ring::new(2) else {
        return false;
    };
    if ring.push(Sqe::nop(1).link()).is_err()
        || ring.push(Sqe::nop(2)).is_err()
        || ring.submit_and_wait(2).is_err()
    {
        return false;
    }
    let (Some(a), Some(b)) = (ring.reap(), ring.reap()) else {
        return false;
    };
    a.res == 0 && b.res == 0
}

/// Synchronous positional write of the whole buffer — the repair path
/// for short `WRITEV` completions (and the byte-exact equivalent of what
/// the ring was asked to do).
pub(crate) fn pwrite_all(fd: RawFd, mut buf: &[u8], mut offset: u64) -> io::Result<()> {
    while !buf.is_empty() {
        // SAFETY: `buf` is a live slice; pwrite reads at most `len`
        // bytes from it.
        let rc = unsafe { pwrite(fd, buf.as_ptr().cast(), buf.len(), offset as i64) };
        if rc < 0 {
            let err = io::Error::last_os_error();
            if err.raw_os_error() == Some(libc_errno::EINTR) {
                continue;
            }
            return Err(err);
        }
        if rc == 0 {
            return Err(io::Error::new(
                io::ErrorKind::WriteZero,
                "pwrite returned zero",
            ));
        }
        buf = &buf[rc as usize..];
        offset += rc as u64;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;
    use std::os::unix::io::AsRawFd;

    #[test]
    fn capability_probe_is_stable() {
        let first = ring_available();
        let second = ring_available();
        assert_eq!(first, second, "latched verdict must not flap");
        // Link support implies ring support.
        if links_available() {
            assert!(ring_available());
        }
    }

    /// The full data path the writer backend relies on: a two-iovec
    /// WRITEV at an offset, chained to a DATASYNC fsync, reaped by
    /// user_data. Skipped (vacuously passing) where the kernel has no
    /// io_uring — exactly the situations the writer falls back in.
    #[test]
    fn writev_chained_fsync_round_trip() {
        if !ring_available() {
            return;
        }
        let dir = tempfile::tempdir().unwrap();
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(dir.path().join("ring"))
            .unwrap();
        let mut ring = Ring::new(8).unwrap();
        assert!(ring.capacity() >= 8);
        let (a, b) = (vec![0xAAu8; 100], vec![0xBBu8; 28]);
        let iov = [
            Iovec {
                iov_base: a.as_ptr().cast_mut().cast(),
                iov_len: a.len(),
            },
            Iovec {
                iov_base: b.as_ptr().cast_mut().cast(),
                iov_len: b.len(),
            },
        ];
        let use_link = links_available();
        let w = Sqe::writev(file.as_raw_fd(), iov.as_ptr(), 2, 16, 1);
        ring.push(if use_link { w.link() } else { w }).unwrap();
        let mut want = 1u32;
        if use_link {
            ring.push(Sqe::fsync_data(file.as_raw_fd(), 2)).unwrap();
            want = 2;
        }
        ring.submit_and_wait(want).unwrap();
        let mut wrote = 0i64;
        for _ in 0..want {
            let c = loop {
                if let Some(c) = ring.reap() {
                    break c;
                }
                ring.submit_and_wait(1).unwrap();
            };
            match c.user_data {
                1 => wrote = i64::from(c.res),
                2 => assert!(c.res >= 0, "linked fsync failed: {}", c.res),
                other => panic!("unknown user_data {other}"),
            }
        }
        assert!(wrote > 0, "writev failed: {wrote}");
        // Repair any short write the way the backend would.
        let done = wrote as usize;
        if done < 128 {
            let rest: Vec<u8> = a.iter().chain(b.iter()).copied().skip(done).collect();
            pwrite_all(file.as_raw_fd(), &rest, 16 + done as u64).unwrap();
        }
        let mut contents = Vec::new();
        let mut reread = std::fs::File::open(dir.path().join("ring")).unwrap();
        reread.read_to_end(&mut contents).unwrap();
        assert_eq!(&contents[..16], &[0u8; 16], "offset hole preserved");
        assert_eq!(&contents[16..116], &a[..]);
        assert_eq!(&contents[116..144], &b[..]);
    }

    #[test]
    fn sq_space_reports_fullness() {
        if !ring_available() {
            return;
        }
        let mut ring = Ring::new(2).unwrap();
        let cap = ring.capacity();
        assert_eq!(ring.sq_space(), cap);
        ring.push(Sqe::nop(1)).unwrap();
        assert_eq!(ring.sq_space(), cap - 1);
        for i in 1..cap {
            ring.push(Sqe::nop(u64::from(i))).unwrap();
        }
        assert!(ring.push(Sqe::nop(99)).is_err(), "full ring must refuse");
        ring.submit_and_wait(cap).unwrap();
        for _ in 0..cap {
            assert!(ring.reap().is_some());
        }
        assert_eq!(ring.sq_space(), cap, "space recovers after reaping");
    }

    #[test]
    fn pwrite_all_writes_at_offset() {
        let dir = tempfile::tempdir().unwrap();
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(dir.path().join("pw"))
            .unwrap();
        pwrite_all(file.as_raw_fd(), &[7u8; 32], 8).unwrap();
        let mut contents = Vec::new();
        let mut reread = std::fs::File::open(dir.path().join("pw")).unwrap();
        reread.read_to_end(&mut contents).unwrap();
        assert_eq!(contents.len(), 40);
        assert_eq!(&contents[..8], &[0u8; 8]);
        assert_eq!(&contents[8..], &[7u8; 32]);
    }
}
