//! The writer seam: pluggable backends executing the shards' checkpoint
//! flush jobs.
//!
//! The real engine's mutator side (`crate::engine::RealBackend`) and the
//! asynchronous writer meet at exactly one interface: tagged flush jobs
//! (`PoolJob`) go in through a bounded channel, one `Done` per job
//! comes back through the owning shard's completion channel, and sweep
//! progress is published through the shard's frontier. Everything a
//! backend needs to execute a job lives in the shard's `ShardCtx`. The
//! `WriterBackend` trait is that seam made explicit — extracted from the
//! historical writer-pool worker loop so the scheduling policy can vary
//! while `ShardCtx`/`Job` stay unchanged.
//!
//! Two backends implement it:
//!
//! * **`WriterPool`** (`thread-pool`): N worker threads pull jobs off
//!   the shared queue and execute each one end to end — data writes, data
//!   sync, metadata commit — before acking it. A single-shard run with one
//!   worker is exactly the classic dedicated writer thread.
//! * **`AsyncBatchedWriter`** (`async-batched`): an io_uring-style
//!   submission/completion engine on a single loop thread. Each round it
//!   coalesces *every* queued job into a batch, issues all data writes in
//!   the **submission phase**, then — in the **completion phase** — brings
//!   each job to its durability point (data `fsync`, then metadata commit)
//!   and acks completions **out of submission order** (newest first).
//!   Syncs thereby coalesce at the batch tail instead of interleaving with
//!   writes, the way a ring's reaped CQEs trail its submitted SQEs.
//!
//! Both backends execute the *same* two phase functions (`submit_job`,
//! `complete_job`); they differ only in scheduling. That shared core is
//! what makes the recovery-equivalence contract auditable: identical job
//! streams produce byte-identical files (pinned by the differential tests
//! below and in `tests/writer_equivalence.rs`), because per shard the
//! phases always run in order and the durability ordering — data sync
//! *before* metadata commit — is a property of `complete_job`, not of
//! the scheduler.
//!
//! Adding a third backend (real `io_uring` syscalls, a replicated remote
//! store) means: implement `WriterBackend` over the two phase functions
//! (or your own transport), add a `WriterBackendKind` variant, and wire
//! it in `spawn_writer`; the facade, the builder's `.writer(…)` option
//! and the comparison matrix pick it up. See DESIGN.md § "The writer
//! backends".

use crate::engine::{Done, Job, PoolJob, ShardCtx, Store};
use mmoc_core::run::WriterBackend as WriterBackendKind;
use mmoc_core::{CursorKind, ObjectId};
use std::io;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

/// The seam between the engine and its asynchronous writer: anything that
/// drains tagged flush jobs over the shards' contexts, sends one [`Done`]
/// per job on the owning shard's completion channel, and joins cleanly.
///
/// Lifecycle contract (shared with the historical pool): backends run
/// until every job sender is dropped; callers drop their senders and then
/// call [`WriterBackend::shutdown`] before touching the shards' files.
pub(crate) trait WriterBackend: Send {
    /// Join the backend's threads. Callers must have dropped every job
    /// sender first, or this blocks forever.
    fn shutdown(&mut self);
}

/// Spawn the writer backend `kind` selects, draining `job_rx` over the
/// given shard contexts. `threads` sizes the thread pool; the batched
/// engine always runs one submission/completion loop.
pub(crate) fn spawn_writer(
    kind: WriterBackendKind,
    ctxs: Arc<Vec<ShardCtx>>,
    threads: usize,
    job_rx: crossbeam::channel::Receiver<PoolJob>,
) -> Box<dyn WriterBackend> {
    match kind {
        WriterBackendKind::ThreadPool => Box::new(WriterPool::spawn(ctxs, threads, job_rx)),
        WriterBackendKind::AsyncBatched => Box::new(AsyncBatchedWriter::spawn(ctxs, job_rx)),
    }
}

// ---------------------------------------------------------------------------
// The shared execution core: submission and completion phases
// ---------------------------------------------------------------------------

/// A job whose data writes have been issued but whose durability point —
/// data sync plus metadata commit (double backup) or log sync (log) — has
/// not been reached yet. The window between [`submit_job`] and
/// [`complete_job`] is exactly the "submitted but not completed" state
/// the mid-batch crash-injection tests model: a crash here leaves the
/// target backup invalidated (or the log tail torn) and recovery must
/// fall back to the previous consistent image.
pub(crate) struct InFlight {
    shard: usize,
    t0: Instant,
    objects: u32,
    recycled: Option<(Vec<u32>, Vec<u8>)>,
    state: io::Result<PendingDurability>,
}

impl InFlight {
    /// The shard whose store this job targets.
    pub(crate) fn shard(&self) -> usize {
        self.shard
    }
}

/// What remains between a submitted job and its durability point.
enum PendingDurability {
    /// Double backup: objects written into `target`; the data sync and
    /// the `commit(target, tick)` metadata write remain.
    Double { target: usize, tick: u64 },
    /// Log: the segment is sealed in the page cache; the log sync remains.
    Log,
}

/// Submission phase: issue one flush job's data writes against one
/// shard's store, durability deferred. Runs on a writer thread; `buf` is
/// the thread's reusable object buffer. For sweep jobs the frontier is
/// published object by object, exactly as in the historical single-phase
/// path — frontier semantics are "read from live state and queued", not
/// "durable", so deferral does not change the copy-on-update protocol.
pub(crate) fn submit_job(
    ctx: &ShardCtx,
    store: &mut Store,
    buf: &mut Vec<u8>,
    shard: usize,
    job: Job,
) -> InFlight {
    let obj_size = ctx.geometry.object_size as usize;
    buf.resize(obj_size, 0);
    let shared = &ctx.shared;
    let t0 = Instant::now();
    let (objects, state, recycled) = match job {
        Job::Eager {
            ids,
            data,
            seq,
            tick,
            target,
            full_image,
        } => {
            let count = ids.len() as u32;
            let objects = ids
                .iter()
                .enumerate()
                .map(|(i, &id)| (ObjectId(id), &data[i * obj_size..][..obj_size]));
            let state = match store {
                Store::Double(set) => (|| {
                    set.invalidate(target)?;
                    for (obj, bytes) in objects {
                        // Sorted I/O: ids are in increasing offset order.
                        set.write_object(target, obj, bytes)?;
                    }
                    Ok(PendingDurability::Double { target, tick })
                })(),
                Store::Log(log) => log
                    .append_segment(seq, tick, full_image, objects, false)
                    .map(|_| PendingDurability::Log),
            };
            (count, state, Some((ids, data)))
        }
        Job::Sweep {
            list,
            cursor,
            seq,
            tick,
            target,
            full_image,
        } => {
            let count = list.len() as u32;
            // Read one object under the copy-on-update protocol:
            // lock, prefer the saved pre-update image, mark flushed.
            let read_object = |o: u32, buf: &mut [u8]| {
                let obj = ObjectId(o);
                let _guard = shared.locks[o as usize].lock();
                if shared.copied.get(o) {
                    shared.read_arena_into(obj, buf);
                } else {
                    shared.table.read_object_into(obj, buf);
                }
                shared.flushed.set(o);
            };
            // Publish progress *after* the object is read and queued:
            // the frontier must under-approximate what is flushed, so
            // a racing update copies once too often, never too rarely.
            let publish = |position: usize, o: u32| {
                let slots = match cursor {
                    CursorKind::ByIndex => u64::from(o) + 1,
                    CursorKind::ByPosition => position as u64 + 1,
                };
                ctx.frontier.store(slots, Ordering::Release);
            };
            let state = match store {
                Store::Double(set) => (|| {
                    set.invalidate(target)?;
                    for (p, &o) in list.iter().enumerate() {
                        read_object(o, buf);
                        set.write_object(target, ObjectId(o), buf)?;
                        publish(p, o);
                    }
                    Ok(PendingDurability::Double { target, tick })
                })(),
                Store::Log(log) => (|| {
                    let mut seg = log.begin_segment(seq, tick, full_image)?;
                    for (p, &o) in list.iter().enumerate() {
                        read_object(o, buf);
                        seg.write_object(ObjectId(o), buf)?;
                        publish(p, o);
                    }
                    seg.finish(false).map(|_| PendingDurability::Log)
                })(),
            };
            (count, state, None)
        }
    };
    InFlight {
        shard,
        t0,
        objects,
        recycled,
        state,
    }
}

/// Completion phase: bring a submitted job to its durability point — data
/// `fsync` *before* metadata commit, the ordering the double-backup
/// correctness argument rests on — and assemble its [`Done`]. The job is
/// only acked to the mutator after this returns.
pub(crate) fn complete_job(ctx: &ShardCtx, store: &mut Store, inflight: InFlight) -> Done {
    let InFlight {
        shard: _,
        t0,
        objects,
        recycled,
        state,
    } = inflight;
    let result = state.and_then(|pending| match (pending, &mut *store) {
        (PendingDurability::Double { target, tick }, Store::Double(set)) => {
            if ctx.sync_data {
                set.sync(target)?;
            }
            set.commit(target, tick)
        }
        (PendingDurability::Log, Store::Log(log)) => {
            if ctx.sync_data {
                log.sync()?;
            }
            Ok(())
        }
        _ => unreachable!("pending durability matches the shard's disk organization"),
    });
    Done {
        result: result.map(|()| t0.elapsed().as_secs_f64()),
        objects,
        bytes: u64::from(objects) * u64::from(ctx.geometry.object_size),
        recycled,
    }
}

/// Both phases back to back: the thread-pool path, identical to the
/// historical single-phase `execute_job`.
pub(crate) fn execute_job(
    ctx: &ShardCtx,
    store: &mut Store,
    buf: &mut Vec<u8>,
    shard: usize,
    job: Job,
) -> Done {
    let inflight = submit_job(ctx, store, buf, shard, job);
    complete_job(ctx, store, inflight)
}

// ---------------------------------------------------------------------------
// Backend 1: the thread pool
// ---------------------------------------------------------------------------

/// The shared pool of writer workers serving all shards' checkpoint work.
///
/// Workers pull tagged jobs off one queue; any worker can flush any
/// shard (the shard's store sits behind an uncontended mutex). With one
/// shard and one worker this degenerates to the classic dedicated writer
/// thread. Capacity-wise the queue never backs up beyond one job per
/// shard, because the driver keeps at most one checkpoint in flight per
/// shard.
pub(crate) struct WriterPool {
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl WriterPool {
    /// Spawn `threads` workers draining `job_rx` over the given shard
    /// contexts. Workers exit when every job sender has been dropped.
    pub(crate) fn spawn(
        ctxs: Arc<Vec<ShardCtx>>,
        threads: usize,
        job_rx: crossbeam::channel::Receiver<PoolJob>,
    ) -> WriterPool {
        // The shim's Receiver is not clonable; a mutex-guarded receiver
        // gives the same one-waiter-at-a-time handoff a shared MPMC
        // queue would.
        let job_rx = Arc::new(parking_lot::Mutex::new(job_rx));
        let workers = (0..threads.max(1))
            .map(|_| {
                let ctxs = Arc::clone(&ctxs);
                let job_rx = Arc::clone(&job_rx);
                std::thread::spawn(move || {
                    let mut buf = Vec::new();
                    loop {
                        let next = { job_rx.lock().recv() };
                        let Ok(PoolJob { shard, job }) = next else {
                            break;
                        };
                        let ctx = &ctxs[shard];
                        let mut store = ctx.store.lock();
                        let done = execute_job(ctx, &mut store, &mut buf, shard, job);
                        let _ = ctx.done_tx.send(done);
                    }
                })
            })
            .collect();
        WriterPool { workers }
    }
}

impl WriterBackend for WriterPool {
    fn shutdown(&mut self) {
        for w in self.workers.drain(..) {
            w.join().expect("writer pool worker");
        }
    }
}

impl Drop for WriterPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

// ---------------------------------------------------------------------------
// Backend 2: the io_uring-style batched submission engine
// ---------------------------------------------------------------------------

/// Single-loop batched-submission writer: coalesce every queued job into
/// a batch, submit all data writes, then complete (sync + commit) and ack
/// out of submission order. See the module docs for the model.
pub(crate) struct AsyncBatchedWriter {
    handle: Option<std::thread::JoinHandle<()>>,
}

impl AsyncBatchedWriter {
    /// Spawn the submission/completion loop draining `job_rx` over the
    /// given shard contexts. The loop exits when every job sender has
    /// been dropped and the queue is empty.
    pub(crate) fn spawn(
        ctxs: Arc<Vec<ShardCtx>>,
        job_rx: crossbeam::channel::Receiver<PoolJob>,
    ) -> AsyncBatchedWriter {
        let handle = std::thread::spawn(move || {
            let mut buf = Vec::new();
            // Block for the first job, then coalesce everything that is
            // already queued: one batch per loop round. The driver keeps
            // at most one checkpoint in flight per shard, so a batch
            // holds at most one job per shard and per-shard job order is
            // trivially preserved.
            while let Ok(first) = job_rx.recv() {
                let mut batch = vec![first];
                while let Ok(job) = job_rx.try_recv() {
                    batch.push(job);
                }
                // Submission phase: issue every job's data writes;
                // durability is deferred to the completion phase.
                let mut completion_queue: Vec<InFlight> = batch
                    .into_iter()
                    .map(|PoolJob { shard, job }| {
                        let ctx = &ctxs[shard];
                        let mut store = ctx.store.lock();
                        submit_job(ctx, &mut store, &mut buf, shard, job)
                    })
                    .collect();
                // Completion phase: reap out of submission order (newest
                // first — deliberately not FIFO, so consumers cannot grow
                // an accidental ordering dependency), reaching each job's
                // durability point before acking it.
                while let Some(inflight) = completion_queue.pop() {
                    let ctx = &ctxs[inflight.shard()];
                    let mut store = ctx.store.lock();
                    let done = complete_job(ctx, &mut store, inflight);
                    let _ = ctx.done_tx.send(done);
                }
            }
        });
        AsyncBatchedWriter {
            handle: Some(handle),
        }
    }
}

impl WriterBackend for AsyncBatchedWriter {
    fn shutdown(&mut self) {
        if let Some(h) = self.handle.take() {
            h.join().expect("batched writer loop");
        }
    }
}

impl Drop for AsyncBatchedWriter {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    //! Deterministic differential tests at the job-stream level: both
    //! backends are fed *identical* flush-job sequences over identical
    //! shard contexts and must leave byte-identical files. (End-to-end
    //! runs cannot pin file bytes — checkpoint cadence depends on
    //! wall-clock races — so the byte-level half of the equivalence
    //! matrix lives here, and the recovered-state half lives in
    //! `tests/writer_equivalence.rs`.)

    use super::*;
    use crate::engine::create_store;
    use crate::shared::{Shared, SharedTable};
    use mmoc_core::{CellUpdate, DiskOrg, StateGeometry};
    use std::path::Path;
    use std::sync::atomic::AtomicU64;

    fn geometry() -> StateGeometry {
        StateGeometry::test_micro() // 4 objects of 64 B
    }

    /// Build one shard's context + store over `dir`, with a seeded live
    /// table so sweep jobs read non-trivial bytes.
    fn make_ctx(
        dir: &Path,
        disk_org: DiskOrg,
        seed: u32,
    ) -> (ShardCtx, crossbeam::channel::Receiver<Done>) {
        let g = geometry();
        let table = SharedTable::new(g);
        for i in 0..g.rows {
            for c in 0..g.cols {
                table.write_cell(CellUpdate::new(i, c, seed.wrapping_mul(31) ^ (i * 8 + c)));
            }
        }
        let shared = Arc::new(Shared::new(table));
        let store = create_store(dir, g, disk_org).unwrap();
        let (done_tx, done_rx) = crossbeam::channel::bounded::<Done>(1);
        let ctx = ShardCtx {
            store: parking_lot::Mutex::new(store),
            shared,
            frontier: Arc::new(AtomicU64::new(0)),
            geometry: g,
            sync_data: true,
            done_tx,
        };
        (ctx, done_rx)
    }

    /// A deterministic job stream: alternating eager and sweep jobs per
    /// shard, jobs for all shards interleaved so the batched engine sees
    /// real multi-job batches.
    fn job_stream(n_shards: usize) -> Vec<(usize, Job)> {
        let g = geometry();
        let obj_size = g.object_size as usize;
        let mut jobs = Vec::new();
        for round in 0u64..4 {
            for shard in 0..n_shards {
                let fill = (round as u8) * 16 + shard as u8 + 1;
                let job = if round % 2 == 0 {
                    let ids: Vec<u32> = (0..g.n_objects()).step_by(2).collect();
                    let data = vec![fill; ids.len() * obj_size];
                    Job::Eager {
                        ids,
                        data,
                        seq: round,
                        tick: round * 10 + 1,
                        target: (round / 2 % 2) as usize,
                        full_image: false,
                    }
                } else {
                    Job::Sweep {
                        list: (0..g.n_objects()).collect(),
                        cursor: CursorKind::ByIndex,
                        seq: round,
                        tick: round * 10 + 1,
                        target: (round / 2 % 2) as usize,
                        full_image: true,
                    }
                };
                jobs.push((shard, job));
            }
        }
        jobs
    }

    /// Drive one backend over the stream: send each round's jobs (one per
    /// shard — the driver's one-in-flight-per-shard invariant), then wait
    /// for that round's completions before the next round.
    fn drive(
        kind: WriterBackendKind,
        dirs: &[std::path::PathBuf],
        disk_org: DiskOrg,
    ) -> Vec<io::Result<f64>> {
        let n = dirs.len();
        let mut ctxs = Vec::new();
        let mut done_rxs = Vec::new();
        for (s, dir) in dirs.iter().enumerate() {
            let (ctx, rx) = make_ctx(dir, disk_org, s as u32);
            ctxs.push(ctx);
            done_rxs.push(rx);
        }
        let ctxs = Arc::new(ctxs);
        let (job_tx, job_rx) = crossbeam::channel::bounded::<PoolJob>(n);
        let mut backend = spawn_writer(kind, Arc::clone(&ctxs), 2, job_rx);
        let mut results = Vec::new();
        let stream = job_stream(n);
        for round in stream.chunks(n) {
            for (shard, job) in round {
                // Reset per-checkpoint protocol state as the mutator would.
                ctxs[*shard].shared.reset_for_checkpoint();
                ctxs[*shard].frontier.store(0, Ordering::Release);
                job_tx
                    .send(PoolJob {
                        shard: *shard,
                        job: job.clone(),
                    })
                    .unwrap();
            }
            for rx in &done_rxs {
                results.push(rx.recv().unwrap().result);
            }
        }
        drop(job_tx);
        backend.shutdown();
        results
    }

    fn file_bytes(dir: &Path) -> Vec<(String, Vec<u8>)> {
        let mut entries: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir)
            .unwrap()
            .map(|e| {
                let e = e.unwrap();
                (
                    e.file_name().to_string_lossy().into_owned(),
                    std::fs::read(e.path()).unwrap(),
                )
            })
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        entries
    }

    /// The differential core: identical job streams through both backends
    /// leave byte-identical files (images, metadata, logs) on every shard,
    /// for both disk organizations.
    #[test]
    fn identical_job_streams_leave_byte_identical_files() {
        for disk_org in [DiskOrg::DoubleBackup, DiskOrg::Log] {
            for n_shards in [1usize, 3] {
                let root = tempfile::tempdir().unwrap();
                let dirs_for = |label: &str| -> Vec<std::path::PathBuf> {
                    (0..n_shards)
                        .map(|s| root.path().join(format!("{label}_{s}")))
                        .collect()
                };
                let pool_dirs = dirs_for("pool");
                let batch_dirs = dirs_for("batch");
                let pool_results = drive(WriterBackendKind::ThreadPool, &pool_dirs, disk_org);
                let batch_results = drive(WriterBackendKind::AsyncBatched, &batch_dirs, disk_org);
                for r in pool_results.iter().chain(&batch_results) {
                    assert!(r.is_ok(), "{disk_org:?} x{n_shards}: {r:?}");
                }
                for s in 0..n_shards {
                    let pool = file_bytes(&pool_dirs[s]);
                    let batch = file_bytes(&batch_dirs[s]);
                    assert_eq!(
                        pool.len(),
                        batch.len(),
                        "{disk_org:?} x{n_shards} shard {s}: file sets differ"
                    );
                    for ((pn, pb), (bn, bb)) in pool.iter().zip(&batch) {
                        assert_eq!(pn, bn, "{disk_org:?} shard {s}: file names");
                        assert_eq!(
                            pb, bb,
                            "{disk_org:?} x{n_shards} shard {s}: {pn} bytes diverge"
                        );
                    }
                }
            }
        }
    }

    /// The batched engine acks a multi-shard batch out of submission
    /// order: submit jobs for 3 shards in one batch and observe shard 2's
    /// completion arriving no later than shard 0's (newest-first reaping).
    #[test]
    fn batched_engine_acks_out_of_submission_order() {
        let root = tempfile::tempdir().unwrap();
        let n = 3usize;
        let mut ctxs = Vec::new();
        let mut done_rxs = Vec::new();
        for s in 0..n {
            let (ctx, rx) = make_ctx(
                &root.path().join(format!("s{s}")),
                DiskOrg::DoubleBackup,
                s as u32,
            );
            ctxs.push(ctx);
            done_rxs.push(rx);
        }
        let ctxs = Arc::new(ctxs);
        let (job_tx, job_rx) = crossbeam::channel::bounded::<PoolJob>(n);
        // Queue the whole batch *before* spawning the loop, so one round
        // provably coalesces all three jobs.
        let g = geometry();
        for (shard, _) in (0..n).map(|s| (s, ())) {
            let ids: Vec<u32> = (0..g.n_objects()).collect();
            let data = vec![shard as u8 + 1; ids.len() * g.object_size as usize];
            job_tx
                .send(PoolJob {
                    shard,
                    job: Job::Eager {
                        ids,
                        data,
                        seq: 0,
                        tick: 1,
                        target: 0,
                        full_image: true,
                    },
                })
                .unwrap();
        }
        let mut backend = AsyncBatchedWriter::spawn(Arc::clone(&ctxs), job_rx);
        // Completion within the batch is newest-first. Each job's
        // reported duration spans its own submission through its own
        // completion, so shard 0 — submitted first, completed last —
        // spans the entire batch (three fsync-bound completions), while
        // shard 2 — submitted last, completed first — spans roughly one.
        // FIFO reaping would invert the relation.
        let durations: Vec<f64> = done_rxs
            .iter()
            .map(|rx| rx.recv().unwrap().result.unwrap())
            .collect();
        assert!(
            durations[2] < durations[0],
            "newest-first reaping: shard 2's span ({}) must be shorter \
             than shard 0's ({})",
            durations[2],
            durations[0]
        );
        drop(job_tx);
        backend.shutdown();
    }

    /// A crash between submission and completion (the mid-batch window)
    /// leaves the double-backup target invalidated but the *other* backup
    /// untouched — the fallback the recovery path depends on. Modeled by
    /// dropping the in-flight job without completing it.
    #[test]
    fn mid_batch_crash_window_preserves_the_other_backup() {
        let root = tempfile::tempdir().unwrap();
        let (ctx, _done_rx) = make_ctx(root.path(), DiskOrg::DoubleBackup, 7);
        let g = geometry();
        let ids: Vec<u32> = (0..g.n_objects()).collect();
        let data = vec![0xAB; ids.len() * g.object_size as usize];
        let mut store = ctx.store.lock();
        let mut buf = Vec::new();
        let inflight = submit_job(
            &ctx,
            &mut store,
            &mut buf,
            0,
            Job::Eager {
                ids,
                data,
                seq: 0,
                tick: 9,
                target: 1,
                full_image: true,
            },
        );
        // "Crash": the job is submitted, never completed.
        drop(inflight);
        drop(store);
        drop(ctx);
        let set = crate::files::BackupSet::open(root.path(), g).unwrap();
        assert_eq!(
            set.newest_consistent(),
            Some((0, 0)),
            "target 1 must be invalidated, backup 0 (boot image) intact"
        );
    }
}
