//! The writer seam: pluggable backends executing the shards' checkpoint
//! flush jobs.
//!
//! The real engine's mutator side (`crate::engine::RealBackend`) and the
//! asynchronous writer meet at exactly one interface: tagged flush jobs
//! (`PoolJob`) go in through a bounded channel, one `Done` per job
//! comes back through the owning shard's completion channel, and sweep
//! progress is published through the shard's frontier. Everything a
//! backend needs to execute a job lives in the shard's `ShardCtx`. The
//! `WriterBackend` trait is that seam made explicit — extracted from the
//! historical writer-pool worker loop so the scheduling policy can vary
//! while `ShardCtx`/`Job` stay unchanged.
//!
//! Three backends implement it:
//!
//! * **`WriterPool`** (`thread-pool`): N worker threads pull jobs off
//!   the shared queue and execute each one end to end — data writes, data
//!   sync, metadata commit — before acking it. A single-shard run with one
//!   worker is exactly the classic dedicated writer thread.
//! * **`AsyncBatchedWriter`** (`async-batched`): an io_uring-style
//!   submission/completion engine on a single loop thread. Each round it
//!   coalesces every queued job into a batch — waiting up to the
//!   configured **adaptive batch window** for stragglers while the queue
//!   is shallow — issues all data writes in the **submission phase**,
//!   then hands the batch to the **durability scheduler**: collect every
//!   pending durability target across the batch, issue **one data
//!   `fsync` per distinct target file** — or, when several distinct
//!   files share a device and `syncfs` is available, **one device
//!   barrier per device** — then run all metadata commits and ack
//!   completions **out of submission order** (newest shard first, FIFO
//!   within a shard so pipelined checkpoints ack in order). Syncs
//!   thereby coalesce at the batch tail instead of interleaving with
//!   writes, the way a ring's reaped CQEs trail its submitted SQEs, and
//!   same-file targets within a batch pay a single call.
//! * **`UringWriter`** (`io-uring`): the same batching discipline driven
//!   through a **real kernel ring** (`crate::uring`, raw
//!   `io_uring_setup`/`io_uring_enter` syscalls). Each batch is processed
//!   in per-shard FIFO *waves* (wave *k* holds every shard's *k*-th job);
//!   a wave's data writes become `IORING_OP_WRITEV` SQEs — contiguous-id
//!   runs for the double-backup files, whole serialized segments for the
//!   log — reaped out of order by `user_data`. Durability either rides
//!   the ring too (`IORING_OP_FSYNC` SQEs: chained per job via
//!   `IOSQE_IO_LINK` with coalescing off, one per distinct target file
//!   per wave with coalescing on) or falls back to the synchronous
//!   per-job fsync in the completion phase. Availability is probed once
//!   per process; where the kernel has no io_uring the selection seam
//!   silently substitutes `AsyncBatchedWriter` and reports the fallback.
//!
//! The first two backends execute the *same* two phase functions
//! (`submit_job`, `complete_job`); they differ only in scheduling, and
//! the ring backend shares the completion phase (and reproduces the
//! submission phase's bytes exactly — pinned by the differential tests
//! and `log_store`'s serializer test). That shared core is
//! what makes the recovery-equivalence contract auditable: identical job
//! streams produce byte-identical files (pinned by the differential tests
//! below and in `tests/writer_equivalence.rs`), because per shard the
//! phases always run in order and the durability ordering — data sync
//! *before* metadata commit — is a property of the completion machinery,
//! not of the scheduler. The scheduler only *strengthens* the ordering:
//! with coalescing on, **all** of a batch's data syncs precede **any** of
//! its metadata commits, so the invariant holds batch-globally instead of
//! per job (see DESIGN.md § "Durability scheduling").
//!
//! Adding a fourth backend (a replicated remote store, `O_DIRECT`
//! preallocated images) means: implement `WriterBackend` over the two
//! phase functions (or your own transport), add a `WriterBackendKind`
//! variant, and wire it in `spawn_writer`; the facade, the builder's
//! `.writer(…)` option and the comparison matrix pick it up. See
//! DESIGN.md § "The writer backends".

use crate::engine::{Done, Job, PoolJob, ShardCtx, Store};
use crate::fault::{FaultSite, RetryCounters};
use crate::files::SyncTarget;
use mmoc_core::run::WriterBackend as WriterBackendKind;
use mmoc_core::{CursorKind, ObjectId};
use std::io;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The durability-scheduling policy a writer backend runs under.
/// Interpreted by the batched engine; the thread pool completes jobs one
/// at a time and ignores both knobs.
#[derive(Debug, Clone, Copy)]
pub(crate) struct DurabilityConfig {
    /// Adaptive batch window: how long a shallow batch (fewer jobs than
    /// shards) waits for stragglers before closing. Zero = close
    /// immediately (the historical "everything currently queued" batch).
    pub(crate) batch_window: Duration,
    /// Occupancy-driven window auto-tuning (`batch_window = auto`):
    /// ignore the fixed window and derive each round's window from the
    /// observed job inter-arrival EWMA — zero after a full batch (the
    /// queue is keeping up; waiting buys nothing), otherwise the EWMA
    /// times the full-batch size (`n_shards × pipeline_depth`), capped.
    /// See DESIGN.md § "Checkpoint pipelining".
    pub(crate) auto_window: bool,
    /// Cross-shard fsync coalescing: issue one data sync per distinct
    /// target file per batch (all data syncs before any metadata commit)
    /// instead of one per job.
    pub(crate) coalesce_fsync: bool,
    /// Device-level sync barriers: when a batch holds two or more
    /// distinct target files on one device, collapse their per-file
    /// fsyncs into a single `syncfs` on that device (capability-probed;
    /// falls back to per-file fsync where `syncfs` is unavailable).
    /// Requires `coalesce_fsync`.
    pub(crate) device_sync: bool,
    /// Checkpoint pipeline depth the engine runs at. The batched writer
    /// considers a batch *full* at `n_shards × pipeline_depth` jobs —
    /// everything the driver can possibly have in flight — so at depth
    /// ≥ 2 the window keeps a batch open past one-job-per-shard and
    /// same-file (same-shard) jobs coalesce under one fsync.
    pub(crate) pipeline_depth: u32,
}

impl DurabilityConfig {
    /// The historical policy: no waiting, per-job durability.
    #[cfg(test)]
    pub(crate) fn legacy() -> Self {
        DurabilityConfig {
            batch_window: Duration::ZERO,
            auto_window: false,
            coalesce_fsync: false,
            device_sync: false,
            pipeline_depth: 1,
        }
    }
}

/// Upper bound on the auto-tuned batch window, so a stalling mutator
/// (long pauses between checkpoints) cannot teach the writer to hold
/// acks hostage for the whole inter-checkpoint gap.
const MAX_AUTO_WINDOW: Duration = Duration::from_millis(2);

/// EWMA smoothing factor for the observed job inter-arrival gap.
const ARRIVAL_EWMA_ALPHA: f64 = 0.25;

/// The seam between the engine and its asynchronous writer: anything that
/// drains tagged flush jobs over the shards' contexts, sends one [`Done`]
/// per job on the owning shard's completion channel, and joins cleanly.
///
/// Lifecycle contract (shared with the historical pool): backends run
/// until every job sender is dropped; callers drop their senders and then
/// call [`WriterBackend::shutdown`] before touching the shards' files.
pub(crate) trait WriterBackend: Send {
    /// Join the backend's threads. Callers must have dropped every job
    /// sender first, or this blocks forever.
    fn shutdown(&mut self);
}

/// Spawn the writer backend `kind` selects, draining `job_rx` over the
/// given shard contexts. `threads` sizes the thread pool; the batched
/// and ring engines always run one submission/completion loop.
///
/// Returns the backend together with the kind that **actually** runs:
/// `io-uring` falls back to `async-batched` when the kernel capability
/// probe fails (or ring setup errors), and callers surface the
/// substitution in their reports so results never silently lie about
/// the backend that produced them.
pub(crate) fn spawn_writer(
    kind: WriterBackendKind,
    ctxs: Arc<Vec<ShardCtx>>,
    threads: usize,
    job_rx: crossbeam::channel::Receiver<PoolJob>,
    sched: DurabilityConfig,
) -> (Box<dyn WriterBackend>, WriterBackendKind) {
    match kind {
        WriterBackendKind::ThreadPool => (
            Box::new(WriterPool::spawn(ctxs, threads, job_rx)),
            WriterBackendKind::ThreadPool,
        ),
        WriterBackendKind::AsyncBatched => (
            Box::new(AsyncBatchedWriter::spawn(ctxs, job_rx, sched)),
            WriterBackendKind::AsyncBatched,
        ),
        WriterBackendKind::IoUring => {
            if crate::uring::ring_available() {
                // Setup can still fail post-probe (fd limits, mmap
                // pressure): fall back exactly like a failed probe.
                if let Ok(w) = UringWriter::try_spawn(Arc::clone(&ctxs), job_rx.clone(), sched) {
                    return (Box::new(w), WriterBackendKind::IoUring);
                }
            }
            (
                Box::new(AsyncBatchedWriter::spawn(ctxs, job_rx, sched)),
                WriterBackendKind::AsyncBatched,
            )
        }
    }
}

// ---------------------------------------------------------------------------
// The shared execution core: submission and completion phases
// ---------------------------------------------------------------------------

/// A job whose data writes have been issued but whose durability point —
/// data sync plus metadata commit (double backup) or log sync (log) — has
/// not been reached yet. The window between [`submit_job`] and
/// [`complete_job`] is exactly the "submitted but not completed" state
/// the mid-batch crash-injection tests model: a crash here leaves the
/// target backup invalidated (or the log tail torn) and recovery must
/// fall back to the previous consistent image.
pub(crate) struct InFlight {
    shard: usize,
    t0: Instant,
    objects: u32,
    recycled: Option<(Vec<u32>, Vec<u8>)>,
    state: io::Result<PendingDurability>,
    /// Set by the durability scheduler when it has already brought (or
    /// failed to bring) this job's data to stable storage batch-globally;
    /// `None` means the completion phase syncs inline, per job.
    presync: Option<Presync>,
    /// The checkpoint delta destined for the shard's peer mirrors, captured
    /// at submission when the run has a replica tier; published by the
    /// completion phase only after the durability point (publish-on-commit).
    replica: Option<ReplicaDelta>,
    /// Transient-fault bookkeeping accumulated so far (submission-phase
    /// retries; the completion phase adds its own and any presync share).
    counters: RetryCounters,
    /// The job completed under a degraded backend (the ring died and its
    /// remaining I/O was redone through the syscall path).
    degraded: bool,
}

/// One checkpoint's delta for the replica tier: the flushed object ids and
/// their consistent-tick images, exactly the bytes the disk organization
/// persisted for the checkpoint at `tick`.
pub(crate) struct ReplicaDelta {
    tick: u64,
    ids: Vec<u32>,
    data: Vec<u8>,
}

impl InFlight {
    /// The shard whose store this job targets.
    pub(crate) fn shard(&self) -> usize {
        self.shard
    }
}

/// Outcome of a scheduled (batch-global) data sync for one job.
struct Presync {
    /// The sync result this job's durability depends on. Jobs sharing a
    /// coalesced `fsync` (or a whole-device barrier) share its outcome:
    /// if the call failed, none of them may commit metadata.
    result: io::Result<()>,
    /// Data `fsync` calls attributed to this job: 1 for the job that
    /// triggered the call, 0 for jobs riding on a coalesced one. Summing
    /// over jobs therefore counts actual calls.
    data_syncs: u32,
    /// `syncfs` device barriers attributed to this job, counted the same
    /// way: 1 for the triggering job, 0 for riders.
    device_syncs: u32,
    /// Transient-fault retries the scheduled sync burned, attributed to
    /// the triggering job (0 for riders, like the call counts above).
    retries: u64,
    /// Retry budgets exhausted during the scheduled sync, same attribution.
    exhausted: u64,
}

/// What remains between a submitted job and its durability point.
/// `Copy` so the commit can be re-issued under the retry policy.
#[derive(Clone, Copy)]
enum PendingDurability {
    /// Double backup: objects written into `target`; the data sync and
    /// the `commit(target, tick)` metadata write remain.
    Double { target: usize, tick: u64 },
    /// Log: the segment is sealed in the page cache; the log sync remains.
    Log,
}

/// Identity of the file a pending job's data sync targets (cached by the
/// store at create/open; no syscall).
fn sync_target_of(store: &Store, pending: &PendingDurability) -> SyncTarget {
    match (pending, store) {
        (PendingDurability::Double { target, .. }, Store::Double(set)) => set.sync_target(*target),
        (PendingDurability::Log, Store::Log(log)) => log.sync_target(),
        _ => unreachable!("pending durability matches the shard's disk organization"),
    }
}

/// Raw descriptor of the file a pending job's data sync targets, for the
/// `syncfs` device barrier (any fd on the device names the filesystem).
fn sync_fd_of(store: &Store, pending: &PendingDurability) -> std::os::unix::io::RawFd {
    match (pending, store) {
        (PendingDurability::Double { target, .. }, Store::Double(set)) => set.sync_fd(*target),
        (PendingDurability::Log, Store::Log(log)) => log.sync_fd(),
        _ => unreachable!("pending durability matches the shard's disk organization"),
    }
}

/// Issue a pending job's data sync (`fsync` the backup image / log file).
fn sync_pending(store: &Store, pending: &PendingDurability) -> io::Result<()> {
    match (pending, store) {
        (PendingDurability::Double { target, .. }, Store::Double(set)) => set.sync(*target),
        (PendingDurability::Log, Store::Log(log)) => log.sync(),
        _ => unreachable!("pending durability matches the shard's disk organization"),
    }
}

/// Commit a pending job's metadata, declaring it durable. The log
/// organization's durability point *is* the data sync, so it has nothing
/// further to do.
fn commit_pending(store: &mut Store, pending: PendingDurability) -> io::Result<()> {
    match (pending, store) {
        (PendingDurability::Double { target, tick }, Store::Double(set)) => {
            set.commit(target, tick)
        }
        (PendingDurability::Log, Store::Log(_)) => Ok(()),
        _ => unreachable!("pending durability matches the shard's disk organization"),
    }
}

/// Duplicate an `io::Result<()>` for jobs sharing one coalesced sync
/// (`io::Error` is not `Clone`; kind and message survive the copy).
fn share_sync_result(r: &io::Result<()>) -> io::Result<()> {
    match r {
        Ok(()) => Ok(()),
        Err(e) => Err(io::Error::new(e.kind(), e.to_string())),
    }
}

/// Submission phase: issue one flush job's data writes against one
/// shard's store, durability deferred. Runs on a writer thread; `buf` is
/// the thread's reusable object buffer. For sweep jobs the frontier is
/// published object by object, exactly as in the historical single-phase
/// path — frontier semantics are "read from live state and queued", not
/// "durable", so deferral does not change the copy-on-update protocol.
///
/// `queued_at` is the instant the mutator enqueued the job
/// ([`PoolJob::queued_at`]); it seeds the job's duration clock here so
/// every backend — current and future — reports durations spanning the
/// queue wait and any batch-window hold by construction.
pub(crate) fn submit_job(
    ctx: &ShardCtx,
    store: &mut Store,
    buf: &mut Vec<u8>,
    shard: usize,
    job: Job,
    queued_at: Instant,
) -> InFlight {
    let obj_size = ctx.geometry.object_size as usize;
    buf.resize(obj_size, 0);
    let shared = &ctx.shared;
    let t0 = queued_at;
    // Capture the checkpoint delta for the replica tier as a by-product
    // of staging the data writes; the completion phase publishes it to
    // the peer mirrors only after the durability point.
    let want_delta = ctx.replicas.is_some();
    let mut counters = RetryCounters::default();
    let retry = &ctx.retry;
    let (objects, state, recycled, replica) = match job {
        Job::Eager {
            ids,
            data,
            seq,
            tick,
            target,
            full_image,
        } => {
            let count = ids.len() as u32;
            let replica = want_delta.then(|| ReplicaDelta {
                tick,
                ids: ids.clone(),
                data: data.clone(),
            });
            let state = match store {
                Store::Double(set) => (|| {
                    set.invalidate(target)?;
                    for (i, &id) in ids.iter().enumerate() {
                        // Sorted I/O: ids are in increasing offset order.
                        // Each object write is retried independently: a
                        // transient fault (even a short write) leaves the
                        // target invalidated, so re-writing in place is safe.
                        let bytes = &data[i * obj_size..][..obj_size];
                        retry.run(&mut counters, || {
                            set.write_object(target, ObjectId(id), bytes)
                        })?;
                    }
                    Ok(PendingDurability::Double { target, tick })
                })(),
                // The whole append is retried: the failpoint faults before
                // any byte lands, so the log length is unchanged and the
                // retried segment restarts at the same offset (positionally
                // idempotent — pinned by the retry-equivalence tests).
                Store::Log(log) => retry
                    .run(&mut counters, || {
                        log.append_segment(
                            seq,
                            tick,
                            full_image,
                            ids.iter()
                                .enumerate()
                                .map(|(i, &id)| (ObjectId(id), &data[i * obj_size..][..obj_size])),
                            false,
                        )
                    })
                    .map(|_| PendingDurability::Log),
            };
            (count, state, Some((ids, data)), replica)
        }
        Job::Sweep {
            list,
            cursor,
            seq,
            tick,
            target,
            full_image,
        } => {
            let count = list.len() as u32;
            let mut delta = want_delta.then(|| ReplicaDelta {
                tick,
                ids: list.clone(),
                data: Vec::with_capacity(list.len() * obj_size),
            });
            // Read one object under the copy-on-update protocol:
            // lock, prefer the saved pre-update image, mark flushed.
            let read_object = |o: u32, buf: &mut [u8]| {
                let obj = ObjectId(o);
                let _guard = shared.locks[o as usize].lock();
                if shared.copied.get(o) {
                    shared.read_arena_into(obj, buf);
                } else {
                    shared.table.read_object_into(obj, buf);
                }
                shared.flushed.set(o);
            };
            // Publish progress *after* the object is read and queued:
            // the frontier must under-approximate what is flushed, so
            // a racing update copies once too often, never too rarely.
            let publish = |position: usize, o: u32| {
                let slots = match cursor {
                    CursorKind::ByIndex => u64::from(o) + 1,
                    CursorKind::ByPosition => position as u64 + 1,
                };
                ctx.frontier.store(slots, Ordering::Release);
            };
            let state = match store {
                Store::Double(set) => (|| {
                    set.invalidate(target)?;
                    for (p, &o) in list.iter().enumerate() {
                        read_object(o, buf);
                        if let Some(d) = delta.as_mut() {
                            d.data.extend_from_slice(buf);
                        }
                        retry.run(&mut counters, || set.write_object(target, ObjectId(o), buf))?;
                        publish(p, o);
                    }
                    Ok(PendingDurability::Double { target, tick })
                })(),
                Store::Log(log) => (|| {
                    // The streamed writer is not re-entrant mid-segment, so
                    // the whole-segment failpoint is pre-flighted under the
                    // retry policy before the segment opens (no byte has
                    // landed when it injects).
                    retry.run(&mut counters, || log.preflight_append())?;
                    let mut seg = log.begin_segment(seq, tick, full_image)?;
                    for (p, &o) in list.iter().enumerate() {
                        read_object(o, buf);
                        if let Some(d) = delta.as_mut() {
                            d.data.extend_from_slice(buf);
                        }
                        seg.write_object(ObjectId(o), buf)?;
                        publish(p, o);
                    }
                    seg.finish(false).map(|_| PendingDurability::Log)
                })(),
            };
            (count, state, None, delta)
        }
    };
    if let Some(c) = &ctx.crash {
        // All data writes staged, nothing synced or committed yet.
        if c.reach(crate::crash::CrashPoint::JobSubmitted).is_some() {
            c.go_down();
        }
    }
    InFlight {
        shard,
        t0,
        objects,
        recycled,
        state,
        presync: None,
        replica,
        counters,
        degraded: false,
    }
}

/// Completion phase: bring a submitted job to its durability point — data
/// `fsync` *before* metadata commit, the ordering the double-backup
/// correctness argument rests on — and assemble its [`Done`]. The job is
/// only acked to the mutator after this returns.
///
/// When the durability scheduler has already synced the job's data
/// batch-globally (`inflight.presync` set), only the metadata commit
/// remains here; otherwise the sync happens inline, per job — the
/// historical path, still used by the thread pool and by the batched
/// engine with coalescing off. `batch_jobs` is the occupancy of the
/// batch this job completed in (1 for the thread pool), and `sqe_batch`
/// the occupancy of the ring submission round that carried the job's
/// data writes (0 for the syscall-per-write backends), both reported
/// through [`Done`] for the writer instrumentation.
pub(crate) fn complete_job(
    ctx: &ShardCtx,
    store: &mut Store,
    inflight: InFlight,
    batch_jobs: u32,
    sqe_batch: u32,
) -> Done {
    let InFlight {
        shard,
        t0,
        objects,
        recycled,
        state,
        presync,
        replica,
        mut counters,
        degraded,
    } = inflight;
    let mut data_syncs = 0;
    let mut device_syncs = 0;
    let is_down = || ctx.crash.as_ref().is_some_and(|c| c.is_down());
    let result = state.and_then(|pending| {
        if let Some(c) = &ctx.crash {
            if c.reach(crate::crash::CrashPoint::CompleteBeforeSync)
                .is_some()
            {
                c.go_down();
            }
        }
        match presync {
            Some(p) => {
                data_syncs = p.data_syncs;
                device_syncs = p.device_syncs;
                counters.retries += p.retries;
                counters.exhausted += p.exhausted;
                p.result?;
            }
            None if ctx.sync_data => {
                data_syncs = 1;
                ctx.retry
                    .run(&mut counters, || sync_pending(store, &pending))?;
            }
            None => {}
        }
        if let Some(c) = &ctx.crash {
            // Data is durable (or frozen), metadata is not committed:
            // the seam the double-backup correctness argument names.
            if c.reach(crate::crash::CrashPoint::CompleteBeforeCommit)
                .is_some()
            {
                c.go_down();
            }
        }
        // Publish-on-commit, step 1: open the replica push transaction.
        // The shard's peer mirrors go incomplete *before* the durability
        // point, so a crash between here and the publish below leaves no
        // mirror claiming a commit the disk never made — recovery falls
        // back to the disk tier, which holds the previous checkpoint.
        let push_open = match (&ctx.replicas, &replica) {
            (Some(set), Some(_)) if !is_down() => {
                set.invalidate(shard as u32);
                if let Some(c) = &ctx.crash {
                    if c.reach(crate::crash::CrashPoint::ReplicaPushPreCommit)
                        .is_some()
                    {
                        c.go_down();
                    }
                }
                true
            }
            _ => false,
        };
        // The commit rewrites the whole metadata record, so a retried
        // commit after a transient fault is idempotent.
        ctx.retry
            .run(&mut counters, || commit_pending(store, pending))?;
        // Step 2: the checkpoint is durable (or the simulated crash
        // froze the disk, re-checked here) — apply the delta to every
        // mirror and mark them complete at the checkpoint's tick.
        if push_open && !is_down() {
            if let (Some(set), Some(d)) = (&ctx.replicas, &replica) {
                set.publish(
                    shard as u32,
                    d.tick,
                    &d.ids,
                    &d.data,
                    ctx.geometry.object_size,
                );
                if let Some(c) = &ctx.crash {
                    if c.reach(crate::crash::CrashPoint::ReplicaPushPostCommit)
                        .is_some()
                    {
                        c.go_down();
                    }
                }
            }
        }
        Ok(())
    });
    Done {
        result: result.map(|()| t0.elapsed().as_secs_f64()),
        objects,
        bytes: u64::from(objects) * u64::from(ctx.geometry.object_size),
        recycled,
        data_syncs,
        device_syncs,
        batch_jobs,
        sqe_batch,
        retries: counters.retries,
        retry_exhausted: counters.exhausted,
        degraded,
    }
}

/// Both phases back to back: the thread-pool path, identical to the
/// historical single-phase `execute_job`. The duration clock starts at
/// `queued_at`, so the pool's reported durations span the job-channel
/// wait, measured the same way as the batched engine's window hold.
pub(crate) fn execute_job(
    ctx: &ShardCtx,
    store: &mut Store,
    buf: &mut Vec<u8>,
    shard: usize,
    job: Job,
    queued_at: Instant,
) -> Done {
    let inflight = submit_job(ctx, store, buf, shard, job, queued_at);
    complete_job(ctx, store, inflight, 1, 0)
}

// ---------------------------------------------------------------------------
// Backend 1: the thread pool
// ---------------------------------------------------------------------------

/// The shared pool of writer workers serving all shards' checkpoint work.
///
/// Workers pull tagged jobs off one MPMC queue (the channel's `Receiver`
/// is clonable; each worker owns a clone and they compete for messages
/// directly, with no external mutex serializing the handoff). Any worker
/// can flush any shard. With one shard and one worker this degenerates
/// to the classic dedicated writer thread. The queue backs up at most
/// `pipeline_depth` jobs per shard; when a shard has more than one job
/// queued, the channel's FIFO guarantees worker *pickup* order but not
/// *execution* order, so each worker holds the shard's [`TurnGate`]
/// slot for its job's submission index — store mutation and the ack both
/// happen in submission order, which the log organization's
/// scan-forward recovery and the driver's FIFO completion draining
/// depend on. At depth 1 the gate never waits.
///
/// [`TurnGate`]: crate::engine::TurnGate
pub(crate) struct WriterPool {
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl WriterPool {
    /// Spawn `threads` workers draining `job_rx` over the given shard
    /// contexts. Workers exit when every job sender has been dropped.
    pub(crate) fn spawn(
        ctxs: Arc<Vec<ShardCtx>>,
        threads: usize,
        job_rx: crossbeam::channel::Receiver<PoolJob>,
    ) -> WriterPool {
        let workers = (0..threads.max(1))
            .map(|_| {
                let ctxs = Arc::clone(&ctxs);
                let job_rx = job_rx.clone();
                std::thread::spawn(move || {
                    let mut buf = Vec::new();
                    while let Ok(PoolJob {
                        shard,
                        job,
                        queued_at,
                        order,
                    }) = job_rx.recv()
                    {
                        let ctx = &ctxs[shard];
                        // Deadlock-free: the channel is FIFO, so a
                        // worker holding order N was dispatched before
                        // any worker holding order N+1 of the same
                        // shard, and the done channel holds one slot
                        // per in-flight checkpoint — the gate's owner
                        // can always finish.
                        ctx.turn.wait_for(order);
                        let mut store = ctx.store.lock();
                        let done = execute_job(ctx, &mut store, &mut buf, shard, job, queued_at);
                        drop(store);
                        let _ = ctx.done_tx.send(done);
                        ctx.turn.advance();
                    }
                })
            })
            .collect();
        WriterPool { workers }
    }
}

impl WriterBackend for WriterPool {
    fn shutdown(&mut self) {
        for w in self.workers.drain(..) {
            w.join().expect("writer pool worker");
        }
    }
}

impl Drop for WriterPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

// ---------------------------------------------------------------------------
// Backend 2: the io_uring-style batched submission engine
// ---------------------------------------------------------------------------

/// Single-loop batched-submission writer: coalesce every queued job into
/// a batch (waiting up to the adaptive batch window for stragglers while
/// the queue is shallow), submit all data writes, then run the
/// durability scheduler — one data `fsync` per distinct target file,
/// then all metadata commits — and ack out of submission order. See the
/// module docs for the model.
pub(crate) struct AsyncBatchedWriter {
    handle: Option<std::thread::JoinHandle<()>>,
}

impl AsyncBatchedWriter {
    /// Spawn the submission/completion loop draining `job_rx` over the
    /// given shard contexts under the given durability policy. The loop
    /// exits when every job sender has been dropped and the queue is
    /// empty.
    pub(crate) fn spawn(
        ctxs: Arc<Vec<ShardCtx>>,
        job_rx: crossbeam::channel::Receiver<PoolJob>,
        sched: DurabilityConfig,
    ) -> AsyncBatchedWriter {
        let handle = std::thread::spawn(move || {
            let mut buf = Vec::new();
            // Round-to-round scratch space, reused so the steady state
            // allocates nothing per batch.
            let mut batch: Vec<PoolJob> = Vec::new();
            let mut completion_queue: Vec<InFlight> = Vec::new();
            let mut synced: Vec<(SyncTarget, io::Result<()>)> = Vec::new();
            // Per-device barrier outcomes: (dev, shared syncfs result,
            // already attributed to a job).
            let mut device_synced: Vec<(u64, io::Result<()>, bool)> = Vec::new();
            // Distinct targets of the current batch, for the barrier's
            // ≥ 2-files-per-device engagement test.
            let mut batch_targets: Vec<(SyncTarget, std::os::unix::io::RawFd)> = Vec::new();
            // Reap-order scratch (indices into the completion queue).
            let mut reap_order: Vec<usize> = Vec::new();
            let mut reaped: Vec<Option<InFlight>> = Vec::new();
            // Auto-window state: EWMA of the observed job inter-arrival
            // gap, and whether the previous batch closed full.
            let mut ewma_gap_s: Option<f64> = None;
            let mut prev_arrival: Option<Instant> = None;
            let mut last_batch_full = false;
            // A batch is full when it holds everything the driver can
            // possibly have in flight: one job per shard at depth 1 (the
            // historical notion), `depth` per shard when pipelining.
            let full_batch = ctxs.len() * sched.pipeline_depth.max(1) as usize;
            // Crash-point lattice handle: one state serves the whole
            // run, so any shard's clone names it.
            let crash = ctxs.first().and_then(|ctx| ctx.crash.clone());
            // Block for the first job, then coalesce everything that is
            // already queued: one batch per loop round. Within a shard
            // the channel is FIFO and this loop is single-threaded, so a
            // pipelined shard's jobs enter the batch — and hit its store
            // — in submission order.
            while let Ok(first) = job_rx.recv() {
                batch.push(first);
                while let Ok(job) = job_rx.try_recv() {
                    batch.push(job);
                }
                // Adaptive batch window: a full batch (`depth` jobs per
                // shard) can never grow, but a shallow one may — wait briefly
                // for stragglers so their durability points coalesce,
                // trading bounded ack latency for fewer fsyncs. Zero
                // reproduces the historical close-immediately policy.
                // Auto-tuning derives the window from the occupancy
                // counters: zero while batches close full (the queue is
                // keeping up), else the inter-arrival EWMA scaled to the
                // shard count, capped at MAX_AUTO_WINDOW.
                let window = if sched.auto_window {
                    match ewma_gap_s {
                        Some(gap) if !last_batch_full => Duration::from_secs_f64(
                            (gap * full_batch as f64).min(MAX_AUTO_WINDOW.as_secs_f64()),
                        ),
                        _ => Duration::ZERO,
                    }
                } else {
                    sched.batch_window
                };
                if !window.is_zero() {
                    let deadline = Instant::now() + window;
                    while batch.len() < full_batch {
                        let Some(left) = deadline.checked_duration_since(Instant::now()) else {
                            break;
                        };
                        match job_rx.recv_timeout(left) {
                            Ok(job) => batch.push(job),
                            Err(_) => break, // window elapsed, or senders gone
                        }
                    }
                }
                // Feed the auto-window estimator from the enqueue
                // timestamps the jobs already carry (no extra clock
                // reads on the mutator side).
                for job in &batch {
                    if let Some(prev) = prev_arrival {
                        let gap = job.queued_at.saturating_duration_since(prev).as_secs_f64();
                        ewma_gap_s = Some(match ewma_gap_s {
                            Some(e) => e + ARRIVAL_EWMA_ALPHA * (gap - e),
                            None => gap,
                        });
                    }
                    prev_arrival = Some(job.queued_at);
                }
                last_batch_full = batch.len() >= full_batch;
                let occupancy = batch.len() as u32;
                // Submission phase: issue every job's data writes;
                // durability is deferred past the whole batch.
                for PoolJob {
                    shard,
                    job,
                    queued_at,
                    order: _,
                } in batch.drain(..)
                {
                    let ctx = &ctxs[shard];
                    let mut store = ctx.store.lock();
                    // The job's clock starts at its enqueue instant, so
                    // its reported duration spans the channel wait and
                    // the window hold it sat through — exactly the
                    // latency the window trades away.
                    completion_queue
                        .push(submit_job(ctx, &mut store, &mut buf, shard, job, queued_at));
                }
                // Durability scheduler, phase one: bring every pending
                // target's *data* to stable storage — one fsync per
                // distinct file, jobs sharing a file sharing the call
                // (and its outcome). Runs before any metadata commit, so
                // the sync-before-commit invariant holds batch-globally.
                //
                // Device barriers strengthen the collapse one level:
                // when the batch holds ≥ 2 distinct files on one device
                // and `syncfs` is available, a single whole-device call
                // replaces all of that device's per-file fsyncs (it
                // flushes a superset of their dirty pages, so the
                // sync-before-commit ordering is preserved a fortiori).
                if sched.coalesce_fsync {
                    synced.clear();
                    device_synced.clear();
                    if sched.device_sync {
                        batch_targets.clear();
                        for inflight in &completion_queue {
                            let ctx = &ctxs[inflight.shard];
                            let Ok(pending) = &inflight.state else {
                                continue;
                            };
                            if !ctx.sync_data {
                                continue;
                            }
                            let store = ctx.store.lock();
                            let target = sync_target_of(&store, pending);
                            if !batch_targets.iter().any(|(t, _)| *t == target) {
                                batch_targets.push((target, sync_fd_of(&store, pending)));
                            }
                        }
                        for i in 0..batch_targets.len() {
                            let (target, fd) = batch_targets[i];
                            let dev = target.dev();
                            let distinct =
                                batch_targets.iter().filter(|(t, _)| t.dev() == dev).count();
                            if distinct < 2 || device_synced.iter().any(|(d, ..)| *d == dev) {
                                continue;
                            }
                            if let Some(c) = &crash {
                                if c.is_down() {
                                    continue;
                                }
                                // The kill lands before the barrier: no
                                // device flush, per-file fallback also
                                // frozen — pure page-cache loss.
                                if c.reach(crate::crash::CrashPoint::DeviceBarrier).is_some() {
                                    c.go_down();
                                    continue;
                                }
                            }
                            match crate::device_sync::sync_device(fd) {
                                Ok(true) => device_synced.push((dev, Ok(()), false)),
                                Ok(false) => {} // unavailable: per-file fallback
                                Err(e) => device_synced.push((dev, Err(e), false)),
                            }
                        }
                    }
                    for inflight in &mut completion_queue {
                        let ctx = &ctxs[inflight.shard];
                        let Ok(pending) = &inflight.state else {
                            continue; // submission failed; nothing to sync
                        };
                        if !ctx.sync_data {
                            continue;
                        }
                        let store = ctx.store.lock();
                        let target = sync_target_of(&store, pending);
                        if let Some((_, outcome, charged)) =
                            device_synced.iter_mut().find(|(d, ..)| *d == target.dev())
                        {
                            let device_syncs = u32::from(!*charged);
                            *charged = true;
                            inflight.presync = Some(Presync {
                                result: share_sync_result(outcome),
                                data_syncs: 0,
                                device_syncs,
                                retries: 0,
                                exhausted: 0,
                            });
                            continue;
                        }
                        inflight.presync = Some(match synced.iter().find(|(t, _)| *t == target) {
                            Some((_, outcome)) => Presync {
                                result: share_sync_result(outcome),
                                data_syncs: 0,
                                device_syncs: 0,
                                retries: 0,
                                exhausted: 0,
                            },
                            None => {
                                // The triggering job carries the retry
                                // policy for the coalesced call, exactly
                                // like the call count itself.
                                let mut rc = RetryCounters::default();
                                let outcome =
                                    ctx.retry.run(&mut rc, || sync_pending(&store, pending));
                                let presync = Presync {
                                    result: share_sync_result(&outcome),
                                    data_syncs: 1,
                                    device_syncs: 0,
                                    retries: rc.retries,
                                    exhausted: rc.exhausted,
                                };
                                synced.push((target, outcome));
                                presync
                            }
                        });
                    }
                }
                if let Some(c) = &crash {
                    // The scheduler's seam: every data sync of the batch
                    // is done, no metadata commit has happened yet.
                    if c.reach(crate::crash::CrashPoint::SchedulerCommitSeam)
                        .is_some()
                    {
                        c.go_down();
                    }
                }
                // Durability scheduler, phase two: metadata commits +
                // acks, reaped newest shard first (deliberately not
                // batch-FIFO, so consumers cannot grow an accidental
                // cross-shard ordering dependency) but in submission
                // order *within* a shard — a pipelined shard's acks must
                // arrive FIFO for the driver's completion draining.
                // With one job per shard this is exactly the historical
                // newest-first reap. With coalescing off each job also
                // syncs inline here, the historical path.
                // Wave ordering: every shard's k-th job acks (newest
                // shard first) before any shard's (k+1)-th, so a
                // pipelined shard never monopolizes the ack stream while
                // other shards' completion channels sit full.
                reap_order.clear();
                reap_order.extend(0..completion_queue.len());
                reap_order.sort_by_key(|&i| {
                    let shard = completion_queue[i].shard();
                    let wave = completion_queue[..i]
                        .iter()
                        .filter(|f| f.shard() == shard)
                        .count();
                    let newest = completion_queue
                        .iter()
                        .rposition(|f| f.shard() == shard)
                        .expect("index i itself matches");
                    (wave, std::cmp::Reverse(newest), i)
                });
                reaped.clear();
                reaped.extend(completion_queue.drain(..).map(Some));
                for &i in &reap_order {
                    let inflight = reaped[i].take().expect("each job reaped once");
                    let ctx = &ctxs[inflight.shard()];
                    let mut store = ctx.store.lock();
                    let done = complete_job(ctx, &mut store, inflight, occupancy, 0);
                    drop(store);
                    let _ = ctx.done_tx.send(done);
                }
            }
        });
        AsyncBatchedWriter {
            handle: Some(handle),
        }
    }
}

impl WriterBackend for AsyncBatchedWriter {
    fn shutdown(&mut self) {
        if let Some(h) = self.handle.take() {
            h.join().expect("batched writer loop");
        }
    }
}

impl Drop for AsyncBatchedWriter {
    fn drop(&mut self) {
        self.shutdown();
    }
}

// ---------------------------------------------------------------------------
// Backend 3: the real io_uring ring
// ---------------------------------------------------------------------------

/// The batched engine's scheduling discipline driven through a real
/// kernel `io_uring` (see `crate::uring`): data writes are submitted as
/// `IORING_OP_WRITEV` SQEs and reaped out of order by `user_data`;
/// durability rides the ring as `IORING_OP_FSYNC` SQEs (chained per job
/// via `IOSQE_IO_LINK` with coalescing off, one per distinct target file
/// per batch with coalescing on) or falls back to the synchronous
/// per-job fsync. Within a batch, each shard's jobs are written in
/// per-shard FIFO *waves* so same-file appends stack at precomputed
/// offsets; the sync-before-commit invariant and the batched engine's
/// wave-ordered ack discipline are preserved unchanged.
///
/// Constructed through [`UringWriter::try_spawn`] only after the
/// process-global capability probe succeeded; `spawn_writer` substitutes
/// [`AsyncBatchedWriter`] (and says so) everywhere else.
pub(crate) struct UringWriter {
    handle: Option<std::thread::JoinHandle<()>>,
}

impl UringWriter {
    /// Create the ring, then spawn the submission/completion loop. The
    /// ring is created *before* the thread so every failure mode —
    /// `ENOSYS`, `EPERM`, memlock limits — surfaces here and the caller
    /// can fall back instead of panicking mid-run.
    pub(crate) fn try_spawn(
        ctxs: Arc<Vec<ShardCtx>>,
        job_rx: crossbeam::channel::Receiver<PoolJob>,
        sched: DurabilityConfig,
    ) -> io::Result<UringWriter> {
        // Room for several WRITEV runs plus a chained fsync per shard;
        // the submission loop drains mid-wave when a batch wants more.
        let entries = (ctxs.len() * 4).clamp(32, 256) as u32;
        let ring = crate::uring::Ring::new(entries)?;
        let use_links = crate::uring::links_available();
        let handle =
            std::thread::spawn(move || run_ring_loop(&ctxs, &job_rx, sched, ring, use_links));
        Ok(UringWriter {
            handle: Some(handle),
        })
    }
}

impl WriterBackend for UringWriter {
    fn shutdown(&mut self) {
        if let Some(h) = self.handle.take() {
            h.join().expect("uring writer loop");
        }
    }
}

impl Drop for UringWriter {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One staged ring operation of the current wave. `ptr`/`len` name a
/// buffer owned by the wave (a job's eager data, or a wave-arena sweep
/// image / serialized segment) that outlives the reap by construction.
struct RingOp {
    /// Index into the batch's completion queue.
    job: usize,
    fd: std::os::unix::io::RawFd,
    offset: u64,
    ptr: *const u8,
    len: usize,
    /// A chained `IORING_OP_FSYNC` (no data; `ptr`/`len`/`offset` unused).
    fsync: bool,
    /// This SQE links to the next one (same-job durability chain).
    link: bool,
}

/// Outcome of a job's chained (`IOSQE_IO_LINK`) fsync SQE.
enum ChainedFsync {
    /// The ring brought the job's data to stable storage.
    Done,
    /// The chain broke (`ECANCELED` after a repaired short write, or the
    /// enter call failed): durability unresolved, sync inline instead.
    Retry,
    /// A working fsync reported a real I/O failure.
    Failed(io::Error),
}

const ECANCELED: i32 = 125;

/// Stage one job's data writes as ring operations, mirroring
/// [`submit_job`] byte for byte: double-backup writes become one WRITEV
/// per contiguous-id run at the objects' fixed offsets; log appends
/// become one WRITEV of the serialized segment at the stacked append
/// offset (reserved immediately, so a pipelined shard's next segment
/// lands after it). Sweep jobs run the copy-on-update read protocol —
/// lock, prefer the saved pre-update image, publish the frontier after
/// each object is read and queued — into a wave-local image first.
#[allow(clippy::too_many_arguments)]
fn stage_ring_job(
    ctx: &ShardCtx,
    store: &mut Store,
    job_idx: usize,
    shard: usize,
    job: Job,
    queued_at: Instant,
    ops: &mut Vec<RingOp>,
    arena: &mut Vec<Vec<u8>>,
) -> InFlight {
    let obj_size = ctx.geometry.object_size as usize;
    let shared = &ctx.shared;
    // Consulted at each staging gate (not cached): a crash point can
    // fire *inside* this function (the invalidate site), and nothing
    // staged after the kill instant may reach the ring.
    let is_down = || ctx.crash.as_ref().is_some_and(|c| c.is_down());
    // Split `ids` (increasing) into maximal consecutive runs: each run
    // is contiguous in the packed data buffer *and* on disk, so one
    // WRITEV covers it. Returns (start_index, end_index) pairs.
    let push_runs = |ops: &mut Vec<RingOp>,
                     ids: &[u32],
                     base: *const u8,
                     fd,
                     geometry: &mmoc_core::StateGeometry| {
        let mut start = 0usize;
        while start < ids.len() {
            let mut end = start + 1;
            while end < ids.len() && ids[end] == ids[end - 1] + 1 {
                end += 1;
            }
            ops.push(RingOp {
                job: job_idx,
                fd,
                offset: geometry.object_offset(ObjectId(ids[start])),
                // SAFETY-relevant invariant: `base` points at the packed
                // object buffer; run bytes start at `start * obj_size`.
                ptr: unsafe { base.add(start * obj_size) },
                len: (end - start) * obj_size,
                fsync: false,
                link: false,
            });
            start = end;
        }
    };
    // Delta capture for the replica tier, published at completion.
    let want_delta = ctx.replicas.is_some();
    let (objects, state, recycled, replica) = match job {
        Job::Eager {
            ids,
            data,
            seq,
            tick,
            target,
            full_image,
        } => {
            let count = ids.len() as u32;
            let replica = want_delta.then(|| ReplicaDelta {
                tick,
                ids: ids.clone(),
                data: data.clone(),
            });
            let state = match store {
                Store::Double(set) => match set.invalidate(target) {
                    Err(e) => Err(e),
                    Ok(()) => {
                        if !is_down() {
                            push_runs(ops, &ids, data.as_ptr(), set.sync_fd(target), &ctx.geometry);
                        }
                        Ok(PendingDurability::Double { target, tick })
                    }
                },
                Store::Log(log) => {
                    let mut seg = Vec::new();
                    crate::log_store::serialize_segment(
                        seq,
                        tick,
                        full_image,
                        ids.iter()
                            .enumerate()
                            .map(|(i, &id)| (ObjectId(id), &data[i * obj_size..][..obj_size])),
                        &mut seg,
                    );
                    let offset = log.append_offset();
                    if !is_down() {
                        log.note_appended(seg.len() as u64);
                        ops.push(RingOp {
                            job: job_idx,
                            fd: log.sync_fd(),
                            offset,
                            ptr: seg.as_ptr(),
                            len: seg.len(),
                            fsync: false,
                            link: false,
                        });
                    }
                    arena.push(seg);
                    Ok(PendingDurability::Log)
                }
            };
            // `data` moves into the in-flight record below; a Vec move
            // never relocates its heap buffer, so the op pointers stay
            // valid for the life of the wave.
            (count, state, Some((ids, data)), replica)
        }
        Job::Sweep {
            list,
            cursor,
            seq,
            tick,
            target,
            full_image,
        } => {
            let count = list.len() as u32;
            let read_object = |o: u32, buf: &mut [u8]| {
                let obj = ObjectId(o);
                let _guard = shared.locks[o as usize].lock();
                if shared.copied.get(o) {
                    shared.read_arena_into(obj, buf);
                } else {
                    shared.table.read_object_into(obj, buf);
                }
                shared.flushed.set(o);
            };
            let publish = |position: usize, o: u32| {
                let slots = match cursor {
                    CursorKind::ByIndex => u64::from(o) + 1,
                    CursorKind::ByPosition => position as u64 + 1,
                };
                ctx.frontier.store(slots, Ordering::Release);
            };
            // Capture the sweep into a wave-local image. The frontier is
            // published per object once it is read and queued — "queued"
            // here means captured for ring submission, which is the same
            // under-approximation the synchronous path provides.
            let capture = |image: &mut Vec<u8>| {
                for (p, &o) in list.iter().enumerate() {
                    read_object(o, &mut image[p * obj_size..][..obj_size]);
                    publish(p, o);
                }
            };
            let mut replica = None;
            let state = match store {
                Store::Double(set) => match set.invalidate(target) {
                    Err(e) => Err(e),
                    Ok(()) => {
                        let mut image = vec![0u8; list.len() * obj_size];
                        capture(&mut image);
                        if want_delta {
                            replica = Some(ReplicaDelta {
                                tick,
                                ids: list.clone(),
                                data: image.clone(),
                            });
                        }
                        if !is_down() {
                            push_runs(
                                ops,
                                &list,
                                image.as_ptr(),
                                set.sync_fd(target),
                                &ctx.geometry,
                            );
                        }
                        arena.push(image);
                        Ok(PendingDurability::Double { target, tick })
                    }
                },
                Store::Log(log) => {
                    let mut image = vec![0u8; list.len() * obj_size];
                    capture(&mut image);
                    if want_delta {
                        replica = Some(ReplicaDelta {
                            tick,
                            ids: list.clone(),
                            data: image.clone(),
                        });
                    }
                    let mut seg = Vec::new();
                    crate::log_store::serialize_segment(
                        seq,
                        tick,
                        full_image,
                        list.iter()
                            .enumerate()
                            .map(|(p, &o)| (ObjectId(o), &image[p * obj_size..][..obj_size])),
                        &mut seg,
                    );
                    let offset = log.append_offset();
                    if !is_down() {
                        log.note_appended(seg.len() as u64);
                        ops.push(RingOp {
                            job: job_idx,
                            fd: log.sync_fd(),
                            offset,
                            ptr: seg.as_ptr(),
                            len: seg.len(),
                            fsync: false,
                            link: false,
                        });
                    }
                    arena.push(seg);
                    Ok(PendingDurability::Log)
                }
            };
            (count, state, None, replica)
        }
    };
    InFlight {
        shard,
        t0: queued_at,
        objects,
        recycled,
        state,
        presync: None,
        replica,
        counters: RetryCounters::default(),
        degraded: false,
    }
}

/// The ring backend's submission/completion loop. Structure mirrors
/// [`AsyncBatchedWriter::spawn`] — batch drain, adaptive window,
/// batch-global durability scheduling, wave-ordered acks — with the
/// write phase (and, where possible, the fsyncs) driven through the
/// kernel ring instead of per-write syscalls.
fn run_ring_loop(
    ctxs: &[ShardCtx],
    job_rx: &crossbeam::channel::Receiver<PoolJob>,
    sched: DurabilityConfig,
    mut ring: crate::uring::Ring,
    use_links: bool,
) {
    use crate::uring::{pwrite_all, Iovec, Sqe};
    let cap = ring.capacity() as usize;
    // A job's fsync rides the ring as a linked chain only when links are
    // supported, coalescing is off (the scheduler owns durability
    // otherwise), and the chain fits the ring.
    let chain_fsync = use_links && !sched.coalesce_fsync;
    // Round-to-round scratch, reused so the steady state allocates
    // little per batch.
    let mut batch: Vec<PoolJob> = Vec::new();
    let mut completion_queue: Vec<InFlight> = Vec::new();
    let mut sqe_batches: Vec<u32> = Vec::new();
    let mut chained: Vec<Option<ChainedFsync>> = Vec::new();
    let mut arena: Vec<Vec<u8>> = Vec::new();
    let mut ops: Vec<RingOp> = Vec::new();
    let mut outcomes: Vec<Option<i32>> = Vec::new();
    let mut synced: Vec<(SyncTarget, io::Result<()>, bool, RetryCounters)> = Vec::new();
    let mut device_synced: Vec<(u64, io::Result<()>, bool)> = Vec::new();
    let mut batch_targets: Vec<(SyncTarget, std::os::unix::io::RawFd)> = Vec::new();
    let mut reap_order: Vec<usize> = Vec::new();
    let mut reaped: Vec<Option<(InFlight, u32)>> = Vec::new();
    let mut ewma_gap_s: Option<f64> = None;
    let mut prev_arrival: Option<Instant> = None;
    let mut last_batch_full = false;
    // Latched on any `io_uring_enter`/push failure: once an enter round
    // fails, completions for its in-flight SQEs could surface later and
    // a fresh round would misattribute them by `user_data`, so the loop
    // stops using the ring for good and runs the synchronous redo path
    // (positional rewrites are idempotent; fsyncs fall back inline).
    let mut ring_dead = false;
    let full_batch = ctxs.len() * sched.pipeline_depth.max(1) as usize;
    // Crash-point lattice handle: one state serves the whole run.
    let crash = ctxs.first().and_then(|ctx| ctx.crash.clone());
    // Transient-fault layer handle and retry budget, likewise run-global.
    let fault = ctxs.first().and_then(|ctx| ctx.fault.clone());
    let retry = ctxs.first().map_or_else(Default::default, |ctx| ctx.retry);
    while let Ok(first) = job_rx.recv() {
        batch.push(first);
        while let Ok(job) = job_rx.try_recv() {
            batch.push(job);
        }
        // Adaptive batch window, identical to the batched engine's.
        let window = if sched.auto_window {
            match ewma_gap_s {
                Some(gap) if !last_batch_full => Duration::from_secs_f64(
                    (gap * full_batch as f64).min(MAX_AUTO_WINDOW.as_secs_f64()),
                ),
                _ => Duration::ZERO,
            }
        } else {
            sched.batch_window
        };
        if !window.is_zero() {
            let deadline = Instant::now() + window;
            while batch.len() < full_batch {
                let Some(left) = deadline.checked_duration_since(Instant::now()) else {
                    break;
                };
                match job_rx.recv_timeout(left) {
                    Ok(job) => batch.push(job),
                    Err(_) => break,
                }
            }
        }
        for job in &batch {
            if let Some(prev) = prev_arrival {
                let gap = job.queued_at.saturating_duration_since(prev).as_secs_f64();
                ewma_gap_s = Some(match ewma_gap_s {
                    Some(e) => e + ARRIVAL_EWMA_ALPHA * (gap - e),
                    None => gap,
                });
            }
            prev_arrival = Some(job.queued_at);
        }
        last_batch_full = batch.len() >= full_batch;
        let occupancy = batch.len() as u32;

        // Partition into per-shard FIFO waves: wave k holds each shard's
        // k-th job of the batch, so same-file writes of a pipelined
        // shard are staged (and their append offsets reserved) in
        // submission order, wave by wave.
        let wave_of: Vec<usize> = (0..batch.len())
            .map(|i| {
                batch[..i]
                    .iter()
                    .filter(|j| j.shard == batch[i].shard)
                    .count()
            })
            .collect();
        let n_waves = wave_of.iter().max().map_or(0, |w| w + 1);
        completion_queue.clear();
        sqe_batches.clear();
        chained.clear();
        arena.clear();
        let mut pool_jobs: Vec<Option<PoolJob>> = batch.drain(..).map(Some).collect();

        for wave in 0..n_waves {
            // Stage every job of this wave: data writes become RingOps
            // over wave-stable buffers.
            ops.clear();
            let wave_start = completion_queue.len();
            for (i, slot) in pool_jobs.iter_mut().enumerate() {
                if wave_of[i] != wave {
                    continue;
                }
                let PoolJob {
                    shard,
                    job,
                    queued_at,
                    order: _,
                } = slot.take().expect("each job staged once");
                let ctx = &ctxs[shard];
                let mut store = ctx.store.lock();
                let job_idx = completion_queue.len();
                let ops_before = ops.len();
                let inflight = stage_ring_job(
                    ctx, &mut store, job_idx, shard, job, queued_at, &mut ops, &mut arena,
                );
                drop(store);
                // Annotate the job's durability chain: link its writes
                // and append the trailing fsync when the whole chain
                // fits the ring.
                let job_ops = ops.len() - ops_before;
                if chain_fsync
                    && ctx.sync_data
                    && inflight.state.is_ok()
                    && job_ops >= 1
                    && job_ops < cap
                {
                    for op in &mut ops[ops_before..] {
                        op.link = true;
                    }
                    let fd = ops[ops.len() - 1].fd;
                    ops.push(RingOp {
                        job: job_idx,
                        fd,
                        offset: 0,
                        ptr: std::ptr::null(),
                        len: 0,
                        fsync: true,
                        link: false,
                    });
                }
                completion_queue.push(inflight);
                chained.push(None);
                sqe_batches.push(0);
            }
            let wave_sqes = ops.len() as u32;
            for sb in &mut sqe_batches[wave_start..] {
                *sb = wave_sqes;
            }

            // Submission: push every op (keeping link chains whole),
            // draining completions whenever the ring runs out of room.
            // `user_data` is the op index, so out-of-order CQEs land in
            // their `outcomes` slot directly.
            outcomes.clear();
            outcomes.resize(ops.len(), None);
            if let Some(c) = &crash {
                if let Some(plan) = c.reach(crate::crash::CrashPoint::UringWaveStaged) {
                    match plan.action {
                        // Mid-batch ring death: the wave's SQEs never
                        // reach the kernel; the synchronous redo below
                        // must finish the batch byte-identically.
                        crate::crash::CrashAction::RingDeath => ring_dead = true,
                        // Simulated kill between staging and submission:
                        // nothing of this wave reaches disk.
                        crate::crash::CrashAction::Crash => c.go_down(),
                    }
                }
            }
            let down = crash.as_ref().is_some_and(|c| c.is_down());
            if !ring_dead && !down {
                // One iovec per write op, pre-reserved to its final size
                // so the pointers handed to the kernel never move.
                let mut iovecs: Vec<Iovec> = Vec::with_capacity(ops.len());
                let mut awaiting = 0usize;
                let mut i = 0usize;
                'submit: while i < ops.len() {
                    let mut j = i + 1;
                    while j < ops.len() && ops[j - 1].link {
                        j += 1;
                    }
                    let blk = j - i;
                    // Make room for the whole chain — a link chain split
                    // across enter boundaries would break the kernel's
                    // sequencing — draining completions while waiting.
                    loop {
                        while let Some(c) = ring.reap() {
                            outcomes[c.user_data as usize] = Some(c.res);
                            awaiting -= 1;
                        }
                        if awaiting + blk <= cap && ring.sq_space() as usize >= blk {
                            break;
                        }
                        if ring.submit_and_wait(1).is_err() {
                            ring_dead = true;
                            break 'submit;
                        }
                    }
                    for op in &ops[i..j] {
                        let k = iovecs.len();
                        let sqe = if op.fsync {
                            iovecs.push(Iovec {
                                iov_base: std::ptr::null_mut(),
                                iov_len: 0,
                            });
                            Sqe::fsync_data(op.fd, k as u64)
                        } else {
                            iovecs.push(Iovec {
                                iov_base: op.ptr.cast_mut().cast(),
                                iov_len: op.len,
                            });
                            Sqe::writev(op.fd, &raw const iovecs[k], 1, op.offset, k as u64)
                        };
                        let sqe = if op.link { sqe.link() } else { sqe };
                        if ring.push(sqe).is_err() {
                            ring_dead = true;
                            break 'submit;
                        }
                        awaiting += 1;
                    }
                    i = j;
                }
                while !ring_dead && awaiting > 0 {
                    if ring.submit_and_wait(awaiting as u32).is_err() {
                        ring_dead = true;
                        break;
                    }
                    while let Some(c) = ring.reap() {
                        outcomes[c.user_data as usize] = Some(c.res);
                        awaiting -= 1;
                    }
                }
            }

            // Reap bookkeeping: repair short writes, redo cancelled or
            // unsubmitted writes synchronously (positional writes are
            // idempotent), surface real errors into the job's state.
            for (k, op) in ops.iter().enumerate() {
                let mut outcome = outcomes.get(k).copied().flatten();
                if op.fsync {
                    chained[op.job] = Some(match outcome {
                        Some(r) if r >= 0 => ChainedFsync::Done,
                        Some(r) if -r == ECANCELED => ChainedFsync::Retry,
                        None => ChainedFsync::Retry,
                        Some(r) => ChainedFsync::Failed(io::Error::from_raw_os_error(-r)),
                    });
                    continue;
                }
                // Transient-fault injection at the CQE seam: rewrite a
                // successful write completion into the scheduled errno.
                // The bytes did land, so the synchronous redo below is
                // idempotent — the same contract as short-write repair.
                if let Some(f) = &fault {
                    if matches!(outcome, Some(r) if r >= 0) {
                        if let Some(kind) = f.consult(FaultSite::UringCqe) {
                            outcome = Some(-kind.errno());
                        }
                    }
                }
                let redo_from = match outcome {
                    Some(r) if r >= 0 => {
                        let done = r as usize;
                        if done >= op.len {
                            continue; // fully written
                        }
                        done // short write: repair the tail
                    }
                    Some(r) if -r == ECANCELED => 0, // broken chain: redo whole
                    Some(r) => {
                        // A real CQE error spends the job's retry budget
                        // on the synchronous redo (positional, hence
                        // idempotent). Exhaustion takes the degradation
                        // ladder: latch the ring dead so this batch — and
                        // every later one — finishes on the synchronous
                        // path. A zero budget is the historical engine:
                        // the error propagates into the job's state.
                        let job = &mut completion_queue[op.job];
                        if retry.max == 0 {
                            let e = io::Error::from_raw_os_error(-r);
                            if job.state.is_ok() {
                                job.state = Err(e);
                            }
                            continue;
                        }
                        if job.counters.retries >= u64::from(retry.max) {
                            job.counters.exhausted += 1;
                            ring_dead = true;
                        } else {
                            job.counters.retries += 1;
                        }
                        0 // redo the whole write synchronously
                    }
                    None => 0, // enter failed before completion: redo whole
                };
                if ring_dead {
                    // Any redo performed after the ring latched dead ran
                    // on the degraded synchronous path.
                    completion_queue[op.job].degraded = true;
                }
                if down {
                    continue; // frozen: the redo path writes nothing
                }
                // SAFETY: `ptr`/`len` name a wave-owned buffer (job data
                // or arena entry) still alive here.
                let bytes = unsafe { std::slice::from_raw_parts(op.ptr, op.len) };
                if let Err(e) = pwrite_all(op.fd, &bytes[redo_from..], op.offset + redo_from as u64)
                {
                    if completion_queue[op.job].state.is_ok() {
                        completion_queue[op.job].state = Err(e);
                    }
                }
            }
            if let Some(c) = &crash {
                if let Some(plan) = c.reach(crate::crash::CrashPoint::UringWaveComplete) {
                    match plan.action {
                        crate::crash::CrashAction::RingDeath => ring_dead = true,
                        crate::crash::CrashAction::Crash => c.go_down(),
                    }
                }
            }
        }

        // Resolve each job's chained fsync into its presync slot: ring
        // durability succeeded (or genuinely failed) → the completion
        // phase must not sync again; a broken chain → leave `presync`
        // empty and the completion phase retries inline, the documented
        // fallback.
        for (job_idx, outcome) in chained.iter_mut().enumerate() {
            match outcome.take() {
                Some(ChainedFsync::Done) => {
                    completion_queue[job_idx].presync = Some(Presync {
                        result: Ok(()),
                        data_syncs: 1,
                        device_syncs: 0,
                        retries: 0,
                        exhausted: 0,
                    });
                }
                Some(ChainedFsync::Failed(e)) => {
                    completion_queue[job_idx].presync = Some(Presync {
                        result: Err(e),
                        data_syncs: 1,
                        device_syncs: 0,
                        retries: 0,
                        exhausted: 0,
                    });
                }
                Some(ChainedFsync::Retry) | None => {}
            }
        }

        // Durability scheduler, batch-global exactly as in the batched
        // engine: one data sync per distinct target file across the
        // whole batch — all of them before any metadata commit — with
        // the per-file fsyncs riding the ring as FSYNC SQEs and the
        // whole-device barriers staying on their synchronous
        // capability-probed path.
        if sched.coalesce_fsync {
            synced.clear();
            device_synced.clear();
            batch_targets.clear();
            for inflight in &completion_queue {
                let ctx = &ctxs[inflight.shard];
                let Ok(pending) = &inflight.state else {
                    continue;
                };
                if !ctx.sync_data {
                    continue;
                }
                let store = ctx.store.lock();
                let target = sync_target_of(&store, pending);
                if !batch_targets.iter().any(|(t, _)| *t == target) {
                    batch_targets.push((target, sync_fd_of(&store, pending)));
                }
            }
            if sched.device_sync {
                for i in 0..batch_targets.len() {
                    let (target, fd) = batch_targets[i];
                    let dev = target.dev();
                    let distinct = batch_targets.iter().filter(|(t, _)| t.dev() == dev).count();
                    if distinct < 2 || device_synced.iter().any(|(d, ..)| *d == dev) {
                        continue;
                    }
                    if let Some(c) = &crash {
                        if c.is_down() {
                            continue;
                        }
                        if c.reach(crate::crash::CrashPoint::DeviceBarrier).is_some() {
                            c.go_down();
                            continue;
                        }
                    }
                    match crate::device_sync::sync_device(fd) {
                        Ok(true) => device_synced.push((dev, Ok(()), false)),
                        Ok(false) => {} // unavailable: per-file fallback
                        Err(e) => device_synced.push((dev, Err(e), false)),
                    }
                }
            }
            // One FSYNC SQE per distinct file not covered by a device
            // barrier, all in one submission round.
            let fsync_targets: Vec<(SyncTarget, std::os::unix::io::RawFd)> = batch_targets
                .iter()
                .filter(|(t, _)| !device_synced.iter().any(|(d, ..)| *d == t.dev()))
                .copied()
                .collect();
            let mut results: Vec<Option<io::Result<()>>> =
                fsync_targets.iter().map(|_| None).collect();
            if !ring_dead && !crash.as_ref().is_some_and(|c| c.is_down()) {
                let mut pushed = 0usize;
                for (k, (_, fd)) in fsync_targets.iter().enumerate() {
                    if pushed == cap || ring.push(Sqe::fsync_data(*fd, k as u64)).is_err() {
                        break; // the rest sync synchronously below
                    }
                    pushed += 1;
                }
                if pushed > 0 {
                    if ring.submit_and_wait(pushed as u32).is_err() {
                        ring_dead = true;
                    } else {
                        for _ in 0..pushed {
                            let Some(c) = ring.reap() else { break };
                            results[c.user_data as usize] = Some(if c.res >= 0 {
                                Ok(())
                            } else {
                                Err(io::Error::from_raw_os_error(-c.res))
                            });
                        }
                    }
                }
            }
            for (k, (target, _)) in fsync_targets.iter().enumerate() {
                let mut cnt = RetryCounters::default();
                let outcome = match results[k].take() {
                    Some(r) => r,
                    // Ring trouble (or an over-capacity tail): fall back
                    // to the synchronous per-file fsync for this target,
                    // under the retry budget like the batched engine's
                    // triggering sync.
                    None => retry.run(&mut cnt, || {
                        sync_target_fsync(ctxs, &completion_queue, *target)
                    }),
                };
                synced.push((*target, outcome, false, cnt));
            }
            for inflight in &mut completion_queue {
                let ctx = &ctxs[inflight.shard];
                let Ok(pending) = &inflight.state else {
                    continue;
                };
                if !ctx.sync_data {
                    continue;
                }
                let store = ctx.store.lock();
                let target = sync_target_of(&store, pending);
                drop(store);
                if let Some((_, outcome, charged)) =
                    device_synced.iter_mut().find(|(d, ..)| *d == target.dev())
                {
                    let device_syncs = u32::from(!*charged);
                    *charged = true;
                    inflight.presync = Some(Presync {
                        result: share_sync_result(outcome),
                        data_syncs: 0,
                        device_syncs,
                        retries: 0,
                        exhausted: 0,
                    });
                    continue;
                }
                if let Some((_, outcome, charged, cnt)) =
                    synced.iter_mut().find(|(t, ..)| *t == target)
                {
                    let data_syncs = u32::from(!*charged);
                    // Retry attempts behind a shared sync are charged to
                    // the same job that pays its fsync.
                    let (retries, exhausted) = if *charged {
                        (0, 0)
                    } else {
                        (cnt.retries, cnt.exhausted)
                    };
                    *charged = true;
                    inflight.presync = Some(Presync {
                        result: share_sync_result(outcome),
                        data_syncs,
                        device_syncs: 0,
                        retries,
                        exhausted,
                    });
                }
            }
        }

        if let Some(c) = &crash {
            // The scheduler's seam, exactly as in the batched engine.
            if c.reach(crate::crash::CrashPoint::SchedulerCommitSeam)
                .is_some()
            {
                c.go_down();
            }
        }
        // Completion: metadata commits + acks in the batched engine's
        // wave order — every shard's k-th job (newest shard first)
        // before any shard's (k+1)-th — so pipelined acks stay FIFO per
        // shard and no shard monopolizes the ack stream.
        reap_order.clear();
        reap_order.extend(0..completion_queue.len());
        reap_order.sort_by_key(|&i| {
            let shard = completion_queue[i].shard();
            let wave = completion_queue[..i]
                .iter()
                .filter(|f| f.shard() == shard)
                .count();
            let newest = completion_queue
                .iter()
                .rposition(|f| f.shard() == shard)
                .expect("index i itself matches");
            (wave, std::cmp::Reverse(newest), i)
        });
        reaped.clear();
        reaped.extend(
            completion_queue
                .drain(..)
                .zip(sqe_batches.drain(..))
                .map(Some),
        );
        for &i in &reap_order {
            let (inflight, sqe_batch) = reaped[i].take().expect("each job reaped once");
            let ctx = &ctxs[inflight.shard()];
            let mut store = ctx.store.lock();
            let done = complete_job(ctx, &mut store, inflight, occupancy, sqe_batch);
            drop(store);
            let _ = ctx.done_tx.send(done);
        }
    }
}

/// Synchronous fallback fsync for one durability target, used when the
/// ring cannot carry the coalesced sync round: find any pending job
/// naming `target` and sync through its store.
fn sync_target_fsync(
    ctxs: &[ShardCtx],
    completion_queue: &[InFlight],
    target: SyncTarget,
) -> io::Result<()> {
    for inflight in completion_queue {
        let Ok(pending) = &inflight.state else {
            continue;
        };
        let store = ctxs[inflight.shard].store.lock();
        if sync_target_of(&store, pending) == target {
            return sync_pending(&store, pending);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    //! Deterministic differential tests at the job-stream level: both
    //! backends are fed *identical* flush-job sequences over identical
    //! shard contexts and must leave byte-identical files. (End-to-end
    //! runs cannot pin file bytes — checkpoint cadence depends on
    //! wall-clock races — so the byte-level half of the equivalence
    //! matrix lives here, and the recovered-state half lives in
    //! `tests/writer_equivalence.rs`.)

    use super::*;
    use crate::engine::{create_store, TurnGate};
    use crate::shared::{Shared, SharedTable};
    use mmoc_core::{CellUpdate, DiskOrg, StateGeometry};
    use std::path::Path;
    use std::sync::atomic::AtomicU64;

    fn geometry() -> StateGeometry {
        StateGeometry::test_micro() // 4 objects of 64 B
    }

    /// Build one shard's context + store over `dir`, with a seeded live
    /// table so sweep jobs read non-trivial bytes.
    fn make_ctx(
        dir: &Path,
        disk_org: DiskOrg,
        seed: u32,
    ) -> (ShardCtx, crossbeam::channel::Receiver<Done>) {
        let g = geometry();
        let table = SharedTable::new(g);
        for i in 0..g.rows {
            for c in 0..g.cols {
                table.write_cell(CellUpdate::new(i, c, seed.wrapping_mul(31) ^ (i * 8 + c)));
            }
        }
        let shared = Arc::new(Shared::new(table));
        let store = create_store(dir, g, disk_org).unwrap();
        let (done_tx, done_rx) = crossbeam::channel::bounded::<Done>(1);
        let ctx = ShardCtx {
            store: parking_lot::Mutex::new(store),
            shared,
            frontier: Arc::new(AtomicU64::new(0)),
            geometry: g,
            sync_data: true,
            done_tx,
            turn: TurnGate::new(),
            crash: None,
            fault: None,
            retry: crate::fault::RetryPolicy::none(),
            replicas: None,
        };
        (ctx, done_rx)
    }

    /// A deterministic job stream: alternating eager and sweep jobs per
    /// shard, jobs for all shards interleaved so the batched engine sees
    /// real multi-job batches.
    fn job_stream(n_shards: usize) -> Vec<(usize, Job)> {
        let g = geometry();
        let obj_size = g.object_size as usize;
        let mut jobs = Vec::new();
        for round in 0u64..4 {
            for shard in 0..n_shards {
                let fill = (round as u8) * 16 + shard as u8 + 1;
                let job = if round % 2 == 0 {
                    let ids: Vec<u32> = (0..g.n_objects()).step_by(2).collect();
                    let data = vec![fill; ids.len() * obj_size];
                    Job::Eager {
                        ids,
                        data,
                        seq: round,
                        tick: round * 10 + 1,
                        target: (round / 2 % 2) as usize,
                        full_image: false,
                    }
                } else {
                    Job::Sweep {
                        list: (0..g.n_objects()).collect(),
                        cursor: CursorKind::ByIndex,
                        seq: round,
                        tick: round * 10 + 1,
                        target: (round / 2 % 2) as usize,
                        full_image: true,
                    }
                };
                jobs.push((shard, job));
            }
        }
        jobs
    }

    /// Drive one backend over the stream: send each round's jobs (one per
    /// shard — the driver's one-in-flight-per-shard invariant), then wait
    /// for that round's completions before the next round.
    fn drive(
        kind: WriterBackendKind,
        sched: DurabilityConfig,
        dirs: &[std::path::PathBuf],
        disk_org: DiskOrg,
    ) -> Vec<io::Result<f64>> {
        let n = dirs.len();
        let mut ctxs = Vec::new();
        let mut done_rxs = Vec::new();
        for (s, dir) in dirs.iter().enumerate() {
            let (ctx, rx) = make_ctx(dir, disk_org, s as u32);
            ctxs.push(ctx);
            done_rxs.push(rx);
        }
        let ctxs = Arc::new(ctxs);
        let (job_tx, job_rx) = crossbeam::channel::bounded::<PoolJob>(n);
        let (mut backend, _effective) = spawn_writer(kind, Arc::clone(&ctxs), 2, job_rx, sched);
        let mut results = Vec::new();
        let stream = job_stream(n);
        for (round_idx, round) in stream.chunks(n).enumerate() {
            for (shard, job) in round {
                // Reset per-checkpoint protocol state as the mutator would.
                ctxs[*shard].shared.reset_for_checkpoint();
                ctxs[*shard].frontier.store(0, Ordering::Release);
                job_tx
                    .send(PoolJob {
                        shard: *shard,
                        job: job.clone(),
                        queued_at: Instant::now(),
                        order: round_idx as u64,
                    })
                    .unwrap();
            }
            for rx in &done_rxs {
                results.push(rx.recv().unwrap().result);
            }
        }
        drop(job_tx);
        backend.shutdown();
        results
    }

    /// The coalescing scheduler with a nonzero adaptive window.
    fn coalescing(window: Duration) -> DurabilityConfig {
        DurabilityConfig {
            batch_window: window,
            auto_window: false,
            coalesce_fsync: true,
            device_sync: false,
            pipeline_depth: 1,
        }
    }

    /// File name → contents snapshot of one shard directory.
    type DirBytes = Vec<(String, Vec<u8>)>;

    fn file_bytes(dir: &Path) -> DirBytes {
        let mut entries: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir)
            .unwrap()
            .map(|e| {
                let e = e.unwrap();
                (
                    e.file_name().to_string_lossy().into_owned(),
                    std::fs::read(e.path()).unwrap(),
                )
            })
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        entries
    }

    /// The differential core: identical job streams through all three
    /// backends — and through the batched engine under every durability
    /// policy (legacy per-job, coalesced, coalesced + window, auto-tuned
    /// window, device barrier) — leave byte-identical files (images,
    /// metadata, logs) on every shard, for both disk organizations.
    /// Scheduling only reorders syncs, never bytes, and `window=0` +
    /// coalescing off *is* the historical engine, so every
    /// configuration must agree with the pool. The io-uring rows go
    /// through `spawn_writer`, so on kernels without io_uring they
    /// exercise the fallback substitution — which must agree too.
    #[test]
    fn identical_job_streams_leave_byte_identical_files() {
        let batched = WriterBackendKind::AsyncBatched;
        let configs: [(&str, WriterBackendKind, DurabilityConfig); 8] = [
            (
                "pool",
                WriterBackendKind::ThreadPool,
                DurabilityConfig::legacy(),
            ),
            ("batch_legacy", batched, DurabilityConfig::legacy()),
            ("batch_coalesced", batched, coalescing(Duration::ZERO)),
            (
                "batch_window",
                batched,
                coalescing(Duration::from_micros(300)),
            ),
            (
                "batch_auto",
                batched,
                DurabilityConfig {
                    auto_window: true,
                    ..coalescing(Duration::ZERO)
                },
            ),
            (
                "batch_device",
                batched,
                DurabilityConfig {
                    device_sync: true,
                    ..coalescing(Duration::ZERO)
                },
            ),
            (
                "uring_legacy",
                WriterBackendKind::IoUring,
                DurabilityConfig::legacy(),
            ),
            (
                "uring_coalesced",
                WriterBackendKind::IoUring,
                coalescing(Duration::ZERO),
            ),
        ];
        for disk_org in [DiskOrg::DoubleBackup, DiskOrg::Log] {
            for n_shards in [1usize, 3] {
                let root = tempfile::tempdir().unwrap();
                let dirs_for = |label: &str| -> Vec<std::path::PathBuf> {
                    (0..n_shards)
                        .map(|s| root.path().join(format!("{label}_{s}")))
                        .collect()
                };
                let mut baseline: Option<Vec<DirBytes>> = None;
                for (label, kind, sched) in configs {
                    let dirs = dirs_for(label);
                    let results = drive(kind, sched, &dirs, disk_org);
                    for r in &results {
                        assert!(r.is_ok(), "{disk_org:?} x{n_shards} [{label}]: {r:?}");
                    }
                    let files: Vec<DirBytes> = dirs.iter().map(|d| file_bytes(d)).collect();
                    match &baseline {
                        None => baseline = Some(files),
                        Some(pool) => {
                            for s in 0..n_shards {
                                assert_eq!(
                                    pool[s].len(),
                                    files[s].len(),
                                    "{disk_org:?} x{n_shards} [{label}] shard {s}: file sets"
                                );
                                for ((pn, pb), (bn, bb)) in pool[s].iter().zip(&files[s]) {
                                    assert_eq!(pn, bn, "{disk_org:?} [{label}] shard {s}: names");
                                    assert_eq!(
                                        pb, bb,
                                        "{disk_org:?} x{n_shards} [{label}] shard {s}: \
                                         {pn} bytes diverge"
                                    );
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    /// The batched engine acks a multi-shard batch out of submission
    /// order: submit jobs for 3 shards in one batch and observe shard 2's
    /// completion arriving no later than shard 0's (newest-first reaping).
    #[test]
    fn batched_engine_acks_out_of_submission_order() {
        let root = tempfile::tempdir().unwrap();
        let n = 3usize;
        let mut ctxs = Vec::new();
        let mut done_rxs = Vec::new();
        for s in 0..n {
            let (ctx, rx) = make_ctx(
                &root.path().join(format!("s{s}")),
                DiskOrg::DoubleBackup,
                s as u32,
            );
            ctxs.push(ctx);
            done_rxs.push(rx);
        }
        let ctxs = Arc::new(ctxs);
        let (job_tx, job_rx) = crossbeam::channel::bounded::<PoolJob>(n);
        // Queue the whole batch *before* spawning the loop, so one round
        // provably coalesces all three jobs.
        let g = geometry();
        for (shard, _) in (0..n).map(|s| (s, ())) {
            let ids: Vec<u32> = (0..g.n_objects()).collect();
            let data = vec![shard as u8 + 1; ids.len() * g.object_size as usize];
            job_tx
                .send(PoolJob {
                    shard,
                    job: Job::Eager {
                        ids,
                        data,
                        seq: 0,
                        tick: 1,
                        target: 0,
                        full_image: true,
                    },
                    queued_at: Instant::now(),
                    order: 0,
                })
                .unwrap();
        }
        let mut backend =
            AsyncBatchedWriter::spawn(Arc::clone(&ctxs), job_rx, coalescing(Duration::ZERO));
        // Completion within the batch is newest-first. Each job's
        // reported duration spans its own submission through its own
        // completion, so shard 0 — submitted first, completed last —
        // spans the entire batch (three fsync-bound completions), while
        // shard 2 — submitted last, completed first — spans roughly one.
        // FIFO reaping would invert the relation.
        let durations: Vec<f64> = done_rxs
            .iter()
            .map(|rx| rx.recv().unwrap().result.unwrap())
            .collect();
        assert!(
            durations[2] < durations[0],
            "newest-first reaping: shard 2's span ({}) must be shorter \
             than shard 0's ({})",
            durations[2],
            durations[0]
        );
        drop(job_tx);
        backend.shutdown();
    }

    /// The acceptance criterion of the durability scheduler: on a 4-shard
    /// batch with `sync_data = true`, the reported fsync count per
    /// full-batch round drops from one per shard *job* to one per
    /// distinct target *file*. The log organization makes the distinction
    /// observable — every job of a shard targets the same `checkpoint.log`
    /// — so a batch of two jobs per shard pays 8 fsyncs per-job but 4
    /// coalesced. The counters threaded through `Done` are asserted
    /// directly, and each shard's log must still reconstruct.
    #[test]
    fn coalescing_pays_one_fsync_per_distinct_file() {
        let g = geometry();
        let obj_size = g.object_size as usize;
        for (sched, expected_fsyncs) in [
            (DurabilityConfig::legacy(), 8u64),
            (coalescing(Duration::ZERO), 4u64),
        ] {
            let root = tempfile::tempdir().unwrap();
            let n = 4usize;
            let mut ctxs = Vec::new();
            let mut done_rxs = Vec::new();
            let mut dirs = Vec::new();
            for s in 0..n {
                let dir = root.path().join(format!("s{s}"));
                let (ctx, rx) = make_ctx(&dir, DiskOrg::Log, s as u32);
                ctxs.push(ctx);
                done_rxs.push(rx);
                dirs.push(dir);
            }
            let ctxs = Arc::new(ctxs);
            // Queue two segments per shard *before* spawning the loop, so
            // one round provably coalesces all eight jobs.
            let (job_tx, job_rx) = crossbeam::channel::bounded::<PoolJob>(2 * n);
            for round in 0u64..2 {
                for shard in 0..n {
                    let ids: Vec<u32> = (0..g.n_objects()).collect();
                    let data = vec![(round * 4 + shard as u64 + 1) as u8; ids.len() * obj_size];
                    job_tx
                        .send(PoolJob {
                            shard,
                            job: Job::Eager {
                                ids,
                                data,
                                seq: round,
                                tick: round * 10 + 1,
                                target: 0,
                                full_image: true,
                            },
                            queued_at: Instant::now(),
                            order: round,
                        })
                        .unwrap();
                }
            }
            let mut backend = AsyncBatchedWriter::spawn(Arc::clone(&ctxs), job_rx, sched);
            // Drain round-robin: each shard's completion channel holds one
            // slot, so the writer blocks mid-batch until earlier Dones are
            // consumed.
            let mut fsyncs = 0u64;
            for _pass in 0..2 {
                for rx in &done_rxs {
                    let done = rx.recv().unwrap();
                    done.result.as_ref().unwrap();
                    assert_eq!(done.batch_jobs, 8, "all eight jobs share one batch");
                    fsyncs += u64::from(done.data_syncs);
                }
            }
            drop(job_tx);
            backend.shutdown();
            assert_eq!(
                fsyncs,
                expected_fsyncs,
                "coalesce={}: one fsync per {} expected",
                sched.coalesce_fsync,
                if sched.coalesce_fsync {
                    "distinct file"
                } else {
                    "job"
                }
            );
            // Durability reached either way: every shard's log reconstructs
            // to its second segment.
            drop(ctxs);
            for (s, dir) in dirs.iter().enumerate() {
                let mut log = crate::log_store::LogStore::open(dir, g).unwrap();
                let (_, tick, _) = log.reconstruct().unwrap();
                assert_eq!(tick, 11, "shard {s}: newest segment consistent");
            }
        }
    }

    /// The adaptive batch window holds a shallow batch open for
    /// stragglers: jobs sent one by one still complete in a single batch
    /// (every `Done` reports full occupancy), because the loop waits up
    /// to the window while fewer jobs than shards are queued — and closes
    /// early the moment the batch fills, so a full batch never waits.
    #[test]
    fn adaptive_window_coalesces_straggler_jobs() {
        let root = tempfile::tempdir().unwrap();
        let n = 3usize;
        let g = geometry();
        let mut ctxs = Vec::new();
        let mut done_rxs = Vec::new();
        for s in 0..n {
            let (ctx, rx) = make_ctx(&root.path().join(format!("s{s}")), DiskOrg::Log, s as u32);
            ctxs.push(ctx);
            done_rxs.push(rx);
        }
        let ctxs = Arc::new(ctxs);
        let (job_tx, job_rx) = crossbeam::channel::bounded::<PoolJob>(n);
        // A generous window: the loop stops waiting as soon as the batch
        // holds one job per shard, so the test does not actually sleep
        // this long unless the machine stalls.
        let mut backend = AsyncBatchedWriter::spawn(
            Arc::clone(&ctxs),
            job_rx,
            coalescing(Duration::from_secs(2)),
        );
        for shard in 0..n {
            let ids: Vec<u32> = (0..g.n_objects()).collect();
            let data = vec![shard as u8 + 1; ids.len() * g.object_size as usize];
            job_tx
                .send(PoolJob {
                    shard,
                    job: Job::Eager {
                        ids,
                        data,
                        seq: 0,
                        tick: 1,
                        target: 0,
                        full_image: true,
                    },
                    queued_at: Instant::now(),
                    order: 0,
                })
                .unwrap();
        }
        for rx in &done_rxs {
            let done = rx.recv().unwrap();
            done.result.as_ref().unwrap();
            assert_eq!(
                done.batch_jobs, 3,
                "stragglers must coalesce into one full batch"
            );
            assert!(done.data_syncs <= 1);
        }
        drop(job_tx);
        backend.shutdown();
    }

    /// Two pipelined jobs of *one* shard, raced by two pool workers,
    /// must hit the store and ack in submission order: the shard's
    /// [`TurnGate`] serializes them even when the second worker wins the
    /// race to its channel pickup. The jobs are distinguishable by
    /// object count, and the log must hold their segments in seq order.
    #[test]
    fn pipelined_same_shard_jobs_ack_in_submission_order() {
        for _attempt in 0..20 {
            let root = tempfile::tempdir().unwrap();
            let g = geometry();
            let table = SharedTable::new(g);
            let shared = Arc::new(Shared::new(table));
            let store = create_store(root.path(), g, DiskOrg::Log).unwrap();
            // Depth-2 completion channel, as make_shard sizes it.
            let (done_tx, done_rx) = crossbeam::channel::bounded::<Done>(2);
            let ctx = ShardCtx {
                store: parking_lot::Mutex::new(store),
                shared,
                frontier: Arc::new(AtomicU64::new(0)),
                geometry: g,
                sync_data: true,
                done_tx,
                turn: TurnGate::new(),
                crash: None,
                fault: None,
                retry: crate::fault::RetryPolicy::none(),
                replicas: None,
            };
            let ctxs = Arc::new(vec![ctx]);
            let (job_tx, job_rx) = crossbeam::channel::bounded::<PoolJob>(2);
            // Queue both jobs *before* spawning, so both workers grab one
            // immediately and genuinely race.
            let obj_size = g.object_size as usize;
            for (order, count) in [(0u64, g.n_objects()), (1, 2)] {
                let ids: Vec<u32> = (0..count).collect();
                let data = vec![order as u8 + 1; ids.len() * obj_size];
                job_tx
                    .send(PoolJob {
                        shard: 0,
                        job: Job::Eager {
                            ids,
                            data,
                            seq: order,
                            tick: order * 10 + 1,
                            target: 0,
                            full_image: order == 0,
                        },
                        queued_at: Instant::now(),
                        order,
                    })
                    .unwrap();
            }
            let mut backend = WriterPool::spawn(Arc::clone(&ctxs), 2, job_rx);
            let first = done_rx.recv().unwrap();
            let second = done_rx.recv().unwrap();
            assert_eq!(first.objects, g.n_objects(), "order-0 job acks first");
            assert_eq!(second.objects, 2, "order-1 job acks second");
            first.result.unwrap();
            second.result.unwrap();
            drop(job_tx);
            backend.shutdown();
            drop(ctxs);
            let mut log = crate::log_store::LogStore::open(root.path(), g).unwrap();
            let segs = log.segments().unwrap();
            // Boot image + the two jobs, appended in submission order.
            let seqs: Vec<u64> = segs.iter().map(|s| s.seq).collect();
            assert_eq!(seqs, vec![0, 0, 1], "segments in submission order");
            let (_, tick, _) = log.reconstruct().unwrap();
            assert_eq!(tick, 11, "newest segment wins");
        }
    }

    /// The device barrier collapses a multi-file batch to one `syncfs`
    /// where the syscall is available, and falls back to per-file fsync
    /// where it is not — never to an error. Four shards' logs are four
    /// distinct files on one tempdir device.
    #[test]
    fn device_barrier_collapses_same_device_files_or_falls_back() {
        let g = geometry();
        let root = tempfile::tempdir().unwrap();
        let n = 4usize;
        let mut ctxs = Vec::new();
        let mut done_rxs = Vec::new();
        let mut dirs = Vec::new();
        for s in 0..n {
            let dir = root.path().join(format!("s{s}"));
            let (ctx, rx) = make_ctx(&dir, DiskOrg::Log, s as u32);
            ctxs.push(ctx);
            done_rxs.push(rx);
            dirs.push(dir);
        }
        let ctxs = Arc::new(ctxs);
        let (job_tx, job_rx) = crossbeam::channel::bounded::<PoolJob>(n);
        for shard in 0..n {
            let ids: Vec<u32> = (0..g.n_objects()).collect();
            let data = vec![shard as u8 + 1; ids.len() * g.object_size as usize];
            job_tx
                .send(PoolJob {
                    shard,
                    job: Job::Eager {
                        ids,
                        data,
                        seq: 0,
                        tick: 1,
                        target: 0,
                        full_image: true,
                    },
                    queued_at: Instant::now(),
                    order: 0,
                })
                .unwrap();
        }
        let sched = DurabilityConfig {
            device_sync: true,
            ..coalescing(Duration::ZERO)
        };
        let mut backend = AsyncBatchedWriter::spawn(Arc::clone(&ctxs), job_rx, sched);
        let mut fsyncs = 0u64;
        let mut device_syncs = 0u64;
        for rx in &done_rxs {
            let done = rx.recv().unwrap();
            done.result.as_ref().unwrap();
            assert_eq!(done.batch_jobs, 4, "all four jobs share one batch");
            fsyncs += u64::from(done.data_syncs);
            device_syncs += u64::from(done.device_syncs);
        }
        drop(job_tx);
        backend.shutdown();
        match device_syncs {
            1 => assert_eq!(fsyncs, 0, "barrier replaces every per-file fsync"),
            0 => assert_eq!(fsyncs, 4, "fallback pays one fsync per distinct file"),
            other => panic!("at most one device barrier per batch, got {other}"),
        }
        // Durability reached either way: every shard's log reconstructs.
        drop(ctxs);
        for (s, dir) in dirs.iter().enumerate() {
            let mut log = crate::log_store::LogStore::open(dir, g).unwrap();
            let (_, tick, _) = log.reconstruct().unwrap();
            assert_eq!(tick, 1, "shard {s}: segment consistent");
        }
    }

    /// A crash between submission and completion (the mid-batch window)
    /// leaves the double-backup target invalidated but the *other* backup
    /// untouched — the fallback the recovery path depends on. Modeled by
    /// dropping the in-flight job without completing it.
    #[test]
    fn mid_batch_crash_window_preserves_the_other_backup() {
        let root = tempfile::tempdir().unwrap();
        let (ctx, _done_rx) = make_ctx(root.path(), DiskOrg::DoubleBackup, 7);
        let g = geometry();
        let ids: Vec<u32> = (0..g.n_objects()).collect();
        let data = vec![0xAB; ids.len() * g.object_size as usize];
        let mut store = ctx.store.lock();
        let mut buf = Vec::new();
        let inflight = submit_job(
            &ctx,
            &mut store,
            &mut buf,
            0,
            Job::Eager {
                ids,
                data,
                seq: 0,
                tick: 9,
                target: 1,
                full_image: true,
            },
            Instant::now(),
        );
        // "Crash": the job is submitted, never completed.
        drop(inflight);
        drop(store);
        drop(ctx);
        let set = crate::files::BackupSet::open(root.path(), g).unwrap();
        assert_eq!(
            set.newest_consistent(),
            Some((0, 0)),
            "target 1 must be invalidated, backup 0 (boot image) intact"
        );
    }

    /// Drive the deterministic job stream through the io_uring backend
    /// with a crash plan that latches the **dead flag** (not a crash) at
    /// the `hit`-th staged wave: every ring failure from that wave on is
    /// redone synchronously. Returns per-shard file snapshots plus
    /// whether the plan fired (it cannot on kernels without io_uring,
    /// where `spawn_writer` substitutes the batched engine).
    fn drive_ring_death(
        dirs: &[std::path::PathBuf],
        disk_org: DiskOrg,
        hit: u64,
    ) -> (Vec<DirBytes>, bool) {
        use crate::crash::{CrashAction, CrashPlan, CrashPoint, CrashState};
        let state = Arc::new(CrashState::armed(CrashPlan {
            point: CrashPoint::UringWaveStaged,
            hit,
            torn: 0,
            action: CrashAction::RingDeath,
        }));
        let n = dirs.len();
        let mut ctxs = Vec::new();
        let mut done_rxs = Vec::new();
        for (s, dir) in dirs.iter().enumerate() {
            let (mut ctx, rx) = make_ctx(dir, disk_org, s as u32);
            ctx.crash = Some(Arc::clone(&state));
            ctx.store.lock().attach_crash(Some(Arc::clone(&state)));
            ctxs.push(ctx);
            done_rxs.push(rx);
        }
        let ctxs = Arc::new(ctxs);
        let (job_tx, job_rx) = crossbeam::channel::bounded::<PoolJob>(n);
        let (mut backend, _effective) = spawn_writer(
            WriterBackendKind::IoUring,
            Arc::clone(&ctxs),
            2,
            job_rx,
            coalescing(Duration::ZERO),
        );
        let stream = job_stream(n);
        for (round_idx, round) in stream.chunks(n).enumerate() {
            for (shard, job) in round {
                ctxs[*shard].shared.reset_for_checkpoint();
                ctxs[*shard].frontier.store(0, Ordering::Release);
                job_tx
                    .send(PoolJob {
                        shard: *shard,
                        job: job.clone(),
                        queued_at: Instant::now(),
                        order: round_idx as u64,
                    })
                    .unwrap();
            }
            for rx in &done_rxs {
                rx.recv().unwrap().result.unwrap();
            }
        }
        drop(job_tx);
        backend.shutdown();
        (dirs.iter().map(|d| file_bytes(d)).collect(), state.fired())
    }

    /// The uring dead-flag redo path: a fuzz point inside the ring loop
    /// latches `ring_dead` at the `hit`-th staged wave — mid-stream, so
    /// earlier waves went through the ring and later waves take the
    /// synchronous redo — and the resulting files must be **byte
    /// identical** to the thread pool's, for both disk organizations.
    /// The redo is idempotent re-submission of the same wave, so dying
    /// at the first wave or in the middle of the stream must not change
    /// a single byte of images, metadata, or logs.
    #[test]
    fn ring_death_mid_batch_redoes_byte_identically() {
        for disk_org in [DiskOrg::DoubleBackup, DiskOrg::Log] {
            // Baseline: the thread pool over the same stream.
            let pool_root = tempfile::tempdir().unwrap();
            let pool_dirs: Vec<_> = (0..2)
                .map(|s| pool_root.path().join(format!("s{s}")))
                .collect();
            for r in drive(
                WriterBackendKind::ThreadPool,
                DurabilityConfig::legacy(),
                &pool_dirs,
                disk_org,
            ) {
                r.unwrap();
            }
            let baseline: Vec<DirBytes> = pool_dirs.iter().map(|d| file_bytes(d)).collect();

            for hit in [1, 3] {
                let root = tempfile::tempdir().unwrap();
                let dirs: Vec<_> = (0..2).map(|s| root.path().join(format!("s{s}"))).collect();
                let (snapshots, fired) = drive_ring_death(&dirs, disk_org, hit);
                if crate::uring::ring_available() {
                    assert!(fired, "{disk_org:?} hit {hit}: dead-flag plan must fire");
                }
                for (s, snap) in snapshots.iter().enumerate() {
                    assert_eq!(
                        snap, &baseline[s],
                        "{disk_org:?} hit {hit} shard {s}: dead-ring redo diverged from the pool"
                    );
                }
            }
        }
    }
}
