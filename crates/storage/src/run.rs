//! The real engine as a pluggable experiment backend.
//!
//! [`RealConfig`] implements [`ExperimentEngine`], so a disk-backed run is
//! described exactly like a simulated one:
//!
//! ```no_run
//! use mmoc_core::{Algorithm, Run};
//! use mmoc_storage::RealConfig;
//! use mmoc_workload::SyntheticConfig;
//!
//! let trace = SyntheticConfig::paper_default().with_ticks(60);
//! let report = Run::algorithm(Algorithm::CopyOnUpdate)
//!     .engine(RealConfig::new("/tmp/mmoc_run"))
//!     .trace(trace)
//!     .shards(4)
//!     .execute()
//!     .expect("real run");
//! assert_eq!(report.engine, "real");
//! ```
//!
//! Spec options map onto the engine as follows: `.shards(n)` splits the
//! world over per-shard stores served by the shared writer pool;
//! `.pacing(hz)` paces the mutator at `hz` (single-shard runs sleep in the
//! backend, multi-shard runs sleep once per global tick);
//! `.fidelity_check(true)` forces the end-of-run crash-recovery
//! measurement on — restore, replay, byte-compare — which is the real
//! engine's value-level verification; `.batching(true)` coalesces
//! same-object updates before bookkeeping; `.writer(backend)` selects the
//! flush-writer implementation (worker-thread pool or the io_uring-style
//! batched-submission engine, see [`crate::writer`] — recovery-equivalent
//! by the differential tests in `tests/writer_equivalence.rs`);
//! `.batch_window(d)` bounds the batched writer's adaptive batch window
//! (how long a shallow batch waits for straggler flush jobs so their
//! durability points coalesce, see [`RealConfig::batch_window`]).

use crate::config::RealConfig;
use crate::report::{RealReport, RecoveryMeasurement};
use crate::sharded::{run_sharded_impl, ShardedRealReport};
use mmoc_core::run::{
    EngineDetail, ExperimentEngine, RealRunDetail, RecoveryReport, RunError, RunReport, RunSpec,
    RunSummary, ShardReport, TraceSpec,
};

impl ExperimentEngine for RealConfig {
    fn run_experiment<T: TraceSpec + ?Sized>(
        &self,
        spec: &RunSpec,
        trace: &T,
    ) -> Result<RunReport, RunError> {
        // Environment overrides are parsed when the config is built;
        // garbage surfaces here as a typed error instead of a panic, so
        // `MMOC_WRITER_BATCH_WINDOW=fast cargo bench` fails with a
        // message naming the variable rather than a backtrace.
        if let Some(msg) = &self.env_error {
            return Err(RunError::Config(msg.clone()));
        }
        let mut config = self.clone();
        if let Some(hz) = spec.pacing_hz {
            config = config.paced_at_hz(hz);
        }
        if spec.fidelity_check {
            config.measure_recovery = true;
        }
        if let Some(backend) = spec.writer {
            config.writer_backend = backend;
        }
        if let Some(us) = spec.batch_window_us {
            config.batch_window = std::time::Duration::from_micros(us);
        }
        if let Some(depth) = spec.pipeline_depth {
            // validate() rejected 0, so the builder's assert cannot fire.
            config = config.with_pipeline_depth(depth);
        }
        if let Some(k) = spec.replication {
            config = config.with_replication(k);
        }
        if let Some(max) = spec.retry_max {
            config.retry_max = max;
        }
        if let Some(us) = spec.retry_backoff_us {
            config.retry_backoff = std::time::Duration::from_micros(us);
        }
        // Geometry and shard-map validation happen inside the shared run
        // on the cursor the run actually uses; failures surface as typed
        // core errors.
        let report = run_sharded_impl(spec.algorithm, &config, spec.shards, spec.batching, || {
            trace.open()
        })?;
        Ok(into_run_report(report))
    }
}

/// Map the real engine's sharded report into the unified cross-engine
/// shape.
fn into_run_report(report: ShardedRealReport) -> RunReport {
    let shards = report
        .shards
        .iter()
        .enumerate()
        .map(|(s, r)| shard_report(s as u32, r))
        .collect();
    RunReport {
        algorithm: report.algorithm,
        engine: "real",
        n_shards: report.n_shards,
        ticks: report.ticks,
        updates: report.updates,
        // Shards restore in parallel: the world is back when the measured
        // parallel recovery finishes.
        world: RunSummary::from_metrics(report.metrics, report.recovery.map(|r| r.wall_s)),
        shards,
        detail: EngineDetail::Real(RealRunDetail {
            writer_backend: report.writer_backend,
            writer_fallback_from: report.writer_fallback_from,
            pool_threads: report.pool_threads,
            pipeline_depth: report.pipeline_depth,
            replication_factor: report.replication_factor,
            flush_jobs: report.writer.flush_jobs,
            data_fsyncs: report.writer.data_fsyncs,
            device_syncs: report.writer.device_syncs,
            avg_batch_jobs: report.writer.avg_batch_jobs(),
            max_batch_jobs: report.writer.max_batch_jobs,
            bytes_written: report.writer.bytes_written,
            retries: report.writer.retries,
            retry_exhausted: report.writer.retry_exhausted,
            degraded_jobs: report.writer.degraded_jobs,
            avg_sqe_batch: report.writer.avg_sqe_batch(),
            max_sqe_batch: report.writer.max_sqe_batch,
            recovery_wall_s: report.recovery.map(|r| r.wall_s),
            serial_recovery_s: report.recovery.map(|r| r.sum_shard_total_s),
        }),
    }
}

fn shard_report(shard: u32, r: &RealReport) -> ShardReport {
    ShardReport {
        shard,
        ticks: r.ticks,
        updates: r.updates,
        summary: RunSummary::from_metrics(r.metrics.clone(), r.recovery.map(|m| m.total_s)),
        recovery: r.recovery.map(recovery_report),
        // The real engine's value-level verification is the recovery
        // round-trip above; shadow-disk fidelity is simulator-only.
        fidelity: None,
    }
}

fn recovery_report(m: RecoveryMeasurement) -> RecoveryReport {
    RecoveryReport {
        restore_s: m.restore_s,
        replay_s: m.replay_s,
        total_s: m.total_s,
        measured: true,
        restored_from_tick: Some(m.restored_from_tick),
        ticks_replayed: Some(m.ticks_replayed),
        updates_replayed: Some(m.updates_replayed),
        state_matches: Some(m.state_matches),
        from_replica: Some(m.from_replica),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmoc_core::{Algorithm, Run, StateGeometry};
    use mmoc_workload::SyntheticConfig;

    fn trace_spec() -> SyntheticConfig {
        SyntheticConfig {
            geometry: StateGeometry::test_small(),
            ticks: 40,
            updates_per_tick: 300,
            skew: 0.7,
            seed: 4242,
        }
    }

    fn config(dir: &std::path::Path) -> RealConfig {
        RealConfig::new(dir).with_query_ops(64)
    }

    #[test]
    fn builder_runs_the_real_engine_and_recovers() {
        let dir = tempfile::tempdir().unwrap();
        let report = Run::algorithm(Algorithm::CopyOnUpdate)
            .engine(config(dir.path()))
            .trace(trace_spec())
            .execute()
            .expect("real run");
        assert_eq!(report.engine, "real");
        assert_eq!(report.n_shards, 1);
        assert_eq!(report.ticks, 40);
        assert_eq!(report.updates, 40 * 300);
        assert_eq!(report.shards.len(), 1, "trivial shard breakdown");
        let rec = report.shards[0].recovery.as_ref().expect("measured");
        assert!(rec.measured);
        assert_eq!(rec.state_matches, Some(true));
        assert_eq!(report.verified_consistent(), Some(true));
        // The historical single-shard file layout is preserved.
        assert!(dir.path().join("backup_0.img").is_file());
    }

    #[test]
    fn builder_shards_split_the_world() {
        let dir = tempfile::tempdir().unwrap();
        let report = Run::algorithm(Algorithm::NaiveSnapshot)
            .engine(config(dir.path()))
            .trace(trace_spec())
            .shards(4)
            .execute()
            .expect("sharded real run");
        assert_eq!(report.n_shards, 4);
        assert_eq!(report.shards.len(), 4);
        assert_eq!(report.verified_consistent(), Some(true));
        let per_shard: u64 = report.shards.iter().map(|s| s.updates).sum();
        assert_eq!(per_shard, report.updates);
        match report.detail {
            EngineDetail::Real(d) => {
                assert!(d.pool_threads >= 1);
                assert!(d.recovery_wall_s.is_some());
                assert!(d.serial_recovery_s.unwrap() > 0.0);
            }
            _ => panic!("real detail expected"),
        }
    }

    #[test]
    fn unshardable_geometry_is_a_typed_core_error() {
        let dir = tempfile::tempdir().unwrap();
        let err = Run::algorithm(Algorithm::CopyOnUpdate)
            .engine(config(dir.path()))
            .trace(trace_spec())
            .shards(1_000_000)
            .execute()
            .unwrap_err();
        assert!(matches!(err, RunError::Core(_)), "{err}");
    }

    /// Garbage in a `MMOC_WRITER_*` environment override is recorded in
    /// the config when it is built and must surface as a typed
    /// [`RunError::Config`] at execute time — never a panic, and never a
    /// silently ignored run. Injected directly (instead of via
    /// `std::env::set_var`) so parallel tests don't race on the process
    /// environment.
    #[test]
    fn deferred_env_parse_errors_surface_as_typed_config_errors() {
        let dir = tempfile::tempdir().unwrap();
        let mut engine = config(dir.path());
        engine.env_error =
            Some("MMOC_WRITER_BATCH_WINDOW: could not parse \"fast\" as a window".into());
        let err = Run::algorithm(Algorithm::CopyOnUpdate)
            .engine(engine)
            .trace(trace_spec())
            .execute()
            .unwrap_err();
        assert!(matches!(err, RunError::Config(_)), "{err}");
        assert!(
            err.to_string().contains("MMOC_WRITER_BATCH_WINDOW"),
            "{err}"
        );
    }

    #[test]
    fn fidelity_check_forces_the_recovery_measurement() {
        let dir = tempfile::tempdir().unwrap();
        let engine = config(dir.path()).without_recovery();
        let off = Run::algorithm(Algorithm::CopyOnUpdate)
            .engine(engine.clone())
            .trace(trace_spec())
            .execute()
            .unwrap();
        assert!(off.recovery_s().is_none());
        assert!(off.verified_consistent().is_none());

        let dir2 = tempfile::tempdir().unwrap();
        let on = Run::algorithm(Algorithm::CopyOnUpdate)
            .engine(config(dir2.path()).without_recovery())
            .trace(trace_spec())
            .fidelity_check(true)
            .execute()
            .unwrap();
        assert_eq!(on.verified_consistent(), Some(true));
        assert!(on.recovery_s().unwrap() > 0.0);
    }
}
