//! The log-structured checkpoint store.
//!
//! Partial-Redo and Copy-on-Update-Partial-Redo write dirty objects to "a
//! simple log" (§3.2): fully sequential appends, at the price of having to
//! read back through the log at recovery time until every object has been
//! seen — bounded by a periodic full flush of the whole state.
//!
//! File format (little-endian):
//!
//! ```text
//! file header : magic "MMOCLOG1"
//! per segment : seq u64 | consistent_tick u64 | full_flush u8 |
//!               object_count u32 | object_count × (object_id u32 | object bytes)
//!               | segment magic-end "SEGE"
//! ```
//!
//! A segment is one checkpoint. Recovery scans segments forward (the file
//! is replayed into a reconstruction buffer, newest write wins), starting
//! from the newest *complete* full-flush segment — semantically identical
//! to the paper's backward read, and it reads the same bytes. Torn tails
//! (a crash mid-append) are detected by the segment end marker and
//! discarded.

use crate::crash::{CrashPoint, CrashState};
use crate::fault::{FaultKind, FaultSite, FaultState};
use mmoc_core::{ObjectId, StateGeometry};
use std::fs::{File, OpenOptions};
use std::io::{self, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::Arc;

const FILE_MAGIC: &[u8; 8] = b"MMOCLOG1";
const SEG_END: &[u8; 4] = b"SEGE";

/// An append-only checkpoint log.
#[derive(Debug)]
pub struct LogStore {
    file: File,
    geometry: StateGeometry,
    /// Bytes appended so far (including header).
    len: u64,
    /// Cached identity of `file` (stable for the open handle's lifetime),
    /// so the durability scheduler's dedupe costs no syscall per job.
    sync_target: crate::files::SyncTarget,
    /// Crash-point lattice handle (see [`crate::crash`]): `None` in
    /// production. Once the armed point fires and the state goes down,
    /// every append and sync below freezes the log as a process kill
    /// would have left it.
    crash: Option<Arc<CrashState>>,
    /// Transient-fault failpoints (see [`crate::fault`]): `None` in
    /// production. Appends fault at segment granularity (before any
    /// byte lands), so a retried append restarts cleanly at the same
    /// offset.
    fault: Option<Arc<FaultState>>,
}

/// Summary of one appended segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentInfo {
    /// Checkpoint sequence number.
    pub seq: u64,
    /// Tick the segment is consistent as of.
    pub consistent_tick: u64,
    /// Whether the segment holds the full state.
    pub full_flush: bool,
    /// Objects in the segment.
    pub objects: u32,
    /// Bytes the segment occupies on disk.
    pub bytes: u64,
}

impl LogStore {
    /// Create (truncate) a log under `dir`.
    pub fn create(dir: &Path, geometry: StateGeometry) -> io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(dir.join("checkpoint.log"))?;
        file.write_all(FILE_MAGIC)?;
        file.sync_all()?;
        let sync_target = crate::files::SyncTarget::of(&file)?;
        Ok(LogStore {
            file,
            geometry,
            len: FILE_MAGIC.len() as u64,
            sync_target,
            crash: None,
            fault: None,
        })
    }

    /// Open an existing log for recovery.
    pub fn open(dir: &Path, geometry: StateGeometry) -> io::Result<Self> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(dir.join("checkpoint.log"))?;
        let mut magic = [0u8; 8];
        file.read_exact(&mut magic)?;
        if &magic != FILE_MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not an MMOCLOG1 checkpoint log",
            ));
        }
        let len = file.metadata()?.len();
        let sync_target = crate::files::SyncTarget::of(&file)?;
        Ok(LogStore {
            file,
            geometry,
            len,
            sync_target,
            crash: None,
            fault: None,
        })
    }

    /// Attach a crash-point lattice handle. Installed by the engine
    /// right after store creation when the run carries a
    /// [`CrashState`]; production stores never pay more than the
    /// `None` check.
    pub fn attach_crash(&mut self, crash: Option<Arc<CrashState>>) {
        self.crash = crash;
    }

    /// True once a simulated crash froze this log.
    fn down(&self) -> bool {
        self.crash.as_ref().is_some_and(|c| c.is_down())
    }

    /// Attach a transient-fault failpoint handle. Installed by the
    /// engine right after store creation when the run carries a
    /// [`FaultState`]; production stores never pay more than the
    /// `None` check.
    pub fn attach_fault(&mut self, fault: Option<Arc<FaultState>>) {
        self.fault = fault;
    }

    /// Consult the transient-fault layer at `site`.
    fn faulted(&self, site: FaultSite) -> Option<FaultKind> {
        self.fault.as_ref().and_then(|f| f.consult(site))
    }

    /// The whole-segment append failpoint: faults before any byte
    /// lands, so the log length is unchanged and a retried append
    /// restarts cleanly at the same offset. Streamed callers
    /// ([`LogStore::begin_segment`]) consult this *before* opening the
    /// segment — the streaming writer is not re-entrant mid-segment —
    /// while [`LogStore::append_segment`] consults it itself. Short
    /// writes degrade to a plain error here (no partial effect).
    pub(crate) fn preflight_append(&self) -> io::Result<()> {
        if let Some(kind) = self.faulted(FaultSite::LogAppend) {
            return Err(kind.to_error());
        }
        Ok(())
    }

    /// Start appending one checkpoint segment. Write objects through the
    /// returned [`SegmentWriter`] in increasing id order and call
    /// [`SegmentWriter::finish`]; dropping it without finishing leaves a
    /// torn segment that scans will discard (crash-equivalent).
    pub fn begin_segment(
        &mut self,
        seq: u64,
        consistent_tick: u64,
        full_flush: bool,
    ) -> io::Result<SegmentWriter<'_>> {
        let crash = self.crash.clone();
        let down = crash.as_ref().is_some_and(|c| c.is_down());
        self.file.seek(SeekFrom::Start(self.len))?;
        let start = self.len;
        let object_size = self.geometry.object_size as usize;
        let mut w = BufWriter::new(&mut self.file);
        // A downed log buffers nothing: the writer below no-ops, so
        // the BufWriter's drop-flush has nothing to leak to disk.
        if !down {
            w.write_all(&seq.to_le_bytes())?;
            w.write_all(&consistent_tick.to_le_bytes())?;
            w.write_all(&[u8::from(full_flush)])?;
            // Object count back-patched in finish().
            w.write_all(&0u32.to_le_bytes())?;
        }
        Ok(SegmentWriter {
            w,
            len: &mut self.len,
            start,
            count_pos: start + 17,
            count: 0,
            object_size,
            seq,
            consistent_tick,
            full_flush,
            crash,
        })
    }

    /// Append one checkpoint segment from an iterator of `(id, bytes)`
    /// pairs in increasing id order (convenience over
    /// [`LogStore::begin_segment`]).
    pub fn append_segment<'a>(
        &mut self,
        seq: u64,
        consistent_tick: u64,
        full_flush: bool,
        objects: impl Iterator<Item = (ObjectId, &'a [u8])>,
        sync: bool,
    ) -> io::Result<SegmentInfo> {
        self.preflight_append()?;
        let mut seg = self.begin_segment(seq, consistent_tick, full_flush)?;
        for (id, bytes) in objects {
            seg.write_object(id, bytes)?;
        }
        seg.finish(sync)
    }

    /// Scan all complete segments, newest last. Torn tails are dropped.
    pub fn segments(&mut self) -> io::Result<Vec<SegmentInfo>> {
        let mut infos = Vec::new();
        self.file.seek(SeekFrom::Start(FILE_MAGIC.len() as u64))?;
        let file_len = self.file.metadata()?.len();
        let mut r = BufReader::new(&mut self.file);
        let mut pos = FILE_MAGIC.len() as u64;
        let obj_size = self.geometry.object_size as u64;
        while pos + 21 <= file_len {
            let seq = read_u64(&mut r)?;
            let consistent_tick = read_u64(&mut r)?;
            let full_flush = read_u8(&mut r)? != 0;
            let count = read_u32(&mut r)?;
            let body = u64::from(count) * (4 + obj_size);
            let seg_len = 21 + body + 4;
            if pos + seg_len > file_len {
                break; // torn tail
            }
            // Skip the body, check the end marker.
            r.seek_relative(body as i64)?;
            let mut end = [0u8; 4];
            r.read_exact(&mut end)?;
            if &end != SEG_END {
                break; // torn or corrupt
            }
            infos.push(SegmentInfo {
                seq,
                consistent_tick,
                full_flush,
                objects: count,
                bytes: seg_len,
            });
            pos += seg_len;
        }
        Ok(infos)
    }

    /// Reconstruct the newest consistent image: find the last complete
    /// segment (its `consistent_tick` is the restore point), then apply
    /// all segments from the newest preceding full flush through it.
    ///
    /// Returns `(image bytes, consistent_tick, bytes_read)`.
    pub fn reconstruct(&mut self) -> io::Result<(Vec<u8>, u64, u64)> {
        if let Some(kind) = self.faulted(FaultSite::ImageRead) {
            return Err(kind.to_error());
        }
        let infos = self.segments()?;
        let Some(last) = infos.last() else {
            return Err(io::Error::other("checkpoint log holds no complete segment"));
        };
        let consistent_tick = last.consistent_tick;
        // Find the newest full flush at or before the end.
        let start_idx = infos
            .iter()
            .rposition(|s| s.full_flush)
            .ok_or_else(|| io::Error::other("checkpoint log holds no full flush"))?;

        let obj_size = self.geometry.object_size as usize;
        let n = self.geometry.n_objects();
        let mut image = vec![0u8; n as usize * obj_size];
        let mut bytes_read = 0u64;

        // Seek to the start segment by summing lengths.
        let mut offset = FILE_MAGIC.len() as u64;
        for s in &infos[..start_idx] {
            offset += s.bytes;
        }
        self.file.seek(SeekFrom::Start(offset))?;
        let mut r = BufReader::new(&mut self.file);
        for s in &infos[start_idx..] {
            // Header.
            let mut hdr = [0u8; 21];
            r.read_exact(&mut hdr)?;
            let mut id_buf = [0u8; 4];
            let mut obj_buf = vec![0u8; obj_size];
            for _ in 0..s.objects {
                r.read_exact(&mut id_buf)?;
                let id = u32::from_le_bytes(id_buf);
                r.read_exact(&mut obj_buf)?;
                let at = id as usize * obj_size;
                image[at..at + obj_size].copy_from_slice(&obj_buf);
            }
            let mut end = [0u8; 4];
            r.read_exact(&mut end)?;
            bytes_read += s.bytes;
        }
        Ok((image, consistent_tick, bytes_read))
    }

    /// Flush all appended segments to stable storage. Used by writer
    /// backends that defer durability past [`SegmentWriter::finish`]
    /// (`finish(false)` seals the segment in the page cache; a crash
    /// before this sync leaves a torn tail that scans discard).
    pub fn sync(&self) -> io::Result<()> {
        if self.down() {
            return Ok(());
        }
        if let Some(kind) = self.faulted(FaultSite::LogSync) {
            return Err(kind.to_error());
        }
        self.file.sync_data()
    }

    /// Identity of the log file, for the durability scheduler's
    /// per-distinct-file sync deduplication: one [`LogStore::sync`]
    /// covers every segment appended before it, so several segments
    /// pending in one batch coalesce into a single `fsync`. Cached at
    /// create/open — the handle never changes underneath it.
    pub fn sync_target(&self) -> crate::files::SyncTarget {
        self.sync_target
    }

    /// Raw descriptor of the log file, for the `syncfs` device barrier
    /// (any fd on the device names it).
    pub fn sync_fd(&self) -> std::os::unix::io::RawFd {
        use std::os::unix::io::AsRawFd;
        self.file.as_raw_fd()
    }

    /// The offset the next appended segment will start at. Writer
    /// backends that bypass [`LogStore::begin_segment`] (the uring
    /// backend serializes segments with [`serialize_segment`] and
    /// submits them as ring writes) position their writes here.
    pub(crate) fn append_offset(&self) -> u64 {
        self.len
    }

    /// Record that `bytes` were appended at [`LogStore::append_offset`]
    /// by an out-of-band write (a reaped ring completion). The next
    /// segment stacks after them.
    pub(crate) fn note_appended(&mut self, bytes: u64) {
        self.len += bytes;
    }

    /// Total log size in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True if no segments have been appended.
    pub fn is_empty(&self) -> bool {
        self.len <= FILE_MAGIC.len() as u64
    }
}

/// Streaming writer for one log segment.
#[derive(Debug)]
pub struct SegmentWriter<'a> {
    w: BufWriter<&'a mut File>,
    len: &'a mut u64,
    start: u64,
    count_pos: u64,
    count: u32,
    object_size: usize,
    seq: u64,
    consistent_tick: u64,
    full_flush: bool,
    crash: Option<Arc<CrashState>>,
}

impl SegmentWriter<'_> {
    /// Append one object's bytes (must be `object_size` long, ids in
    /// increasing order).
    pub fn write_object(&mut self, id: ObjectId, bytes: &[u8]) -> io::Result<()> {
        debug_assert_eq!(bytes.len(), self.object_size);
        if let Some(c) = &self.crash {
            if c.is_down() {
                return Ok(());
            }
            if let Some(plan) = c.reach(CrashPoint::LogAppendObject) {
                // Torn record: the id header plus a prefix of the
                // object's bytes reach disk, the segment never seals,
                // so the recovery scan discards the torn tail.
                self.w.write_all(&id.0.to_le_bytes())?;
                self.w
                    .write_all(&bytes[..(plan.torn as usize).min(bytes.len())])?;
                self.w.flush()?;
                c.go_down();
                return Ok(());
            }
        }
        self.w.write_all(&id.0.to_le_bytes())?;
        self.w.write_all(bytes)?;
        self.count += 1;
        Ok(())
    }

    /// Seal the segment: end marker, count patch, optional fsync.
    pub fn finish(mut self, sync: bool) -> io::Result<SegmentInfo> {
        use std::os::unix::fs::FileExt;
        if self.crash.as_ref().is_some_and(|c| c.is_down()) {
            // Frozen: nothing written, nothing sealed. The fake info
            // keeps the caller's accounting flowing; the disk holds
            // whatever the crash instant left.
            return Ok(SegmentInfo {
                seq: self.seq,
                consistent_tick: self.consistent_tick,
                full_flush: self.full_flush,
                objects: self.count,
                bytes: 0,
            });
        }
        self.w.write_all(SEG_END)?;
        self.w.flush()?;
        let file: &File = self.w.get_ref();
        file.write_all_at(&self.count.to_le_bytes(), self.count_pos)?;
        let end = file.metadata()?.len();
        if let Some(c) = &self.crash {
            if let Some(plan) = c.reach(CrashPoint::LogSegmentSealed) {
                // Sealed but unsynced, with a torn tail: truncate the
                // final `torn` bytes (never into earlier segments)
                // and skip the sync the caller asked for.
                let torn_end = end.saturating_sub(plan.torn).max(self.start);
                file.set_len(torn_end)?;
                c.go_down();
                *self.len = torn_end;
                return Ok(SegmentInfo {
                    seq: self.seq,
                    consistent_tick: self.consistent_tick,
                    full_flush: self.full_flush,
                    objects: self.count,
                    bytes: torn_end - self.start,
                });
            }
        }
        if sync {
            file.sync_data()?;
        }
        *self.len = end;
        Ok(SegmentInfo {
            seq: self.seq,
            consistent_tick: self.consistent_tick,
            full_flush: self.full_flush,
            objects: self.count,
            bytes: end - self.start,
        })
    }
}

/// Serialize one complete checkpoint segment into `out` — byte-for-byte
/// what [`LogStore::append_segment`] would write through the file handle,
/// for backends that submit the segment as a single ring write instead.
/// `objects` must come in increasing id order (sorted I/O).
pub(crate) fn serialize_segment<'a>(
    seq: u64,
    consistent_tick: u64,
    full_flush: bool,
    objects: impl Iterator<Item = (ObjectId, &'a [u8])>,
    out: &mut Vec<u8>,
) {
    out.clear();
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&consistent_tick.to_le_bytes());
    out.push(u8::from(full_flush));
    out.extend_from_slice(&0u32.to_le_bytes()); // count, patched below
    let mut count = 0u32;
    for (id, bytes) in objects {
        out.extend_from_slice(&id.0.to_le_bytes());
        out.extend_from_slice(bytes);
        count += 1;
    }
    out[17..21].copy_from_slice(&count.to_le_bytes());
    out.extend_from_slice(SEG_END);
}

fn read_u8<R: Read>(r: &mut R) -> io::Result<u8> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(b[0])
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geometry() -> StateGeometry {
        StateGeometry::test_micro() // 4 objects of 64 B
    }

    fn obj(fill: u8) -> Vec<u8> {
        vec![fill; 64]
    }

    #[test]
    fn append_and_scan_segments() {
        let dir = tempfile::tempdir().unwrap();
        let mut log = LogStore::create(dir.path(), geometry()).unwrap();
        assert!(log.is_empty());

        let full: Vec<(ObjectId, Vec<u8>)> = (0..4).map(|i| (ObjectId(i), obj(i as u8))).collect();
        let info = log
            .append_segment(
                0,
                10,
                true,
                full.iter().map(|(i, b)| (*i, b.as_slice())),
                true,
            )
            .unwrap();
        assert_eq!(info.objects, 4);
        assert!(info.full_flush);

        let dirty = [(ObjectId(2), obj(9))];
        log.append_segment(
            1,
            20,
            false,
            dirty.iter().map(|(i, b)| (*i, b.as_slice())),
            true,
        )
        .unwrap();

        let segs = log.segments().unwrap();
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0].consistent_tick, 10);
        assert_eq!(segs[1].consistent_tick, 20);
        assert!(!segs[1].full_flush);
    }

    #[test]
    fn reconstruct_applies_newest_versions() {
        let dir = tempfile::tempdir().unwrap();
        let mut log = LogStore::create(dir.path(), geometry()).unwrap();
        let full: Vec<(ObjectId, Vec<u8>)> = (0..4).map(|i| (ObjectId(i), obj(1))).collect();
        log.append_segment(
            0,
            5,
            true,
            full.iter().map(|(i, b)| (*i, b.as_slice())),
            true,
        )
        .unwrap();
        let d1 = [(ObjectId(1), obj(7))];
        log.append_segment(
            1,
            8,
            false,
            d1.iter().map(|(i, b)| (*i, b.as_slice())),
            true,
        )
        .unwrap();
        let d2 = [(ObjectId(1), obj(8)), (ObjectId(3), obj(9))];
        log.append_segment(
            2,
            12,
            false,
            d2.iter().map(|(i, b)| (*i, b.as_slice())),
            true,
        )
        .unwrap();

        let (image, tick, bytes_read) = log.reconstruct().unwrap();
        assert_eq!(tick, 12);
        assert!(bytes_read > 0);
        assert!(image[0..64].iter().all(|&b| b == 1), "object 0 from full");
        assert!(image[64..128].iter().all(|&b| b == 8), "object 1 newest");
        assert!(
            image[128..192].iter().all(|&b| b == 1),
            "object 2 from full"
        );
        assert!(
            image[192..256].iter().all(|&b| b == 9),
            "object 3 from seg 2"
        );
    }

    #[test]
    fn reconstruct_starts_at_newest_full_flush() {
        let dir = tempfile::tempdir().unwrap();
        let mut log = LogStore::create(dir.path(), geometry()).unwrap();
        let full1: Vec<(ObjectId, Vec<u8>)> = (0..4).map(|i| (ObjectId(i), obj(1))).collect();
        log.append_segment(
            0,
            5,
            true,
            full1.iter().map(|(i, b)| (*i, b.as_slice())),
            true,
        )
        .unwrap();
        let full2: Vec<(ObjectId, Vec<u8>)> = (0..4).map(|i| (ObjectId(i), obj(2))).collect();
        log.append_segment(
            1,
            9,
            true,
            full2.iter().map(|(i, b)| (*i, b.as_slice())),
            true,
        )
        .unwrap();
        let (image, tick, bytes_read) = log.reconstruct().unwrap();
        assert_eq!(tick, 9);
        assert!(image.iter().all(|&b| b == 2));
        // Only the second full flush was read.
        let segs = log.segments().unwrap();
        assert_eq!(bytes_read, segs[1].bytes);
    }

    #[test]
    fn torn_tail_is_discarded() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("checkpoint.log");
        {
            let mut log = LogStore::create(dir.path(), geometry()).unwrap();
            let full: Vec<(ObjectId, Vec<u8>)> = (0..4).map(|i| (ObjectId(i), obj(3))).collect();
            log.append_segment(
                0,
                7,
                true,
                full.iter().map(|(i, b)| (*i, b.as_slice())),
                true,
            )
            .unwrap();
            let d = [(ObjectId(0), obj(9))];
            log.append_segment(
                1,
                11,
                false,
                d.iter().map(|(i, b)| (*i, b.as_slice())),
                true,
            )
            .unwrap();
        }
        // Chop off the last 10 bytes: the second segment is torn.
        let len = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 10).unwrap();
        drop(f);

        let mut log = LogStore::open(dir.path(), geometry()).unwrap();
        let segs = log.segments().unwrap();
        assert_eq!(segs.len(), 1, "torn segment must be dropped");
        let (image, tick, _) = log.reconstruct().unwrap();
        assert_eq!(tick, 7);
        assert!(image.iter().all(|&b| b == 3));
    }

    #[test]
    fn empty_log_fails_reconstruction() {
        let dir = tempfile::tempdir().unwrap();
        let mut log = LogStore::create(dir.path(), geometry()).unwrap();
        assert!(log.reconstruct().is_err());
    }

    #[test]
    fn open_rejects_garbage() {
        let dir = tempfile::tempdir().unwrap();
        std::fs::write(dir.path().join("checkpoint.log"), b"not a log at all").unwrap();
        assert!(LogStore::open(dir.path(), geometry()).is_err());
    }

    /// The uring backend's out-of-band append path must produce the
    /// exact bytes the streamed writer does — serialize a segment, write
    /// it raw at `append_offset`, and the store must scan/reconstruct it
    /// as if `append_segment` had written it.
    #[test]
    fn serialized_segment_is_byte_identical_to_streamed_append() {
        let streamed_dir = tempfile::tempdir().unwrap();
        let raw_dir = tempfile::tempdir().unwrap();
        let full: Vec<(ObjectId, Vec<u8>)> = (0..4).map(|i| (ObjectId(i), obj(i as u8))).collect();
        let dirty = [(ObjectId(1), obj(9)), (ObjectId(3), obj(8))];

        let mut streamed = LogStore::create(streamed_dir.path(), geometry()).unwrap();
        streamed
            .append_segment(
                0,
                5,
                true,
                full.iter().map(|(i, b)| (*i, b.as_slice())),
                true,
            )
            .unwrap();
        streamed
            .append_segment(
                1,
                9,
                false,
                dirty.iter().map(|(i, b)| (*i, b.as_slice())),
                true,
            )
            .unwrap();

        let mut raw = LogStore::create(raw_dir.path(), geometry()).unwrap();
        let mut buf = Vec::new();
        for (seq, tick, is_full, objs) in [(0u64, 5u64, true, &full[..]), (1, 9, false, &dirty[..])]
        {
            serialize_segment(
                seq,
                tick,
                is_full,
                objs.iter().map(|(i, b)| (*i, b.as_slice())),
                &mut buf,
            );
            let offset = raw.append_offset();
            crate::uring::pwrite_all(raw.sync_fd(), &buf, offset).unwrap();
            raw.note_appended(buf.len() as u64);
        }
        raw.sync().unwrap();

        let a = std::fs::read(streamed_dir.path().join("checkpoint.log")).unwrap();
        let b = std::fs::read(raw_dir.path().join("checkpoint.log")).unwrap();
        assert_eq!(a, b, "serialized path must be byte-identical");
        assert_eq!(raw.len(), a.len() as u64, "note_appended tracks length");
        let (image, tick, _) = raw.reconstruct().unwrap();
        assert_eq!(tick, 9);
        assert!(image[64..128].iter().all(|&v| v == 9));
    }

    #[test]
    fn dirty_only_log_without_full_flush_fails() {
        let dir = tempfile::tempdir().unwrap();
        let mut log = LogStore::create(dir.path(), geometry()).unwrap();
        let d = [(ObjectId(0), obj(9))];
        log.append_segment(0, 3, false, d.iter().map(|(i, b)| (*i, b.as_slice())), true)
            .unwrap();
        assert!(log.reconstruct().is_err(), "no full flush to anchor on");
    }
}
