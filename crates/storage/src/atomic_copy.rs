//! The real Atomic-Copy-Dirty-Objects engine — one of the two algorithms
//! the paper's C++ validation never implemented, unlocked by the unified
//! driver.
//!
//! At the tick boundary the driver eagerly copies only the objects
//! dirtied since the target backup's previous checkpoint (the real
//! `memcpy` pause scales with the dirty-set size, not the state size);
//! the writer flushes the private copies to the double backup with
//! sorted, offset-ordered writes.

use crate::config::RealConfig;
use crate::engine::run_single;
use crate::report::RealReport;
use mmoc_core::{Algorithm, TraceSource};
use std::io;

/// Run Atomic-Copy-Dirty-Objects over the trace produced by `make_trace`
/// (replayable; the second instantiation drives recovery).
#[deprecated(
    since = "0.2.0",
    note = "use the unified builder: `Run::algorithm(Algorithm::AtomicCopyDirtyObjects).engine(real_config).trace(\u{2026}).execute()`"
)]
pub fn run_atomic_copy<S, F>(config: &RealConfig, make_trace: F) -> io::Result<RealReport>
where
    S: TraceSource,
    F: Fn() -> S + Sync,
{
    run_single(Algorithm::AtomicCopyDirtyObjects, config, make_trace)
}

#[cfg(test)]
mod tests {
    #![allow(deprecated)] // the wrappers stay exercised until removal

    use super::*;
    use mmoc_core::StateGeometry;
    use mmoc_workload::SyntheticConfig;

    fn config(dir: &std::path::Path) -> RealConfig {
        let mut c = RealConfig::new(dir);
        c.query_ops_per_tick = 64;
        c
    }

    fn trace_config() -> SyntheticConfig {
        SyntheticConfig {
            geometry: StateGeometry::test_small(),
            ticks: 45,
            updates_per_tick: 300,
            skew: 0.7,
            seed: 1213,
        }
    }

    #[test]
    fn acdo_runs_and_recovers_exactly() {
        let dir = tempfile::tempdir().unwrap();
        let report = run_atomic_copy(&config(dir.path()), || trace_config().build()).unwrap();
        assert!(report.checkpoints_completed > 0);
        let rec = report.recovery.expect("recovery measured");
        assert!(rec.state_matches, "ACDO recovery diverged");
    }

    #[test]
    fn acdo_writes_only_dirty_objects_with_eager_pauses() {
        let dir = tempfile::tempdir().unwrap();
        let report = run_atomic_copy(&config(dir.path()).without_recovery(), || {
            trace_config().build()
        })
        .unwrap();
        let g = trace_config().geometry;
        assert!(report
            .metrics
            .checkpoints
            .iter()
            .any(|c| c.objects_written < g.n_objects()));
        let pauses: f64 = report.metrics.ticks.iter().map(|t| t.sync_pause_s).sum();
        assert!(pauses > 0.0, "ACDO pays eager copy pauses");
        let copies: u64 = report.metrics.ticks.iter().map(|t| t.copies).sum();
        assert_eq!(copies, 0, "ACDO never copies on update");
    }

    #[test]
    fn acdo_tracks_dirty_bits_per_update() {
        let dir = tempfile::tempdir().unwrap();
        let report = run_atomic_copy(&config(dir.path()).without_recovery(), || {
            trace_config().build()
        })
        .unwrap();
        let bit_ops: u64 = report.metrics.ticks.iter().map(|t| t.bit_ops).sum();
        assert_eq!(bit_ops, report.updates, "one dirty-bit op per update");
    }

    /// Alternating backups each owe their own dirty sets: an object
    /// updated once must be written by the next checkpoint of *both*
    /// backups.
    #[test]
    fn acdo_alternating_backups_recover_after_updates_stop() {
        let dir = tempfile::tempdir().unwrap();
        // A trace whose updates stop halfway: the tail checkpoints drain
        // both backups' dirty sets and recovery still matches.
        let g = StateGeometry::small(128, 8);
        let mut ticks: Vec<Vec<mmoc_core::CellUpdate>> = (0..30u32)
            .map(|t| {
                (0..50u32)
                    .map(|i| mmoc_core::CellUpdate::new((t * 7 + i) % 128, i % 8, t * 1000 + i))
                    .collect()
            })
            .collect();
        ticks.extend(std::iter::repeat_with(Vec::new).take(30));
        let trace = mmoc_workload::RecordedTrace::new(g, ticks);
        let report = run_atomic_copy(&config(dir.path()), || trace.replay()).unwrap();
        assert!(report.recovery.unwrap().state_matches);
    }
}
