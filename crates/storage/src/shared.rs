//! Thread-shared game state for the Copy-on-Update engine.
//!
//! The mutator writes cells while the asynchronous writer reads whole
//! atomic objects "concurrently and thus must be thread-safe" (§4.1). The
//! copy-on-update protocol guarantees the writer never reads an object a
//! mutator is racing on (see the protocol notes on [`SharedTable`]), and
//! cells are `AtomicU32`s so the guarantee is also visible to the
//! compiler — relaxed loads/stores compile to plain moves on x86.

use mmoc_core::{CellUpdate, ObjectId, StateGeometry};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// The game-state table with atomically accessible 4-byte cells.
///
/// ## Copy-on-update protocol (shared with the writer thread)
///
/// * The writer reads an object's live cells only while holding that
///   object's lock, and only if the object's `copied` flag is clear; it
///   sets the `flushed` flag before releasing the lock.
/// * The mutator's first update to an unflushed, uncopied object takes the
///   lock, re-checks `flushed`, saves the object's pre-update image into
///   the side arena, and sets `copied` — all before writing the cell.
/// * Any later cell write happens only when `copied` or `flushed` is
///   already set, so the writer is guaranteed never to read those cells.
#[derive(Debug)]
pub struct SharedTable {
    geometry: StateGeometry,
    cells: Box<[AtomicU32]>,
}

impl SharedTable {
    /// Create a zeroed table. Requires a 4-byte cell size (the calibrated
    /// geometry of all paper experiments).
    pub fn new(geometry: StateGeometry) -> Self {
        geometry.validate().expect("valid geometry");
        assert_eq!(
            geometry.cell_size, 4,
            "SharedTable requires 4-byte cells (got {})",
            geometry.cell_size
        );
        let cells_per_object = geometry.cells_per_object() as u64;
        let n_cells = u64::from(geometry.n_objects()) * cells_per_object;
        let cells: Box<[AtomicU32]> = (0..n_cells).map(|_| AtomicU32::new(0)).collect();
        SharedTable { geometry, cells }
    }

    /// The table's geometry.
    pub fn geometry(&self) -> &StateGeometry {
        &self.geometry
    }

    /// Write one cell (mutator side).
    #[inline]
    pub fn write_cell(&self, update: CellUpdate) {
        let idx =
            update.addr.row as u64 * u64::from(self.geometry.cols) + u64::from(update.addr.col);
        self.cells[idx as usize].store(update.value, Ordering::Relaxed);
    }

    /// Read one cell (query phase).
    #[inline]
    pub fn read_cell(&self, row: u32, col: u32) -> u32 {
        let idx = row as u64 * u64::from(self.geometry.cols) + u64::from(col);
        self.cells[idx as usize].load(Ordering::Relaxed)
    }

    /// Read a cell by linear index (the copy-on-update arena copy path).
    #[inline]
    pub fn read_cell_raw(&self, idx: usize) -> u32 {
        self.cells[idx].load(Ordering::Relaxed)
    }

    /// Copy one atomic object's bytes into `buf` (little-endian cells).
    /// `buf` must be `object_size` bytes.
    pub fn read_object_into(&self, obj: ObjectId, buf: &mut [u8]) {
        let per = self.geometry.cells_per_object() as usize;
        let base = obj.index() * per;
        for (i, chunk) in buf.chunks_exact_mut(4).enumerate().take(per) {
            chunk.copy_from_slice(&self.cells[base + i].load(Ordering::Relaxed).to_le_bytes());
        }
    }

    /// Overwrite one atomic object from checkpoint bytes (recovery path).
    pub fn write_object(&self, obj: ObjectId, data: &[u8]) {
        let per = self.geometry.cells_per_object() as usize;
        let base = obj.index() * per;
        for (i, chunk) in data.chunks_exact(4).enumerate().take(per) {
            let v = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
            self.cells[base + i].store(v, Ordering::Relaxed);
        }
    }

    /// FNV-1a fingerprint over all cells, comparable with
    /// [`mmoc_core::StateTable::fingerprint`] for equal geometries.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        // Mirror StateTable::fingerprint: hash the byte stream 8 bytes at
        // a time, i.e. two consecutive LE cells per step.
        let mut chunks = self.cells.chunks_exact(2);
        for pair in &mut chunks {
            let lo = u64::from(pair[0].load(Ordering::Relaxed));
            let hi = u64::from(pair[1].load(Ordering::Relaxed));
            h ^= lo | (hi << 32);
            h = h.wrapping_mul(PRIME);
        }
        for cell in chunks.remainder() {
            for b in cell.load(Ordering::Relaxed).to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(PRIME);
            }
        }
        h
    }
}

/// A bitmap with atomic set/test, shared between mutator and writer.
#[derive(Debug)]
pub struct AtomicBitmap {
    words: Box<[AtomicU64]>,
    len: u32,
}

impl AtomicBitmap {
    /// Create with all bits clear.
    pub fn new(len: u32) -> Self {
        let n_words = (len as usize).div_ceil(64);
        AtomicBitmap {
            words: (0..n_words).map(|_| AtomicU64::new(0)).collect(),
            len,
        }
    }

    /// Number of bits.
    pub fn len(&self) -> u32 {
        self.len
    }

    /// True if the bitmap tracks zero bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Test bit `i` with acquire ordering (pairs with [`Self::set`]).
    #[inline]
    pub fn get(&self, i: u32) -> bool {
        debug_assert!(i < self.len);
        let w = self.words[(i / 64) as usize].load(Ordering::Acquire);
        (w >> (i % 64)) & 1 == 1
    }

    /// Set bit `i` with release ordering. Returns the previous value.
    #[inline]
    pub fn set(&self, i: u32) -> bool {
        debug_assert!(i < self.len);
        let mask = 1u64 << (i % 64);
        let prev = self.words[(i / 64) as usize].fetch_or(mask, Ordering::AcqRel);
        prev & mask != 0
    }

    /// Clear every bit (single-threaded phase between checkpoints).
    pub fn clear_all(&self) {
        for w in &self.words {
            w.store(0, Ordering::Release);
        }
    }
}

/// Everything the mutator and the asynchronous writer share: the live
/// table, the copy-on-update side arena, the `copied`/`flushed` flags and
/// the per-object locks of the protocol described on [`SharedTable`].
pub struct Shared {
    /// The live game state.
    pub table: SharedTable,
    /// Side arena holding pre-update images of copied objects (same cell
    /// layout as the table).
    pub arena: Box<[AtomicU32]>,
    /// Set by the mutator once it has saved an object's pre-update image.
    pub copied: AtomicBitmap,
    /// Set by the writer once an object's checkpoint value is on disk.
    pub flushed: AtomicBitmap,
    /// Per-object locks serializing the writer's read against the
    /// mutator's first-touch copy.
    pub locks: Box<[Mutex<()>]>,
}

impl Shared {
    /// Create protocol state over a zeroed table.
    pub fn new(table: SharedTable) -> Self {
        Shared::with_protocol(table, true)
    }

    /// As [`Shared::new`], but when `protocol` is false the arena, flags
    /// and locks are left empty. Purely-eager algorithms (Naive-Snapshot,
    /// Atomic-Copy-Dirty-Objects) never run the copy-on-update protocol —
    /// their writer reads only private buffers — so the state-sized arena
    /// and the per-object locks would be dead weight. Callers must not
    /// issue sweep jobs or take the copy slow path on a protocol-less
    /// `Shared`.
    pub fn with_protocol(table: SharedTable, protocol: bool) -> Self {
        let g = *table.geometry();
        let n = if protocol { g.n_objects() } else { 0 };
        let cells = u64::from(n) * u64::from(g.cells_per_object());
        Shared {
            table,
            arena: (0..cells).map(|_| AtomicU32::new(0)).collect(),
            copied: AtomicBitmap::new(n),
            flushed: AtomicBitmap::new(n),
            locks: (0..n).map(|_| Mutex::new(())).collect(),
        }
    }

    /// Copy an object's live cells into the arena (mutator, under lock).
    pub fn save_to_arena(&self, obj: ObjectId) {
        let per = self.table.geometry().cells_per_object() as usize;
        let base = obj.index() * per;
        for i in 0..per {
            let v = self.table.read_cell_raw(base + i);
            self.arena[base + i].store(v, Ordering::Relaxed);
        }
    }

    /// Read an object image from the arena into `buf` (writer, under
    /// lock, after observing `copied`).
    pub fn read_arena_into(&self, obj: ObjectId, buf: &mut [u8]) {
        let per = self.table.geometry().cells_per_object() as usize;
        let base = obj.index() * per;
        for (i, chunk) in buf.chunks_exact_mut(4).enumerate().take(per) {
            chunk.copy_from_slice(&self.arena[base + i].load(Ordering::Relaxed).to_le_bytes());
        }
    }

    /// Reset the per-checkpoint protocol state (mutator side, called only
    /// while the writer is idle between checkpoints).
    pub fn reset_for_checkpoint(&self) {
        self.copied.clear_all();
        self.flushed.clear_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmoc_core::{CellAddr, StateTable};

    fn geometry() -> StateGeometry {
        StateGeometry::small(32, 4)
    }

    #[test]
    fn cell_roundtrip() {
        let t = SharedTable::new(geometry());
        t.write_cell(CellUpdate::new(3, 2, 0xfeed));
        assert_eq!(t.read_cell(3, 2), 0xfeed);
        assert_eq!(t.read_cell(3, 1), 0);
    }

    #[test]
    fn object_read_matches_state_table_layout() {
        let g = geometry();
        let shared = SharedTable::new(g);
        let mut plain = StateTable::new(g).unwrap();
        for i in 0..32u32 {
            let u = CellUpdate::new(i, i % 4, i * 1000 + 7);
            shared.write_cell(u);
            plain.apply(u).unwrap();
        }
        let mut buf = vec![0u8; g.object_size as usize];
        for obj in 0..g.n_objects() {
            shared.read_object_into(ObjectId(obj), &mut buf);
            assert_eq!(
                buf.as_slice(),
                plain.object_bytes(ObjectId(obj)).unwrap(),
                "object {obj}"
            );
        }
    }

    #[test]
    fn fingerprint_matches_state_table() {
        let g = geometry();
        let shared = SharedTable::new(g);
        let mut plain = StateTable::new(g).unwrap();
        assert_eq!(shared.fingerprint(), plain.fingerprint());
        for i in 0..64u32 {
            let u = CellUpdate::new((i * 13) % 32, (i * 5) % 4, i ^ 0xabcd);
            shared.write_cell(u);
            plain.apply(u).unwrap();
        }
        assert_eq!(shared.fingerprint(), plain.fingerprint());
        assert!(plain.read(CellAddr::new(13, 1)).is_ok());
    }

    #[test]
    fn write_object_restores_cells() {
        let g = geometry();
        let t = SharedTable::new(g);
        t.write_cell(CellUpdate::new(0, 0, 5));
        let mut buf = vec![0u8; g.object_size as usize];
        t.read_object_into(ObjectId(0), &mut buf);
        t.write_cell(CellUpdate::new(0, 0, 9));
        assert_eq!(t.read_cell(0, 0), 9);
        t.write_object(ObjectId(0), &buf);
        assert_eq!(t.read_cell(0, 0), 5);
    }

    #[test]
    fn atomic_bitmap_set_get_clear() {
        let b = AtomicBitmap::new(130);
        assert!(!b.get(129));
        assert!(!b.set(129));
        assert!(b.set(129));
        assert!(b.get(129));
        b.clear_all();
        assert!(!b.get(129));
    }

    #[test]
    fn atomic_bitmap_is_actually_shared() {
        use std::sync::Arc;
        let b = Arc::new(AtomicBitmap::new(1024));
        let mut handles = Vec::new();
        for t in 0..4 {
            let b = Arc::clone(&b);
            handles.push(std::thread::spawn(move || {
                for i in (t..1024).step_by(4) {
                    b.set(i as u32);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for i in 0..1024 {
            assert!(b.get(i));
        }
    }
}
