//! # mmoc-storage — the real (non-simulated) checkpointing engine
//!
//! A Rust rebuild of the paper's C++ validation implementation (§6). Where
//! `mmoc-sim` *prices* operations, this crate *performs* them: real memory
//! copies, real files, real threads.
//!
//! The paper implemented only the two winners identified by the simulation
//! (Naive-Snapshot and Copy-on-Update); this crate runs **all six**
//! algorithms through one engine ([`engine::run_algorithm`]), built as a
//! backend of the unified tick driver in `mmoc_core::driver`:
//!
//! * the **mutator** executes each tick in three phases: *query* (random
//!   lookups sized to fill the tick), *update* (apply the trace's updates
//!   through the bookkeeper's `Handle-Update`), and *sleep* (pad to the
//!   tick frequency when pacing is on);
//! * an **asynchronous writer thread** flushes consistent checkpoints to
//!   the algorithm's disk organization — a double-backup pair of files
//!   with sorted (offset-ordered) writes, or an append-only segment log —
//!   publishing its sweep frontier for copy-on-update coordination;
//! * real **crash recovery**: read back the newest consistent image
//!   (backup file or log reconstruction) and replay the deterministic
//!   update stream to the crash tick.
//!
//! Substitutions versus the paper's setup are documented in DESIGN.md:
//! regular files + `fsync` instead of a raw block device, and configurable
//! pacing so the experiment fits CI budgets.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod atomic_copy;
pub mod config;
pub mod cou;
pub mod dribble;
pub mod engine;
pub mod files;
pub mod log_store;
pub mod naive;
pub mod partial_redo;
pub mod recovery;
pub mod report;
pub mod sharded;
pub mod shared;

pub use atomic_copy::run_atomic_copy;
pub use config::RealConfig;
pub use cou::run_copy_on_update;
pub use dribble::run_dribble;
pub use engine::run_algorithm;
pub use naive::run_naive_snapshot;
pub use partial_redo::{run_cou_partial_redo, run_partial_redo};
pub use report::{RealReport, RecoveryMeasurement};
pub use sharded::{run_algorithm_sharded, shard_dir, ShardedRealReport, ShardedRecovery};
