//! # mmoc-storage — the real (non-simulated) checkpointing engine
//!
//! A Rust rebuild of the paper's C++ validation implementation (§6). Where
//! `mmoc-sim` *prices* operations, this crate *performs* them: real memory
//! copies, real files, real threads.
//!
//! The paper implemented only the two winners identified by the simulation
//! (Naive-Snapshot and Copy-on-Update); this crate runs **all six**
//! algorithms through one engine, built as a backend of the unified tick
//! driver in `mmoc_core::driver` and plugged into the unified experiment
//! builder: [`RealConfig`] implements `mmoc_core::ExperimentEngine`, so
//! `Run::algorithm(alg).engine(real_config).trace(…).execute()` is the one
//! entry point (the historical free functions remain as deprecated
//! wrappers for this release; see [`run`]):
//!
//! * the **mutator** executes each tick in three phases: *query* (random
//!   lookups sized to fill the tick), *update* (apply the trace's updates
//!   through the bookkeeper's `Handle-Update`), and *sleep* (pad to the
//!   tick frequency when pacing is on);
//! * an **asynchronous writer thread** flushes consistent checkpoints to
//!   the algorithm's disk organization — a double-backup pair of files
//!   with sorted (offset-ordered) writes, or an append-only segment log —
//!   publishing its sweep frontier for copy-on-update coordination;
//! * real **crash recovery**: read back the newest consistent image
//!   (backup file or log reconstruction) and replay the deterministic
//!   update stream to the crash tick.
//!
//! Substitutions versus the paper's setup are documented in DESIGN.md:
//! regular files + `fsync` instead of a raw block device, and configurable
//! pacing so the experiment fits CI budgets.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod atomic_copy;
pub mod config;
pub mod cou;
pub mod dribble;
pub mod engine;
pub mod files;
pub mod log_store;
pub mod naive;
pub mod partial_redo;
pub mod recovery;
pub mod report;
pub mod run;
pub mod sharded;
pub mod shared;

pub use config::RealConfig;
pub use report::{RealReport, RecoveryMeasurement};
pub use sharded::{shard_dir, ShardedRealReport, ShardedRecovery};

// Deprecated legacy entry points, re-exported until their removal; every
// one of them now delegates to the same implementation the unified
// `mmoc_core::Run` builder executes.
#[allow(deprecated)]
pub use atomic_copy::run_atomic_copy;
#[allow(deprecated)]
pub use cou::run_copy_on_update;
#[allow(deprecated)]
pub use dribble::run_dribble;
#[allow(deprecated)]
pub use engine::run_algorithm;
#[allow(deprecated)]
pub use naive::run_naive_snapshot;
#[allow(deprecated)]
pub use partial_redo::{run_cou_partial_redo, run_partial_redo};
#[allow(deprecated)]
pub use sharded::run_algorithm_sharded;
