//! # mmoc-storage — the real (non-simulated) checkpointing engine
//!
//! A Rust rebuild of the paper's C++ validation implementation (§6). Where
//! `mmoc-sim` *prices* operations, this crate *performs* them: real memory
//! copies, real files, real threads.
//!
//! The paper implemented the two winners identified by the simulation —
//! **Naive-Snapshot** and **Copy-on-Update** — with this structure:
//!
//! * a **mutator thread** executing each tick in three phases: *query*
//!   (random lookups sized to fill the tick), *update* (apply the trace's
//!   updates), and *sleep* (pad to the tick frequency when pacing is on);
//! * an **asynchronous writer thread** flushing consistent checkpoints to
//!   a double-backup pair of files, with sorted (offset-ordered) writes;
//! * real **crash recovery**: read back the newest consistent backup and
//!   replay the deterministic update stream to the crash tick.
//!
//! Substitutions versus the paper's setup are documented in DESIGN.md:
//! regular files + `fsync` instead of a raw block device, and configurable
//! pacing so the experiment fits CI budgets.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod cou;
pub mod files;
pub mod log_store;
pub mod naive;
pub mod partial_redo;
pub mod recovery;
pub mod report;
pub mod shared;

pub use config::RealConfig;
pub use cou::run_copy_on_update;
pub use naive::run_naive_snapshot;
pub use partial_redo::{run_cou_partial_redo, run_partial_redo};
pub use report::{RealReport, RecoveryMeasurement};
