//! # mmoc-storage — the real (non-simulated) checkpointing engine
//!
//! A Rust rebuild of the paper's C++ validation implementation (§6). Where
//! `mmoc-sim` *prices* operations, this crate *performs* them: real memory
//! copies, real files, real threads.
//!
//! The paper implemented only the two winners identified by the simulation
//! (Naive-Snapshot and Copy-on-Update); this crate runs **all six**
//! algorithms through one engine, built as a backend of the unified tick
//! driver in `mmoc_core::driver` and plugged into the unified experiment
//! builder: [`RealConfig`] implements `mmoc_core::ExperimentEngine`, so
//! `Run::algorithm(alg).engine(real_config).trace(…).execute()` is the one
//! entry point (see [`run`]; the pre-builder free functions were removed
//! after one deprecation release):
//!
//! * the **mutator** executes each tick in three phases: *query* (random
//!   lookups sized to fill the tick), *update* (apply the trace's updates
//!   through the bookkeeper's `Handle-Update`), and *sleep* (pad to the
//!   tick frequency when pacing is on);
//! * an **asynchronous writer** flushes consistent checkpoints to the
//!   algorithm's disk organization — a double-backup pair of files with
//!   sorted (offset-ordered) writes, or an append-only segment log —
//!   publishing its sweep frontier for copy-on-update coordination. Three
//!   interchangeable writer backends sit behind one seam ([`writer`]):
//!   the worker-thread pool, an io_uring-style batched-submission engine,
//!   and a real `io_uring` ring driven by raw syscalls (capability-probed,
//!   falling back to the batched engine on kernels without it), selected
//!   by [`RealConfig::writer_backend`] or the builder's `.writer(…)` and
//!   proven recovery-equivalent by the differential matrix in
//!   `tests/writer_equivalence.rs`;
//! * real **crash recovery**: read back the newest consistent image
//!   (backup file or log reconstruction) and replay the deterministic
//!   update stream to the crash tick.
//!
//! Substitutions versus the paper's setup are documented in DESIGN.md:
//! regular files + `fsync` instead of a raw block device, and configurable
//! pacing so the experiment fits CI budgets.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod crash;
mod device_sync;
pub mod engine;
pub mod fault;
pub mod files;
pub mod log_store;
pub mod recovery;
pub mod replica;
pub mod report;
pub mod run;
pub mod sharded;
pub mod shared;
mod uring;
pub mod writer;

pub use config::RealConfig;
pub use fault::{FaultKind, FaultPlan, FaultSite, FaultState, RetryCounters, RetryPolicy};
pub use recovery::RecoveryOpts;
pub use replica::ReplicaSet;
pub use report::{RealReport, RecoveryMeasurement, WriterStats};
pub use sharded::{shard_dir, ShardedRealReport, ShardedRecovery};
