//! The sharded real engine: N per-shard framework loops over one world,
//! one shared writer backend, per-shard files, parallel recovery.
//!
//! The shared sharded run (`run_sharded_impl`) partitions the trace's
//! geometry with a
//! [`ShardMap`], gives every shard its own live table, bookkeeper and
//! disk organization (namespaced under `dir/shard<N>/`), and drives all
//! shards in lockstep through [`mmoc_core::ShardedDriver`]. Checkpoint
//! flush work from *all* shards is served by one shared writer backend
//! ([`crate::writer`], selected by [`RealConfig::writer_backend`]) — the
//! scaling point: writer threads are a resource shared across the world,
//! not one dedicated thread per shard.
//!
//! Because every shard owns disjoint files, shards also **recover
//! independently and in parallel**: the end-of-run measurement restores
//! and replays every shard on its own thread, and a single crashed shard
//! can be restored without touching its neighbours (see the shard crash
//! injection tests in `tests/shard_failure.rs`).

use crate::config::RealConfig;
use crate::engine::{
    live_fingerprint, make_shard, measure_recovery_tiered, shard_report, PoolJob, RealBackend,
};
use crate::recovery::RecoveryOpts;
use crate::replica::ReplicaSet;
use crate::report::{RealReport, RecoveryMeasurement, WriterStats};
use crate::writer::{spawn_writer, DurabilityConfig};
use mmoc_core::run::RunError;
use mmoc_core::{
    Algorithm, RunMetrics, ShardFilter, ShardMap, ShardedDriver, TickDriver, WriterBackend,
};
use mmoc_workload::TraceSource;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// Directory holding shard `s`'s backup/log files. Single-shard runs use
/// `dir` itself (the historical layout); multi-shard runs namespace each
/// shard under `dir/shard<s>/`.
pub fn shard_dir(dir: &Path, shard: usize, n_shards: usize) -> PathBuf {
    if n_shards == 1 {
        dir.to_path_buf()
    } else {
        dir.join(format!("shard{shard}"))
    }
}

/// The parallel-recovery measurement of a sharded run.
#[derive(Debug, Clone, Copy)]
pub struct ShardedRecovery {
    /// Wall-clock time of the whole parallel restore+replay: all shards
    /// recover concurrently, so this tracks the slowest shard, not the
    /// sum.
    pub wall_s: f64,
    /// The slowest single shard's restore+replay time.
    pub max_shard_total_s: f64,
    /// Sum of all shards' restore+replay times (what a serial recovery
    /// would have cost).
    pub sum_shard_total_s: f64,
    /// True only if *every* shard's recovered state matches its live
    /// state at the crash tick.
    pub state_matches: bool,
}

/// Result of one sharded real-engine run.
#[derive(Debug, Clone)]
pub struct ShardedRealReport {
    /// Algorithm executed (the same on every shard).
    pub algorithm: Algorithm,
    /// Number of shards the world was split into.
    pub n_shards: u32,
    /// Writer backend that actually executed the shards' flush jobs.
    /// Where the requested backend was unavailable (io_uring on a kernel
    /// without it), this is the substitute, not the request.
    pub writer_backend: WriterBackend,
    /// The originally requested backend, when the run fell back to a
    /// different one ([`ShardedRealReport::writer_backend`]); `None`
    /// when the request was honored. Surfaced so reports never silently
    /// attribute results to a backend that did not run.
    pub writer_fallback_from: Option<WriterBackend>,
    /// Writer threads that served the shards' flush jobs (pool workers,
    /// or the batched engine's single submission/completion loop).
    pub pool_threads: usize,
    /// Checkpoint pipeline depth the driver ran at (1 = the historical
    /// one-in-flight engine).
    pub pipeline_depth: u32,
    /// Replication factor K of the in-memory recovery tier this run
    /// pushed checkpoint deltas to (0 = the tier was off and every
    /// recovery came from disk).
    pub replication_factor: u32,
    /// Global ticks executed.
    pub ticks: u64,
    /// Total updates routed across all shards.
    pub updates: u64,
    /// Checkpoints completed, summed over shards.
    pub checkpoints_completed: u64,
    /// Average per-tick overhead of the world (per-tick max across
    /// shards, averaged over ticks).
    pub avg_overhead_s: f64,
    /// Worst single-tick world overhead.
    pub max_overhead_s: f64,
    /// Average checkpoint duration over all shards' checkpoints.
    pub avg_checkpoint_s: f64,
    /// Merged per-tick and per-checkpoint series
    /// ([`RunMetrics::merge_shards`]).
    pub metrics: RunMetrics,
    /// Writer-side durability instrumentation summed over shards: flush
    /// jobs, data fsync calls, batch occupancy.
    pub writer: WriterStats,
    /// One report per shard (each with its own recovery measurement).
    pub shards: Vec<RealReport>,
    /// The parallel-recovery measurement, when enabled.
    pub recovery: Option<ShardedRecovery>,
}

impl ShardedRealReport {
    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        let rec = self
            .recovery
            .map(|r| format!("{:.3} s (match: {})", r.wall_s, r.state_matches))
            .unwrap_or_else(|| "n/a".into());
        format!(
            "{:<28} x{:<2} shards  overhead {:>9.4} ms  checkpoint {:>7.3} s  recovery {rec}",
            self.algorithm.name(),
            self.n_shards,
            self.avg_overhead_s * 1e3,
            self.avg_checkpoint_s,
        )
    }
}

/// The shared sharded run: the single definition of a real-engine
/// experiment that every public entry point — the unified builder, and
/// with `n_shards == 1` the in-crate single-shard tests — executes.
///
/// When [`RealConfig::paced`] is set, a single-shard run paces inside the
/// backend (the historical sleep phase), while a multi-shard run paces
/// **once per global tick** through [`ShardedDriver::run_with`]: all
/// shards execute the tick back to back, then the mutator sleeps out the
/// remainder of the tick period — N per-shard sleeps would stretch the
/// world's tick N-fold.
pub(crate) fn run_sharded_impl<S, F>(
    algorithm: Algorithm,
    config: &RealConfig,
    n_shards: u32,
    batching: bool,
    make_trace: F,
) -> Result<ShardedRealReport, RunError>
where
    S: TraceSource,
    F: Fn() -> S + Sync,
{
    let mut trace = make_trace();
    let geometry = trace.geometry();
    let map = ShardMap::new(geometry, n_shards)?;
    let n = map.n_shards();
    let spec = algorithm.spec();
    let pool_threads = config.effective_pool_threads(n);
    let pipeline_depth = config.pipeline_depth.max(1);

    // Per-shard live state, stores and backends, sharing one job queue
    // sized to the deepest possible backlog: every shard pipelined to
    // the configured depth.
    let (job_tx, job_rx) = crossbeam::channel::bounded::<PoolJob>(n * pipeline_depth as usize);

    // The replica tier: an installed set wins (the caller retains its own
    // handle to drive recovery), else a non-zero factor builds one owned
    // by this run. Each shard's ShardCtx shares the Arc so the writer
    // completion seam can publish deltas from any worker thread.
    let replicas: Option<Arc<ReplicaSet>> = match &config.replica_set {
        Some(set) => Some(Arc::clone(set)),
        None if config.replication_factor > 0 => {
            let geometries: Vec<_> = (0..n).map(|s| map.shard_geometry(s)).collect();
            Some(Arc::new(ReplicaSet::new(
                config.replication_factor,
                &geometries,
            )))
        }
        None => None,
    };
    let replication_factor = replicas.as_ref().map_or(0, |r| r.factor());

    let mut ctxs = Vec::with_capacity(n);
    let mut built = Vec::with_capacity(n);
    for s in 0..n {
        let (ctx, backend) = make_shard(
            algorithm,
            config,
            map.shard_geometry(s),
            s,
            n,
            &shard_dir(&config.dir, s, n),
            job_tx.clone(),
            replicas.clone(),
        )?;
        ctxs.push(ctx);
        built.push(backend);
    }
    let ctxs = Arc::new(ctxs);
    let (mut pool, effective_backend) = spawn_writer(
        config.writer_backend,
        Arc::clone(&ctxs),
        pool_threads,
        job_rx,
        DurabilityConfig {
            batch_window: config.batch_window,
            auto_window: config.auto_window,
            coalesce_fsync: config.coalesce_fsync,
            device_sync: config.device_sync,
            pipeline_depth,
        },
    );
    // `backends` is declared after `pool`, so on an early `?` return it
    // drops first, releasing its job senders before the writer joins.
    let mut backends: Vec<RealBackend> = built;
    drop(job_tx);

    // Drive every shard in lockstep over the global trace. Multi-shard
    // pacing sleeps once per *global* tick (single-shard runs pace inside
    // the backend, preserving the historical path exactly).
    let driver = ShardedDriver::new(
        TickDriver::new(spec)
            .with_batching(batching)
            .with_pipeline_depth(pipeline_depth),
        map.clone(),
    );
    let run = if config.paced && n > 1 {
        let period = config.tick_period;
        let mut tick_start = Instant::now();
        driver.run_with(&mut trace, &mut backends, |_tick| {
            let elapsed = tick_start.elapsed();
            if elapsed < period {
                std::thread::sleep(period.saturating_sub(elapsed));
            }
            tick_start = Instant::now();
        })?
    } else {
        driver.run(&mut trace, &mut backends)?
    };

    // All checkpoints drained: wind the pool down before measuring
    // recovery, so no worker races the files being read back.
    for b in &mut backends {
        b.release_writer();
    }
    pool.shutdown();

    // Parallel per-shard recovery: one thread per shard, each restoring
    // its own files and replaying its slice of the trace.
    let recovery = if config.measure_recovery {
        let crash_tick = run.ticks;
        let fingerprints: Vec<u64> = backends.iter().map(live_fingerprint).collect();
        // Production recoveries run under the same crash/fault
        // instrumentation and retry budget as the writer path.
        let opts = RecoveryOpts {
            crash: config.crash.clone(),
            fault: config.fault.clone(),
            retry: config.retry_policy(),
        };
        let t0 = Instant::now();
        let results: Vec<io::Result<RecoveryMeasurement>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..n)
                .map(|s| {
                    let map = &map;
                    let make_trace = &make_trace;
                    let dir = shard_dir(&config.dir, s, n);
                    let fp = fingerprints[s];
                    let replicas = replicas.as_deref();
                    let opts = &opts;
                    scope.spawn(move || {
                        let mut replay = ShardFilter::new(make_trace(), map.clone(), s);
                        measure_recovery_tiered(
                            spec.disk_org,
                            &dir,
                            map.shard_geometry(s),
                            &mut replay,
                            crash_tick,
                            fp,
                            replicas,
                            s as u32,
                            opts,
                        )
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard recovery thread"))
                .collect()
        });
        let wall_s = t0.elapsed().as_secs_f64();
        let measurements: Vec<RecoveryMeasurement> =
            results.into_iter().collect::<io::Result<_>>()?;
        Some((wall_s, measurements))
    } else {
        None
    };

    // Assemble per-shard and world-level reports.
    let (sharded_recovery, mut per_shard_rec) = match recovery {
        Some((wall_s, ms)) => {
            let max = ms.iter().map(|m| m.total_s).fold(0.0f64, f64::max);
            let sum = ms.iter().map(|m| m.total_s).sum();
            let all_match = ms.iter().all(|m| m.state_matches);
            (
                Some(ShardedRecovery {
                    wall_s,
                    max_shard_total_s: max,
                    sum_shard_total_s: sum,
                    state_matches: all_match,
                }),
                ms.into_iter().map(Some).collect::<Vec<_>>(),
            )
        }
        None => (None, vec![None; n]),
    };

    let metrics = run.merged_metrics();
    let writer_stats: Vec<WriterStats> = backends.iter().map(RealBackend::writer_stats).collect();
    let mut writer = WriterStats::default();
    for s in &writer_stats {
        writer.merge(*s);
    }
    let shards: Vec<RealReport> = run
        .shards
        .into_iter()
        .enumerate()
        .map(|(s, r)| shard_report(algorithm, r, writer_stats[s], per_shard_rec[s].take()))
        .collect();

    Ok(ShardedRealReport {
        algorithm,
        n_shards,
        writer_backend: effective_backend,
        writer_fallback_from: (config.writer_backend != effective_backend)
            .then_some(config.writer_backend),
        pool_threads,
        pipeline_depth,
        replication_factor,
        writer,
        ticks: run.ticks,
        updates: run.updates,
        checkpoints_completed: metrics.checkpoints.len() as u64,
        avg_overhead_s: metrics.avg_overhead_s(),
        max_overhead_s: metrics.max_overhead_s(),
        avg_checkpoint_s: metrics.avg_checkpoint_s(),
        metrics,
        shards,
        recovery: sharded_recovery,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmoc_core::StateGeometry;
    use mmoc_workload::SyntheticConfig;

    fn config(dir: &std::path::Path) -> RealConfig {
        let mut c = RealConfig::new(dir);
        c.query_ops_per_tick = 64;
        c
    }

    fn trace_config() -> SyntheticConfig {
        SyntheticConfig {
            geometry: StateGeometry::test_small(),
            ticks: 40,
            updates_per_tick: 300,
            skew: 0.7,
            seed: 4242,
        }
    }

    #[test]
    fn four_shards_run_and_recover_for_all_algorithms() {
        for alg in Algorithm::ALL {
            let dir = tempfile::tempdir().unwrap();
            let report = run_sharded_impl(alg, &config(dir.path()), 4, false, || {
                trace_config().build()
            })
            .unwrap_or_else(|e| panic!("{alg}: {e}"));
            assert_eq!(report.n_shards, 4);
            assert_eq!(report.shards.len(), 4);
            assert_eq!(report.ticks, 40, "{alg}");
            assert_eq!(report.updates, 40 * 300, "{alg}");
            let rec = report.recovery.expect("recovery measured");
            assert!(rec.state_matches, "{alg}: some shard diverged");
            for (s, shard) in report.shards.iter().enumerate() {
                assert!(
                    shard.recovery.expect("per-shard recovery").state_matches,
                    "{alg} shard {s}"
                );
                assert!(shard.checkpoints_completed > 0, "{alg} shard {s}");
            }
            // Per-shard files are namespaced.
            for s in 0..4 {
                assert!(
                    shard_dir(dir.path(), s, 4).is_dir(),
                    "{alg}: missing shard dir {s}"
                );
            }
        }
    }

    #[test]
    fn one_shard_uses_the_historical_layout_and_counts() {
        let dir = tempfile::tempdir().unwrap();
        let report = run_sharded_impl(
            Algorithm::CopyOnUpdate,
            &config(dir.path()),
            1,
            false,
            || trace_config().build(),
        )
        .unwrap();
        assert_eq!(report.n_shards, 1);
        assert_eq!(report.pool_threads, 1, "single shard = pool of one");
        // Files live directly under the run directory, as before.
        assert!(dir.path().join("backup_0.img").is_file());
        assert!(report.recovery.unwrap().state_matches);
    }

    #[test]
    fn writer_pool_is_shared_not_per_shard() {
        let dir = tempfile::tempdir().unwrap();
        let mut cfg = config(dir.path()).without_recovery();
        cfg.writer_pool_threads = 2; // 2 workers serving 4 shards
        let report = run_sharded_impl(Algorithm::NaiveSnapshot, &cfg, 4, false, || {
            trace_config().build()
        })
        .unwrap();
        assert_eq!(report.pool_threads, 2);
        assert_eq!(report.shards.len(), 4);
        for shard in &report.shards {
            assert!(shard.checkpoints_completed > 0);
        }
    }

    #[test]
    fn sharded_totals_conserve_work() {
        let dir = tempfile::tempdir().unwrap();
        let report = run_sharded_impl(
            Algorithm::CopyOnUpdate,
            &config(dir.path()).without_recovery(),
            4,
            false,
            || trace_config().build(),
        )
        .unwrap();
        let per_shard: u64 = report.shards.iter().map(|s| s.updates).sum();
        assert_eq!(per_shard, report.updates);
        let ckpts: u64 = report.shards.iter().map(|s| s.checkpoints_completed).sum();
        assert_eq!(ckpts, report.checkpoints_completed);
    }
}
