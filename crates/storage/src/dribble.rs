//! The real Dribble-and-Copy-on-Update engine — one of the two
//! algorithms the paper's C++ validation never implemented, unlocked by
//! the unified driver.
//!
//! Every checkpoint asynchronously sweeps ("dribbles") *all* objects to
//! the log in index order; the mutator copies an object's pre-update
//! image on its first touch if the sweep has not flushed it yet. No dirty
//! bits are kept — every checkpoint is a full image, so recovery reads a
//! single segment and replays from there.

use crate::config::RealConfig;
use crate::engine::run_single;
use crate::report::RealReport;
use mmoc_core::{Algorithm, TraceSource};
use std::io;

/// Run Dribble-and-Copy-on-Update over the trace produced by
/// `make_trace` (replayable; the second instantiation drives recovery).
#[deprecated(
    since = "0.2.0",
    note = "use the unified builder: `Run::algorithm(Algorithm::DribbleAndCopyOnUpdate).engine(real_config).trace(\u{2026}).execute()`"
)]
pub fn run_dribble<S, F>(config: &RealConfig, make_trace: F) -> io::Result<RealReport>
where
    S: TraceSource,
    F: Fn() -> S + Sync,
{
    run_single(Algorithm::DribbleAndCopyOnUpdate, config, make_trace)
}

#[cfg(test)]
mod tests {
    #![allow(deprecated)] // the wrappers stay exercised until removal

    use super::*;
    use mmoc_core::StateGeometry;
    use mmoc_workload::SyntheticConfig;

    fn config(dir: &std::path::Path) -> RealConfig {
        let mut c = RealConfig::new(dir);
        c.query_ops_per_tick = 64;
        c
    }

    fn trace_config() -> SyntheticConfig {
        SyntheticConfig {
            geometry: StateGeometry::test_small(),
            ticks: 40,
            updates_per_tick: 250,
            skew: 0.7,
            seed: 910,
        }
    }

    #[test]
    fn dribble_runs_and_recovers_exactly() {
        let dir = tempfile::tempdir().unwrap();
        let report = run_dribble(&config(dir.path()), || trace_config().build()).unwrap();
        assert!(report.checkpoints_completed > 0);
        let rec = report.recovery.expect("recovery measured");
        assert!(rec.state_matches, "dribble recovery diverged");
    }

    #[test]
    fn dribble_sweeps_the_full_state_every_checkpoint() {
        let dir = tempfile::tempdir().unwrap();
        let report = run_dribble(&config(dir.path()).without_recovery(), || {
            trace_config().build()
        })
        .unwrap();
        let n = trace_config().geometry.n_objects();
        for c in &report.metrics.checkpoints {
            assert_eq!(c.objects_written, n, "every dribble checkpoint is full");
        }
    }

    #[test]
    fn dribble_pays_no_sync_pause_and_copies_on_first_touch() {
        let dir = tempfile::tempdir().unwrap();
        let report = run_dribble(&config(dir.path()).without_recovery(), || {
            trace_config().build()
        })
        .unwrap();
        let pauses: f64 = report.metrics.ticks.iter().map(|t| t.sync_pause_s).sum();
        assert_eq!(pauses, 0.0, "dribble never copies eagerly");
        let copies: u64 = report.metrics.ticks.iter().map(|t| t.copies).sum();
        assert!(copies > 0, "racing updates must save pre-update images");
    }

    /// Recovery restores from the newest complete sweep even when the
    /// last one was torn by the crash (the log scan drops torn tails).
    #[test]
    fn dribble_recovery_survives_hot_contention() {
        let dir = tempfile::tempdir().unwrap();
        let cfg = SyntheticConfig {
            geometry: StateGeometry::test_hot(),
            ticks: 120,
            updates_per_tick: 400,
            skew: 0.99,
            seed: 31,
        };
        let report = run_dribble(&config(dir.path()), || cfg.build()).unwrap();
        assert!(report.recovery.unwrap().state_matches);
    }
}
