//! Reports from real (wall-clock) runs.

use mmoc_core::{Algorithm, RunMetrics};
use serde::{Deserialize, Serialize};

/// Wall-clock measurements of one real crash recovery.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecoveryMeasurement {
    /// Time to read and install the newest consistent backup, in seconds.
    pub restore_s: f64,
    /// Time to replay the update stream from the checkpoint tick to the
    /// crash tick, in seconds.
    pub replay_s: f64,
    /// Total recovery time (restore + replay).
    pub total_s: f64,
    /// Tick the restored backup was consistent as of.
    pub restored_from_tick: u64,
    /// Ticks replayed.
    pub ticks_replayed: u64,
    /// Individual updates replayed.
    pub updates_replayed: u64,
    /// Whether the recovered state's fingerprint equals the live state at
    /// the crash tick (the whole point of the exercise).
    pub state_matches: bool,
}

/// Result of one real engine run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RealReport {
    /// Algorithm executed (Naive-Snapshot or Copy-on-Update).
    pub algorithm: Algorithm,
    /// Ticks executed.
    pub ticks: u64,
    /// Updates applied.
    pub updates: u64,
    /// Checkpoints completed (data synced and metadata committed).
    pub checkpoints_completed: u64,
    /// Average measured overhead per tick, in seconds.
    pub avg_overhead_s: f64,
    /// Worst single-tick overhead, in seconds.
    pub max_overhead_s: f64,
    /// Average measured checkpoint duration (sync pause + write + fsync),
    /// in seconds.
    pub avg_checkpoint_s: f64,
    /// Raw per-tick and per-checkpoint series.
    pub metrics: RunMetrics,
    /// Crash-recovery measurement, when enabled.
    pub recovery: Option<RecoveryMeasurement>,
}

impl RealReport {
    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        let rec = self
            .recovery
            .map(|r| format!("{:.3} s (match: {})", r.total_s, r.state_matches))
            .unwrap_or_else(|| "n/a".into());
        format!(
            "{:<28} overhead {:>9.4} ms  checkpoint {:>7.3} s  recovery {rec}",
            self.algorithm.name(),
            self.avg_overhead_s * 1e3,
            self.avg_checkpoint_s,
        )
    }
}
