//! Reports from real (wall-clock) runs.

use mmoc_core::{Algorithm, RunMetrics};
use serde::{Deserialize, Serialize};

/// Wall-clock measurements of one real crash recovery.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecoveryMeasurement {
    /// Time to read and install the newest consistent backup, in seconds.
    pub restore_s: f64,
    /// Time to replay the update stream from the checkpoint tick to the
    /// crash tick, in seconds.
    pub replay_s: f64,
    /// Total recovery time (restore + replay).
    pub total_s: f64,
    /// Tick the restored backup was consistent as of.
    pub restored_from_tick: u64,
    /// Ticks replayed.
    pub ticks_replayed: u64,
    /// Individual updates replayed.
    pub updates_replayed: u64,
    /// Whether the recovered state's fingerprint equals the live state at
    /// the crash tick (the whole point of the exercise).
    pub state_matches: bool,
    /// True when the restore came from a peer shard's memory mirror (the
    /// replica tier) rather than the disk organization's files.
    pub from_replica: bool,
}

/// Writer-side instrumentation of one run (or one shard's slice of it):
/// how many flush jobs completed, how many data `fsync` calls reaching
/// their durability points actually cost, and how full the batches they
/// completed in were. Threaded from the writer backend through each
/// job's completion report, so the counts are exact, not sampled.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WriterStats {
    /// Flush jobs completed.
    pub flush_jobs: u64,
    /// Data `fsync` calls issued. The durability scheduler attributes
    /// every call to exactly one job (the one that triggered it), so the
    /// per-job sum is the true call count: `flush_jobs` under per-job
    /// durability with data syncing on, fewer when cross-shard fsync
    /// coalescing merged same-file targets, zero with syncing off.
    pub data_fsyncs: u64,
    /// `syncfs`-style whole-device barriers issued, attributed the same
    /// way (exactly one job per call). A barrier replaces the per-file
    /// fsyncs of every same-device file in its batch, so runs with the
    /// device barrier engaged report fewer `data_fsyncs` and a nonzero
    /// count here. Zero when the barrier is off or `syncfs` unavailable.
    pub device_syncs: u64,
    /// Sum over jobs of the occupancy of the batch each completed in
    /// (thread-pool jobs count as batches of one).
    pub batch_jobs_sum: u64,
    /// Largest batch any job completed in.
    pub max_batch_jobs: u32,
    /// Checkpoint payload bytes the writer flushed (object images /
    /// serialized log segments; excludes metadata commits).
    pub bytes_written: u64,
    /// Sum over jobs of the SQE count of the ring submission round that
    /// carried each job's data writes. Zero for the syscall-per-write
    /// backends — nonzero only when the real io_uring backend ran, which
    /// makes it double as ground truth that the ring was actually used.
    pub sqe_batch_sum: u64,
    /// Largest ring submission round any job's writes rode in.
    pub max_sqe_batch: u32,
    /// Retry attempts performed on transient I/O faults (each re-issue
    /// of a failed data write / fsync / meta commit under the bounded
    /// retry policy; zero when nothing failed).
    pub retries: u64,
    /// Operations whose retry budget ran out — the error took the
    /// degradation ladder (typed run error on the pool/batched
    /// engines, dead-flag redo on io_uring).
    pub retry_exhausted: u64,
    /// Jobs completed through the degradation ladder: on io_uring, the
    /// synchronous redo path after the ring's dead flag latched.
    pub degraded_jobs: u64,
}

impl WriterStats {
    /// Fold another stats block (e.g. a shard's) into this one.
    pub fn merge(&mut self, other: WriterStats) {
        self.flush_jobs += other.flush_jobs;
        self.data_fsyncs += other.data_fsyncs;
        self.device_syncs += other.device_syncs;
        self.batch_jobs_sum += other.batch_jobs_sum;
        self.max_batch_jobs = self.max_batch_jobs.max(other.max_batch_jobs);
        self.bytes_written += other.bytes_written;
        self.sqe_batch_sum += other.sqe_batch_sum;
        self.max_sqe_batch = self.max_sqe_batch.max(other.max_sqe_batch);
        self.retries += other.retries;
        self.retry_exhausted += other.retry_exhausted;
        self.degraded_jobs += other.degraded_jobs;
    }

    /// Job-weighted average batch occupancy (1.0 for the thread pool).
    pub fn avg_batch_jobs(&self) -> f64 {
        if self.flush_jobs == 0 {
            0.0
        } else {
            self.batch_jobs_sum as f64 / self.flush_jobs as f64
        }
    }

    /// Job-weighted average ring submission-round occupancy (0.0 for the
    /// syscall-per-write backends and for empty runs).
    pub fn avg_sqe_batch(&self) -> f64 {
        if self.flush_jobs == 0 {
            0.0
        } else {
            self.sqe_batch_sum as f64 / self.flush_jobs as f64
        }
    }
}

/// Result of one real engine run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RealReport {
    /// Algorithm executed (Naive-Snapshot or Copy-on-Update).
    pub algorithm: Algorithm,
    /// Ticks executed.
    pub ticks: u64,
    /// Updates applied.
    pub updates: u64,
    /// Checkpoints completed (data synced and metadata committed).
    pub checkpoints_completed: u64,
    /// Average measured overhead per tick, in seconds.
    pub avg_overhead_s: f64,
    /// Worst single-tick overhead, in seconds.
    pub max_overhead_s: f64,
    /// Average measured checkpoint duration (sync pause + write + fsync),
    /// in seconds.
    pub avg_checkpoint_s: f64,
    /// Raw per-tick and per-checkpoint series.
    pub metrics: RunMetrics,
    /// Writer-side durability instrumentation for this run's flush jobs.
    pub writer: WriterStats,
    /// Crash-recovery measurement, when enabled.
    pub recovery: Option<RecoveryMeasurement>,
}

impl RealReport {
    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        let rec = self
            .recovery
            .map(|r| format!("{:.3} s (match: {})", r.total_s, r.state_matches))
            .unwrap_or_else(|| "n/a".into());
        format!(
            "{:<28} overhead {:>9.4} ms  checkpoint {:>7.3} s  recovery {rec}",
            self.algorithm.name(),
            self.avg_overhead_s * 1e3,
            self.avg_checkpoint_s,
        )
    }
}
