//! The real log-structured engines — Partial-Redo and Copy-on-Update-
//! Partial-Redo as configurations of the shared [`crate::engine`] over an
//! actual append-only checkpoint log.
//!
//! The paper's validation implemented only the two double-backup winners
//! (§6); these engines extend the validation to the log organization so
//! the log-read recovery penalty — the paper's third finding — can be
//! measured for real rather than only modeled:
//!
//! * **Partial-Redo** (eager): the driver copies the dirty objects
//!   synchronously at the tick boundary (a real `memcpy` pause) and hands
//!   the private buffer to the writer, which appends one log segment.
//! * **Copy-on-Update-Partial-Redo** (lazy): the mutator/writer pair runs
//!   the same protocol as [`crate::cou`] — per-object locks, side arena,
//!   copied/flushed flags — but the writer appends segments instead of
//!   updating a double backup.
//!
//! For both, every `full_flush_period`-th checkpoint sweeps *all* objects
//! (the Dribble-style full flush that bounds recovery log reads).
//! Recovery reconstructs the newest consistent image from the log (read
//! back to the last full flush) and replays the update stream.

use crate::config::RealConfig;
use crate::engine::run_single;
use crate::report::RealReport;
use mmoc_core::{Algorithm, TraceSource};
use std::io;

/// Run the real Partial-Redo engine (eager dirty copies into a log).
#[deprecated(
    since = "0.2.0",
    note = "use the unified builder: `Run::algorithm(Algorithm::PartialRedo).engine(real_config).trace(\u{2026}).execute()`"
)]
pub fn run_partial_redo<S, F>(config: &RealConfig, make_trace: F) -> io::Result<RealReport>
where
    S: TraceSource,
    F: Fn() -> S + Sync,
{
    run_single(Algorithm::PartialRedo, config, make_trace)
}

/// Run the real Copy-on-Update-Partial-Redo engine (copy-on-update into a
/// log, with periodic Dribble-style full sweeps).
#[deprecated(
    since = "0.2.0",
    note = "use the unified builder: `Run::algorithm(Algorithm::CopyOnUpdatePartialRedo).engine(real_config).trace(\u{2026}).execute()`"
)]
pub fn run_cou_partial_redo<S, F>(config: &RealConfig, make_trace: F) -> io::Result<RealReport>
where
    S: TraceSource,
    F: Fn() -> S + Sync,
{
    run_single(Algorithm::CopyOnUpdatePartialRedo, config, make_trace)
}

#[cfg(test)]
mod tests {
    #![allow(deprecated)] // the wrappers stay exercised until removal

    use super::*;
    use mmoc_core::algorithms::DEFAULT_FULL_FLUSH_PERIOD;
    use mmoc_core::StateGeometry;
    use mmoc_workload::SyntheticConfig;

    fn config(dir: &std::path::Path) -> RealConfig {
        let mut c = RealConfig::new(dir);
        c.query_ops_per_tick = 64;
        c
    }

    fn trace_config() -> SyntheticConfig {
        SyntheticConfig {
            geometry: StateGeometry::test_small(),
            ticks: 60,
            updates_per_tick: 300,
            skew: 0.7,
            seed: 123,
        }
    }

    #[test]
    fn partial_redo_recovers_exactly() {
        let dir = tempfile::tempdir().unwrap();
        let report = run_partial_redo(&config(dir.path()), || trace_config().build()).unwrap();
        assert!(report.checkpoints_completed > 0);
        let rec = report.recovery.expect("recovery measured");
        assert!(rec.state_matches, "partial-redo recovery diverged");
    }

    #[test]
    fn cou_partial_redo_recovers_exactly() {
        let dir = tempfile::tempdir().unwrap();
        let report = run_cou_partial_redo(&config(dir.path()), || trace_config().build()).unwrap();
        assert!(report.checkpoints_completed > 0);
        let rec = report.recovery.expect("recovery measured");
        assert!(rec.state_matches, "coupr recovery diverged");
    }

    #[test]
    fn partial_redo_writes_dirty_objects_only_between_flushes() {
        let dir = tempfile::tempdir().unwrap();
        let report = run_partial_redo(&config(dir.path()), || trace_config().build()).unwrap();
        let g = trace_config().geometry;
        let normal: Vec<_> = report
            .metrics
            .checkpoints
            .iter()
            .filter(|c| !c.full_flush)
            .collect();
        assert!(!normal.is_empty());
        assert!(normal.iter().any(|c| c.objects_written < g.n_objects()));
        for c in &report.metrics.checkpoints {
            if c.full_flush {
                assert_eq!(c.objects_written, g.n_objects());
            }
        }
    }

    #[test]
    fn coupr_full_flush_cadence_matches_period() {
        let dir = tempfile::tempdir().unwrap();
        let report = run_cou_partial_redo(&config(dir.path()), || trace_config().build()).unwrap();
        let fulls: Vec<u64> = report
            .metrics
            .checkpoints
            .iter()
            .filter(|c| c.full_flush)
            .map(|c| c.seq)
            .collect();
        for s in &fulls {
            assert_eq!(
                (s + 1) % u64::from(DEFAULT_FULL_FLUSH_PERIOD),
                0,
                "seq {s} must sit on the period boundary"
            );
        }
    }

    #[test]
    fn partial_redo_pays_eager_pauses_coupr_does_not() {
        let dir = tempfile::tempdir().unwrap();
        let pr = run_partial_redo(&config(dir.path().join("pr").as_path()), || {
            trace_config().build()
        })
        .unwrap();
        let coupr = run_cou_partial_redo(&config(dir.path().join("coupr").as_path()), || {
            trace_config().build()
        })
        .unwrap();
        let pr_pause: f64 = pr.metrics.ticks.iter().map(|t| t.sync_pause_s).sum();
        let coupr_pause: f64 = coupr.metrics.ticks.iter().map(|t| t.sync_pause_s).sum();
        assert!(pr_pause > 0.0, "PR must pay eager copy pauses");
        assert_eq!(coupr_pause, 0.0, "COUPR never copies eagerly");
        let coupr_copies: u64 = coupr.metrics.ticks.iter().map(|t| t.copies).sum();
        assert!(coupr_copies > 0, "COUPR must copy on update");
    }

    /// Hot contention torture for the log-based copy-on-update protocol.
    #[test]
    fn coupr_recovery_correct_under_hot_contention() {
        let dir = tempfile::tempdir().unwrap();
        let cfg = SyntheticConfig {
            geometry: StateGeometry::test_hot(),
            ticks: 150,
            updates_per_tick: 400,
            skew: 0.99,
            seed: 17,
        };
        let report = run_cou_partial_redo(&config(dir.path()), || cfg.build()).unwrap();
        assert!(report.recovery.unwrap().state_matches);
    }
}
