//! Real log-structured engines: Partial-Redo and Copy-on-Update-Partial-
//! Redo on an actual append-only checkpoint log.
//!
//! The paper's validation implemented only the two double-backup winners
//! (§6); these engines extend the validation to the log organization so
//! the log-read recovery penalty — the paper's third finding — can be
//! measured for real rather than only modeled:
//!
//! * **Partial-Redo** (eager): the mutator copies the dirty objects
//!   synchronously at the tick boundary (a real `memcpy` pause) and hands
//!   the private buffer to the writer, which appends one log segment.
//! * **Copy-on-Update-Partial-Redo** (lazy): the mutator/writer pair runs
//!   the same protocol as [`crate::cou`] — per-object locks, side arena,
//!   copied/flushed flags — but the writer appends segments instead of
//!   updating a double backup, and every `full_flush_period`-th checkpoint
//!   sweeps *all* objects (the Dribble-style full flush that bounds
//!   recovery log reads).
//!
//! Recovery reconstructs the newest consistent image from the log (read
//! back to the last full flush) and replays the update stream.

use crate::config::RealConfig;
use crate::cou::Shared;
use crate::log_store::LogStore;
use crate::report::{RealReport, RecoveryMeasurement};
use crate::shared::SharedTable;
use mmoc_core::algorithms::DEFAULT_FULL_FLUSH_PERIOD;
use mmoc_core::bitmap::BitVec;
use mmoc_core::{Algorithm, CheckpointRecord, ObjectId, RunMetrics, StateTable, TickMetrics};
use mmoc_workload::TraceSource;
use std::io;
use std::sync::Arc;
use std::time::Instant;

struct EagerJob {
    /// `(object id, bytes)` pairs in increasing id order.
    objects: Vec<(u32, Vec<u8>)>,
    seq: u64,
    tick: u64,
    full_flush: bool,
}

struct SweepJob {
    list: Vec<u32>,
    seq: u64,
    tick: u64,
    full_flush: bool,
}

struct Done {
    result: io::Result<f64>,
    objects: u32,
    bytes: u64,
}

/// Run the real Partial-Redo engine (eager dirty copies into a log).
pub fn run_partial_redo<S, F>(config: &RealConfig, make_trace: F) -> io::Result<RealReport>
where
    S: TraceSource,
    F: Fn() -> S,
{
    let mut trace = make_trace();
    let geometry = trace.geometry();
    geometry
        .validate()
        .map_err(|e| io::Error::other(e.to_string()))?;
    let n = geometry.n_objects();
    let mut table = StateTable::new(geometry).map_err(|e| io::Error::other(e.to_string()))?;
    let mut log = LogStore::create(&config.dir, geometry)?;
    let period = u64::from(DEFAULT_FULL_FLUSH_PERIOD);
    let sync_data = config.sync_data;

    // Seed the log with the initial full image, as the double-backup
    // engines pre-load their files.
    {
        let initial = table.as_bytes();
        let obj_size = geometry.object_size as usize;
        log.append_segment(
            0,
            0,
            true,
            (0..n).map(|i| (ObjectId(i), &initial[i as usize * obj_size..][..obj_size])),
            true,
        )?;
    }

    let (job_tx, job_rx) = crossbeam::channel::bounded::<EagerJob>(1);
    let (done_tx, done_rx) = crossbeam::channel::bounded::<Done>(1);
    let writer = std::thread::spawn(move || {
        for job in job_rx {
            let t0 = Instant::now();
            let count = job.objects.len() as u32;
            let result = log
                .append_segment(
                    job.seq,
                    job.tick,
                    job.full_flush,
                    job.objects.iter().map(|(i, b)| (ObjectId(*i), b.as_slice())),
                    sync_data,
                )
                .map(|_| t0.elapsed().as_secs_f64());
            let _ = done_tx.send(Done {
                result,
                objects: count,
                bytes: u64::from(count) * u64::from(geometry.object_size),
            });
        }
    });

    let mut metrics = RunMetrics::default();
    let mut dirty = BitVec::new(n);
    let mut in_flight: Option<(u64, u64, f64, bool)> = None; // (seq, start, pause, full)
    let mut seq = 1u64; // segment 0 is the boot image
    let mut tick = 0u64;
    let mut total_updates = 0u64;
    let mut buf = Vec::new();
    let mut rng_state = 0xFACEu64;
    let mut query_sink = 0u64;

    while trace.next_tick(&mut buf) {
        tick += 1;
        let tick_start = Instant::now();

        for _ in 0..config.query_ops_per_tick {
            rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let row = (rng_state >> 33) as u32 % geometry.rows;
            let col = (rng_state >> 13) as u32 % geometry.cols;
            query_sink ^= u64::from(
                table
                    .read(mmoc_core::CellAddr::new(row, col))
                    .expect("query in bounds"),
            );
        }

        let mut bit_ops = 0u64;
        for &u in &buf {
            let obj = table.apply_unchecked(u);
            dirty.set(obj.0);
            bit_ops += 1;
        }
        total_updates += buf.len() as u64;

        if let Ok(done) = done_rx.try_recv() {
            let duration = done.result?;
            let (s, start_tick, pause, full) = in_flight.take().expect("job in flight");
            metrics.checkpoints.push(CheckpointRecord {
                seq: s,
                start_tick,
                end_tick: tick,
                duration_s: pause + duration,
                sync_pause_s: pause,
                objects_written: done.objects,
                bytes_written: done.bytes,
                full_flush: full,
            });
        }

        // Tick boundary: eagerly copy the write set and hand it over.
        let mut sync_pause = 0.0f64;
        if in_flight.is_none() {
            let full_flush = seq % period == 0;
            let p0 = Instant::now();
            let objects: Vec<(u32, Vec<u8>)> = if full_flush {
                let bytes = table.as_bytes();
                let obj_size = geometry.object_size as usize;
                (0..n)
                    .map(|i| (i, bytes[i as usize * obj_size..][..obj_size].to_vec()))
                    .collect()
            } else {
                dirty
                    .iter_ones()
                    .map(|i| {
                        (
                            i,
                            table.object_bytes(ObjectId(i)).expect("in bounds").to_vec(),
                        )
                    })
                    .collect()
            };
            dirty.clear_all();
            sync_pause = p0.elapsed().as_secs_f64();
            job_tx
                .send(EagerJob {
                    objects,
                    seq,
                    tick,
                    full_flush,
                })
                .expect("writer alive");
            in_flight = Some((seq, tick, sync_pause, full_flush));
            seq += 1;
        }

        metrics.ticks.push(TickMetrics {
            tick,
            overhead_s: sync_pause + bit_ops as f64 * config.bit_test_cost_s,
            sync_pause_s: sync_pause,
            bit_ops,
            locks: 0,
            copies: 0,
        });

        if config.paced {
            let elapsed = tick_start.elapsed();
            if elapsed < config.tick_period {
                std::thread::sleep(config.tick_period - elapsed);
            }
        }
    }

    if let Some((s, start_tick, pause, full)) = in_flight.take() {
        let done = done_rx.recv().expect("writer alive");
        let duration = done.result?;
        metrics.checkpoints.push(CheckpointRecord {
            seq: s,
            start_tick,
            end_tick: tick,
            duration_s: pause + duration,
            sync_pause_s: pause,
            objects_written: done.objects,
            bytes_written: done.bytes,
            full_flush: full,
        });
    }
    drop(job_tx);
    writer.join().expect("writer thread");
    std::hint::black_box(query_sink);

    let recovery = if config.measure_recovery {
        Some(recover_from_log(
            config,
            geometry,
            &mut make_trace(),
            tick,
            table.fingerprint(),
        )?)
    } else {
        None
    };

    Ok(build_report(
        Algorithm::PartialRedo,
        tick,
        total_updates,
        metrics,
        recovery,
    ))
}

/// Run the real Copy-on-Update-Partial-Redo engine (copy-on-update into a
/// log, with periodic Dribble-style full sweeps).
pub fn run_cou_partial_redo<S, F>(config: &RealConfig, make_trace: F) -> io::Result<RealReport>
where
    S: TraceSource,
    F: Fn() -> S,
{
    let mut trace = make_trace();
    let geometry = trace.geometry();
    geometry
        .validate()
        .map_err(|e| io::Error::other(e.to_string()))?;
    let n = geometry.n_objects();
    let shared = Arc::new(Shared::new(SharedTable::new(geometry)));
    let mut log = LogStore::create(&config.dir, geometry)?;
    let period = u64::from(DEFAULT_FULL_FLUSH_PERIOD);
    let sync_data = config.sync_data;

    // Boot image.
    {
        let zeros = vec![0u8; geometry.object_size as usize];
        log.append_segment(0, 0, true, (0..n).map(|i| (ObjectId(i), zeros.as_slice())), true)?;
    }

    let (job_tx, job_rx) = crossbeam::channel::bounded::<SweepJob>(1);
    let (done_tx, done_rx) = crossbeam::channel::bounded::<Done>(1);
    let writer_shared = Arc::clone(&shared);
    let writer = std::thread::spawn(move || {
        let obj_size = geometry.object_size as usize;
        let mut buf = vec![0u8; obj_size];
        for job in job_rx {
            let t0 = Instant::now();
            let count = job.list.len() as u32;
            // Segment appends stream through the same copy-on-update
            // protocol as the double-backup writer: lock, prefer the
            // saved arena image, mark flushed, append.
            let shared = &writer_shared;
            let result = (|| {
                let mut seg = log.begin_segment(job.seq, job.tick, job.full_flush)?;
                for &o in &job.list {
                    let obj = ObjectId(o);
                    {
                        let _guard = shared.locks[o as usize].lock();
                        if shared.copied.get(o) {
                            shared.read_arena_into(obj, &mut buf);
                        } else {
                            shared.table.read_object_into(obj, &mut buf);
                        }
                        shared.flushed.set(o);
                    }
                    seg.write_object(obj, &buf)?;
                }
                seg.finish(sync_data)?;
                Ok(t0.elapsed().as_secs_f64())
            })();
            let _ = done_tx.send(Done {
                result,
                objects: count,
                bytes: u64::from(count) * u64::from(geometry.object_size),
            });
        }
    });

    let mut metrics = RunMetrics::default();
    let mut dirty = BitVec::new(n);
    let mut handled = BitVec::new(n);
    let mut flush_member = BitVec::new(n);
    let mut in_flight: Option<(u64, u64, bool)> = None;
    let mut seq = 1u64;
    let mut tick = 0u64;
    let mut total_updates = 0u64;
    let mut buf = Vec::new();
    let mut rng_state = 0xBEEFu64;
    let mut query_sink = 0u64;

    while trace.next_tick(&mut buf) {
        tick += 1;
        let tick_start = Instant::now();

        for _ in 0..config.query_ops_per_tick {
            rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let row = (rng_state >> 33) as u32 % geometry.rows;
            let col = (rng_state >> 13) as u32 % geometry.cols;
            query_sink ^= u64::from(shared.table.read_cell(row, col));
        }

        let (mut bit_ops, mut locks, mut copies) = (0u64, 0u64, 0u64);
        let mut slow_path_s = 0.0f64;
        let sweeping_all = in_flight.is_some_and(|(_, _, full)| full);
        for &u in &buf {
            let obj = geometry.object_of_unchecked(u.addr);
            dirty.set(obj.0);
            bit_ops += 1;
            let participates = in_flight.is_some()
                && (sweeping_all || flush_member.get(obj.0))
                && !handled.get(obj.0);
            if participates {
                let t0 = Instant::now();
                if !shared.flushed.get(obj.0) {
                    let _guard = shared.locks[obj.index()].lock();
                    locks += 1;
                    if !shared.flushed.get(obj.0) {
                        shared.save_to_arena(obj);
                        shared.copied.set(obj.0);
                        copies += 1;
                    }
                }
                handled.set(obj.0);
                slow_path_s += t0.elapsed().as_secs_f64();
            }
            shared.table.write_cell(u);
        }
        total_updates += buf.len() as u64;

        if let Ok(done) = done_rx.try_recv() {
            let duration = done.result?;
            let (s, start_tick, full) = in_flight.take().expect("job in flight");
            metrics.checkpoints.push(CheckpointRecord {
                seq: s,
                start_tick,
                end_tick: tick,
                duration_s: duration,
                sync_pause_s: 0.0,
                objects_written: done.objects,
                bytes_written: done.bytes,
                full_flush: full,
            });
        }

        if in_flight.is_none() {
            let full_flush = seq % period == 0;
            let list: Vec<u32> = if full_flush {
                flush_member.set_all();
                (0..n).collect()
            } else {
                flush_member.clone_from(&dirty);
                dirty.ones()
            };
            dirty.clear_all();
            shared.copied.clear_all();
            shared.flushed.clear_all();
            handled.clear_all();
            job_tx
                .send(SweepJob {
                    list,
                    seq,
                    tick,
                    full_flush,
                })
                .expect("writer alive");
            in_flight = Some((seq, tick, full_flush));
            seq += 1;
        }

        metrics.ticks.push(TickMetrics {
            tick,
            overhead_s: slow_path_s + bit_ops as f64 * config.bit_test_cost_s,
            sync_pause_s: 0.0,
            bit_ops,
            locks,
            copies,
        });

        if config.paced {
            let elapsed = tick_start.elapsed();
            if elapsed < config.tick_period {
                std::thread::sleep(config.tick_period - elapsed);
            }
        }
    }

    if let Some((s, start_tick, full)) = in_flight.take() {
        let done = done_rx.recv().expect("writer alive");
        let duration = done.result?;
        metrics.checkpoints.push(CheckpointRecord {
            seq: s,
            start_tick,
            end_tick: tick,
            duration_s: duration,
            sync_pause_s: 0.0,
            objects_written: done.objects,
            bytes_written: done.bytes,
            full_flush: full,
        });
    }
    drop(job_tx);
    writer.join().expect("writer thread");
    std::hint::black_box(query_sink);

    let recovery = if config.measure_recovery {
        Some(recover_from_log(
            config,
            geometry,
            &mut make_trace(),
            tick,
            shared.table.fingerprint(),
        )?)
    } else {
        None
    };

    Ok(build_report(
        Algorithm::CopyOnUpdatePartialRedo,
        tick,
        total_updates,
        metrics,
        recovery,
    ))
}

/// Restore from the checkpoint log and replay the stream; compare with the
/// live fingerprint.
fn recover_from_log<S: TraceSource>(
    config: &RealConfig,
    geometry: mmoc_core::StateGeometry,
    trace: &mut S,
    crash_tick: u64,
    live_fingerprint: u64,
) -> io::Result<RecoveryMeasurement> {
    let t0 = Instant::now();
    let mut log = LogStore::open(&config.dir, geometry)?;
    let (image, from_tick, _bytes_read) = log.reconstruct()?;
    let mut table = StateTable::new(geometry).map_err(|e| io::Error::other(e.to_string()))?;
    table
        .restore_all(&image)
        .map_err(|e| io::Error::other(e.to_string()))?;
    let restore_s = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let mut buf = Vec::new();
    let mut tick = 0u64;
    let mut ticks_replayed = 0u64;
    let mut updates_replayed = 0u64;
    while tick < crash_tick && trace.next_tick(&mut buf) {
        tick += 1;
        if tick <= from_tick {
            continue;
        }
        ticks_replayed += 1;
        for &u in &buf {
            table.apply_unchecked(u);
            updates_replayed += 1;
        }
    }
    let replay_s = t1.elapsed().as_secs_f64();

    Ok(RecoveryMeasurement {
        restore_s,
        replay_s,
        total_s: restore_s + replay_s,
        restored_from_tick: from_tick,
        ticks_replayed,
        updates_replayed,
        state_matches: table.fingerprint() == live_fingerprint,
    })
}

fn build_report(
    algorithm: Algorithm,
    ticks: u64,
    updates: u64,
    metrics: RunMetrics,
    recovery: Option<RecoveryMeasurement>,
) -> RealReport {
    RealReport {
        algorithm,
        ticks,
        updates,
        checkpoints_completed: metrics.checkpoints.len() as u64,
        avg_overhead_s: metrics.avg_overhead_s(),
        max_overhead_s: metrics.max_overhead_s(),
        avg_checkpoint_s: metrics.avg_checkpoint_s(),
        metrics,
        recovery,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmoc_core::StateGeometry;
    use mmoc_workload::SyntheticConfig;

    fn config(dir: &std::path::Path) -> RealConfig {
        let mut c = RealConfig::new(dir);
        c.query_ops_per_tick = 64;
        c
    }

    fn trace_config() -> SyntheticConfig {
        SyntheticConfig {
            geometry: StateGeometry::small(512, 8),
            ticks: 60,
            updates_per_tick: 300,
            skew: 0.7,
            seed: 123,
        }
    }

    #[test]
    fn partial_redo_recovers_exactly() {
        let dir = tempfile::tempdir().unwrap();
        let report = run_partial_redo(&config(dir.path()), || trace_config().build()).unwrap();
        assert!(report.checkpoints_completed > 0);
        let rec = report.recovery.expect("recovery measured");
        assert!(rec.state_matches, "partial-redo recovery diverged");
    }

    #[test]
    fn cou_partial_redo_recovers_exactly() {
        let dir = tempfile::tempdir().unwrap();
        let report =
            run_cou_partial_redo(&config(dir.path()), || trace_config().build()).unwrap();
        assert!(report.checkpoints_completed > 0);
        let rec = report.recovery.expect("recovery measured");
        assert!(rec.state_matches, "coupr recovery diverged");
    }

    #[test]
    fn partial_redo_writes_dirty_objects_only_between_flushes() {
        let dir = tempfile::tempdir().unwrap();
        let report = run_partial_redo(&config(dir.path()), || trace_config().build()).unwrap();
        let g = trace_config().geometry;
        let normal: Vec<_> = report
            .metrics
            .checkpoints
            .iter()
            .filter(|c| !c.full_flush)
            .collect();
        assert!(!normal.is_empty());
        assert!(normal.iter().any(|c| c.objects_written < g.n_objects()));
        for c in &report.metrics.checkpoints {
            if c.full_flush {
                assert_eq!(c.objects_written, g.n_objects());
            }
        }
    }

    #[test]
    fn coupr_full_flush_cadence_matches_period() {
        let dir = tempfile::tempdir().unwrap();
        let report =
            run_cou_partial_redo(&config(dir.path()), || trace_config().build()).unwrap();
        let fulls: Vec<u64> = report
            .metrics
            .checkpoints
            .iter()
            .filter(|c| c.full_flush)
            .map(|c| c.seq)
            .collect();
        for s in &fulls {
            assert_eq!(s % u64::from(DEFAULT_FULL_FLUSH_PERIOD), 0, "seq {s}");
        }
    }

    #[test]
    fn partial_redo_pays_eager_pauses_coupr_does_not() {
        let dir = tempfile::tempdir().unwrap();
        let pr = run_partial_redo(&config(dir.path().join("pr").as_path()), || {
            trace_config().build()
        })
        .unwrap();
        let coupr = run_cou_partial_redo(&config(dir.path().join("coupr").as_path()), || {
            trace_config().build()
        })
        .unwrap();
        let pr_pause: f64 = pr.metrics.ticks.iter().map(|t| t.sync_pause_s).sum();
        let coupr_pause: f64 = coupr.metrics.ticks.iter().map(|t| t.sync_pause_s).sum();
        assert!(pr_pause > 0.0, "PR must pay eager copy pauses");
        assert_eq!(coupr_pause, 0.0, "COUPR never copies eagerly");
        let coupr_copies: u64 = coupr.metrics.ticks.iter().map(|t| t.copies).sum();
        assert!(coupr_copies > 0, "COUPR must copy on update");
    }

    /// Hot contention torture for the log-based copy-on-update protocol.
    #[test]
    fn coupr_recovery_correct_under_hot_contention() {
        let dir = tempfile::tempdir().unwrap();
        let cfg = SyntheticConfig {
            geometry: StateGeometry::small(64, 8),
            ticks: 150,
            updates_per_tick: 400,
            skew: 0.99,
            seed: 17,
        };
        let report = run_cou_partial_redo(&config(dir.path()), || cfg.build()).unwrap();
        assert!(report.recovery.unwrap().state_matches);
    }
}
