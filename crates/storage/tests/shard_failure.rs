//! Shard-level crash injection: shards own disjoint files, so one shard
//! dying mid-checkpoint is recovered by restoring and replaying *that
//! shard alone* — its neighbours' backups are untouched and stay
//! restorable, which is the whole point of making the recovery machinery
//! shard-aware.

use mmoc_core::{Algorithm, Run, ShardFilter, ShardMap, StateGeometry, StateTable};
use mmoc_storage::files::BackupSet;
use mmoc_storage::recovery::{recover_and_replay, recover_and_replay_log};
use mmoc_storage::{shard_dir, RealConfig};
use mmoc_workload::{SyntheticConfig, TraceSource};

const N_SHARDS: usize = 4;
const TICKS: u64 = 40;

fn trace_config() -> SyntheticConfig {
    SyntheticConfig {
        geometry: StateGeometry::test_small(),
        ticks: TICKS,
        updates_per_tick: 300,
        skew: 0.7,
        seed: 1234,
    }
}

/// Ground truth for one shard: replay its full filtered trace.
fn shard_truth(map: &ShardMap, shard: usize) -> StateTable {
    let mut table = StateTable::new(map.shard_geometry(shard)).unwrap();
    let mut src = ShardFilter::new(trace_config().build(), map.clone(), shard);
    let mut buf = Vec::new();
    while src.next_tick(&mut buf) {
        for &u in &buf {
            table.apply_unchecked(u);
        }
    }
    table
}

/// One shard's newest checkpoint is torn (metadata destroyed
/// mid-checkpoint); only that shard is recovered — from an older backup
/// plus replay of its own trace slice — while the other shards' files
/// are not even opened for writing.
#[test]
fn one_dead_shard_recovers_alone_on_double_backups() {
    let dir = tempfile::tempdir().unwrap();
    let map = ShardMap::new(trace_config().geometry, N_SHARDS as u32).unwrap();

    let report = Run::algorithm(Algorithm::CopyOnUpdate)
        .engine(RealConfig::new(dir.path()).without_recovery())
        .trace(trace_config())
        .shards(N_SHARDS as u32)
        .execute()
        .unwrap();
    // Every shard has committed at least its drained final checkpoint;
    // the boot-time image guarantees a fallback anchor either way.
    for (s, shard) in report.shards.iter().enumerate() {
        assert!(
            shard.summary.checkpoints_completed >= 1,
            "shard {s} needs history"
        );
    }

    // Record every healthy shard's newest consistent tick before the
    // crash, then kill shard 2's newest checkpoint metadata.
    let dead = 2usize;
    let newest_before: Vec<(usize, u64)> = (0..N_SHARDS)
        .map(|s| {
            let set = BackupSet::open(&shard_dir(dir.path(), s, N_SHARDS), map.shard_geometry(s))
                .unwrap();
            set.newest_consistent().expect("consistent backup")
        })
        .collect();
    let dead_dir = shard_dir(dir.path(), dead, N_SHARDS);
    std::fs::remove_file(dead_dir.join(format!("backup_{}.meta", newest_before[dead].0))).unwrap();

    // Recover ONLY the dead shard: restore its older backup, replay its
    // slice of the deterministic trace, reach its exact crash state.
    let mut replay = ShardFilter::new(trace_config().build(), map.clone(), dead);
    let rec = recover_and_replay(&dead_dir, map.shard_geometry(dead), &mut replay, TICKS).unwrap();
    assert!(
        rec.from_tick < newest_before[dead].1,
        "must fall back past the torn checkpoint"
    );
    assert_eq!(
        rec.table.fingerprint(),
        shard_truth(&map, dead).fingerprint(),
        "dead shard's recovery must reproduce its crash state exactly"
    );

    // The other shards were never touched: same newest consistent image,
    // and each still recovers independently to its own exact state.
    for s in (0..N_SHARDS).filter(|&s| s != dead) {
        let sdir = shard_dir(dir.path(), s, N_SHARDS);
        let set = BackupSet::open(&sdir, map.shard_geometry(s)).unwrap();
        assert_eq!(
            set.newest_consistent().unwrap(),
            newest_before[s],
            "shard {s} files must be untouched by shard {dead}'s recovery"
        );
        drop(set);
        let mut replay = ShardFilter::new(trace_config().build(), map.clone(), s);
        let rec = recover_and_replay(&sdir, map.shard_geometry(s), &mut replay, TICKS).unwrap();
        assert_eq!(
            rec.table.fingerprint(),
            shard_truth(&map, s).fingerprint(),
            "shard {s}"
        );
    }
}

/// The same isolation for a log-organized algorithm: tear one shard's
/// log tail mid-append; that shard anchors on an older complete segment
/// and replays, the others' logs stay valid.
#[test]
fn one_torn_log_shard_recovers_alone() {
    let dir = tempfile::tempdir().unwrap();
    let map = ShardMap::new(trace_config().geometry, N_SHARDS as u32).unwrap();

    let report = Run::algorithm(Algorithm::DribbleAndCopyOnUpdate)
        .engine(RealConfig::new(dir.path()).without_recovery())
        .trace(trace_config())
        .shards(N_SHARDS as u32)
        .execute()
        .unwrap();
    // At least the drained final sweep is in every shard's log, beyond
    // the boot-time full image that anchors worst-case recovery.
    for (s, shard) in report.shards.iter().enumerate() {
        assert!(
            shard.summary.checkpoints_completed >= 1,
            "shard {s} needs sweeps"
        );
    }

    // Chop bytes off shard 1's log only: a torn tail, as if the crash
    // hit that shard's writer mid-append.
    let dead = 1usize;
    let log_path = shard_dir(dir.path(), dead, N_SHARDS).join("checkpoint.log");
    let len = std::fs::metadata(&log_path).unwrap().len();
    let f = std::fs::OpenOptions::new()
        .write(true)
        .open(&log_path)
        .unwrap();
    f.set_len(len - 100).unwrap();
    drop(f);

    for s in 0..N_SHARDS {
        let mut replay = ShardFilter::new(trace_config().build(), map.clone(), s);
        let rec = recover_and_replay_log(
            &shard_dir(dir.path(), s, N_SHARDS),
            map.shard_geometry(s),
            &mut replay,
            TICKS,
        )
        .unwrap_or_else(|e| panic!("shard {s}: {e}"));
        assert_eq!(
            rec.table.fingerprint(),
            shard_truth(&map, s).fingerprint(),
            "shard {s} (dead: {})",
            s == dead
        );
    }
}
