//! Recovery idempotence: restoring the same frozen directory twice must
//! produce **byte-identical** state, and a recovery attempt that dies
//! half-way through its restore must be resumable — the restarted
//! attempt recovers exactly what an undisturbed one would have.
//!
//! This is the re-entrancy contract the re-crash-during-recovery lattice
//! points depend on: recovery only *reads* the organization's files, so
//! any number of failed attempts (injected or real) leaves the disk
//! exactly as the crash did. For every cell of the (algorithm × shard
//! count) matrix the same trace runs once and is then recovered
//! repeatedly over the frozen directory; each recovered table is
//! compared byte for byte against the others and against the ground
//! truth of replaying the full trace in memory.

use mmoc_core::{Algorithm, DiskOrg, ObjectId, Run, ShardFilter, ShardMap, StateTable};
use mmoc_storage::crash::{CrashPlan, CrashPoint, CrashState};
use mmoc_storage::recovery::{recover_and_replay_log_with, recover_and_replay_with, RecoveryOpts};
use mmoc_storage::{shard_dir, RealConfig};
use mmoc_workload::SyntheticConfig;
use std::path::Path;
use std::sync::Arc;

const TICKS: u64 = 24;
const SHARD_COUNTS: [u32; 2] = [1, 4];

/// Deliberately small — this suite runs the full 6 × {1, 4} matrix of
/// real-engine work concurrently with every other test binary.
fn trace_config() -> SyntheticConfig {
    SyntheticConfig {
        geometry: mmoc_core::StateGeometry::test_small(),
        ticks: TICKS,
        updates_per_tick: 300,
        skew: 0.8,
        seed: 41972,
    }
}

/// Ground truth for one shard: apply its full filtered trace to a fresh
/// table.
fn shard_truth(map: &ShardMap, shard: usize) -> StateTable {
    let mut table = StateTable::new(map.shard_geometry(shard)).unwrap();
    let mut src = ShardFilter::new(trace_config().build(), map.clone(), shard);
    let mut buf = Vec::new();
    while mmoc_core::TraceSource::next_tick(&mut src, &mut buf) {
        for &u in &buf {
            table.apply_unchecked(u);
        }
    }
    table
}

/// One recovery attempt over the frozen shard directory, through the
/// disk organization's production path with explicit options.
fn recover_with(
    dir: &Path,
    disk_org: DiskOrg,
    map: &ShardMap,
    shard: usize,
    opts: &RecoveryOpts,
) -> std::io::Result<StateTable> {
    let sdir = shard_dir(dir, shard, map.n_shards());
    let mut replay = ShardFilter::new(trace_config().build(), map.clone(), shard);
    let rec = match disk_org {
        DiskOrg::DoubleBackup => {
            recover_and_replay_with(&sdir, map.shard_geometry(shard), &mut replay, TICKS, opts)
        }
        DiskOrg::Log => {
            recover_and_replay_log_with(&sdir, map.shard_geometry(shard), &mut replay, TICKS, opts)
        }
    }?;
    Ok(rec.table)
}

fn assert_tables_byte_identical(a: &StateTable, b: &StateTable, label: &str) {
    let g = *a.geometry();
    assert_eq!(a.fingerprint(), b.fingerprint(), "{label}: fingerprints");
    for obj in 0..g.n_objects() {
        assert_eq!(
            a.object_bytes(ObjectId(obj)).unwrap(),
            b.object_bytes(ObjectId(obj)).unwrap(),
            "{label}: object {obj} bytes diverge"
        );
    }
}

/// The full matrix: for every algorithm and shard count, the frozen
/// directory recovers to the same bytes no matter how many times — or
/// how many half-finished attempts — precede the successful one.
#[test]
fn recovery_is_idempotent_and_resumable_across_the_matrix() {
    let root = tempfile::tempdir().unwrap();
    for alg in Algorithm::ALL {
        let disk_org = alg.spec().disk_org;
        for n in SHARD_COUNTS {
            let map = ShardMap::new(trace_config().geometry, n).unwrap();
            let dir = root.path().join(format!("{}_{n}", alg.short_name()));
            // `without_recovery` freezes the directory at end of run: the
            // engine's own recovery measurement never touches the files
            // the test recovers from.
            Run::algorithm(alg)
                .engine(RealConfig::new(&dir).without_recovery())
                .trace(trace_config())
                .shards(n)
                .execute()
                .unwrap_or_else(|e| panic!("{alg} x{n}: {e}"));
            for s in 0..n as usize {
                let label = format!("{alg} x{n} shard {s}");
                let truth = shard_truth(&map, s);

                // Recover the same frozen directory twice, back to back.
                let first = recover_with(&dir, disk_org, &map, s, &RecoveryOpts::default())
                    .unwrap_or_else(|e| panic!("{label}: first recovery: {e}"));
                let second = recover_with(&dir, disk_org, &map, s, &RecoveryOpts::default())
                    .unwrap_or_else(|e| panic!("{label}: second recovery: {e}"));
                assert_tables_byte_identical(&first, &second, &label);
                assert_tables_byte_identical(&first, &truth, &label);

                // Resume a half-finished restore: arm the recovery
                // lattice so the attempt dies right after the image read,
                // then recover again. The fired latch means the resumed
                // attempt runs the same code path to completion, and the
                // bytes must match the undisturbed recoveries above.
                let crashed = Arc::new(CrashState::armed(CrashPlan::at(
                    CrashPoint::RecoveryReadImage,
                )));
                let opts = RecoveryOpts {
                    crash: Some(crashed.clone()),
                    ..RecoveryOpts::default()
                };
                let err = recover_with(&dir, disk_org, &map, s, &opts)
                    .expect_err("armed recovery must die after the image read");
                assert!(
                    err.to_string()
                        .contains("injected re-crash during recovery"),
                    "{label}: unexpected first-attempt error: {err}"
                );
                assert!(crashed.fired(), "{label}: the armed re-crash never fired");
                let resumed = recover_with(&dir, disk_org, &map, s, &opts)
                    .unwrap_or_else(|e| panic!("{label}: resumed recovery: {e}"));
                assert_tables_byte_identical(&resumed, &first, &label);
            }
        }
    }
}

/// Resuming mid-replay: an attempt that dies part-way through the log
/// replay tail (not merely after the image read) still leaves the
/// directory recoverable to identical bytes. Uses a mid-run crash so the
/// newest consistent checkpoint genuinely precedes the crash tick and
/// the replay tail is non-empty.
#[test]
fn replay_tail_recrash_resumes_to_identical_bytes() {
    for alg in [Algorithm::PartialRedo, Algorithm::CopyOnUpdatePartialRedo] {
        let dir = tempfile::tempdir().unwrap();
        let map = ShardMap::new(trace_config().geometry, 1).unwrap();
        // Freeze the run at its first enqueued flush job: the newest
        // consistent image then anchors early and recovery must replay a
        // long tail of the trace.
        let frozen = Arc::new(CrashState::armed(CrashPlan::at(CrashPoint::JobEnqueued)));
        Run::algorithm(alg)
            .engine(
                RealConfig::new(dir.path())
                    .without_recovery()
                    .with_crash_state(frozen.clone()),
            )
            .trace(trace_config())
            .execute()
            .unwrap_or_else(|e| panic!("{alg}: armed run: {e}"));
        assert!(frozen.fired(), "{alg}: the run's crash plan never fired");

        let truth = shard_truth(&map, 0);
        let clean = recover_with(
            dir.path(),
            alg.spec().disk_org,
            &map,
            0,
            &RecoveryOpts::default(),
        )
        .unwrap_or_else(|e| panic!("{alg}: clean recovery: {e}"));
        assert_tables_byte_identical(&clean, &truth, &format!("{alg} clean"));

        // Die on the second replayed tick, then resume over the same log.
        let mut plan = CrashPlan::at(CrashPoint::RecoveryReplayTick);
        plan.hit = 2;
        let crashed = Arc::new(CrashState::armed(plan));
        let opts = RecoveryOpts {
            crash: Some(crashed.clone()),
            ..RecoveryOpts::default()
        };
        let err = recover_with(dir.path(), alg.spec().disk_org, &map, 0, &opts)
            .expect_err("armed recovery must die mid-replay");
        assert!(
            err.to_string()
                .contains("injected re-crash during recovery"),
            "{alg}: unexpected first-attempt error: {err}"
        );
        assert!(
            crashed.fired(),
            "{alg}: the mid-replay re-crash never fired"
        );
        let resumed = recover_with(dir.path(), alg.spec().disk_org, &map, 0, &opts)
            .unwrap_or_else(|e| panic!("{alg}: resumed recovery: {e}"));
        assert_tables_byte_identical(&resumed, &clean, &format!("{alg} resumed"));
    }
}
