//! Differential backend equivalence: the io_uring-style batched-submission
//! writer must be **recovery-equivalent** to the historical thread pool.
//!
//! For every cell of the (algorithm × shard count) matrix, the same trace
//! runs under every writer configuration — the thread pool, the batched
//! engine under its default durability scheduler (cross-shard fsync
//! coalescing), and the batched engine with coalescing plus a nonzero
//! adaptive batch window — then every shard of every run is
//! independently crash-recovered from its files and the recovered states
//! are compared **byte for byte** — against each other and against the
//! ground truth of replaying the full trace. Wall-clock checkpoint
//! cadence is scheduler-dependent, so raw file bytes differ run to run
//! under *either* backend; the byte-identical-files half of the
//! equivalence matrix therefore lives at the deterministic job-stream
//! level in `src/writer.rs`'s differential unit tests (which also pin
//! that window 0 + coalescing off reproduces the historical files bit
//! for bit), and this suite pins the end-to-end property the acceptance
//! criterion names: identical recovered state across the full
//! 6 × {1, 4}-shard matrix under every durability policy.

use mmoc_core::{
    Algorithm, DiskOrg, EngineDetail, ObjectId, Run, RunReport, ShardFilter, ShardMap, StateTable,
    WriterBackend,
};
use mmoc_storage::recovery::{recover_and_replay, recover_and_replay_log};
use mmoc_storage::{shard_dir, RealConfig};
use mmoc_workload::SyntheticConfig;
use std::path::Path;

const TICKS: u64 = 24;
const SHARD_COUNTS: [u32; 2] = [1, 4];

/// Deliberately small: this suite runs 6 algorithms × {1, 4} shards ×
/// both writer backends of real-engine work concurrently with every
/// other test binary.
fn trace_config() -> SyntheticConfig {
    SyntheticConfig {
        geometry: mmoc_core::StateGeometry::test_small(),
        ticks: TICKS,
        updates_per_tick: 300,
        skew: 0.8,
        seed: 4711,
    }
}

/// One writer configuration of the differential matrix: a backend plus
/// the durability-scheduler policy it runs under.
#[derive(Clone, Copy)]
struct WriterConfig {
    label: &'static str,
    backend: WriterBackend,
    window_us: u64,
    coalesce: bool,
}

/// The matrix's writer axis: the historical pool, the batched engine
/// under its default policy (fsync coalescing on, no window), the
/// batched engine with coalescing *and* a nonzero adaptive batch window,
/// and the real io_uring ring — every durability-scheduler path must
/// recover identical state. On kernels without `io_uring` the last cell
/// runs under the batched fallback and the report says so; the
/// assertions below accept exactly that surfaced substitution.
const WRITER_CONFIGS: [WriterConfig; 4] = [
    WriterConfig {
        label: "pool",
        backend: WriterBackend::ThreadPool,
        window_us: 0,
        coalesce: false,
    },
    WriterConfig {
        label: "batched-coalesced",
        backend: WriterBackend::AsyncBatched,
        window_us: 0,
        coalesce: true,
    },
    WriterConfig {
        label: "batched-windowed",
        backend: WriterBackend::AsyncBatched,
        window_us: 400,
        coalesce: true,
    },
    WriterConfig {
        label: "uring",
        backend: WriterBackend::IoUring,
        window_us: 0,
        coalesce: true,
    },
];

fn run_with(cfg: WriterConfig, alg: Algorithm, shards: u32, dir: &Path) -> RunReport {
    Run::algorithm(alg)
        .engine(
            RealConfig::new(dir)
                .with_query_ops(64)
                .with_fsync_coalescing(cfg.coalesce),
        )
        .trace(trace_config())
        .shards(shards)
        .writer(cfg.backend)
        .batch_window(std::time::Duration::from_micros(cfg.window_us))
        .execute()
        .unwrap_or_else(|e| panic!("{alg} x{shards} [{}]: {e}", cfg.label))
}

/// Crash-recover one shard of a finished run directly from its files:
/// restore the newest consistent image, replay the shard's slice of the
/// deterministic trace to the crash tick.
fn recover_shard(dir: &Path, disk_org: DiskOrg, map: &ShardMap, shard: usize) -> StateTable {
    let n = map.n_shards();
    let sdir = shard_dir(dir, shard, n);
    let g = map.shard_geometry(shard);
    let mut replay = ShardFilter::new(trace_config().build(), map.clone(), shard);
    let rec = match disk_org {
        DiskOrg::DoubleBackup => recover_and_replay(&sdir, g, &mut replay, TICKS),
        DiskOrg::Log => recover_and_replay_log(&sdir, g, &mut replay, TICKS),
    }
    .unwrap_or_else(|e| panic!("shard {shard}: {e}"));
    rec.table
}

/// Ground truth for one shard: apply its full filtered trace to a fresh
/// table.
fn shard_truth(map: &ShardMap, shard: usize) -> StateTable {
    let mut table = StateTable::new(map.shard_geometry(shard)).unwrap();
    let mut src = ShardFilter::new(trace_config().build(), map.clone(), shard);
    let mut buf = Vec::new();
    while mmoc_core::TraceSource::next_tick(&mut src, &mut buf) {
        for &u in &buf {
            table.apply_unchecked(u);
        }
    }
    table
}

fn assert_tables_byte_identical(a: &StateTable, b: &StateTable, label: &str) {
    let g = *a.geometry();
    assert_eq!(a.fingerprint(), b.fingerprint(), "{label}: fingerprints");
    for obj in 0..g.n_objects() {
        assert_eq!(
            a.object_bytes(ObjectId(obj)).unwrap(),
            b.object_bytes(ObjectId(obj)).unwrap(),
            "{label}: object {obj} bytes diverge"
        );
    }
}

/// The full differential matrix: every (algorithm, shard count) cell runs
/// under every writer configuration — pool, batched with coalescing, and
/// batched with coalescing plus a nonzero batch window — and recovers to
/// byte-identical state.
#[test]
fn every_matrix_cell_recovers_identically_under_both_backends() {
    let root = tempfile::tempdir().unwrap();
    for alg in Algorithm::ALL {
        let disk_org = alg.spec().disk_org;
        for n in SHARD_COUNTS {
            let map = ShardMap::new(trace_config().geometry, n).unwrap();
            let mut recovered: Vec<Vec<StateTable>> = Vec::new();
            for cfg in WRITER_CONFIGS {
                let label = cfg.label;
                let dir = root
                    .path()
                    .join(format!("{}_{n}_{label}", alg.short_name()));
                let report = run_with(cfg, alg, n, &dir);
                // The engine's own end-of-run measurement must round-trip…
                assert_eq!(report.ticks, TICKS, "{alg} x{n} [{label}]");
                assert!(
                    report.world.checkpoints_completed > 0,
                    "{alg} x{n} [{label}]"
                );
                assert_eq!(
                    report.verified_consistent(),
                    Some(true),
                    "{alg} x{n} [{label}]: recovery must reproduce the crash state"
                );
                match report.detail {
                    EngineDetail::Real(d) => {
                        // The report must name the backend that actually
                        // ran: either the requested one, or — only for the
                        // probe-gated ring on kernels without io_uring —
                        // the batched fallback with the substitution
                        // surfaced in `writer_fallback_from`.
                        let fell_back = d.writer_backend == WriterBackend::AsyncBatched
                            && d.writer_fallback_from == Some(WriterBackend::IoUring);
                        assert!(
                            d.writer_backend == cfg.backend
                                || (cfg.backend == WriterBackend::IoUring && fell_back),
                            "{alg} x{n} [{label}]: reported backend {:?} (fallback from {:?})",
                            d.writer_backend,
                            d.writer_fallback_from
                        );
                        if d.writer_backend == cfg.backend {
                            assert_eq!(d.writer_fallback_from, None, "{alg} x{n} [{label}]");
                        }
                        // The durability instrumentation holds across the
                        // whole matrix: every checkpoint is one flush job,
                        // and coalescing can only ever *save* fsyncs.
                        assert_eq!(
                            d.flush_jobs, report.world.checkpoints_completed,
                            "{alg} x{n} [{label}]: one flush job per checkpoint"
                        );
                        assert!(
                            d.data_fsyncs <= d.flush_jobs,
                            "{alg} x{n} [{label}]: fsyncs cannot exceed jobs"
                        );
                        if cfg.backend == WriterBackend::ThreadPool {
                            assert_eq!(
                                d.data_fsyncs, d.flush_jobs,
                                "{alg} x{n} [{label}]: the pool pays one fsync per job"
                            );
                        }
                    }
                    _ => panic!("real detail expected"),
                }
                // …and an independent recovery straight from the files
                // gives us the state to diff across configurations.
                recovered.push(
                    (0..n as usize)
                        .map(|s| recover_shard(&dir, disk_org, &map, s))
                        .collect(),
                );
            }
            let pool = &recovered[0];
            for s in 0..n as usize {
                let truth = shard_truth(&map, s);
                for (c, tables) in recovered.iter().enumerate() {
                    let label = format!("{alg} x{n} [{}] shard {s}", WRITER_CONFIGS[c].label);
                    assert_tables_byte_identical(&pool[s], &tables[s], &label);
                    assert_tables_byte_identical(&tables[s], &truth, &label);
                }
            }
        }
    }
}

/// `.writer(…)` on the builder overrides the engine's configured backend,
/// and the engine default is what `RealConfig` carries.
#[test]
fn builder_writer_selection_overrides_the_engine_default() {
    let dir = tempfile::tempdir().unwrap();
    let engine = RealConfig::new(dir.path().join("a"))
        .with_query_ops(16)
        .with_writer_backend(WriterBackend::ThreadPool);
    let report = Run::algorithm(Algorithm::CopyOnUpdate)
        .engine(engine)
        .trace(trace_config())
        .writer(WriterBackend::AsyncBatched)
        .execute()
        .unwrap();
    match report.detail {
        EngineDetail::Real(d) => {
            assert_eq!(d.writer_backend, WriterBackend::AsyncBatched);
            assert_eq!(d.pool_threads, 1, "batched engine runs one loop");
        }
        _ => panic!("real detail expected"),
    }

    let engine = RealConfig::new(dir.path().join("b"))
        .with_query_ops(16)
        .with_writer_backend(WriterBackend::AsyncBatched);
    let report = Run::algorithm(Algorithm::CopyOnUpdate)
        .engine(engine)
        .trace(trace_config())
        .execute()
        .unwrap();
    match report.detail {
        EngineDetail::Real(d) => assert_eq!(d.writer_backend, WriterBackend::AsyncBatched),
        _ => panic!("real detail expected"),
    }
}
