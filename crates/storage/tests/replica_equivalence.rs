//! Differential replica-tier equivalence: recovering a shard from its
//! peers' in-memory mirrors must produce **byte-identical** state to
//! recovering it from the disk organization's files.
//!
//! For every cell of the (algorithm × shard count) matrix the same trace
//! runs once with a retained [`ReplicaSet`] installed — retained because
//! the mirrors model *peer* memory, which survives a single-shard crash —
//! and each shard is then recovered twice: once through the production
//! disk path (restore newest consistent image, replay the trace tail) and
//! once through the replica path (fetch the newest complete mirror,
//! replay the trace tail). Both recovered tables are compared byte for
//! byte against each other and against the ground truth of replaying the
//! full trace in memory. The replica tier is an accelerator, not an
//! alternative history: if these ever diverge the tier is wrong, never
//! "differently right".

use mmoc_core::{
    Algorithm, DiskOrg, EngineDetail, ObjectId, Run, ShardFilter, ShardMap, StateTable,
};
use mmoc_storage::recovery::{
    recover_and_replay, recover_and_replay_log, recover_from_replica, RecoveryOpts,
};
use mmoc_storage::{shard_dir, RealConfig, ReplicaSet};
use mmoc_workload::SyntheticConfig;
use std::path::Path;
use std::sync::Arc;

const TICKS: u64 = 24;
const SHARD_COUNTS: [u32; 2] = [1, 4];

/// Deliberately small — this suite runs the full 6 × {1, 4} matrix of
/// real-engine work concurrently with every other test binary.
fn trace_config() -> SyntheticConfig {
    SyntheticConfig {
        geometry: mmoc_core::StateGeometry::test_small(),
        ticks: TICKS,
        updates_per_tick: 300,
        skew: 0.8,
        seed: 90125,
    }
}

/// Build the retained replica set for an `n`-shard split of the trace
/// geometry, exactly as the sharded run would.
fn replica_set(map: &ShardMap, factor: u32) -> Arc<ReplicaSet> {
    let geometries: Vec<_> = (0..map.n_shards()).map(|s| map.shard_geometry(s)).collect();
    Arc::new(ReplicaSet::new(factor, &geometries))
}

/// Ground truth for one shard: apply its full filtered trace to a fresh
/// table.
fn shard_truth(map: &ShardMap, shard: usize) -> StateTable {
    let mut table = StateTable::new(map.shard_geometry(shard)).unwrap();
    let mut src = ShardFilter::new(trace_config().build(), map.clone(), shard);
    let mut buf = Vec::new();
    while mmoc_core::TraceSource::next_tick(&mut src, &mut buf) {
        for &u in &buf {
            table.apply_unchecked(u);
        }
    }
    table
}

fn disk_recover(dir: &Path, disk_org: DiskOrg, map: &ShardMap, shard: usize) -> StateTable {
    let sdir = shard_dir(dir, shard, map.n_shards());
    let mut replay = ShardFilter::new(trace_config().build(), map.clone(), shard);
    let rec = match disk_org {
        DiskOrg::DoubleBackup => {
            recover_and_replay(&sdir, map.shard_geometry(shard), &mut replay, TICKS)
        }
        DiskOrg::Log => {
            recover_and_replay_log(&sdir, map.shard_geometry(shard), &mut replay, TICKS)
        }
    }
    .unwrap_or_else(|e| panic!("shard {shard} disk recovery: {e}"));
    rec.table
}

fn assert_tables_byte_identical(a: &StateTable, b: &StateTable, label: &str) {
    let g = *a.geometry();
    assert_eq!(a.fingerprint(), b.fingerprint(), "{label}: fingerprints");
    for obj in 0..g.n_objects() {
        assert_eq!(
            a.object_bytes(ObjectId(obj)).unwrap(),
            b.object_bytes(ObjectId(obj)).unwrap(),
            "{label}: object {obj} bytes diverge"
        );
    }
}

/// The full matrix: disk-recovered, replica-recovered, and in-memory
/// truth agree byte for byte for every algorithm and shard count.
#[test]
fn replica_recovery_matches_disk_recovery_across_the_matrix() {
    let root = tempfile::tempdir().unwrap();
    for alg in Algorithm::ALL {
        let disk_org = alg.spec().disk_org;
        for n in SHARD_COUNTS {
            let map = ShardMap::new(trace_config().geometry, n).unwrap();
            let set = replica_set(&map, 1);
            let dir = root.path().join(format!("{}_{n}", alg.short_name()));
            Run::algorithm(alg)
                .engine(
                    RealConfig::new(&dir)
                        .with_query_ops(64)
                        .without_recovery()
                        .with_replica_set(set.clone()),
                )
                .trace(trace_config())
                .shards(n)
                .execute()
                .unwrap_or_else(|e| panic!("{alg} x{n}: {e}"));
            for s in 0..n as usize {
                let label = format!("{alg} x{n} shard {s}");
                let (complete, tick) = set.mirror_status(s as u32);
                assert!(complete >= 1, "{label}: no complete mirror after the run");
                assert!(tick > 0, "{label}: mirrors never saw a published delta");
                let from_disk = disk_recover(&dir, disk_org, &map, s);
                let mut replay = ShardFilter::new(trace_config().build(), map.clone(), s);
                let via = recover_from_replica(
                    &set,
                    s as u32,
                    map.shard_geometry(s),
                    &mut replay,
                    TICKS,
                    &RecoveryOpts::default(),
                )
                .unwrap_or_else(|| panic!("{label}: replica fetch missed"))
                .unwrap_or_else(|e| panic!("{label}: replica recovery: {e}"));
                let truth = shard_truth(&map, s);
                assert_tables_byte_identical(&via.table, &from_disk, &label);
                assert_tables_byte_identical(&via.table, &truth, &label);
            }
        }
    }
}

/// End-to-end through the builder: `.replication(1)` turns the tier on,
/// the run's own recovery measurement restores from a mirror (the run
/// builds and retains the set internally, so the mirrors are alive when
/// the end-of-run measurement runs), and the recovered state still
/// matches the live state.
#[test]
fn builder_replication_recovers_from_the_mirror_tier() {
    let dir = tempfile::tempdir().unwrap();
    let report = Run::algorithm(Algorithm::CopyOnUpdate)
        .engine(RealConfig::new(dir.path()).with_query_ops(64))
        .trace(trace_config())
        .shards(4)
        .replication(1)
        .execute()
        .expect("replicated run");
    assert_eq!(report.verified_consistent(), Some(true));
    match &report.detail {
        EngineDetail::Real(d) => assert_eq!(d.replication_factor, 1),
        _ => panic!("real detail expected"),
    }
    for shard in &report.shards {
        let rec = shard.recovery.as_ref().expect("measured");
        assert_eq!(rec.state_matches, Some(true));
        assert_eq!(
            rec.from_replica,
            Some(true),
            "shard {}: recovery should have come from a mirror",
            shard.shard
        );
    }
}

/// With the tier off (factor 0, the default) nothing changes: recovery
/// comes from disk and the report says so.
#[test]
fn replication_disabled_recovers_from_disk() {
    let dir = tempfile::tempdir().unwrap();
    let report = Run::algorithm(Algorithm::CopyOnUpdate)
        .engine(RealConfig::new(dir.path()).with_query_ops(64))
        .trace(trace_config())
        .execute()
        .expect("unreplicated run");
    assert_eq!(report.verified_consistent(), Some(true));
    match &report.detail {
        EngineDetail::Real(d) => assert_eq!(d.replication_factor, 0),
        _ => panic!("real detail expected"),
    }
    let rec = report.shards[0].recovery.as_ref().expect("measured");
    assert_eq!(rec.from_replica, Some(false));
}
