//! Failure injection: the double-backup protocol must survive every crash
//! point — mid-write, between data sync and metadata commit, and with
//! corrupted files — by falling back to the other (still consistent)
//! backup. "Checkpoints alternate between the two backups to ensure that
//! at all times there is at least one consistent image on the disk" (§3.2).

// The legacy entry points stay exercised until their removal (the
// unified-builder coverage lives in tests/builder_equivalence.rs).
#![allow(deprecated)]

use mmoc_core::{CellUpdate, ObjectId, StateGeometry, StateTable};
use mmoc_storage::files::BackupSet;
use mmoc_storage::recovery::{recover_and_replay, recover_and_replay_log};
use mmoc_storage::{
    run_atomic_copy, run_copy_on_update, run_dribble, run_naive_snapshot, RealConfig,
};
use mmoc_workload::{RecordedTrace, SyntheticConfig, TraceSource};

fn geometry() -> StateGeometry {
    StateGeometry::small(64, 4) // 16 objects of 64 B
}

fn image_with(fill: u8) -> Vec<u8> {
    vec![fill; 16 * 64]
}

fn empty_trace(ticks: usize) -> RecordedTrace {
    RecordedTrace::new(geometry(), vec![Vec::new(); ticks])
}

/// Crash *during* a checkpoint write: the target backup was invalidated
/// before writing began, so recovery must restore the other backup.
#[test]
fn crash_mid_write_falls_back_to_older_backup() {
    let dir = tempfile::tempdir().unwrap();
    let g = geometry();
    let mut set = BackupSet::create(dir.path(), g, &image_with(1)).unwrap();
    set.commit(0, 10).unwrap();
    set.commit(1, 20).unwrap();

    // Start writing backup 0 (the older one): invalidate, write half the
    // objects, then "crash" (drop without commit).
    set.invalidate(0).unwrap();
    for obj in 0..8u32 {
        set.write_object(0, ObjectId(obj), &[9u8; 64]).unwrap();
    }
    drop(set);

    // Recovery must pick backup 1 (tick 20), untouched by the crash.
    let t = empty_trace(25);
    let rec = recover_and_replay(dir.path(), g, &mut t.replay(), 25).unwrap();
    assert_eq!(rec.from_tick, 20);
    // The restored image is the backup-1 image, not the torn backup-0 one.
    let mut expect = StateTable::new(g).unwrap();
    expect.restore_all(&image_with(1)).unwrap();
    assert_eq!(rec.table.fingerprint(), expect.fingerprint());
}

/// Crash after data sync but before the metadata commit: same fallback.
#[test]
fn crash_before_meta_commit_is_ignored() {
    let dir = tempfile::tempdir().unwrap();
    let g = geometry();
    let mut set = BackupSet::create(dir.path(), g, &image_with(3)).unwrap();
    set.commit(1, 42).unwrap();
    set.invalidate(0).unwrap();
    set.write_full(0, &image_with(7)).unwrap();
    set.sync(0).unwrap();
    // No commit(0, ...) — crash here.
    drop(set);

    let t = empty_trace(50);
    let rec = recover_and_replay(dir.path(), g, &mut t.replay(), 50).unwrap();
    assert_eq!(rec.from_tick, 42);
}

/// A corrupted metadata file must not be trusted.
#[test]
fn corrupted_meta_is_rejected() {
    let dir = tempfile::tempdir().unwrap();
    let g = geometry();
    let mut set = BackupSet::create(dir.path(), g, &image_with(0)).unwrap();
    set.commit(0, 5).unwrap();
    set.commit(1, 9).unwrap();
    drop(set);
    // Corrupt the newer backup's metadata.
    std::fs::write(dir.path().join("backup_1.meta"), b"XXXXXXXXXXXXXXXX").unwrap();

    let t = empty_trace(10);
    let rec = recover_and_replay(dir.path(), g, &mut t.replay(), 10).unwrap();
    assert_eq!(rec.from_tick, 5, "must fall back to the intact backup");
}

/// A truncated metadata file must not be trusted either.
#[test]
fn truncated_meta_is_rejected() {
    let dir = tempfile::tempdir().unwrap();
    let g = geometry();
    let mut set = BackupSet::create(dir.path(), g, &image_with(0)).unwrap();
    set.commit(1, 33).unwrap();
    drop(set);
    std::fs::write(dir.path().join("backup_1.meta"), b"shrt").unwrap();

    let t = empty_trace(40);
    let rec = recover_and_replay(dir.path(), g, &mut t.replay(), 40).unwrap();
    assert_eq!(rec.from_tick, 0, "only the boot image remains trustworthy");
}

/// Recovery replays through the crash tick even when the log source ends
/// exactly there, and fails cleanly when both backups are gone.
#[test]
fn recovery_with_no_backups_fails_cleanly() {
    let dir = tempfile::tempdir().unwrap();
    let g = geometry();
    let mut set = BackupSet::create(dir.path(), g, &image_with(0)).unwrap();
    set.invalidate(0).unwrap();
    set.invalidate(1).unwrap();
    drop(set);
    let t = empty_trace(5);
    let err = recover_and_replay(dir.path(), g, &mut t.replay(), 5).unwrap_err();
    assert!(err.to_string().contains("no consistent backup"));
}

/// End-to-end: run a real engine, delete the *newest* backup's metadata
/// (simulating a torn final checkpoint), and verify recovery still works
/// from the previous checkpoint via replay.
#[test]
fn engine_recovers_after_losing_newest_checkpoint() {
    let dir = tempfile::tempdir().unwrap();
    let trace = SyntheticConfig {
        geometry: StateGeometry::test_small(),
        ticks: 40,
        updates_per_tick: 300,
        skew: 0.7,
        seed: 99,
    };
    // Pace lightly so the fsync-bound writer completes several
    // checkpoints within the run.
    let report = run_copy_on_update(
        &RealConfig::new(dir.path())
            .without_recovery()
            .paced_at_hz(400.0),
        || trace.build(),
    )
    .unwrap();
    assert!(report.checkpoints_completed >= 2, "need two checkpoints");

    // Identify and destroy the newest backup's metadata.
    let g = trace.geometry;
    let set = BackupSet::open(dir.path(), g).unwrap();
    let (newest, newest_tick) = set.newest_consistent().unwrap();
    drop(set);
    std::fs::remove_file(dir.path().join(format!("backup_{newest}.meta"))).unwrap();

    // Recovery falls back to the older backup and replays further, still
    // reaching the exact final state.
    let mut replay = trace.build();
    let rec = recover_and_replay(dir.path(), g, &mut replay, 40).unwrap();
    assert!(rec.from_tick < newest_tick);

    // Compare against the ground truth: apply the full trace.
    let mut truth = StateTable::new(g).unwrap();
    let mut src = trace.build();
    let mut buf = Vec::new();
    while src.next_tick(&mut buf) {
        for &u in &buf {
            truth.apply_unchecked(u);
        }
    }
    assert_eq!(rec.table.fingerprint(), truth.fingerprint());
}

/// The same resilience for the Naive engine.
#[test]
fn naive_engine_recovers_after_meta_loss() {
    let dir = tempfile::tempdir().unwrap();
    let trace = SyntheticConfig {
        geometry: StateGeometry::test_small(),
        ticks: 30,
        updates_per_tick: 200,
        skew: 0.5,
        seed: 5,
    };
    let report = run_naive_snapshot(
        &RealConfig::new(dir.path())
            .without_recovery()
            .paced_at_hz(400.0),
        || trace.build(),
    )
    .unwrap();
    assert!(report.checkpoints_completed >= 2);

    let g = trace.geometry;
    let set = BackupSet::open(dir.path(), g).unwrap();
    let (newest, _) = set.newest_consistent().unwrap();
    drop(set);
    std::fs::remove_file(dir.path().join(format!("backup_{newest}.meta"))).unwrap();

    let rec = recover_and_replay(dir.path(), g, &mut trace.build(), 30).unwrap();
    let mut truth = StateTable::new(g).unwrap();
    let mut src = trace.build();
    let mut buf = Vec::new();
    while src.next_tick(&mut buf) {
        for &u in &buf {
            truth.apply_unchecked(u);
        }
    }
    assert_eq!(rec.table.fingerprint(), truth.fingerprint());
}

/// Crash injection for the real Atomic-Copy-Dirty-Objects engine (one of
/// the two algorithms added by the unified driver): losing the newest
/// backup's metadata falls back to the older backup, and replay still
/// reaches the exact final state.
#[test]
fn acdo_engine_recovers_after_losing_newest_checkpoint() {
    let dir = tempfile::tempdir().unwrap();
    let trace = SyntheticConfig {
        geometry: StateGeometry::test_small(),
        ticks: 40,
        updates_per_tick: 300,
        skew: 0.7,
        seed: 77,
    };
    let report = run_atomic_copy(
        &RealConfig::new(dir.path())
            .without_recovery()
            .paced_at_hz(400.0),
        || trace.build(),
    )
    .unwrap();
    assert!(report.checkpoints_completed >= 2, "need two checkpoints");

    let g = trace.geometry;
    let set = BackupSet::open(dir.path(), g).unwrap();
    let (newest, newest_tick) = set.newest_consistent().unwrap();
    drop(set);
    std::fs::remove_file(dir.path().join(format!("backup_{newest}.meta"))).unwrap();

    let rec = recover_and_replay(dir.path(), g, &mut trace.build(), 40).unwrap();
    assert!(rec.from_tick < newest_tick);

    let mut truth = StateTable::new(g).unwrap();
    let mut src = trace.build();
    let mut buf = Vec::new();
    while src.next_tick(&mut buf) {
        for &u in &buf {
            truth.apply_unchecked(u);
        }
    }
    assert_eq!(rec.table.fingerprint(), truth.fingerprint());
}

/// Crash injection for the real Dribble-and-Copy-on-Update engine (the
/// other driver-unlocked algorithm): tearing the tail of the checkpoint
/// log mid-sweep discards the torn segment, anchors recovery at the
/// previous complete sweep, and replay reaches the exact final state.
#[test]
fn dribble_engine_recovers_after_torn_log_tail() {
    let dir = tempfile::tempdir().unwrap();
    let trace = SyntheticConfig {
        geometry: StateGeometry::test_small(),
        ticks: 40,
        updates_per_tick: 300,
        skew: 0.7,
        seed: 88,
    };
    let report = run_dribble(
        &RealConfig::new(dir.path())
            .without_recovery()
            .paced_at_hz(400.0),
        || trace.build(),
    )
    .unwrap();
    assert!(report.checkpoints_completed >= 2, "need two sweeps");

    // Chop bytes off the log: the final segment becomes a torn tail, as
    // if the crash had hit mid-append.
    let path = dir.path().join("checkpoint.log");
    let len = std::fs::metadata(&path).unwrap().len();
    let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
    f.set_len(len - 100).unwrap();
    drop(f);

    let g = trace.geometry;
    let rec = recover_and_replay_log(dir.path(), g, &mut trace.build(), 40).unwrap();

    let mut truth = StateTable::new(g).unwrap();
    let mut src = trace.build();
    let mut buf = Vec::new();
    while src.next_tick(&mut buf) {
        for &u in &buf {
            truth.apply_unchecked(u);
        }
    }
    assert_eq!(
        rec.table.fingerprint(),
        truth.fingerprint(),
        "torn-tail recovery must still reach the crash state via replay"
    );
}

/// Every log-organized algorithm survives losing its *entire* newest
/// segment: recovery falls back to an older consistent anchor plus
/// replay. (Dribble anchors on any complete sweep; the partial-redo pair
/// anchor on the last complete full flush.)
#[test]
fn log_algorithms_recover_when_final_segments_are_torn() {
    use mmoc_core::Algorithm;
    for alg in [
        Algorithm::DribbleAndCopyOnUpdate,
        Algorithm::CopyOnUpdatePartialRedo,
    ] {
        let name = alg.short_name();
        let dir = tempfile::tempdir().unwrap();
        fn make_trace() -> mmoc_workload::ZipfTrace {
            SyntheticConfig {
                geometry: StateGeometry::small(256, 8),
                ticks: 30,
                updates_per_tick: 200,
                skew: 0.6,
                seed: 2024,
            }
            .build()
        }
        let report = mmoc_storage::run_algorithm(
            alg,
            &RealConfig::new(dir.path())
                .without_recovery()
                .paced_at_hz(400.0),
            make_trace,
        )
        .unwrap();
        assert!(report.checkpoints_completed >= 2, "{name}");

        // Tear a large tail chunk: possibly several segments.
        let path = dir.path().join("checkpoint.log");
        let len = std::fs::metadata(&path).unwrap().len();
        let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len.saturating_sub(len / 4).max(100)).unwrap();
        drop(f);

        let g = make_trace().geometry();
        let rec = recover_and_replay_log(dir.path(), g, &mut make_trace(), 30)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let mut truth = StateTable::new(g).unwrap();
        let mut src = make_trace();
        let mut buf = Vec::new();
        while src.next_tick(&mut buf) {
            for &u in &buf {
                truth.apply_unchecked(u);
            }
        }
        assert_eq!(rec.table.fingerprint(), truth.fingerprint(), "{name}");
    }
}

/// Updates whose cells straddle object boundaries land in the right
/// objects on disk (regression guard for offset arithmetic).
#[test]
fn object_boundary_updates_persist_correctly() {
    let dir = tempfile::tempdir().unwrap();
    let g = geometry(); // 16 cells/object with 4 cols -> 4 rows per object
    let ticks = vec![
        vec![
            CellUpdate::new(3, 3, 0xAAAA),  // last cell of object 0
            CellUpdate::new(4, 0, 0xBBBB),  // first cell of object 1
            CellUpdate::new(63, 3, 0xCCCC), // very last cell
        ];
        3
    ];
    let trace = RecordedTrace::new(g, ticks);
    let report = run_copy_on_update(&RealConfig::new(dir.path()), || trace.replay()).unwrap();
    let rec = report.recovery.unwrap();
    assert!(rec.state_matches);
}
