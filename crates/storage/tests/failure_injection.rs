//! Failure injection: the double-backup protocol must survive every crash
//! point — mid-write, between data sync and metadata commit, and with
//! corrupted files — by falling back to the other (still consistent)
//! backup. "Checkpoints alternate between the two backups to ensure that
//! at all times there is at least one consistent image on the disk" (§3.2).
//!
//! The suite covers both writer backends: engine-level runs go through
//! the unified `Run` builder (picking up the process-wide
//! `MMOC_WRITER_BACKEND` default, which is how CI's backend matrix runs
//! this whole file under each backend), and a dedicated matrix pins the
//! async batched-submission engine's **mid-batch** crash window —
//! submitted-but-not-completed jobs — for all six algorithms.

use mmoc_core::{
    Algorithm, CellUpdate, DiskOrg, ObjectId, Run, RunReport, ShardFilter, ShardMap, StateGeometry,
    StateTable, TraceSpec, WriterBackend,
};
use mmoc_storage::files::BackupSet;
use mmoc_storage::recovery::{recover_and_replay, recover_and_replay_log};
use mmoc_storage::{shard_dir, RealConfig};
use mmoc_workload::{RecordedTrace, SyntheticConfig, TraceSource};

fn geometry() -> StateGeometry {
    StateGeometry::small(64, 4) // 16 objects of 64 B
}

fn image_with(fill: u8) -> Vec<u8> {
    vec![fill; 16 * 64]
}

fn empty_trace(ticks: usize) -> RecordedTrace {
    RecordedTrace::new(geometry(), vec![Vec::new(); ticks])
}

/// Run one algorithm on the real engine through the builder (single
/// shard, lightly paced so the fsync-bound writer completes several
/// checkpoints within the run).
fn run_real(alg: Algorithm, config: RealConfig, trace: impl TraceSpec) -> RunReport {
    Run::algorithm(alg)
        .engine(config)
        .trace(trace)
        .execute()
        .unwrap_or_else(|e| panic!("{alg}: {e}"))
}

/// Ground truth: the state after applying the full trace.
fn truth_of(mut src: impl TraceSource) -> StateTable {
    let mut truth = StateTable::new(src.geometry()).unwrap();
    let mut buf = Vec::new();
    while src.next_tick(&mut buf) {
        for &u in &buf {
            truth.apply_unchecked(u);
        }
    }
    truth
}

/// Crash *during* a checkpoint write: the target backup was invalidated
/// before writing began, so recovery must restore the other backup.
#[test]
fn crash_mid_write_falls_back_to_older_backup() {
    let dir = tempfile::tempdir().unwrap();
    let g = geometry();
    let mut set = BackupSet::create(dir.path(), g, &image_with(1)).unwrap();
    set.commit(0, 10).unwrap();
    set.commit(1, 20).unwrap();

    // Start writing backup 0 (the older one): invalidate, write half the
    // objects, then "crash" (drop without commit).
    set.invalidate(0).unwrap();
    for obj in 0..8u32 {
        set.write_object(0, ObjectId(obj), &[9u8; 64]).unwrap();
    }
    drop(set);

    // Recovery must pick backup 1 (tick 20), untouched by the crash.
    let t = empty_trace(25);
    let rec = recover_and_replay(dir.path(), g, &mut t.replay(), 25).unwrap();
    assert_eq!(rec.from_tick, 20);
    // The restored image is the backup-1 image, not the torn backup-0 one.
    let mut expect = StateTable::new(g).unwrap();
    expect.restore_all(&image_with(1)).unwrap();
    assert_eq!(rec.table.fingerprint(), expect.fingerprint());
}

/// Crash after data sync but before the metadata commit: same fallback.
#[test]
fn crash_before_meta_commit_is_ignored() {
    let dir = tempfile::tempdir().unwrap();
    let g = geometry();
    let mut set = BackupSet::create(dir.path(), g, &image_with(3)).unwrap();
    set.commit(1, 42).unwrap();
    set.invalidate(0).unwrap();
    set.write_full(0, &image_with(7)).unwrap();
    set.sync(0).unwrap();
    // No commit(0, ...) — crash here.
    drop(set);

    let t = empty_trace(50);
    let rec = recover_and_replay(dir.path(), g, &mut t.replay(), 50).unwrap();
    assert_eq!(rec.from_tick, 42);
}

/// A corrupted metadata file must not be trusted.
#[test]
fn corrupted_meta_is_rejected() {
    let dir = tempfile::tempdir().unwrap();
    let g = geometry();
    let mut set = BackupSet::create(dir.path(), g, &image_with(0)).unwrap();
    set.commit(0, 5).unwrap();
    set.commit(1, 9).unwrap();
    drop(set);
    // Corrupt the newer backup's metadata.
    std::fs::write(dir.path().join("backup_1.meta"), b"XXXXXXXXXXXXXXXX").unwrap();

    let t = empty_trace(10);
    let rec = recover_and_replay(dir.path(), g, &mut t.replay(), 10).unwrap();
    assert_eq!(rec.from_tick, 5, "must fall back to the intact backup");
}

/// A truncated metadata file must not be trusted either.
#[test]
fn truncated_meta_is_rejected() {
    let dir = tempfile::tempdir().unwrap();
    let g = geometry();
    let mut set = BackupSet::create(dir.path(), g, &image_with(0)).unwrap();
    set.commit(1, 33).unwrap();
    drop(set);
    std::fs::write(dir.path().join("backup_1.meta"), b"shrt").unwrap();

    let t = empty_trace(40);
    let rec = recover_and_replay(dir.path(), g, &mut t.replay(), 40).unwrap();
    assert_eq!(rec.from_tick, 0, "only the boot image remains trustworthy");
}

/// Recovery replays through the crash tick even when the log source ends
/// exactly there, and fails cleanly when both backups are gone.
#[test]
fn recovery_with_no_backups_fails_cleanly() {
    let dir = tempfile::tempdir().unwrap();
    let g = geometry();
    let mut set = BackupSet::create(dir.path(), g, &image_with(0)).unwrap();
    set.invalidate(0).unwrap();
    set.invalidate(1).unwrap();
    drop(set);
    let t = empty_trace(5);
    let err = recover_and_replay(dir.path(), g, &mut t.replay(), 5).unwrap_err();
    assert!(err.to_string().contains("no consistent backup"));
}

/// End-to-end: run a real engine, delete the *newest* backup's metadata
/// (simulating a torn final checkpoint), and verify recovery still works
/// from the previous checkpoint via replay.
#[test]
fn engine_recovers_after_losing_newest_checkpoint() {
    let dir = tempfile::tempdir().unwrap();
    let trace = SyntheticConfig {
        geometry: StateGeometry::test_small(),
        ticks: 40,
        updates_per_tick: 300,
        skew: 0.7,
        seed: 99,
    };
    let report = run_real(
        Algorithm::CopyOnUpdate,
        RealConfig::new(dir.path())
            .without_recovery()
            .paced_at_hz(400.0),
        trace,
    );
    assert!(
        report.world.checkpoints_completed >= 2,
        "need two checkpoints"
    );

    // Identify and destroy the newest backup's metadata.
    let g = trace.geometry;
    let set = BackupSet::open(dir.path(), g).unwrap();
    let (newest, newest_tick) = set.newest_consistent().unwrap();
    drop(set);
    std::fs::remove_file(dir.path().join(format!("backup_{newest}.meta"))).unwrap();

    // Recovery falls back to the older backup and replays further, still
    // reaching the exact final state.
    let mut replay = trace.build();
    let rec = recover_and_replay(dir.path(), g, &mut replay, 40).unwrap();
    assert!(rec.from_tick < newest_tick);

    // Compare against the ground truth: apply the full trace.
    assert_eq!(
        rec.table.fingerprint(),
        truth_of(trace.build()).fingerprint()
    );
}

/// The same resilience for the Naive engine.
#[test]
fn naive_engine_recovers_after_meta_loss() {
    let dir = tempfile::tempdir().unwrap();
    let trace = SyntheticConfig {
        geometry: StateGeometry::test_small(),
        ticks: 30,
        updates_per_tick: 200,
        skew: 0.5,
        seed: 5,
    };
    let report = run_real(
        Algorithm::NaiveSnapshot,
        RealConfig::new(dir.path())
            .without_recovery()
            .paced_at_hz(400.0),
        trace,
    );
    assert!(report.world.checkpoints_completed >= 2);

    let g = trace.geometry;
    let set = BackupSet::open(dir.path(), g).unwrap();
    let (newest, _) = set.newest_consistent().unwrap();
    drop(set);
    std::fs::remove_file(dir.path().join(format!("backup_{newest}.meta"))).unwrap();

    let rec = recover_and_replay(dir.path(), g, &mut trace.build(), 30).unwrap();
    assert_eq!(
        rec.table.fingerprint(),
        truth_of(trace.build()).fingerprint()
    );
}

/// Crash injection for the real Atomic-Copy-Dirty-Objects engine (one of
/// the two algorithms added by the unified driver): losing the newest
/// backup's metadata falls back to the older backup, and replay still
/// reaches the exact final state.
#[test]
fn acdo_engine_recovers_after_losing_newest_checkpoint() {
    let dir = tempfile::tempdir().unwrap();
    let trace = SyntheticConfig {
        geometry: StateGeometry::test_small(),
        ticks: 40,
        updates_per_tick: 300,
        skew: 0.7,
        seed: 77,
    };
    let report = run_real(
        Algorithm::AtomicCopyDirtyObjects,
        RealConfig::new(dir.path())
            .without_recovery()
            .paced_at_hz(400.0),
        trace,
    );
    assert!(
        report.world.checkpoints_completed >= 2,
        "need two checkpoints"
    );

    let g = trace.geometry;
    let set = BackupSet::open(dir.path(), g).unwrap();
    let (newest, newest_tick) = set.newest_consistent().unwrap();
    drop(set);
    std::fs::remove_file(dir.path().join(format!("backup_{newest}.meta"))).unwrap();

    let rec = recover_and_replay(dir.path(), g, &mut trace.build(), 40).unwrap();
    assert!(rec.from_tick < newest_tick);
    assert_eq!(
        rec.table.fingerprint(),
        truth_of(trace.build()).fingerprint()
    );
}

/// Crash injection for the real Dribble-and-Copy-on-Update engine (the
/// other driver-unlocked algorithm): tearing the tail of the checkpoint
/// log mid-sweep discards the torn segment, anchors recovery at the
/// previous complete sweep, and replay reaches the exact final state.
#[test]
fn dribble_engine_recovers_after_torn_log_tail() {
    let dir = tempfile::tempdir().unwrap();
    let trace = SyntheticConfig {
        geometry: StateGeometry::test_small(),
        ticks: 40,
        updates_per_tick: 300,
        skew: 0.7,
        seed: 88,
    };
    let report = run_real(
        Algorithm::DribbleAndCopyOnUpdate,
        RealConfig::new(dir.path())
            .without_recovery()
            .paced_at_hz(400.0),
        trace,
    );
    assert!(report.world.checkpoints_completed >= 2, "need two sweeps");

    // Chop bytes off the log: the final segment becomes a torn tail, as
    // if the crash had hit mid-append.
    let path = dir.path().join("checkpoint.log");
    let len = std::fs::metadata(&path).unwrap().len();
    let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
    f.set_len(len - 100).unwrap();
    drop(f);

    let g = trace.geometry;
    let rec = recover_and_replay_log(dir.path(), g, &mut trace.build(), 40).unwrap();
    assert_eq!(
        rec.table.fingerprint(),
        truth_of(trace.build()).fingerprint(),
        "torn-tail recovery must still reach the crash state via replay"
    );
}

/// Every log-organized algorithm survives losing its *entire* newest
/// segment: recovery falls back to an older consistent anchor plus
/// replay. (Dribble anchors on any complete sweep; the partial-redo pair
/// anchor on the last complete full flush.)
#[test]
fn log_algorithms_recover_when_final_segments_are_torn() {
    for alg in [
        Algorithm::DribbleAndCopyOnUpdate,
        Algorithm::CopyOnUpdatePartialRedo,
    ] {
        let name = alg.short_name();
        let dir = tempfile::tempdir().unwrap();
        let trace = SyntheticConfig {
            geometry: StateGeometry::small(256, 8),
            ticks: 30,
            updates_per_tick: 200,
            skew: 0.6,
            seed: 2024,
        };
        let report = run_real(
            alg,
            RealConfig::new(dir.path())
                .without_recovery()
                .paced_at_hz(400.0),
            trace,
        );
        assert!(report.world.checkpoints_completed >= 2, "{name}");

        // Tear a large tail chunk: possibly several segments.
        let path = dir.path().join("checkpoint.log");
        let len = std::fs::metadata(&path).unwrap().len();
        let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len.saturating_sub(len / 4).max(100)).unwrap();
        drop(f);

        let g = trace.geometry;
        let rec = recover_and_replay_log(dir.path(), g, &mut trace.build(), 30)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(
            rec.table.fingerprint(),
            truth_of(trace.build()).fingerprint(),
            "{name}"
        );
    }
}

/// Updates whose cells straddle object boundaries land in the right
/// objects on disk (regression guard for offset arithmetic).
#[test]
fn object_boundary_updates_persist_correctly() {
    let dir = tempfile::tempdir().unwrap();
    let g = geometry(); // 16 cells/object with 4 cols -> 4 rows per object
    let ticks = vec![
        vec![
            CellUpdate::new(3, 3, 0xAAAA),  // last cell of object 0
            CellUpdate::new(4, 0, 0xBBBB),  // first cell of object 1
            CellUpdate::new(63, 3, 0xCCCC), // very last cell
        ];
        3
    ];
    let trace = RecordedTrace::new(g, ticks);
    let report = run_real(
        Algorithm::CopyOnUpdate,
        RealConfig::new(dir.path()),
        mmoc_core::TraceFn(|| trace.replay()),
    );
    assert_eq!(report.verified_consistent(), Some(true));
}

// ---------------------------------------------------------------------------
// Mid-batch crash injection for the async batched-submission backend
// ---------------------------------------------------------------------------

/// The batched engine's crash window is the gap between a job's
/// **submission** (data writes issued: the double-backup target is
/// invalidated and overwritten, or a log segment is appended to the page
/// cache) and its **completion** (data sync, then metadata commit /
/// log sync). A crash inside a batch leaves every submitted-but-not-
/// completed job in exactly the state these injections construct:
///
/// * double backup — the target's metadata is gone (invalidated at
///   submission, never re-committed), its image torn;
/// * log — the newest segment is a torn tail (sealed in the page cache,
///   never synced; `set_len` models the partial writeback a crash
///   leaves).
///
/// For all six algorithms, over a 4-shard world (so batches genuinely
/// hold several shards' jobs), recovery must fall back to each shard's
/// previous consistent image and replay to the exact crash state.
#[test]
fn async_backend_recovers_from_mid_batch_crashes_for_all_algorithms() {
    let trace = SyntheticConfig {
        geometry: StateGeometry::test_small(),
        ticks: 30,
        updates_per_tick: 300,
        skew: 0.7,
        seed: 616,
    };
    const N: usize = 4;
    let map = ShardMap::new(trace.geometry, N as u32).unwrap();
    for alg in Algorithm::ALL {
        let dir = tempfile::tempdir().unwrap();
        let report = Run::algorithm(alg)
            .engine(
                RealConfig::new(dir.path())
                    .without_recovery()
                    .with_query_ops(64),
            )
            .trace(trace)
            .shards(N as u32)
            .writer(WriterBackend::AsyncBatched)
            .execute()
            .unwrap_or_else(|e| panic!("{alg}: {e}"));
        for (s, shard) in report.shards.iter().enumerate() {
            assert!(
                shard.summary.checkpoints_completed >= 1,
                "{alg} shard {s} needs history"
            );
        }

        // Inject the mid-batch crash on *every* shard: the whole batch
        // was submitted, none of it completed.
        for s in 0..N {
            let sdir = shard_dir(dir.path(), s, N);
            match alg.spec().disk_org {
                DiskOrg::DoubleBackup => {
                    let g = map.shard_geometry(s);
                    let mut set = BackupSet::open(&sdir, g).unwrap();
                    let (newest, _) = set.newest_consistent().expect("consistent backup");
                    // The *older* backup is the next target: invalidate it
                    // and scribble over its image, exactly what a
                    // submitted-but-uncommitted eager/sweep job leaves.
                    let target = 1 - newest;
                    set.invalidate(target).unwrap();
                    for obj in 0..g.n_objects() / 2 {
                        set.write_object(target, ObjectId(obj), &[0xEEu8; 64])
                            .unwrap();
                    }
                    drop(set);
                }
                DiskOrg::Log => {
                    // A submitted-but-unsynced segment survives only
                    // partially: tear the tail.
                    let path = sdir.join("checkpoint.log");
                    let len = std::fs::metadata(&path).unwrap().len();
                    let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
                    f.set_len(len.saturating_sub(90).max(10)).unwrap();
                    drop(f);
                }
            }
        }

        // Every shard recovers alone from its previous consistent image
        // plus replay of its slice, reaching the exact crash state.
        for s in 0..N {
            let sdir = shard_dir(dir.path(), s, N);
            let g = map.shard_geometry(s);
            let mut replay = ShardFilter::new(trace.build(), map.clone(), s);
            let rec = match alg.spec().disk_org {
                DiskOrg::DoubleBackup => recover_and_replay(&sdir, g, &mut replay, 30),
                DiskOrg::Log => recover_and_replay_log(&sdir, g, &mut replay, 30),
            }
            .unwrap_or_else(|e| panic!("{alg} shard {s}: {e}"));
            let truth = truth_of(ShardFilter::new(trace.build(), map.clone(), s));
            assert_eq!(
                rec.table.fingerprint(),
                truth.fingerprint(),
                "{alg} shard {s}: mid-batch crash recovery diverged"
            );
        }
    }
}

/// The durability scheduler opens one more crash window: with cross-shard
/// fsync coalescing, **all** of a batch's data syncs run before **any**
/// metadata commit, so a crash between the two phases leaves files whose
/// *data* is fully on stable storage while *no* job has committed — the
/// double-backup targets are invalidated-but-synced, the log tails are
/// synced segments a later torn append can still trail. For all six
/// algorithms, over a 4-shard world run with coalescing and a nonzero
/// batch window, recovery must ignore the uncommitted (or torn) work and
/// fall back to each shard's previous consistent image plus replay.
#[test]
fn coalesced_sync_without_commit_falls_back_to_previous_image() {
    let trace = SyntheticConfig {
        geometry: StateGeometry::test_small(),
        ticks: 30,
        updates_per_tick: 300,
        skew: 0.7,
        seed: 929,
    };
    const N: usize = 4;
    let map = ShardMap::new(trace.geometry, N as u32).unwrap();
    for alg in Algorithm::ALL {
        let dir = tempfile::tempdir().unwrap();
        let report = Run::algorithm(alg)
            .engine(
                RealConfig::new(dir.path())
                    .without_recovery()
                    .with_query_ops(64)
                    .with_fsync_coalescing(true),
            )
            .trace(trace)
            .shards(N as u32)
            .writer(WriterBackend::AsyncBatched)
            .batch_window(std::time::Duration::from_micros(400))
            .execute()
            .unwrap_or_else(|e| panic!("{alg}: {e}"));
        assert!(report.world.checkpoints_completed >= 1, "{alg}");

        // Inject the crash *between* the scheduler's phases on every
        // shard: data synced, nothing committed.
        for s in 0..N {
            let sdir = shard_dir(dir.path(), s, N);
            let g = map.shard_geometry(s);
            match alg.spec().disk_org {
                DiskOrg::DoubleBackup => {
                    let mut set = BackupSet::open(&sdir, g).unwrap();
                    let (newest, _) = set.newest_consistent().expect("consistent backup");
                    let target = 1 - newest;
                    set.invalidate(target).unwrap();
                    for obj in 0..g.n_objects() {
                        set.write_object(target, ObjectId(obj), &[0xD5u8; 64])
                            .unwrap();
                    }
                    // The scheduler's phase one completed: data durable…
                    set.sync(target).unwrap();
                    // …and phase two (the metadata commit) never ran.
                    drop(set);
                }
                DiskOrg::Log => {
                    // Everything already appended is synced (phase one);
                    // the crash tears the segment a next batch had begun.
                    let path = sdir.join("checkpoint.log");
                    let log = mmoc_storage::log_store::LogStore::open(&sdir, g).unwrap();
                    log.sync().unwrap();
                    drop(log);
                    let len = std::fs::metadata(&path).unwrap().len();
                    let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
                    f.set_len(len.saturating_sub(40).max(10)).unwrap();
                    drop(f);
                }
            }
        }

        // Recovery per shard: the synced-but-uncommitted target carries no
        // metadata, the torn tail fails its end-marker check — both fall
        // back to the previous consistent image, and replay reaches the
        // exact crash state.
        for s in 0..N {
            let sdir = shard_dir(dir.path(), s, N);
            let g = map.shard_geometry(s);
            let mut replay = ShardFilter::new(trace.build(), map.clone(), s);
            let rec = match alg.spec().disk_org {
                DiskOrg::DoubleBackup => recover_and_replay(&sdir, g, &mut replay, 30),
                DiskOrg::Log => recover_and_replay_log(&sdir, g, &mut replay, 30),
            }
            .unwrap_or_else(|e| panic!("{alg} shard {s}: {e}"));
            let truth = truth_of(ShardFilter::new(trace.build(), map.clone(), s));
            assert_eq!(
                rec.table.fingerprint(),
                truth.fingerprint(),
                "{alg} shard {s}: sync-without-commit recovery diverged"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Crash windows of the pipelined write path (two checkpoints in flight)
// ---------------------------------------------------------------------------

/// Which of a shard's two in-flight segments the simulated crash loses.
#[derive(Clone, Copy)]
enum PipelineCrash {
    /// The older checkpoint reached stable storage; the newer one's
    /// segment survives only as a torn tail (writeback never finished).
    NewerTorn,
    /// The *newer* segment's bytes made it to stable storage but the
    /// older one's writeback was lost mid-page: its end marker is gone.
    /// The log's prefix-consistency scan must discard the intact newer
    /// segment too — it cannot be applied without its predecessor.
    OlderCorrupt,
}

/// Checkpoint pipelining opens a crash window that cannot exist at depth
/// one: **two** of a shard's checkpoints in flight at once, and a crash
/// that persists them asymmetrically. Both directions are injected here
/// — newest segment torn with the older intact, and the older segment's
/// writeback lost under an intact newer one — for every log-organized
/// algorithm under both writer backends, after a genuine depth-2 run.
/// Recovery must anchor on the newest consistent *prefix* of the log and
/// replay to the exact crash state.
#[test]
fn pipelined_crash_windows_recover_to_newest_consistent_checkpoint() {
    let trace = SyntheticConfig {
        geometry: StateGeometry::test_small(),
        ticks: 40,
        updates_per_tick: 300,
        skew: 0.7,
        seed: 1337,
    };
    const N: usize = 4;
    let map = ShardMap::new(trace.geometry, N as u32).unwrap();
    let log_algorithms = Algorithm::ALL
        .into_iter()
        .filter(|a| a.spec().disk_org == DiskOrg::Log);
    for alg in log_algorithms {
        for backend in WriterBackend::ALL {
            for crash in [PipelineCrash::NewerTorn, PipelineCrash::OlderCorrupt] {
                let dir = tempfile::tempdir().unwrap();
                let report = Run::algorithm(alg)
                    .engine(
                        RealConfig::new(dir.path())
                            .without_recovery()
                            .with_query_ops(64),
                    )
                    .trace(trace)
                    .shards(N as u32)
                    .writer(backend)
                    .pipeline_depth(2)
                    // Lightly paced so even the full-sweep algorithms
                    // (whose checkpoints never overlap) complete several
                    // checkpoints — the injections below need at least
                    // two segments beyond the boot image per shard.
                    .pacing(400.0)
                    .execute()
                    .unwrap_or_else(|e| panic!("{alg} [{backend}]: {e}"));
                assert!(report.world.checkpoints_completed >= 1, "{alg} [{backend}]");

                for s in 0..N {
                    let sdir = shard_dir(dir.path(), s, N);
                    let g = map.shard_geometry(s);
                    let path = sdir.join("checkpoint.log");
                    let mut log = mmoc_storage::log_store::LogStore::open(&sdir, g).unwrap();
                    let segs = log.segments().unwrap();
                    drop(log);
                    assert!(
                        segs.len() >= 3,
                        "{alg} [{backend}] shard {s}: needs a boot image plus two \
                         pipelined segments, got {}",
                        segs.len()
                    );
                    let len = std::fs::metadata(&path).unwrap().len();
                    let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
                    match crash {
                        PipelineCrash::NewerTorn => {
                            // Tear into the newest segment's body, leaving
                            // everything before it durable and complete.
                            let last = segs.last().unwrap().bytes;
                            f.set_len(len - last / 2).unwrap();
                        }
                        PipelineCrash::OlderCorrupt => {
                            use std::io::{Seek, SeekFrom, Write};
                            // Overwrite the second-newest segment's end
                            // marker: its writeback never completed, while
                            // the newest segment's bytes all survive.
                            let last = segs.last().unwrap().bytes;
                            let mut f = f;
                            f.seek(SeekFrom::Start(len - last - 4)).unwrap();
                            f.write_all(&[0xBD; 4]).unwrap();
                            f.sync_data().unwrap();
                        }
                    }

                    let mut replay = ShardFilter::new(trace.build(), map.clone(), s);
                    let rec = recover_and_replay_log(&sdir, g, &mut replay, 40)
                        .unwrap_or_else(|e| panic!("{alg} [{backend}] shard {s}: {e}"));
                    // The anchor must be the newest consistent prefix: at
                    // most the segments preceding the damaged one.
                    let damaged_from = match crash {
                        PipelineCrash::NewerTorn => segs.len() - 1,
                        PipelineCrash::OlderCorrupt => segs.len() - 2,
                    };
                    let newest_consistent = segs[damaged_from - 1].consistent_tick;
                    assert_eq!(
                        rec.from_tick, newest_consistent,
                        "{alg} [{backend}] shard {s}: recovery must anchor on the \
                         newest consistent checkpoint before the damage"
                    );
                    let truth = truth_of(ShardFilter::new(trace.build(), map.clone(), s));
                    assert_eq!(
                        rec.table.fingerprint(),
                        truth.fingerprint(),
                        "{alg} [{backend}] shard {s}: pipelined crash recovery diverged"
                    );
                }
            }
        }
    }
}

/// Every curated crash site above is also a point on the engine's
/// crash-point lattice. Arm each site's point through
/// [`RealConfig::with_crash_state`] and let the *instrumented engine
/// itself* produce the torn disk — mid object write, torn metadata
/// commit, invalidated-but-unwritten target, torn log record, torn
/// segment seal — then recover for real. This pins the contract the
/// fuzzer corpus (`mmoc-fuzz`, whose named seeds mirror these sites)
/// relies on: a lattice crash at a curated site is recoverable to the
/// exact oracle state, so the hand-constructed injections and the
/// instrumented ones prove the same durability story.
#[test]
fn lattice_reproduces_the_curated_crash_sites() {
    use mmoc_storage::crash::{plan_spec, CrashState};
    use std::sync::Arc;

    // (algorithm, backend, plan spec) — backends are pinned because the
    // io_uring path stages writes without the mid-write points.
    let sites = [
        (
            Algorithm::AtomicCopyDirtyObjects,
            WriterBackend::ThreadPool,
            "backup-write-object:1:40",
        ),
        (
            Algorithm::CopyOnUpdate,
            WriterBackend::AsyncBatched,
            "backup-commit:1:7",
        ),
        (
            Algorithm::NaiveSnapshot,
            WriterBackend::ThreadPool,
            "backup-invalidate:2",
        ),
        (
            Algorithm::PartialRedo,
            WriterBackend::ThreadPool,
            "log-append-object:1:13",
        ),
        (
            Algorithm::CopyOnUpdatePartialRedo,
            WriterBackend::AsyncBatched,
            "log-segment-sealed:1:33",
        ),
    ];
    let trace = SyntheticConfig {
        geometry: StateGeometry::test_small(),
        ticks: 14,
        updates_per_tick: 120,
        skew: 0.8,
        seed: 0xC0FFEE,
    };
    for (alg, backend, spec) in sites {
        let dir = tempfile::tempdir().unwrap();
        let state = Arc::new(CrashState::armed(plan_spec(spec).unwrap()));
        Run::algorithm(alg)
            .engine(
                RealConfig::new(dir.path())
                    .without_recovery()
                    .with_query_ops(64)
                    .with_crash_state(state.clone()),
            )
            .trace(trace)
            .writer(backend)
            // Lightly paced, like the fuzzer: the tick cadence leaves the
            // writer room to complete several checkpoints, so hit indexes
            // beyond the first are reachable.
            .pacing(600.0)
            .execute()
            .unwrap_or_else(|e| panic!("{alg} {spec}: {e}"));
        assert!(
            state.fired(),
            "{alg}: lattice point in {spec:?} never fired"
        );

        let g = trace.geometry;
        let mut replay = trace.build();
        let rec = match alg.spec().disk_org {
            DiskOrg::DoubleBackup => recover_and_replay(dir.path(), g, &mut replay, trace.ticks),
            DiskOrg::Log => recover_and_replay_log(dir.path(), g, &mut replay, trace.ticks),
        }
        .unwrap_or_else(|e| panic!("{alg} {spec}: recovery failed: {e}"));
        let truth = truth_of(trace.build());
        assert_eq!(
            rec.table.fingerprint(),
            truth.fingerprint(),
            "{alg} {spec}: lattice crash recovery diverged"
        );
    }
}
