//! End-to-end checkpoint pipelining: the acceptance property of the deep
//! write path is that a multi-shard, log-organized run at pipeline depth
//! ≥ 2 amortizes durability below **one fsync per checkpoint** — several
//! of a shard's in-flight segments share the shard's log file, so the
//! batched writer's per-distinct-file durability scheduler pays one data
//! sync for all of them.
//!
//! The suite also pins the safety half of the feature: every log-organized
//! algorithm recovers byte-identically at depth 1 and depth 4 under both
//! writer backends, and copy-organized algorithms (whose checkpoints
//! mutate shared disk state and therefore never overlap) accept deep
//! configurations without changing behavior.

use mmoc_core::{
    Algorithm, DiskOrg, EngineDetail, Run, RunReport, ShardFilter, ShardMap, StateTable,
    WriterBackend,
};
use mmoc_storage::recovery::{recover_and_replay, recover_and_replay_log};
use mmoc_storage::{shard_dir, RealConfig};
use mmoc_workload::SyntheticConfig;
use std::path::Path;

const TICKS: u64 = 24;

fn trace_config() -> SyntheticConfig {
    SyntheticConfig {
        geometry: mmoc_core::StateGeometry::test_small(),
        ticks: TICKS,
        updates_per_tick: 300,
        skew: 0.8,
        seed: 90210,
    }
}

fn real_detail(report: &RunReport) -> mmoc_core::RealRunDetail {
    match report.detail {
        EngineDetail::Real(d) => d,
        _ => panic!("real detail expected"),
    }
}

/// Ground truth for one shard: apply its full filtered trace to a fresh
/// table.
fn shard_truth(map: &ShardMap, shard: usize) -> StateTable {
    let mut table = StateTable::new(map.shard_geometry(shard)).unwrap();
    let mut src = ShardFilter::new(trace_config().build(), map.clone(), shard);
    let mut buf = Vec::new();
    while mmoc_core::TraceSource::next_tick(&mut src, &mut buf) {
        for &u in &buf {
            table.apply_unchecked(u);
        }
    }
    table
}

fn recover_shard(dir: &Path, disk_org: DiskOrg, map: &ShardMap, shard: usize) -> StateTable {
    let n = map.n_shards();
    let sdir = shard_dir(dir, shard, n);
    let g = map.shard_geometry(shard);
    let mut replay = ShardFilter::new(trace_config().build(), map.clone(), shard);
    let rec = match disk_org {
        DiskOrg::DoubleBackup => recover_and_replay(&sdir, g, &mut replay, TICKS),
        DiskOrg::Log => recover_and_replay_log(&sdir, g, &mut replay, TICKS),
    }
    .unwrap_or_else(|e| panic!("shard {shard}: {e}"));
    rec.table
}

/// The headline number: a 4-shard Partial-Redo run (the log-organized
/// algorithm whose non-full checkpoints are eager, pipelineable appends)
/// at depth 4 under the batched writer drops below 1.0 data fsyncs per
/// completed checkpoint — something structurally impossible at depth 1,
/// where a batch can never hold two of one shard's jobs. A generous batch
/// window makes the property deterministic: any batch holding more jobs
/// than there are shards must, by pigeonhole, sync some log file once for
/// at least two segments.
#[test]
fn deep_pipeline_drops_below_one_fsync_per_checkpoint() {
    let dir = tempfile::tempdir().unwrap();
    let report = Run::algorithm(Algorithm::PartialRedo)
        .engine(RealConfig::new(dir.path()).with_query_ops(64))
        .trace(trace_config())
        .shards(4)
        .writer(WriterBackend::AsyncBatched)
        .batch_window(std::time::Duration::from_millis(1))
        .pipeline_depth(4)
        .execute()
        .expect("deep pipelined run");
    assert_eq!(report.verified_consistent(), Some(true));
    let d = real_detail(&report);
    assert_eq!(d.pipeline_depth, 4, "configured depth is reported");
    assert_eq!(d.device_syncs, 0, "device barrier is off by default");
    assert!(d.flush_jobs >= 8, "enough checkpoints to amortize");
    assert!(
        d.avg_batch_jobs > 1.0,
        "pipelined jobs coalesce into shared batches (got {})",
        d.avg_batch_jobs
    );
    assert!(
        d.fsyncs_per_job() < 1.0,
        "depth-4 log run must amortize durability below one fsync per \
         checkpoint, got {:.3} ({} fsyncs / {} jobs)",
        d.fsyncs_per_job(),
        d.data_fsyncs,
        d.flush_jobs
    );
}

/// Safety across the depth axis: every log-organized algorithm recovers
/// byte-identically at depth 1 and depth 4, under both writer backends —
/// the pipeline reorders nothing an observer of the recovered state can
/// see.
#[test]
fn log_algorithms_recover_identically_at_every_depth_and_backend() {
    let n = 4u32;
    let map = ShardMap::new(trace_config().geometry, n).unwrap();
    let log_algorithms = Algorithm::ALL
        .into_iter()
        .filter(|a| a.spec().disk_org == DiskOrg::Log);
    for alg in log_algorithms {
        let mut recovered: Vec<Vec<StateTable>> = Vec::new();
        for backend in WriterBackend::ALL {
            for depth in [1u32, 4] {
                let dir = tempfile::tempdir().unwrap();
                let report = Run::algorithm(alg)
                    .engine(
                        RealConfig::new(dir.path())
                            .without_recovery()
                            .with_query_ops(64),
                    )
                    .trace(trace_config())
                    .shards(n)
                    .writer(backend)
                    .pipeline_depth(depth)
                    .execute()
                    .unwrap_or_else(|e| panic!("{alg} [{backend} d{depth}]: {e}"));
                assert_eq!(
                    real_detail(&report).pipeline_depth,
                    depth,
                    "{alg} [{backend}]"
                );
                assert!(
                    report.world.checkpoints_completed > 0,
                    "{alg} [{backend} d{depth}]"
                );
                recovered.push(
                    (0..n as usize)
                        .map(|s| recover_shard(dir.path(), DiskOrg::Log, &map, s))
                        .collect(),
                );
            }
        }
        for s in 0..n as usize {
            let truth = shard_truth(&map, s);
            for tables in &recovered {
                assert_eq!(
                    tables[s].fingerprint(),
                    truth.fingerprint(),
                    "{alg} shard {s}: recovered state diverged from replay truth"
                );
            }
        }
    }
}

/// Copy-organized algorithms keep their depth-1 semantics under a deep
/// configuration: their checkpoints alternate targets or sweep shared
/// state, so the driver never overlaps them — the run must still verify
/// end to end.
#[test]
fn copy_organized_algorithms_accept_deep_configs() {
    let copy_algorithms = Algorithm::ALL
        .into_iter()
        .filter(|a| a.spec().disk_org == DiskOrg::DoubleBackup);
    for alg in copy_algorithms {
        let dir = tempfile::tempdir().unwrap();
        let report = Run::algorithm(alg)
            .engine(RealConfig::new(dir.path()).with_query_ops(64))
            .trace(trace_config())
            .shards(2)
            .writer(WriterBackend::AsyncBatched)
            .pipeline_depth(4)
            .execute()
            .unwrap_or_else(|e| panic!("{alg}: {e}"));
        assert_eq!(report.verified_consistent(), Some(true), "{alg}");
    }
}
