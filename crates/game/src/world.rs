//! The battle world: units, the active set, and the tick loop.
//!
//! [`World::step`] advances the battle one tick and emits every attribute
//! write as a [`CellUpdate`] — the instrumentation the paper added to its
//! prototype server. The world itself is the authority; the emitted trace
//! is the materialized view the checkpointing engines consume.

use crate::ai::{self, Action, MOVE_SPEED};
use crate::config::GameConfig;
use crate::grid::Grid;
use crate::unit::{attr, state, Team, Unit, UnitClass, NO_TARGET};
use mmoc_core::CellUpdate;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The Knights and Archers battle world.
#[derive(Debug)]
pub struct World {
    config: GameConfig,
    units: Vec<Unit>,
    /// Ids of active units, in deterministic order.
    active: Vec<u32>,
    is_active: Vec<bool>,
    grid: Grid,
    /// Per-squad (sum_x, sum_y, count) accumulator, rebuilt every tick.
    squad_acc: Vec<(u64, u64, u32)>,
    decisions: Vec<(u32, Action)>,
    rng: SmallRng,
    tick: u64,
}

impl World {
    /// Create a world and place both armies.
    pub fn new(config: GameConfig) -> Self {
        config.validate().expect("invalid game configuration");
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let n_squads = config.units.div_ceil(config.squad_size);

        // Each squad rallies around a point in its team's half of the map;
        // members are jittered around it.
        let mut rally = Vec::with_capacity(n_squads as usize);
        for squad in 0..n_squads {
            let team = Team::of_squad(squad);
            let (bx, by) = team.base(config.map_size);
            let spread = config.map_size / 3;
            let jx = rng.gen_range(0..spread);
            let jy = rng.gen_range(0..spread);
            let x = match team {
                Team::Red => bx + jx,
                Team::Blue => bx.saturating_sub(jx),
            };
            let y = match team {
                Team::Red => by + jy,
                Team::Blue => by.saturating_sub(jy),
            };
            rally.push((x.min(config.map_size - 1), y.min(config.map_size - 1)));
        }

        let mut units = Vec::with_capacity(config.units as usize);
        for id in 0..config.units {
            let squad = id / config.squad_size;
            let (rx, ry) = rally[squad as usize];
            let x = clamp_map(i64::from(rx) + rng.gen_range(-12i64..=12), config.map_size);
            let y = clamp_map(i64::from(ry) + rng.gen_range(-12i64..=12), config.map_size);
            units.push(Unit {
                id,
                x,
                y,
                health: Unit::MAX_HEALTH,
                state: state::INACTIVE,
                target: NO_TARGET,
                cooldown: 0,
                squad,
                goal_x: rx,
                goal_y: ry,
                stamina: 100,
                damage_dealt: 0,
                kills: 0,
                morale: 50,
            });
        }

        // Initial active set: a uniform sample of `active_fraction`.
        let mut is_active = vec![false; config.units as usize];
        let mut active = Vec::with_capacity(config.active_units() as usize);
        while (active.len() as u32) < config.active_units() {
            let id = rng.gen_range(0..config.units);
            if !is_active[id as usize] {
                is_active[id as usize] = true;
                active.push(id);
            }
        }
        for &id in &active {
            units[id as usize].state = state::IDLE;
        }

        World {
            grid: Grid::new(config.map_size),
            squad_acc: vec![(0, 0, 0); n_squads as usize],
            decisions: Vec::new(),
            units,
            active,
            is_active,
            rng,
            tick: 0,
            config,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &GameConfig {
        &self.config
    }

    /// Current tick (number of completed steps).
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Number of currently active units.
    pub fn active_count(&self) -> usize {
        self.active.len()
    }

    /// All units (index = unit id = state-table row).
    pub fn units(&self) -> &[Unit] {
        &self.units
    }

    /// Advance one tick, appending every attribute write to `out`.
    pub fn step(&mut self, out: &mut Vec<CellUpdate>) {
        out.clear();
        self.tick += 1;
        self.churn_active_set(out);
        self.grid.rebuild(&self.active, &self.units);
        self.accumulate_squads();
        self.decide_all();
        self.apply_all(out);
    }

    /// Renew the active set: every active unit leaves with
    /// `leave_probability`, and the set is topped back up from the
    /// inactive pool, fully renewing it every ~100 ticks w.h.p.
    fn churn_active_set(&mut self, out: &mut Vec<CellUpdate>) {
        let p = self.config.leave_probability;
        let mut i = 0;
        while i < self.active.len() {
            if self.rng.gen::<f64>() < p {
                let id = self.active.swap_remove(i);
                self.is_active[id as usize] = false;
                let u = &mut self.units[id as usize];
                u.state = state::INACTIVE;
                out.push(CellUpdate::new(id, attr::STATE, state::INACTIVE));
            } else {
                i += 1;
            }
        }
        let want = self.config.active_units() as usize;
        while self.active.len() < want {
            let id = self.rng.gen_range(0..self.config.units);
            if self.is_active[id as usize] {
                continue;
            }
            self.is_active[id as usize] = true;
            self.active.push(id);
            let (gx, gy) = {
                let u = &self.units[id as usize];
                Team::of_squad(u.squad).base(self.config.map_size)
            };
            let u = &mut self.units[id as usize];
            u.state = state::IDLE;
            out.push(CellUpdate::new(id, attr::STATE, state::IDLE));
            // A rejoining player is pointed at the front via its base.
            if u.goal_x != gx {
                u.goal_x = gx;
                out.push(CellUpdate::new(id, attr::GOAL_X, gx));
            }
            if u.goal_y != gy {
                u.goal_y = gy;
                out.push(CellUpdate::new(id, attr::GOAL_Y, gy));
            }
        }
    }

    fn accumulate_squads(&mut self) {
        for acc in &mut self.squad_acc {
            *acc = (0, 0, 0);
        }
        for &id in &self.active {
            let u = &self.units[id as usize];
            let acc = &mut self.squad_acc[u.squad as usize];
            acc.0 += u64::from(u.x);
            acc.1 += u64::from(u.y);
            acc.2 += 1;
        }
    }

    /// Mean position of a unit's active squad mates, or the team base if
    /// it is effectively alone.
    fn squad_center(&self, unit: &Unit) -> (u32, u32) {
        let (sx, sy, n) = self.squad_acc[unit.squad as usize];
        if n >= 2 {
            ((sx / u64::from(n)) as u32, (sy / u64::from(n)) as u32)
        } else {
            unit.team().base(self.config.map_size)
        }
    }

    fn decide_all(&mut self) {
        // Move the decision buffer out to appease the borrow checker while
        // `decide` reads &self.
        let mut decisions = std::mem::take(&mut self.decisions);
        decisions.clear();
        for idx in 0..self.active.len() {
            let id = self.active[idx];
            let unit = &self.units[id as usize];
            let center = self.squad_center(unit);
            let action = ai::decide(
                unit,
                &self.units,
                &self.grid,
                center,
                &self.config,
                self.tick,
                &mut self.rng,
            );
            if action != Action::Idle {
                decisions.push((id, action));
            }
        }
        self.decisions = decisions;
    }

    fn apply_all(&mut self, out: &mut Vec<CellUpdate>) {
        let decisions = std::mem::take(&mut self.decisions);
        for &(id, action) in &decisions {
            match action {
                Action::Idle => {}
                Action::MoveToward {
                    goal_x,
                    goal_y,
                    set_goal,
                } => self.apply_move(id, goal_x, goal_y, set_goal, out),
                Action::Attack { target } => self.apply_attack(id, target, out),
                Action::Heal { target } => self.apply_heal(id, target, out),
                Action::Respawn => self.apply_respawn(id, out),
            }
        }
        self.decisions = decisions;
    }

    fn apply_move(
        &mut self,
        id: u32,
        goal_x: u32,
        goal_y: u32,
        set_goal: bool,
        out: &mut Vec<CellUpdate>,
    ) {
        let map = self.config.map_size;
        let u = &mut self.units[id as usize];
        let dx = i64::from(goal_x) - i64::from(u.x);
        let dy = i64::from(goal_y) - i64::from(u.y);
        if dx == 0 && dy == 0 {
            return;
        }
        let step = i64::from(MOVE_SPEED);
        // Move along the dominant axis ("possibly only in one dimension");
        // when clearly diagonal, move both.
        let move_x = dx.abs() >= dy.abs();
        let move_y = dy.abs() > dx.abs() || (dy != 0 && dx.abs() == dy.abs());
        let diagonal = dx.abs() >= step && dy.abs() >= step;
        if move_x || diagonal {
            let nx = clamp_map(i64::from(u.x) + dx.clamp(-step, step), map);
            if nx != u.x {
                u.x = nx;
                out.push(CellUpdate::new(id, attr::X, nx));
            }
        }
        if move_y || diagonal {
            let ny = clamp_map(i64::from(u.y) + dy.clamp(-step, step), map);
            if ny != u.y {
                u.y = ny;
                out.push(CellUpdate::new(id, attr::Y, ny));
            }
        }
        if set_goal {
            if u.goal_x != goal_x {
                u.goal_x = goal_x;
                out.push(CellUpdate::new(id, attr::GOAL_X, goal_x));
            }
            if u.goal_y != goal_y {
                u.goal_y = goal_y;
                out.push(CellUpdate::new(id, attr::GOAL_Y, goal_y));
            }
        }
        if u.state != state::MOVING {
            u.state = state::MOVING;
            out.push(CellUpdate::new(id, attr::STATE, state::MOVING));
        }
        // Marching drains stamina now and then.
        if (u.x ^ u.y) & 0x7 == 0 && u.stamina > 0 {
            u.stamina -= 1;
            out.push(CellUpdate::new(id, attr::STAMINA, u.stamina));
        }
    }

    fn apply_attack(&mut self, id: u32, target: u32, out: &mut Vec<CellUpdate>) {
        let power = UnitClass::of(id).power();
        let ready_at = (self.tick + u64::from(UnitClass::of(id).cooldown())) as u32;

        // Victim takes damage.
        let victim = &mut self.units[target as usize];
        if victim.health == 0 {
            return; // someone else finished it this tick
        }
        victim.health = victim.health.saturating_sub(power);
        let died = victim.health == 0;
        out.push(CellUpdate::new(target, attr::HEALTH, victim.health));

        // Attacker bookkeeping.
        let u = &mut self.units[id as usize];
        u.cooldown = ready_at;
        out.push(CellUpdate::new(id, attr::COOLDOWN, ready_at));
        u.damage_dealt = u.damage_dealt.wrapping_add(power);
        out.push(CellUpdate::new(id, attr::DAMAGE_DEALT, u.damage_dealt));
        if u.target != target {
            u.target = target;
            out.push(CellUpdate::new(id, attr::TARGET, target));
        }
        if u.state != state::FIGHTING {
            u.state = state::FIGHTING;
            out.push(CellUpdate::new(id, attr::STATE, state::FIGHTING));
        }
        if died {
            u.kills += 1;
            out.push(CellUpdate::new(id, attr::KILLS, u.kills));
            u.morale = (u.morale + 5).min(100);
            out.push(CellUpdate::new(id, attr::MORALE, u.morale));
        }
    }

    fn apply_heal(&mut self, id: u32, target: u32, out: &mut Vec<CellUpdate>) {
        let power = UnitClass::of(id).power();
        let ready_at = (self.tick + u64::from(UnitClass::of(id).cooldown())) as u32;
        let ally = &mut self.units[target as usize];
        if ally.health == 0 || ally.health >= Unit::MAX_HEALTH {
            return;
        }
        ally.health = (ally.health + power).min(Unit::MAX_HEALTH);
        out.push(CellUpdate::new(target, attr::HEALTH, ally.health));

        let u = &mut self.units[id as usize];
        u.cooldown = ready_at;
        out.push(CellUpdate::new(id, attr::COOLDOWN, ready_at));
        if u.state != state::HEALING {
            u.state = state::HEALING;
            out.push(CellUpdate::new(id, attr::STATE, state::HEALING));
        }
    }

    fn apply_respawn(&mut self, id: u32, out: &mut Vec<CellUpdate>) {
        let map = self.config.map_size;
        let (bx, by) = {
            let u = &self.units[id as usize];
            u.team().base(map)
        };
        let x = clamp_map(i64::from(bx) + self.rng.gen_range(-10i64..=10), map);
        let y = clamp_map(i64::from(by) + self.rng.gen_range(-10i64..=10), map);
        let u = &mut self.units[id as usize];
        u.x = x;
        out.push(CellUpdate::new(id, attr::X, x));
        u.y = y;
        out.push(CellUpdate::new(id, attr::Y, y));
        u.health = Unit::MAX_HEALTH;
        out.push(CellUpdate::new(id, attr::HEALTH, u.health));
        u.state = state::IDLE;
        out.push(CellUpdate::new(id, attr::STATE, state::IDLE));
        u.morale = 50;
        out.push(CellUpdate::new(id, attr::MORALE, u.morale));
        u.target = NO_TARGET;
        out.push(CellUpdate::new(id, attr::TARGET, NO_TARGET));
    }
}

fn clamp_map(v: i64, map_size: u32) -> u32 {
    v.clamp(0, i64::from(map_size) - 1) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GameConfig;
    use std::collections::HashSet;

    #[test]
    fn world_initializes_active_fraction() {
        let w = World::new(GameConfig::small());
        assert_eq!(w.active_count(), 102); // 10% of 1024, rounded
        assert_eq!(w.units().len(), 1024);
    }

    #[test]
    fn step_emits_in_bounds_updates() {
        let cfg = GameConfig::small();
        let g = cfg.geometry();
        let mut w = World::new(cfg);
        let mut out = Vec::new();
        for _ in 0..20 {
            w.step(&mut out);
            for u in &out {
                assert!(u.addr.row < g.rows, "row {}", u.addr.row);
                assert!(u.addr.col < g.cols, "col {}", u.addr.col);
            }
        }
    }

    #[test]
    fn same_seed_same_battle() {
        let run = |seed: u64| {
            let mut w = World::new(GameConfig::small().with_seed(seed));
            let mut out = Vec::new();
            let mut all = Vec::new();
            for _ in 0..15 {
                w.step(&mut out);
                all.extend_from_slice(&out);
            }
            all
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn active_set_renews_over_time() {
        // "The active set ... is completely renewed every 100 ticks with
        // high probability": after 100 ticks, essentially no unit should
        // have been *continuously* active (units may leave and rejoin —
        // at steady state ~10% of the originals are active again).
        let mut w = World::new(GameConfig::small());
        let mut continuously_active: HashSet<u32> = w.active.iter().copied().collect();
        let initial = continuously_active.len();
        let mut out = Vec::new();
        for _ in 0..100 {
            w.step(&mut out);
            let now: HashSet<u32> = w.active.iter().copied().collect();
            continuously_active.retain(|id| now.contains(id));
        }
        assert!(
            continuously_active.len() <= 1,
            "{} of {initial} units were never deactivated",
            continuously_active.len()
        );
        assert_eq!(w.active_count(), 102, "active size is maintained");
    }

    #[test]
    fn combat_eventually_happens() {
        // A dense skirmish: half the units active and always acting, on a
        // small map, so the armies make contact quickly. Verifies the
        // attack/heal/respawn machinery by watching for health updates.
        let mut cfg = GameConfig::small();
        cfg.map_size = 128;
        cfg.active_fraction = 0.5;
        cfg.action_density = 1.0;
        cfg.ticks = 300;
        let mut w = World::new(cfg);
        let mut out = Vec::new();
        let mut health_updates = 0u64;
        for _ in 0..300 {
            w.step(&mut out);
            health_updates += out.iter().filter(|u| u.addr.col == attr::HEALTH).count() as u64;
        }
        assert!(health_updates > 0, "no combat in 300 ticks");
    }

    #[test]
    fn update_rate_is_of_the_right_order() {
        // Table 5 reports ≈0.89 updates per active unit per tick at paper
        // scale; the small battle should be within a loose band of that.
        let mut w = World::new(GameConfig::small());
        let mut out = Vec::new();
        let mut total = 0u64;
        for _ in 0..50 {
            w.step(&mut out);
            total += out.len() as u64;
        }
        let per_active_tick = total as f64 / (50.0 * w.active_count() as f64);
        assert!(
            (0.3..2.0).contains(&per_active_tick),
            "updates per active unit per tick = {per_active_tick}"
        );
    }

    #[test]
    fn positions_stay_on_the_map() {
        let cfg = GameConfig::small();
        let mut w = World::new(cfg);
        let mut out = Vec::new();
        for _ in 0..60 {
            w.step(&mut out);
        }
        for u in w.units() {
            assert!(u.x < cfg.map_size);
            assert!(u.y < cfg.map_size);
        }
    }

    #[test]
    fn dead_units_respawn_at_full_health() {
        let mut w = World::new(GameConfig::small());
        // Kill an active unit directly, then step: it must respawn.
        let victim = w.active[0];
        w.units[victim as usize].health = 0;
        let mut out = Vec::new();
        w.step(&mut out);
        // Either it left the active set this tick, or it respawned.
        let u = &w.units[victim as usize];
        assert!(
            u.health == Unit::MAX_HEALTH || u.state == state::INACTIVE,
            "victim neither respawned nor deactivated"
        );
    }
}
