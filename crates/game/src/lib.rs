//! # mmoc-game — the Knights and Archers prototype game server
//!
//! A Rust rebuild of the paper's prototype MMO (§4.4): a medieval battle
//! between two teams of knights, archers and healers, "based on the
//! Knights and Archers Game of [SGL, SIGMOD '07]". Each unit is controlled
//! by a simple decision tree:
//!
//! * **Knights** attempt to attack and pursue nearby targets.
//! * **Healers** attempt to heal their weakest allies.
//! * **Archers** attack enemies while staying near allied units for
//!   support.
//! * All units try to cluster with allies to form squads.
//!
//! Only ~10% of the characters are active at any moment, and the active
//! set is completely renewed every ~100 ticks with high probability.
//!
//! The server is instrumented exactly as in the paper: every attribute
//! write is emitted as a [`mmoc_core::CellUpdate`], so the server doubles
//! as a [`mmoc_workload::TraceSource`] feeding the checkpoint simulator
//! (or a trace file for later replay). Table 5's characteristics —
//! 400,128 units × 13 attributes, ≈35,590 updates per tick — emerge from
//! the game logic.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ai;
pub mod config;
pub mod grid;
pub mod server;
pub mod unit;
pub mod world;

pub use config::GameConfig;
pub use server::GameServer;
pub use unit::{attr, Team, UnitClass};
pub use world::World;
