//! The game server as a trace source.
//!
//! [`GameServer`] wraps a [`World`] and implements
//! [`mmoc_workload::TraceSource`], so the battle can feed the checkpoint
//! simulator directly or be recorded to a trace file with
//! [`mmoc_workload::write_trace_file`] — exactly the instrumented-server →
//! trace-file → simulator pipeline of §4.4.

use crate::config::GameConfig;
use crate::world::World;
use mmoc_core::{CellUpdate, StateGeometry};
use mmoc_workload::TraceSource;

/// A Knights and Archers server emitting its update trace.
#[derive(Debug)]
pub struct GameServer {
    world: World,
    remaining_ticks: u64,
}

impl GameServer {
    /// Start a server for the given configuration.
    pub fn new(config: GameConfig) -> Self {
        GameServer {
            remaining_ticks: config.ticks,
            world: World::new(config),
        }
    }

    /// The world, for inspection.
    pub fn world(&self) -> &World {
        &self.world
    }
}

impl TraceSource for GameServer {
    fn geometry(&self) -> StateGeometry {
        self.world.config().geometry()
    }

    fn next_tick(&mut self, buf: &mut Vec<CellUpdate>) -> bool {
        buf.clear();
        if self.remaining_ticks == 0 {
            return false;
        }
        self.remaining_ticks -= 1;
        self.world.step(buf);
        true
    }

    fn total_ticks(&self) -> Option<u64> {
        Some(self.world.config().ticks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmoc_workload::TraceStats;

    #[test]
    fn server_runs_configured_ticks() {
        let mut server = GameServer::new(GameConfig::small().with_ticks(12));
        let mut buf = Vec::new();
        let mut ticks = 0;
        while server.next_tick(&mut buf) {
            ticks += 1;
        }
        assert_eq!(ticks, 12);
        assert_eq!(server.total_ticks(), Some(12));
    }

    #[test]
    fn geometry_matches_config() {
        let server = GameServer::new(GameConfig::small());
        let g = server.geometry();
        assert_eq!(g.rows, 1024);
        assert_eq!(g.cols, 13);
    }

    #[test]
    fn trace_stats_are_sane() {
        let mut server = GameServer::new(GameConfig::small().with_ticks(30));
        let stats = TraceStats::scan(&mut server);
        assert_eq!(stats.ticks, 30);
        assert!(stats.total_updates > 0);
        // Only ~10% of units are active at a time, but with renewal the
        // trace touches more than one cohort over 30 ticks.
        assert!(stats.distinct_rows > 102);
        assert!(stats.distinct_rows < 1024);
    }

    #[test]
    fn traces_are_reproducible_via_files() {
        let dir = tempfile::tempdir().expect("tempdir");
        let path = dir.path().join("battle.trace");
        let cfg = GameConfig::small().with_ticks(10);
        mmoc_workload::write_trace_file(&path, &mut GameServer::new(cfg)).unwrap();
        let from_file = mmoc_workload::read_trace_file(&path).unwrap();
        let direct = mmoc_workload::trace::record(&mut GameServer::new(cfg));
        assert_eq!(from_file, direct);
    }
}
