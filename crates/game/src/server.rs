//! The game server as a trace source.
//!
//! [`GameServer`] wraps a [`World`] and implements
//! [`mmoc_workload::TraceSource`], so the battle can feed the checkpoint
//! simulator directly or be recorded to a trace file with
//! [`mmoc_workload::write_trace_file`] — exactly the instrumented-server →
//! trace-file → simulator pipeline of §4.4.
//!
//! The server also speaks the shard layer: [`GameServer::shard_map`]
//! partitions its unit table into object-aligned row bands, and
//! [`GameServer::sharded_traces`] yields one replayable per-shard trace
//! per band (each re-runs the deterministic battle and routes every
//! update through the map), so a sharded checkpoint engine — or a single
//! crashed shard's recovery replay — consumes exactly the updates of the
//! units it owns.

use crate::config::GameConfig;
use crate::world::World;
use mmoc_core::{CellUpdate, CoreError, ShardFilter, ShardMap, StateGeometry};
use mmoc_workload::TraceSource;

/// A Knights and Archers server emitting its update trace.
#[derive(Debug)]
pub struct GameServer {
    world: World,
    remaining_ticks: u64,
}

impl GameServer {
    /// Start a server for the given configuration.
    pub fn new(config: GameConfig) -> Self {
        GameServer {
            remaining_ticks: config.ticks,
            world: World::new(config),
        }
    }

    /// The world, for inspection.
    pub fn world(&self) -> &World {
        &self.world
    }

    /// Partition this server's unit table into `n_shards` disjoint,
    /// object-aligned row bands (units are rows, so a band is a block of
    /// units — the zone/shard assignment of a sharded game cluster).
    pub fn shard_map(&self, n_shards: u32) -> Result<ShardMap, CoreError> {
        ShardMap::new(self.geometry(), n_shards)
    }

    /// One replayable trace per shard: each re-runs the battle for
    /// `config` deterministically and routes its updates through `map`,
    /// yielding only the owning shard's slice in shard-local coordinates.
    pub fn sharded_traces(config: GameConfig, map: &ShardMap) -> Vec<ShardFilter<GameServer>> {
        assert_eq!(
            config.geometry(),
            map.global_geometry(),
            "shard map must partition this game's geometry"
        );
        (0..map.n_shards())
            .map(|s| ShardFilter::new(GameServer::new(config), map.clone(), s))
            .collect()
    }
}

/// A game configuration is a replayable trace description: the battle is
/// deterministic, so re-opening the spec replays the identical update
/// stream. This lets a battle feed `mmoc_core::Run` experiments directly
/// — including real-engine recovery replay — with no trace file:
///
/// ```
/// use mmoc_core::run::TraceSpec;
/// use mmoc_game::GameConfig;
///
/// let spec = GameConfig::small().with_ticks(5);
/// let mut server = spec.open(); // a fresh GameServer each call
/// let mut buf = Vec::new();
/// assert!(server.next_tick(&mut buf));
/// # use mmoc_core::TraceSource;
/// ```
impl mmoc_core::run::TraceSpec for GameConfig {
    type Source = GameServer;

    fn open(&self) -> GameServer {
        GameServer::new(*self)
    }
}

impl TraceSource for GameServer {
    fn geometry(&self) -> StateGeometry {
        self.world.config().geometry()
    }

    fn next_tick(&mut self, buf: &mut Vec<CellUpdate>) -> bool {
        buf.clear();
        if self.remaining_ticks == 0 {
            return false;
        }
        self.remaining_ticks -= 1;
        self.world.step(buf);
        true
    }

    fn total_ticks(&self) -> Option<u64> {
        Some(self.world.config().ticks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmoc_workload::TraceStats;

    #[test]
    fn server_runs_configured_ticks() {
        let mut server = GameServer::new(GameConfig::small().with_ticks(12));
        let mut buf = Vec::new();
        let mut ticks = 0;
        while server.next_tick(&mut buf) {
            ticks += 1;
        }
        assert_eq!(ticks, 12);
        assert_eq!(server.total_ticks(), Some(12));
    }

    #[test]
    fn geometry_matches_config() {
        let server = GameServer::new(GameConfig::small());
        let g = server.geometry();
        assert_eq!(g.rows, 1024);
        assert_eq!(g.cols, 13);
    }

    #[test]
    fn trace_stats_are_sane() {
        let mut server = GameServer::new(GameConfig::small().with_ticks(30));
        let stats = TraceStats::scan(&mut server);
        assert_eq!(stats.ticks, 30);
        assert!(stats.total_updates > 0);
        // Only ~10% of units are active at a time, but with renewal the
        // trace touches more than one cohort over 30 ticks.
        assert!(stats.distinct_rows > 102);
        assert!(stats.distinct_rows < 1024);
    }

    #[test]
    fn shard_map_routes_every_game_update() {
        let cfg = GameConfig::small().with_ticks(20);
        let server = GameServer::new(cfg);
        // 128 cells/object over 13 cols -> bands of 128 units; 1,024
        // units allow up to 8 shards.
        let map = server.shard_map(4).unwrap();
        assert_eq!(map.n_shards(), 4);

        // The per-shard traces partition the direct trace exactly.
        let mut shard_updates = 0u64;
        let mut shard_ticks = None;
        for mut filtered in GameServer::sharded_traces(cfg, &map) {
            let mut buf = Vec::new();
            let mut ticks = 0u64;
            let mut updates = 0u64;
            while filtered.next_tick(&mut buf) {
                ticks += 1;
                updates += buf.len() as u64;
                // Every local row fits the shard's geometry.
                let g = filtered.geometry();
                assert!(buf.iter().all(|u| u.addr.row < g.rows));
            }
            assert_eq!(*shard_ticks.get_or_insert(ticks), ticks);
            shard_updates += updates;
        }
        let direct = TraceStats::scan(&mut GameServer::new(cfg));
        assert_eq!(shard_ticks, Some(direct.ticks));
        assert_eq!(shard_updates, direct.total_updates);
    }

    #[test]
    fn traces_are_reproducible_via_files() {
        let dir = tempfile::tempdir().expect("tempdir");
        let path = dir.path().join("battle.trace");
        let cfg = GameConfig::small().with_ticks(10);
        mmoc_workload::write_trace_file(&path, &mut GameServer::new(cfg)).unwrap();
        let from_file = mmoc_workload::read_trace_file(&path).unwrap();
        let direct = mmoc_workload::trace::record(&mut GameServer::new(cfg));
        assert_eq!(from_file, direct);
    }
}
