//! The per-class decision trees (§4.4).
//!
//! "Each unit is controlled by a simple decision tree. Knights attempt to
//! attack and pursue nearby targets, while healers attempt to heal their
//! weakest allies. Archers attempt to attack enemies while staying near
//! allied units for support. Furthermore, each unit tries to cluster with
//! allies to form squads."
//!
//! Decisions are pure with respect to the world (they only read state and
//! draw from the RNG); the world applies them and emits the corresponding
//! attribute updates.

use crate::config::GameConfig;
use crate::grid::Grid;
use crate::unit::{Unit, UnitClass};
use rand::rngs::SmallRng;
use rand::Rng;

/// Movement speed in position units per tick.
pub const MOVE_SPEED: u32 = 3;

/// What a unit decided to do this tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Do nothing.
    Idle,
    /// Step toward `(goal_x, goal_y)`; the world moves along the dominant
    /// axis (and, for diagonal pursuit, sometimes both).
    MoveToward {
        /// Goal X.
        goal_x: u32,
        /// Goal Y.
        goal_y: u32,
        /// Whether to persist the goal into the GOAL_X/GOAL_Y attributes.
        set_goal: bool,
    },
    /// Attack an enemy unit.
    Attack {
        /// Victim unit id.
        target: u32,
    },
    /// Heal an allied unit.
    Heal {
        /// Beneficiary unit id.
        target: u32,
    },
    /// Return to base with fresh health (the unit was at 0 HP).
    Respawn,
}

/// Decide one unit's action.
///
/// `squad_center` is the mean position of the unit's active squad mates
/// (or the team base when the unit is alone), `now` the current tick used
/// for cooldown checks.
#[allow(clippy::too_many_arguments)]
pub fn decide(
    unit: &Unit,
    units: &[Unit],
    grid: &Grid,
    squad_center: (u32, u32),
    config: &GameConfig,
    now: u64,
    rng: &mut SmallRng,
) -> Action {
    if unit.health == 0 {
        return Action::Respawn;
    }
    // Idle fraction: tunes the trace's update rate (Table 5).
    if rng.gen::<f64>() >= config.action_density {
        return Action::Idle;
    }
    let ready = u64::from(unit.cooldown) <= now;
    let range = config.attack_range;

    match unit.class() {
        UnitClass::Knight => {
            // Pursue the nearest enemy; engage when in melee range.
            if let Some(enemy) = grid.nearest_enemy(units, unit, range * 4) {
                let e = &units[enemy as usize];
                if ready && e.dist2(unit.x, unit.y) <= u64::from(range) * u64::from(range) {
                    return Action::Attack { target: enemy };
                }
                return Action::MoveToward {
                    goal_x: e.x,
                    goal_y: e.y,
                    set_goal: false,
                };
            }
            cluster(unit, squad_center, config, rng)
        }
        UnitClass::Archer => {
            // Shoot from distance, but only while supported by an ally.
            if let Some(enemy) = grid.nearest_enemy(units, unit, range * 4) {
                if ready && grid.ally_nearby(units, unit, range * 2) {
                    return Action::Attack { target: enemy };
                }
                // Unsupported or reloading: fall back toward the squad.
                return Action::MoveToward {
                    goal_x: squad_center.0,
                    goal_y: squad_center.1,
                    set_goal: false,
                };
            }
            cluster(unit, squad_center, config, rng)
        }
        UnitClass::Healer => {
            if ready {
                if let Some(ally) = grid.weakest_wounded_ally(units, unit, range * 2) {
                    return Action::Heal { target: ally };
                }
            }
            cluster(unit, squad_center, config, rng)
        }
    }
}

/// The clustering fallback: close up with the squad; once formed up,
/// advance as a squad toward the enemy base ("the objective is to defeat
/// as many enemies as possible"), with local wander keeping formations
/// lively.
fn cluster(
    unit: &Unit,
    squad_center: (u32, u32),
    config: &GameConfig,
    rng: &mut SmallRng,
) -> Action {
    let (cx, cy) = squad_center;
    let close = unit.dist2(cx, cy) <= 256; // within 16 position units
    if close {
        // March on the enemy: jitter around the squad center biased toward
        // the opposing base.
        let enemy = match unit.team() {
            crate::unit::Team::Red => crate::unit::Team::Blue,
            crate::unit::Team::Blue => crate::unit::Team::Red,
        };
        let (ex, ey) = enemy.base(config.map_size);
        let advance = |v: u32, toward: u32, r: &mut SmallRng| {
            let bias = (i64::from(toward) - i64::from(v)).clamp(-4, 4);
            let delta = r.gen_range(-8i64..=8) + bias;
            (i64::from(v) + delta).clamp(0, i64::from(config.map_size) - 1) as u32
        };
        return Action::MoveToward {
            goal_x: advance(cx, ex, rng),
            goal_y: advance(cy, ey, rng),
            set_goal: false,
        };
    }
    Action::MoveToward {
        goal_x: cx,
        goal_y: cy,
        set_goal: unit.goal_x != cx || unit.goal_y != cy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unit::{state, NO_TARGET};
    use rand::SeedableRng;

    fn unit(id: u32, x: u32, y: u32, squad: u32, health: u32) -> Unit {
        Unit {
            id,
            x,
            y,
            health,
            state: state::IDLE,
            target: NO_TARGET,
            cooldown: 0,
            squad,
            goal_x: x,
            goal_y: y,
            stamina: 100,
            damage_dealt: 0,
            kills: 0,
            morale: 50,
        }
    }

    fn config() -> GameConfig {
        let mut c = GameConfig::small();
        c.action_density = 1.0; // deterministic decisions in tests
        c
    }

    fn setup(units: Vec<Unit>) -> (Vec<Unit>, Grid) {
        let active: Vec<u32> = (0..units.len() as u32).collect();
        let mut grid = Grid::new(256);
        grid.rebuild(&active, &units);
        (units, grid)
    }

    #[test]
    fn dead_units_respawn() {
        let (units, grid) = setup(vec![unit(0, 10, 10, 0, 0)]);
        let mut rng = SmallRng::seed_from_u64(1);
        let a = decide(&units[0], &units, &grid, (10, 10), &config(), 0, &mut rng);
        assert_eq!(a, Action::Respawn);
    }

    #[test]
    fn knight_attacks_in_range_pursues_out_of_range() {
        // Unit 0 is a knight (id % 4 == 0), red (squad 0).
        let (units, grid) = setup(vec![
            unit(0, 100, 100, 0, 100),
            unit(1, 105, 100, 1, 100), // blue, 5 away: in melee range (12)
        ]);
        let mut rng = SmallRng::seed_from_u64(1);
        let a = decide(&units[0], &units, &grid, (100, 100), &config(), 0, &mut rng);
        assert_eq!(a, Action::Attack { target: 1 });

        // Move the enemy out of melee range but inside pursuit range.
        let (units, grid) = setup(vec![
            unit(0, 100, 100, 0, 100),
            unit(1, 130, 100, 1, 100), // 30 away: pursue
        ]);
        let a = decide(&units[0], &units, &grid, (100, 100), &config(), 0, &mut rng);
        assert_eq!(
            a,
            Action::MoveToward {
                goal_x: 130,
                goal_y: 100,
                set_goal: false
            }
        );
    }

    #[test]
    fn knight_on_cooldown_pursues_instead_of_attacking() {
        let (mut units, grid) = setup(vec![unit(0, 100, 100, 0, 100), unit(1, 105, 100, 1, 100)]);
        units[0].cooldown = 100; // ready at tick 100
        let mut rng = SmallRng::seed_from_u64(1);
        let a = decide(&units[0], &units, &grid, (100, 100), &config(), 5, &mut rng);
        assert!(matches!(a, Action::MoveToward { .. }));
    }

    #[test]
    fn archer_needs_support_to_shoot() {
        // Unit ids must equal their vec index (the grid indexes by id).
        // Id 2 is an archer (2 % 4 == 2); squad 0 makes it red.
        let (units, grid) = setup(vec![
            unit(0, 900, 900, 0, 100), // red knight, far away (no support)
            unit(1, 130, 100, 1, 100), // blue enemy at 30 (within 4× range)
            unit(2, 100, 100, 0, 100), // the archer under test
        ]);
        let mut rng = SmallRng::seed_from_u64(1);
        // No ally within support range (24): the archer falls back.
        let a = decide(&units[2], &units, &grid, (80, 80), &config(), 0, &mut rng);
        assert!(matches!(a, Action::MoveToward { .. }));

        // With an ally in support range, it shoots. Id 3 with squad 0 is a
        // red healer standing next to the archer.
        let (units, grid) = setup(vec![
            unit(0, 900, 900, 0, 100),
            unit(1, 130, 100, 1, 100),
            unit(2, 100, 100, 0, 100),
            unit(3, 110, 100, 0, 100),
        ]);
        let a = decide(&units[2], &units, &grid, (80, 80), &config(), 0, &mut rng);
        assert_eq!(a, Action::Attack { target: 1 });
    }

    #[test]
    fn healer_heals_weakest_wounded_ally() {
        // Id 3 is a healer (3 % 4 == 3); squad 0 keeps everyone red.
        let (units, grid) = setup(vec![
            unit(0, 105, 100, 0, 30),  // knight, red, badly wounded
            unit(1, 900, 900, 1, 100), // blue filler, far away
            unit(2, 110, 100, 0, 60),  // archer, red, lightly wounded
            unit(3, 100, 100, 0, 100), // the healer under test
        ]);
        let mut rng = SmallRng::seed_from_u64(1);
        let a = decide(&units[3], &units, &grid, (100, 100), &config(), 0, &mut rng);
        assert_eq!(a, Action::Heal { target: 0 });
    }

    #[test]
    fn lone_unit_clusters_toward_center() {
        let (units, grid) = setup(vec![unit(0, 10, 10, 0, 100)]);
        let mut rng = SmallRng::seed_from_u64(1);
        let a = decide(&units[0], &units, &grid, (200, 200), &config(), 0, &mut rng);
        assert_eq!(
            a,
            Action::MoveToward {
                goal_x: 200,
                goal_y: 200,
                set_goal: true
            }
        );
    }
}
