//! A uniform spatial grid over the *active* units.
//!
//! Neighbour queries (nearest enemy, weakest wounded ally, ally-nearby)
//! drive the decision trees. Only ~10% of units are active, so the grid is
//! rebuilt from scratch every tick — cheaper and simpler than incremental
//! maintenance, and allocation-free after the first tick because cell
//! vectors are reused.

use crate::unit::Unit;

/// Grid cell edge in position units. 64 covers the largest query radius
/// (archer range = 4 × 12 = 48) with a 3×3 cell neighbourhood.
pub const CELL_SIZE: u32 = 64;

/// Uniform grid of active-unit ids.
#[derive(Debug)]
pub struct Grid {
    cells_per_side: u32,
    cells: Vec<Vec<u32>>,
}

impl Grid {
    /// Create a grid covering a `map_size`-sided battlefield.
    pub fn new(map_size: u32) -> Self {
        let cells_per_side = map_size.div_ceil(CELL_SIZE).max(1);
        Grid {
            cells_per_side,
            cells: (0..cells_per_side * cells_per_side)
                .map(|_| Vec::new())
                .collect(),
        }
    }

    #[inline]
    fn cell_index(&self, x: u32, y: u32) -> usize {
        let cx = (x / CELL_SIZE).min(self.cells_per_side - 1);
        let cy = (y / CELL_SIZE).min(self.cells_per_side - 1);
        (cy * self.cells_per_side + cx) as usize
    }

    /// Rebuild from the active set. Clears and refills cells, keeping
    /// their allocations.
    pub fn rebuild(&mut self, active: &[u32], units: &[Unit]) {
        for cell in &mut self.cells {
            cell.clear();
        }
        for &id in active {
            let u = &units[id as usize];
            let idx = self.cell_index(u.x, u.y);
            self.cells[idx].push(id);
        }
    }

    /// Visit every active unit within the 3×3 cell neighbourhood of
    /// `(x, y)` (covers ranges up to [`CELL_SIZE`]).
    pub fn for_neighbors(&self, x: u32, y: u32, mut f: impl FnMut(u32)) {
        let cx = (x / CELL_SIZE).min(self.cells_per_side - 1) as i64;
        let cy = (y / CELL_SIZE).min(self.cells_per_side - 1) as i64;
        for dy in -1..=1i64 {
            for dx in -1..=1i64 {
                let nx = cx + dx;
                let ny = cy + dy;
                if nx < 0
                    || ny < 0
                    || nx >= i64::from(self.cells_per_side)
                    || ny >= i64::from(self.cells_per_side)
                {
                    continue;
                }
                let idx = (ny * i64::from(self.cells_per_side) + nx) as usize;
                for &id in &self.cells[idx] {
                    f(id);
                }
            }
        }
    }

    /// Nearest living enemy of `unit` within `range`, if any.
    pub fn nearest_enemy(&self, units: &[Unit], unit: &Unit, range: u32) -> Option<u32> {
        let range2 = u64::from(range) * u64::from(range);
        let team = unit.team();
        let mut best: Option<(u64, u32)> = None;
        self.for_neighbors(unit.x, unit.y, |id| {
            if id == unit.id {
                return;
            }
            let other = &units[id as usize];
            if other.team() == team || other.health == 0 {
                return;
            }
            let d2 = other.dist2(unit.x, unit.y);
            if d2 <= range2 && best.is_none_or(|(bd, _)| d2 < bd) {
                best = Some((d2, id));
            }
        });
        best.map(|(_, id)| id)
    }

    /// The living ally of `unit` within `range` with the lowest health
    /// below max, if any (the healer's targeting rule).
    pub fn weakest_wounded_ally(&self, units: &[Unit], unit: &Unit, range: u32) -> Option<u32> {
        let range2 = u64::from(range) * u64::from(range);
        let team = unit.team();
        let mut best: Option<(u32, u32)> = None;
        self.for_neighbors(unit.x, unit.y, |id| {
            if id == unit.id {
                return;
            }
            let other = &units[id as usize];
            if other.team() != team || other.health == 0 || other.health >= Unit::MAX_HEALTH {
                return;
            }
            if other.dist2(unit.x, unit.y) <= range2 && best.is_none_or(|(bh, _)| other.health < bh)
            {
                best = Some((other.health, id));
            }
        });
        best.map(|(_, id)| id)
    }

    /// Is any living ally within `range` (the archer's support rule)?
    pub fn ally_nearby(&self, units: &[Unit], unit: &Unit, range: u32) -> bool {
        let range2 = u64::from(range) * u64::from(range);
        let team = unit.team();
        let mut found = false;
        self.for_neighbors(unit.x, unit.y, |id| {
            if found || id == unit.id {
                return;
            }
            let other = &units[id as usize];
            if other.team() == team && other.health > 0 && other.dist2(unit.x, unit.y) <= range2 {
                found = true;
            }
        });
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unit::{state, NO_TARGET};

    fn unit(id: u32, x: u32, y: u32, squad: u32, health: u32) -> Unit {
        Unit {
            id,
            x,
            y,
            health,
            state: state::IDLE,
            target: NO_TARGET,
            cooldown: 0,
            squad,
            goal_x: x,
            goal_y: y,
            stamina: 100,
            damage_dealt: 0,
            kills: 0,
            morale: 50,
        }
    }

    /// Red team = even squads, blue = odd.
    fn world() -> (Vec<Unit>, Vec<u32>) {
        let units = vec![
            unit(0, 100, 100, 0, 100), // red
            unit(1, 110, 100, 1, 100), // blue, 10 away from unit 0
            unit(2, 120, 100, 0, 40),  // red, wounded
            unit(3, 500, 500, 1, 100), // blue, far away
            unit(4, 105, 100, 1, 0),   // blue, dead
        ];
        let active = vec![0, 1, 2, 3, 4];
        (units, active)
    }

    #[test]
    fn nearest_enemy_prefers_closest_living() {
        let (units, active) = world();
        let mut grid = Grid::new(1024);
        grid.rebuild(&active, &units);
        // Unit 0 (red): nearest blue within 50 is unit 1 (unit 4 is dead).
        assert_eq!(grid.nearest_enemy(&units, &units[0], 50), Some(1));
        // Range too small: nothing.
        assert_eq!(grid.nearest_enemy(&units, &units[0], 5), None);
        // Unit 3 (blue) has no red neighbours within 50.
        assert_eq!(grid.nearest_enemy(&units, &units[3], 50), None);
    }

    #[test]
    fn weakest_ally_is_the_wounded_one() {
        let (units, active) = world();
        let mut grid = Grid::new(1024);
        grid.rebuild(&active, &units);
        // Unit 0 (red): ally 2 is wounded.
        assert_eq!(grid.weakest_wounded_ally(&units, &units[0], 50), Some(2));
        // Unit 2 sees no wounded ally (unit 0 is at full health).
        assert_eq!(grid.weakest_wounded_ally(&units, &units[2], 50), None);
    }

    #[test]
    fn ally_nearby_ignores_dead_and_enemies() {
        let (units, active) = world();
        let mut grid = Grid::new(1024);
        grid.rebuild(&active, &units);
        assert!(grid.ally_nearby(&units, &units[0], 50)); // unit 2
        assert!(!grid.ally_nearby(&units, &units[3], 50)); // alone
    }

    #[test]
    fn rebuild_reflects_only_listed_units() {
        let (units, _) = world();
        let mut grid = Grid::new(1024);
        grid.rebuild(&[0], &units);
        assert_eq!(grid.nearest_enemy(&units, &units[0], 200), None);
        grid.rebuild(&[0, 1], &units);
        assert_eq!(grid.nearest_enemy(&units, &units[0], 200), Some(1));
    }

    #[test]
    fn edge_positions_do_not_panic() {
        let units = vec![unit(0, 1023, 1023, 0, 100), unit(1, 0, 0, 1, 100)];
        let mut grid = Grid::new(1024);
        grid.rebuild(&[0, 1], &units);
        assert_eq!(grid.nearest_enemy(&units, &units[0], 50), None);
        let mut seen = 0;
        grid.for_neighbors(1023, 1023, |_| seen += 1);
        assert_eq!(seen, 1);
    }
}
