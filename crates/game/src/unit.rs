//! Units: the rows of the game-state table.
//!
//! Every unit is one row with 13 attribute columns (Table 5). Positions
//! and combat state change frequently; identity-ish attributes (class,
//! team, squad) almost never — giving the realistic per-row skew the
//! paper's game trace exhibits ("many characters update their position
//! during each tick (possibly only in one dimension), but other attributes
//! such as health remain relatively stable").

use serde::{Deserialize, Serialize};

/// Attribute column indexes (the 13 columns of the unit table).
pub mod attr {
    /// X position.
    pub const X: u32 = 0;
    /// Y position.
    pub const Y: u32 = 1;
    /// Hit points.
    pub const HEALTH: u32 = 2;
    /// Behavioural state (idle / moving / fighting / …).
    pub const STATE: u32 = 3;
    /// Current target unit id (or NONE).
    pub const TARGET: u32 = 4;
    /// Ticks until the unit may attack/heal again.
    pub const COOLDOWN: u32 = 5;
    /// Squad the unit belongs to.
    pub const SQUAD: u32 = 6;
    /// X coordinate of the movement goal.
    pub const GOAL_X: u32 = 7;
    /// Y coordinate of the movement goal.
    pub const GOAL_Y: u32 = 8;
    /// Stamina consumed by movement and combat.
    pub const STAMINA: u32 = 9;
    /// Cumulative damage dealt.
    pub const DAMAGE_DEALT: u32 = 10;
    /// Kill count.
    pub const KILLS: u32 = 11;
    /// Morale (raised by kills, lowered by damage taken).
    pub const MORALE: u32 = 12;
    /// Number of attribute columns.
    pub const COUNT: u32 = 13;
}

/// Sentinel for "no target".
pub const NO_TARGET: u32 = u32::MAX;

/// Character class. The battle fields roughly 2 knights : 1 archer : 1
/// healer, mirroring frontline-heavy medieval-combat compositions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnitClass {
    /// Melee attacker: pursues and engages nearby enemies.
    Knight,
    /// Ranged attacker: fights from distance, stays near allies.
    Archer,
    /// Support: heals the weakest nearby ally.
    Healer,
}

impl UnitClass {
    /// Deterministic class assignment by unit id: 50% knights, 25%
    /// archers, 25% healers.
    pub fn of(unit_id: u32) -> Self {
        match unit_id % 4 {
            0 | 1 => UnitClass::Knight,
            2 => UnitClass::Archer,
            _ => UnitClass::Healer,
        }
    }

    /// Base attack/heal cooldown in ticks.
    pub fn cooldown(self) -> u32 {
        match self {
            UnitClass::Knight => 2,
            UnitClass::Archer => 3,
            UnitClass::Healer => 4,
        }
    }

    /// Damage (or healing) per action.
    pub fn power(self) -> u32 {
        match self {
            UnitClass::Knight => 12,
            UnitClass::Archer => 8,
            UnitClass::Healer => 10,
        }
    }
}

/// Team affiliation. Each team has a home base in opposite map corners.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Team {
    /// Red team, based in the south-west corner.
    Red,
    /// Blue team, based in the north-east corner.
    Blue,
}

impl Team {
    /// Deterministic team assignment: even squads are red, odd are blue,
    /// so squads are team-pure.
    pub fn of_squad(squad_id: u32) -> Self {
        if squad_id.is_multiple_of(2) {
            Team::Red
        } else {
            Team::Blue
        }
    }

    /// Home-base coordinates on a `map_size`-sided battlefield.
    pub fn base(self, map_size: u32) -> (u32, u32) {
        let margin = map_size / 16;
        match self {
            Team::Red => (margin, margin),
            Team::Blue => (map_size - 1 - margin, map_size - 1 - margin),
        }
    }
}

/// Mutable per-unit state mirrored into the game-state table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Unit {
    /// Unit id = row in the state table.
    pub id: u32,
    /// X position.
    pub x: u32,
    /// Y position.
    pub y: u32,
    /// Hit points (0 means awaiting respawn).
    pub health: u32,
    /// Behaviour state tag.
    pub state: u32,
    /// Current target unit id, or [`NO_TARGET`].
    pub target: u32,
    /// Remaining action cooldown.
    pub cooldown: u32,
    /// Squad id.
    pub squad: u32,
    /// Movement goal X.
    pub goal_x: u32,
    /// Movement goal Y.
    pub goal_y: u32,
    /// Stamina.
    pub stamina: u32,
    /// Cumulative damage dealt.
    pub damage_dealt: u32,
    /// Kills.
    pub kills: u32,
    /// Morale.
    pub morale: u32,
}

/// Behaviour state tags stored in [`attr::STATE`].
pub mod state {
    /// Logged off / out of the active set.
    pub const INACTIVE: u32 = 0;
    /// Active, no engagement.
    pub const IDLE: u32 = 1;
    /// Moving toward a goal.
    pub const MOVING: u32 = 2;
    /// In combat.
    pub const FIGHTING: u32 = 3;
    /// Healing an ally.
    pub const HEALING: u32 = 4;
}

impl Unit {
    /// Maximum hit points.
    pub const MAX_HEALTH: u32 = 100;

    /// The unit's class (fixed by id).
    pub fn class(&self) -> UnitClass {
        UnitClass::of(self.id)
    }

    /// The unit's team (fixed by squad).
    pub fn team(&self) -> Team {
        Team::of_squad(self.squad)
    }

    /// Squared Euclidean distance to a point.
    pub fn dist2(&self, x: u32, y: u32) -> u64 {
        let dx = i64::from(self.x) - i64::from(x);
        let dy = i64::from(self.y) - i64::from(y);
        (dx * dx + dy * dy) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_distribution_is_2_1_1() {
        let mut counts = [0u32; 3];
        for id in 0..1000 {
            match UnitClass::of(id) {
                UnitClass::Knight => counts[0] += 1,
                UnitClass::Archer => counts[1] += 1,
                UnitClass::Healer => counts[2] += 1,
            }
        }
        assert_eq!(counts, [500, 250, 250]);
    }

    #[test]
    fn squads_are_team_pure() {
        assert_eq!(Team::of_squad(0), Team::Red);
        assert_eq!(Team::of_squad(1), Team::Blue);
        assert_eq!(Team::of_squad(2), Team::Red);
    }

    #[test]
    fn bases_are_in_opposite_corners() {
        let (rx, ry) = Team::Red.base(4096);
        let (bx, by) = Team::Blue.base(4096);
        assert!(rx < 2048 && ry < 2048);
        assert!(bx > 2048 && by > 2048);
        assert!(bx < 4096 && by < 4096);
    }

    #[test]
    fn distance_is_squared_euclidean() {
        let u = Unit {
            id: 0,
            x: 3,
            y: 4,
            health: 100,
            state: state::IDLE,
            target: NO_TARGET,
            cooldown: 0,
            squad: 0,
            goal_x: 0,
            goal_y: 0,
            stamina: 100,
            damage_dealt: 0,
            kills: 0,
            morale: 50,
        };
        assert_eq!(u.dist2(0, 0), 25);
        assert_eq!(u.dist2(3, 4), 0);
    }

    #[test]
    fn attr_indexes_cover_13_columns() {
        assert_eq!(attr::COUNT, 13);
        assert_eq!(attr::MORALE, 12);
        assert_eq!(attr::X, 0);
    }
}
