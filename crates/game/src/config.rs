//! Game configuration.

use mmoc_core::StateGeometry;
use serde::{Deserialize, Serialize};

/// Configuration of a Knights and Archers battle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GameConfig {
    /// Total units across both teams (the paper uses 400,128).
    pub units: u32,
    /// Side length of the square battlefield in position units.
    pub map_size: u32,
    /// Units per squad.
    pub squad_size: u32,
    /// Fraction of units active at any moment (the paper uses 10%).
    pub active_fraction: f64,
    /// Per-tick probability that an active unit leaves the active set.
    /// 0.1 renews the active set within ~100 ticks with high probability
    /// ((1 − 0.1)¹⁰⁰ ≈ 2.7·10⁻⁵ per unit).
    pub leave_probability: f64,
    /// Number of ticks to simulate.
    pub ticks: u64,
    /// Probability that an active unit acts in a given tick (tunes the
    /// update rate toward Table 5's ≈35,590 updates/tick).
    pub action_density: f64,
    /// Attack range for knights (archers use 4×).
    pub attack_range: u32,
    /// RNG seed; equal seeds give byte-identical traces.
    pub seed: u64,
}

impl GameConfig {
    /// The paper's configuration (Table 5): 400,128 units, 1,000 ticks.
    pub fn paper() -> Self {
        GameConfig {
            units: 400_128,
            map_size: 4_096,
            squad_size: 32,
            active_fraction: 0.10,
            leave_probability: 0.1,
            ticks: 1_000,
            action_density: 0.29,
            attack_range: 12,
            seed: 0x00BA_771E,
        }
    }

    /// A small battle for tests: 1,024 units on a 256×256 map.
    pub fn small() -> Self {
        GameConfig {
            units: 1_024,
            map_size: 256,
            squad_size: 16,
            active_fraction: 0.10,
            leave_probability: 0.1,
            ticks: 50,
            action_density: 0.29,
            attack_range: 12,
            seed: 42,
        }
    }

    /// Override the tick count.
    pub fn with_ticks(mut self, ticks: u64) -> Self {
        self.ticks = ticks;
        self
    }

    /// Override the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The state-table geometry this game produces: one row per unit,
    /// 13 attribute columns of 4 bytes, 512-byte atomic objects.
    pub fn geometry(&self) -> StateGeometry {
        StateGeometry {
            rows: self.units,
            cols: crate::unit::attr::COUNT,
            cell_size: 4,
            object_size: 512,
        }
    }

    /// Number of active units implied by `active_fraction`.
    pub fn active_units(&self) -> u32 {
        ((f64::from(self.units) * self.active_fraction).round() as u32).max(1)
    }

    /// Validate ranges.
    pub fn validate(&self) -> Result<(), String> {
        if self.units < 4 {
            return Err("need at least 4 units".into());
        }
        if self.map_size < 16 {
            return Err("map too small".into());
        }
        if !(0.0..=1.0).contains(&self.active_fraction) || self.active_fraction <= 0.0 {
            return Err("active_fraction must be in (0, 1]".into());
        }
        if !(0.0..=1.0).contains(&self.leave_probability) {
            return Err("leave_probability must be in [0, 1]".into());
        }
        if !(0.0..=1.0).contains(&self.action_density) {
            return Err("action_density must be in [0, 1]".into());
        }
        if self.squad_size == 0 {
            return Err("squad_size must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_table5_shape() {
        let cfg = GameConfig::paper();
        cfg.validate().unwrap();
        assert_eq!(cfg.units, 400_128);
        assert_eq!(cfg.ticks, 1_000);
        let g = cfg.geometry();
        assert_eq!(g.rows, 400_128);
        assert_eq!(g.cols, 13);
        assert_eq!(cfg.active_units(), 40_013);
    }

    #[test]
    fn validation_rejects_nonsense() {
        let mut cfg = GameConfig::small();
        cfg.units = 1;
        assert!(cfg.validate().is_err());
        let mut cfg = GameConfig::small();
        cfg.active_fraction = 0.0;
        assert!(cfg.validate().is_err());
        let mut cfg = GameConfig::small();
        cfg.action_density = 1.5;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn small_config_is_valid() {
        GameConfig::small().validate().unwrap();
    }
}
