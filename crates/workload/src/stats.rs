//! Trace characteristics, in the shape of the paper's Table 5.
//!
//! Table 5 summarizes the game trace as: number of units, attributes per
//! unit, number of ticks, and average updates per tick. [`TraceStats`]
//! computes those plus the distinct-cell/object footprints the
//! checkpointing algorithms actually care about.

use crate::trace::TraceSource;
use mmoc_core::bitmap::BitVec;
use mmoc_core::{CellUpdate, StateGeometry};
use serde::{Deserialize, Serialize};

/// Summary statistics of one trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Geometry the trace targets (rows = units, cols = attributes).
    pub geometry: StateGeometry,
    /// Number of ticks scanned.
    pub ticks: u64,
    /// Total updates across all ticks.
    pub total_updates: u64,
    /// Average updates per tick.
    pub avg_updates_per_tick: f64,
    /// Smallest per-tick update count.
    pub min_updates_per_tick: u64,
    /// Largest per-tick update count.
    pub max_updates_per_tick: u64,
    /// Distinct cells touched across the whole trace.
    pub distinct_cells: u64,
    /// Distinct atomic objects touched across the whole trace.
    pub distinct_objects: u64,
    /// Distinct rows (game units) touched across the whole trace.
    pub distinct_rows: u64,
    /// Average distinct atomic objects touched per tick — the size of the
    /// per-tick dirty set, which drives copy-on-update costs.
    pub avg_distinct_objects_per_tick: f64,
}

impl TraceStats {
    /// Scan a trace source to completion and summarize it.
    pub fn scan<S: TraceSource>(source: &mut S) -> Self {
        let geometry = source.geometry();
        let n_cells = geometry.n_cells();
        assert!(
            u32::try_from(n_cells).is_ok(),
            "stats scanning supports up to 2^32 cells"
        );
        let mut cells_touched = BitVec::new(n_cells as u32);
        let mut objects_touched = BitVec::new(geometry.n_objects());
        let mut rows_touched = BitVec::new(geometry.rows);
        // Per-tick distinct objects, counted with a generation stamp to
        // avoid clearing a bitmap every tick.
        let mut obj_stamp = vec![0u32; geometry.n_objects() as usize];
        let mut stamp = 0u32;

        let mut buf: Vec<CellUpdate> = Vec::new();
        let mut ticks = 0u64;
        let mut total = 0u64;
        let mut min = u64::MAX;
        let mut max = 0u64;
        let mut distinct_obj_sum = 0u64;

        while source.next_tick(&mut buf) {
            ticks += 1;
            stamp += 1;
            let count = buf.len() as u64;
            total += count;
            min = min.min(count);
            max = max.max(count);
            for u in &buf {
                let cell = geometry
                    .cell_index(u.addr)
                    .expect("trace updates must be in bounds") as u32;
                cells_touched.set(cell);
                rows_touched.set(u.addr.row);
                let obj = geometry.object_of_unchecked(u.addr);
                objects_touched.set(obj.0);
                if obj_stamp[obj.index()] != stamp {
                    obj_stamp[obj.index()] = stamp;
                    distinct_obj_sum += 1;
                }
            }
        }

        TraceStats {
            geometry,
            ticks,
            total_updates: total,
            avg_updates_per_tick: if ticks == 0 {
                0.0
            } else {
                total as f64 / ticks as f64
            },
            min_updates_per_tick: if ticks == 0 { 0 } else { min },
            max_updates_per_tick: max,
            distinct_cells: u64::from(cells_touched.count_ones()),
            distinct_objects: u64::from(objects_touched.count_ones()),
            distinct_rows: u64::from(rows_touched.count_ones()),
            avg_distinct_objects_per_tick: if ticks == 0 {
                0.0
            } else {
                distinct_obj_sum as f64 / ticks as f64
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::RecordedTrace;

    #[test]
    fn stats_of_simple_trace() {
        let g = StateGeometry::test_micro(); // 64-byte objects, 16 cells each
        let trace = RecordedTrace::new(
            g,
            vec![
                vec![CellUpdate::new(0, 0, 1), CellUpdate::new(0, 1, 2)],
                vec![CellUpdate::new(0, 0, 3)],
                vec![
                    CellUpdate::new(4, 0, 4), // object 1
                    CellUpdate::new(8, 0, 5), // object 2
                    CellUpdate::new(8, 1, 6), // object 2 again
                ],
            ],
        );
        let stats = TraceStats::scan(&mut trace.replay());
        assert_eq!(stats.ticks, 3);
        assert_eq!(stats.total_updates, 6);
        assert_eq!(stats.avg_updates_per_tick, 2.0);
        assert_eq!(stats.min_updates_per_tick, 1);
        assert_eq!(stats.max_updates_per_tick, 3);
        // Cells (0,0), (0,1), (4,0), (8,0), (8,1).
        assert_eq!(stats.distinct_cells, 5);
        // Objects 0, 1, 2.
        assert_eq!(stats.distinct_objects, 3);
        assert_eq!(stats.distinct_rows, 3);
        // Per tick distinct objects: 1, 1, 2.
        assert!((stats.avg_distinct_objects_per_tick - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_is_all_zero() {
        let g = StateGeometry::small(4, 4);
        let trace = RecordedTrace::new(g, vec![]);
        let stats = TraceStats::scan(&mut trace.replay());
        assert_eq!(stats.ticks, 0);
        assert_eq!(stats.total_updates, 0);
        assert_eq!(stats.avg_updates_per_tick, 0.0);
        assert_eq!(stats.min_updates_per_tick, 0);
        assert_eq!(stats.distinct_cells, 0);
    }

    #[test]
    fn synthetic_trace_stats_match_config() {
        let cfg = crate::synthetic::SyntheticConfig {
            geometry: StateGeometry::small(200, 10),
            ticks: 10,
            updates_per_tick: 100,
            skew: 0.0,
            seed: 3,
        };
        let stats = TraceStats::scan(&mut cfg.build());
        assert_eq!(stats.ticks, 10);
        assert_eq!(stats.total_updates, 1_000);
        assert_eq!(stats.avg_updates_per_tick, 100.0);
        assert!(stats.distinct_cells <= 1_000);
        assert!(stats.distinct_objects <= stats.distinct_cells);
    }
}
