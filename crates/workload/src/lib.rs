//! # mmoc-workload — update traces for MMO checkpointing experiments
//!
//! The input to both engines is an *update trace*: for each tick, the set
//! of cells written (§4.4). This crate provides:
//!
//! * [`zipf`] — an O(1)-per-sample Zipfian generator in the style of Gray
//!   et al. (SIGMOD '94), the paper's citation \[10\], including the
//!   *scrambled* variant that decorrelates rank from table position.
//! * [`synthetic`] — the paper's synthetic workload (Table 4): row and
//!   column drawn independently from the same Zipf distribution, a
//!   configurable number of updates per tick.
//! * [`trace`] — the streaming [`TraceSource`] abstraction plus an
//!   in-memory recorded trace.
//! * `file` — a binary on-disk trace format so game-server traces can be
//!   recorded once and replayed into either engine.
//! * [`stats`] — per-trace characteristics (the Table 5 columns).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod file;
pub mod stats;
pub mod synthetic;
pub mod trace;
pub mod zipf;

pub use file::{read_trace_file, write_trace_file, TraceFileReader};
pub use mmoc_core::run::{TraceFn, TraceSpec};
pub use stats::TraceStats;
pub use synthetic::{SyntheticConfig, ZipfTrace};
pub use trace::{RecordedTrace, TraceSource};
pub use zipf::{ScrambledZipf, Zipf};
